.PHONY: all build test bench examples doc fmt fmt-check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Reformat the tree in place (requires ocamlformat, see .ocamlformat).
fmt:
	dune build @fmt --auto-promote

# Fail when any file is not formatted; what CI runs.
fmt-check:
	dune build @fmt

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --figure 1 --graphs 10

examples:
	dune exec examples/quickstart.exe
	dune exec examples/pipeline_stencil.exe
	dune exec examples/fault_campaign.exe
	dune exec examples/contention_study.exe
	dune exec examples/sparse_topology.exe
	dune exec examples/workflow_import.exe

clean:
	dune clean
