(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6), plus the structural tables (message bounds,
   Proposition 5.1) and bechamel micro-benchmarks of the schedulers
   themselves (Theorem 5.1's complexity in practice).

   Usage (via dune):
     dune exec bench/main.exe                      # everything, paper sizes
     dune exec bench/main.exe -- --figure 1 --graphs 10
     dune exec bench/main.exe -- --table outforest
     dune exec bench/main.exe -- --bechamel

   Besides the pretty-printed tables, every run emits a machine-readable
   summary (campaign wall-clock per figure, bechamel estimates, run
   metadata) to BENCH_schedulers.json; see --json. *)

(* accumulators for the machine-readable report *)
let figure_timings : (int * float * int) list ref = ref []
let bechamel_estimates : (string * float) list ref = ref []
let placement_estimates : (string * float) list ref = ref []
let replay_estimates : (string * float) list ref = ref []

(* (domains, runs, eval_batch blocks, pool-spawn s, wall s, scenarios/s,
   profile sub-object) *)
let replay_domain_rows :
    (int * int * int * float * float * float * Json.t) list ref =
  ref []

(* full ftsched/profile/v1 report per domain-scaling row, for --profile-json *)
let replay_profile_reports : (int * Json.t) list ref = ref []
let inject_estimates : (string * float) list ref = ref []

(* (m, budget, evals, wall seconds) of one adversary search *)
let adversary_row : (int * int * int * float) option ref = ref None

let run_figures figures graphs seed domains =
  List.iter
    (fun n ->
      let config = Config.figure n in
      let config =
        match graphs with
        | Some g -> Config.with_graphs_per_point config g
        | None -> config
      in
      let t0 = Obs_clock.now () in
      let result = Campaign.run ~seed ?domains config in
      let wall = Obs_clock.now () -. t0 in
      figure_timings :=
        !figure_timings @ [ (n, wall, List.length result.Campaign.points) ];
      print_string (Report.render result);
      print_newline ())
    figures

(* -- Table: Proposition 5.1 — CAFT sends at most e(eps+1) messages on
   fork / out-forest graphs -------------------------------------------- *)

let outforest_table seed =
  print_endline "=== Table P5.1: message bound e(eps+1) on out-forests ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "graph"; "e"; "eps"; "m"; "CAFT msgs"; "e(eps+1)"; "bound holds" ]
  in
  let rng = Rng.create seed in
  let cases =
    [
      ("fork-15", Families.fork 15);
      ("fork-40", Families.fork 40);
      ("out-tree-2-4", Families.out_tree ~arity:2 ~depth:4 ());
      ("out-tree-3-3", Families.out_tree ~arity:3 ~depth:3 ());
      ("chain-25", Families.chain 25);
    ]
  in
  List.iter
    (fun (name, dag) ->
      List.iter
        (fun (m, epsilon) ->
          let params = Platform_gen.default ~m () in
          let costs =
            Platform_gen.instance rng ~granularity:1.0 params dag
          in
          let sched = Caft.run ~epsilon costs in
          let msgs = Schedule.message_count sched in
          let bound = Dag.edge_count dag * (epsilon + 1) in
          Text_table.add_row t
            [
              name;
              string_of_int (Dag.edge_count dag);
              string_of_int epsilon;
              string_of_int m;
              string_of_int msgs;
              string_of_int bound;
              (if msgs <= bound then "yes" else "NO");
            ])
        [ (10, 1); (10, 3); (20, 5) ])
    cases;
  Text_table.print t;
  print_newline ()

(* -- Table: message counts vs the e(eps+1)^2 blow-up on random graphs - *)

let messages_table graphs seed =
  print_endline
    "=== Table M: replication messages on random graphs (mean) ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "m"; "eps"; "CAFT"; "FTSA"; "FTBAR"; "e(eps+1)"; "e(eps+1)^2" ]
  in
  List.iter
    (fun (m, epsilon) ->
      let rng = Rng.create seed in
      let acc = Array.make 5 0. in
      let n = Option.value graphs ~default:20 in
      for _ = 1 to n do
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let params = Platform_gen.default ~m () in
        let costs = Platform_gen.instance grng ~granularity:1.0 params dag in
        let seed = Rng.int grng 1_000_000 in
        let e = float_of_int (Dag.edge_count dag) in
        let eps1 = float_of_int (epsilon + 1) in
        acc.(0) <-
          acc.(0)
          +. float_of_int (Schedule.message_count (Caft.run ~seed ~epsilon costs));
        acc.(1) <-
          acc.(1)
          +. float_of_int (Schedule.message_count (Ftsa.run ~seed ~epsilon costs));
        acc.(2) <-
          acc.(2)
          +. float_of_int
               (Schedule.message_count (Ftbar.run ~seed ~epsilon costs));
        acc.(3) <- acc.(3) +. (e *. eps1);
        acc.(4) <- acc.(4) +. (e *. eps1 *. eps1)
      done;
      let mean i = acc.(i) /. float_of_int n in
      Text_table.add_float_row t (Printf.sprintf "%d" m)
        [ float_of_int epsilon; mean 0; mean 1; mean 2; mean 3; mean 4 ])
    [ (10, 1); (10, 3); (20, 5) ];
  Text_table.print t;
  print_newline ()

(* -- Table: batched CAFT (Section 7 further work) ---------------------- *)

let batch_table graphs seed =
  print_endline
    "=== Table B: windowed task selection (Section 7 'further work') ===";
  let windows = [ 1; 2; 5; 10; 20 ] in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      ("eps"
      :: List.concat_map
           (fun w -> [ Printf.sprintf "w=%d lat" w; Printf.sprintf "w=%d msg" w ])
           windows)
  in
  List.iter
    (fun epsilon ->
      let n = Option.value graphs ~default:20 in
      let lat = Array.make (List.length windows) 0. in
      let msg = Array.make (List.length windows) 0. in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let params = Platform_gen.default ~m:10 () in
        let costs = Platform_gen.instance grng ~granularity:0.5 params dag in
        let norm = Campaign.normalization costs in
        let seed = Rng.int grng 1_000_000 in
        List.iteri
          (fun i window ->
            let sched = Caft_batch.run ~seed ~window ~epsilon costs in
            lat.(i) <- lat.(i) +. (Schedule.latency_zero_crash sched /. norm);
            msg.(i) <- msg.(i) +. float_of_int (Schedule.message_count sched))
          windows
      done;
      Text_table.add_row t
        (string_of_int epsilon
        :: List.concat
             (List.mapi
                (fun i _ ->
                  [
                    Text_table.float_cell (lat.(i) /. float_of_int n);
                    Text_table.float_cell (msg.(i) /. float_of_int n);
                  ])
                windows)))
    [ 1; 3 ];
  Text_table.print t;
  print_endline "(w=1 is exactly CAFT; normalized latency, fine grain g=0.5)";
  print_newline ()

(* -- Table: insertion-based execution booking (ablation) --------------- *)

let insertion_table graphs seed =
  print_endline "=== Table I: append vs insertion execution booking ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "algo"; "eps"; "append"; "insertion"; "gain %" ]
  in
  List.iter
    (fun (name, runner) ->
      List.iter
        (fun epsilon ->
          let n = Option.value graphs ~default:20 in
          let app = ref 0. and ins = ref 0. in
          let rng = Rng.create seed in
          for _ = 1 to n do
            let grng = Rng.split rng in
            let dag = Random_dag.generate_default grng in
            let params = Platform_gen.default ~m:10 () in
            let costs = Platform_gen.instance grng ~granularity:1.0 params dag in
            let norm = Campaign.normalization costs in
            let seed = Rng.int grng 1_000_000 in
            app :=
              !app
              +. Schedule.latency_zero_crash (runner ~insertion:false ~seed ~epsilon costs)
                 /. norm;
            ins :=
              !ins
              +. Schedule.latency_zero_crash (runner ~insertion:true ~seed ~epsilon costs)
                 /. norm
          done;
          Text_table.add_row t
            [
              name;
              string_of_int epsilon;
              Text_table.float_cell (!app /. float_of_int n);
              Text_table.float_cell (!ins /. float_of_int n);
              Text_table.float_cell (100. *. (!app -. !ins) /. !app);
            ])
        [ 1; 3 ])
    [
      ("CAFT", fun ~insertion ~seed ~epsilon costs -> Caft.run ~insertion ~seed ~epsilon costs);
      ("FTSA", fun ~insertion ~seed ~epsilon costs -> Ftsa.run ~insertion ~seed ~epsilon costs);
    ];
  Text_table.print t;
  print_newline ()

(* -- Table: sparse interconnects (Section 7 extension) ----------------- *)

let topology_table graphs seed =
  print_endline
    "=== Table T: CAFT on sparse interconnects (Section 7 extension) ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "topology"; "m"; "links"; "diam"; "latency"; "messages"; "resists" ]
  in
  let topologies =
    [
      ("clique", Topology.clique 8);
      ("hypercube", Topology.hypercube 3);
      ("torus-2x4", Topology.torus2d ~rows:2 ~cols:4 ());
      ("mesh-2x4", Topology.mesh2d ~rows:2 ~cols:4 ());
      ("ring", Topology.ring 8);
      ("star", Topology.star 8);
    ]
  in
  List.iter
    (fun (name, topo) ->
      let n = Option.value graphs ~default:15 in
      let lat = ref 0. and msg = ref 0. and resists = ref true in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let platform = Topology.platform topo in
        let fabric = Topology.fabric topo in
        (* execution costs drawn as usual, then rescaled to g = 1 *)
        let m = Platform.proc_count platform in
        let matrix =
          Array.init (Dag.task_count dag) (fun _ ->
              let base = Rng.float_in grng 50. 150. in
              Array.init m (fun _ -> base *. Rng.float_in grng 0.5 1.5))
        in
        let costs =
          Granularity.rescale_to (Costs.of_matrix dag platform matrix) 1.0
        in
        let norm = Campaign.normalization costs in
        let seed = Rng.int grng 1_000_000 in
        let epsilon = 1 in
        let sched = Caft.run ~fabric ~seed ~epsilon costs in
        lat := !lat +. (Schedule.latency_zero_crash sched /. norm);
        msg := !msg +. float_of_int (Schedule.message_count sched);
        (* single-crash tolerance, exhaustive, on the sparse fabric *)
        for p = 0 to m - 1 do
          let out = Replay.crash_from_start ~fabric sched ~crashed:[ p ] in
          if not out.Replay.completed then resists := false
        done
      done;
      Text_table.add_row t
        [
          name;
          string_of_int (Topology.proc_count topo);
          string_of_int (Topology.link_count topo);
          string_of_int (Topology.diameter_hops topo);
          Text_table.float_cell (!lat /. float_of_int n);
          Text_table.float_cell (!msg /. float_of_int n);
          (if !resists then "yes" else "NO");
        ])
    topologies;
  Text_table.print t;
  print_endline
    "(same workloads; end-to-end delays grow with the diameter and routes \
     share physical links)";
  print_newline ()

(* -- Table: isolating the one-to-one mechanism (ablation) -------------- *)

let mechanism_table graphs seed =
  print_endline
    "=== Table O: the one-to-one mapping's contribution (ablation) ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [
        "eps";
        "CAFT lat";
        "CAFT msg";
        "CAFT-full lat";
        "CAFT-full msg";
        "FTSA lat";
        "FTSA msg";
      ]
  in
  List.iter
    (fun epsilon ->
      let n = Option.value graphs ~default:20 in
      let acc = Array.make 6 0. in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let params = Platform_gen.default ~m:10 () in
        let costs = Platform_gen.instance grng ~granularity:0.5 params dag in
        let norm = Campaign.normalization costs in
        let seed = Rng.int grng 1_000_000 in
        let add i sched =
          acc.(i) <- acc.(i) +. (Schedule.latency_zero_crash sched /. norm);
          acc.(i + 1) <- acc.(i + 1) +. float_of_int (Schedule.message_count sched)
        in
        add 0 (Caft.run ~seed ~epsilon costs);
        add 2 (Caft.run ~one_to_one:false ~seed ~epsilon costs);
        add 4 (Ftsa.run ~seed ~epsilon costs)
      done;
      Text_table.add_row t
        (string_of_int epsilon
        :: List.map
             (fun i -> Text_table.float_cell (acc.(i) /. float_of_int n))
             [ 0; 1; 2; 3; 4; 5 ]))
    [ 1; 3 ];
  Text_table.print t;
  print_endline
    "(CAFT-full = CAFT with one-to-one disabled: every input fully \
     replicated; fine grain g=0.5)";
  print_newline ()

(* -- Table: latency vs effective crash count (Section 6 discussion) ---- *)

let crash_sweep_table graphs seed =
  print_endline
    "=== Table X: real latency vs number of crashes (eps=3, m=10, g=1) ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "crashes"; "CAFT"; "FTSA"; "FTBAR" ]
  in
  let n = Option.value graphs ~default:20 in
  let epsilon = 3 in
  let results = Array.make_matrix 4 3 0. in
  let rng = Rng.create seed in
  for _ = 1 to n do
    let grng = Rng.split rng in
    let dag = Random_dag.generate_default grng in
    let params = Platform_gen.default ~m:10 () in
    let costs = Platform_gen.instance grng ~granularity:1.0 params dag in
    let norm = Campaign.normalization costs in
    let seed = Rng.int grng 1_000_000 in
    let schedules =
      [|
        Caft.run ~seed ~epsilon costs;
        Ftsa.run ~seed ~epsilon costs;
        Ftbar.run ~seed ~epsilon costs;
      |]
    in
    for crashes = 0 to 3 do
      let crashed = Scenario.uniform_procs grng ~m:10 ~count:crashes in
      Array.iteri
        (fun i sched ->
          let out = Replay.crash_from_start sched ~crashed in
          results.(crashes).(i) <-
            results.(crashes).(i) +. (out.Replay.latency /. norm))
        schedules
    done
  done;
  for crashes = 0 to 3 do
    Text_table.add_row t
      (string_of_int crashes
      :: List.map
           (fun i -> Text_table.float_cell (results.(crashes).(i) /. float_of_int n))
           [ 0; 1; 2 ])
  done;
  Text_table.print t;
  print_endline
    "(the paper: the latency increase with the crash count is 'already \
     absorbed by the replication')";
  print_newline ()

(* -- Table: link-failure masking (extension) ---------------------------- *)

let links_table graphs seed =
  print_endline
    "=== Table L: single link failures masked by replication (extension) ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "eps"; "CAFT %"; "FTSA %"; "FTBAR %"; "HEFT %" ]
  in
  let m = 8 in
  List.iter
    (fun epsilon ->
      let n = Option.value graphs ~default:10 in
      let masked = Array.make 4 0 and total = ref 0 in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let params = Platform_gen.default ~m () in
        let costs = Platform_gen.instance grng ~granularity:1.0 params dag in
        let seed = Rng.int grng 1_000_000 in
        let schedules =
          [|
            Caft.run ~seed ~epsilon costs;
            Ftsa.run ~seed ~epsilon costs;
            Ftbar.run ~seed ~epsilon costs;
            Heft.run ~seed costs;
          |]
        in
        for src = 0 to m - 1 do
          for dst = 0 to m - 1 do
            if src <> dst then begin
              incr total;
              Array.iteri
                (fun i sched ->
                  if
                    (Replay.crash_links sched ~links:[ (src, dst) ])
                      .Replay.completed
                  then masked.(i) <- masked.(i) + 1)
                schedules
            end
          done
        done
      done;
      Text_table.add_row t
        (string_of_int epsilon
        :: List.map
             (fun i ->
               Text_table.float_cell
                 (100. *. float_of_int masked.(i) /. float_of_int !total))
             [ 0; 1; 2; 3 ]))
    [ 1; 3 ];
  Text_table.print t;
  print_endline
    "(fraction of single directed-link failures after which the application \
     still completes.\n Replication masks them all — for CAFT this follows \
     from support disjointness,\n since sibling one-to-one chains use \
     processor-disjoint routes — while the\n unreplicated HEFT schedule dies \
     on every link it uses)";
  print_newline ()

(* -- Table: the contention spectrum (macro .. multiport-k .. one-port) - *)

let models_table graphs seed =
  print_endline
    "=== Table C: the contention spectrum (endpoint port capacity) ===";
  let models =
    [
      ("macro", Netstate.Macro_dataflow);
      ("multiport-4", Netstate.Multiport 4);
      ("multiport-2", Netstate.Multiport 2);
      ("one-port", Netstate.One_port);
    ]
  in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      ("algo" :: "eps" :: List.map fst models)
  in
  List.iter
    (fun (name, runner) ->
      List.iter
        (fun epsilon ->
          let n = Option.value graphs ~default:15 in
          let acc = Array.make (List.length models) 0. in
          let rng = Rng.create seed in
          for _ = 1 to n do
            let grng = Rng.split rng in
            let dag = Random_dag.generate_default grng in
            let params = Platform_gen.default ~m:10 () in
            let costs = Platform_gen.instance grng ~granularity:0.5 params dag in
            let norm = Campaign.normalization costs in
            let seed = Rng.int grng 1_000_000 in
            List.iteri
              (fun i (_, model) ->
                acc.(i) <-
                  acc.(i)
                  +. Schedule.latency_zero_crash (runner ~model ~seed ~epsilon costs)
                     /. norm)
              models
          done;
          Text_table.add_row t
            (name :: string_of_int epsilon
            :: List.mapi
                 (fun i _ -> Text_table.float_cell (acc.(i) /. float_of_int n))
                 models))
        [ 1; 3 ])
    [
      ("CAFT", fun ~model ~seed ~epsilon costs -> Caft.run ~model ~seed ~epsilon costs);
      ("FTSA", fun ~model ~seed ~epsilon costs -> Ftsa.run ~model ~seed ~epsilon costs);
    ];
  Text_table.print t;
  print_endline
    "(normalized latency at fine grain g=0.5: contention grows as endpoint \
     capacity shrinks,\n and the replication-heavy FTSA suffers most at one \
     port - the paper's core motivation)";
  print_newline ()

(* -- Table: passive (primary/backup) vs active replication -------------- *)

let passive_table graphs seed =
  print_endline
    "=== Table P: passive (primary/backup) vs active replication (eps=1) ===";
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "metric"; "PB (passive)"; "CAFT macro"; "CAFT one-port" ]
  in
  let n = Option.value graphs ~default:20 in
  let acc = Array.make 9 0. in
  let rng = Rng.create seed in
  let m = 10 in
  for _ = 1 to n do
    let grng = Rng.split rng in
    let dag = Random_dag.generate_default grng in
    let params = Platform_gen.default ~m () in
    let costs = Platform_gen.instance grng ~granularity:1.0 params dag in
    let norm = Campaign.normalization costs in
    let seed = Rng.int grng 1_000_000 in
    let pb = Primary_backup.run ~seed costs in
    let caft_macro =
      Caft.run ~model:Netstate.Macro_dataflow ~seed ~epsilon:1 costs
    in
    let caft_oneport = Caft.run ~seed ~epsilon:1 costs in
    (* fault-free latencies *)
    acc.(0) <- acc.(0) +. (Primary_backup.fault_free_latency pb /. norm);
    acc.(1) <- acc.(1) +. (Schedule.latency_zero_crash caft_macro /. norm);
    acc.(2) <- acc.(2) +. (Schedule.latency_zero_crash caft_oneport /. norm);
    (* mean latency under each single crash *)
    let cm_pb = ref 0. and cm_m = ref 0. and cm_o = ref 0. in
    for p = 0 to m - 1 do
      (match Primary_backup.latency_with_crash pb ~crashed:p with
      | Some l -> cm_pb := !cm_pb +. (l /. norm)
      | None -> failwith "PB unrecoverable");
      let lm =
        (Replay.crash_from_start caft_macro ~crashed:[ p ]).Replay.latency
      in
      let lo =
        (Replay.crash_from_start caft_oneport ~crashed:[ p ]).Replay.latency
      in
      cm_m := !cm_m +. (lm /. norm);
      cm_o := !cm_o +. (lo /. norm)
    done;
    acc.(3) <- acc.(3) +. (!cm_pb /. float_of_int m);
    acc.(4) <- acc.(4) +. (!cm_m /. float_of_int m);
    acc.(5) <- acc.(5) +. (!cm_o /. float_of_int m);
    (* compute commitment: PB reserves, active executes *)
    acc.(6) <- acc.(6) +. (Primary_backup.reserved_time pb /. norm);
    acc.(7) <-
      acc.(7) +. ((Metrics.analyze caft_macro).Metrics.total_exec /. norm);
    acc.(8) <-
      acc.(8) +. ((Metrics.analyze caft_oneport).Metrics.total_exec /. norm)
  done;
  let mean i = Text_table.float_cell (acc.(i) /. float_of_int n) in
  Text_table.add_row t [ "fault-free latency"; mean 0; mean 1; mean 2 ];
  Text_table.add_row t [ "mean 1-crash latency"; mean 3; mean 4; mean 5 ];
  Text_table.add_row t [ "reserved/executed time"; mean 6; mean 7; mean 8 ];
  Text_table.print t;
  print_endline
    "(passive replication - Section 3(i) of the paper - costs nothing when \
     nothing fails but\n pays a recovery delay and assumes a single, \
     detected failure; active replication absorbs\n crashes silently.  PB \
     reservations are released on success; active executes everything.)";
  print_newline ()

(* -- bechamel micro-benchmarks: scheduler running time ---------------- *)

(* Run a bechamel test tree and return [(name, ns_per_run)] rows. *)
let run_bechamel ~limit ~quota tests =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit ~quota () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let merged = Analyze.merge ols Toolkit.Instance.[ monotonic_clock ] [ results ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun _clock tbl ->
      Hashtbl.iter
        (fun name v ->
          let ns =
            match Bechamel.Analyze.OLS.estimates v with
            | Some [ e ] -> e
            | _ -> nan
          in
          rows := (name, ns) :: !rows)
        tbl)
    merged;
  List.sort compare !rows

let bechamel_benches () =
  let open Bechamel in
  let instance_for m =
    let rng = Rng.create 99 in
    let dag = Random_dag.generate_default rng in
    let params = Platform_gen.default ~m () in
    Platform_gen.instance rng ~granularity:1.0 params dag
  in
  let costs10 = instance_for 10 in
  let costs20 = instance_for 20 in
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"schedulers"
      [
        test "caft/m=10/eps=1" (fun () -> Caft.run ~epsilon:1 costs10);
        test "caft/m=10/eps=3" (fun () -> Caft.run ~epsilon:3 costs10);
        test "caft/m=20/eps=5" (fun () -> Caft.run ~epsilon:5 costs20);
        test "ftsa/m=10/eps=1" (fun () -> Ftsa.run ~epsilon:1 costs10);
        test "ftsa/m=10/eps=3" (fun () -> Ftsa.run ~epsilon:3 costs10);
        test "ftsa/m=20/eps=5" (fun () -> Ftsa.run ~epsilon:5 costs20);
        test "ftbar/m=10/eps=1" (fun () -> Ftbar.run ~epsilon:1 costs10);
        test "ftbar/m=10/eps=3" (fun () -> Ftbar.run ~epsilon:3 costs10);
        test "ftbar/m=20/eps=5" (fun () -> Ftbar.run ~epsilon:5 costs20);
        test "heft/m=10" (fun () -> Heft.run costs10);
        test "replay/m=10/eps=3"
          (let sched = Caft.run ~epsilon:3 costs10 in
           fun () -> Replay.crash_from_start sched ~crashed:[ 0; 1; 2 ]);
      ]
  in
  print_endline "=== Bechamel: scheduler running time (Theorem 5.1) ===";
  let rows = run_bechamel ~limit:1000 ~quota:(Time.second 0.5) tests in
  let t =
    Text_table.create ~aligns:[ Text_table.Left ] [ "bench"; "time/run" ]
  in
  List.iter
    (fun (name, ns) ->
      bechamel_estimates := !bechamel_estimates @ [ (name, ns) ];
      Text_table.add_row t [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
    rows;
  Text_table.print t;
  print_newline ()

(* -- placement microbench: trial booking, snapshot vs undo journal ----- *)

(* One trial booking of a 3-predecessor replica on an m-processor one-port
   clique with realistic port/link occupancy.  The [snapshot] variant is
   the pre-optimization path (full O(m^2) state copy per candidate); the
   [journal] variant is what every scheduler now does via
   [Netstate.with_trial].  Both leave the state untouched, so the
   measured operation is exactly the per-candidate cost of
   [Caft_engine.best_placement] / the FTSA and FTBAR evaluation passes. *)
let placement_case m =
  let platform = Platform.uniform ~m ~delay:1. in
  let net = Netstate.create platform in
  let rng = Rng.create (1000 + m) in
  let sources =
    Array.init m (fun p ->
        let b =
          Netstate.book_exec_only net ~proc:p ~exec:(Rng.float_in rng 5. 15.)
        in
        {
          Netstate.s_task = p;
          s_replica = 0;
          s_proc = p;
          s_finish = b.Netstate.b_finish;
          s_volume = Rng.float_in rng 50. 150.;
        })
  in
  (* commit some messages so ports and links carry real reservations *)
  for i = 0 to (m / 2) - 1 do
    let dst = (i + (m / 2)) mod m in
    ignore
      (Netstate.book_replica net ~proc:dst ~exec:10.
         ~inputs:[ (i, [ sources.(i) ]) ])
  done;
  let inputs =
    List.init 3 (fun i ->
        let s1 = sources.(i * 2 mod m) in
        let s2 = sources.(((i * 2) + 1) mod m) in
        ( s1.Netstate.s_task,
          [ s1; { s2 with Netstate.s_task = s1.Netstate.s_task; s_replica = 1 } ]
        ))
  in
  let proc = m - 1 in
  let snapshot_trial () =
    let snap = Netstate.snapshot net in
    let b = Netstate.book_replica net ~proc ~exec:25. ~inputs in
    Netstate.restore net snap;
    b
  in
  let journal_trial () =
    Netstate.with_trial net (fun () ->
        Netstate.book_replica net ~proc ~exec:25. ~inputs)
  in
  (snapshot_trial, journal_trial)

let placement_ms = [ 10; 25; 50; 100 ]

let placement_bench ?(quick = false) () =
  let open Bechamel in
  print_endline
    "=== Placement microbench: trial booking, snapshot vs undo journal ===";
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"placement"
      (List.concat_map
         (fun m ->
           let snapshot_trial, journal_trial = placement_case m in
           [
             test (Printf.sprintf "snapshot/m=%03d" m) snapshot_trial;
             test (Printf.sprintf "journal/m=%03d" m) journal_trial;
           ])
         placement_ms)
  in
  let limit, quota =
    if quick then (300, Time.second 0.05) else (2000, Time.second 0.5)
  in
  let rows = run_bechamel ~limit ~quota tests in
  placement_estimates := rows;
  let find kind m =
    match
      List.assoc_opt (Printf.sprintf "placement/%s/m=%03d" kind m) rows
    with
    | Some ns -> ns
    | None -> nan
  in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "m"; "snapshot/trial"; "journal/trial"; "speedup" ]
  in
  List.iter
    (fun m ->
      let snap_ns = find "snapshot" m and jour_ns = find "journal" m in
      Text_table.add_row t
        [
          string_of_int m;
          Printf.sprintf "%.2f us" (snap_ns /. 1e3);
          Printf.sprintf "%.2f us" (jour_ns /. 1e3);
          Printf.sprintf "%.1fx" (snap_ns /. jour_ns);
        ])
    placement_ms;
  Text_table.print t;
  print_endline
    "(cost of evaluating one candidate placement without committing it; \
     the snapshot path\n copies the whole O(m^2) network state, the \
     journal path undoes only the cells written)";
  print_newline ()

(* -- replay microbench: rebuild-per-scenario vs compiled eval ----------- *)

(* One crash scenario on a paper-sized schedule.  The [rebuild] variant is
   the pre-optimization path (the whole event graph — node numbering,
   dependency edges, port/link chains, route evaluation — is rebuilt for
   the scenario); the [compiled] variant reuses a [Replay.compile]d
   simulator and runs only the Kahn pass over its scratch arena, which is
   what Monte-Carlo and fault-check campaigns now do per scenario. *)
let replay_case m =
  let rng = Rng.create (2000 + m) in
  let dag = Random_dag.generate_default rng in
  let params = Platform_gen.default ~m () in
  let costs = Platform_gen.instance rng ~granularity:1.0 params dag in
  let sched = Caft.run ~epsilon:2 costs in
  let crash_time =
    Array.init m (fun p -> if p < 2 then neg_infinity else infinity)
  in
  let compiled = Replay.compile sched in
  (* one engine, one block: the batched row reuses the same compiled
     simulator across the whole bechamel run, so it prices only the
     struct-of-arrays inner loop (no per-call compile, no per-scenario
     dispatch) *)
  let block =
    Array.make Monte_carlo.batch_block (Scenario.of_crash_times crash_time)
  in
  let rebuild () = Replay.reference sched ~crash_time in
  let compiled_eval () = Replay.eval_latency compiled ~crash_time in
  let batched_eval () = Replay.eval_batch compiled block in
  (sched, rebuild, compiled_eval, batched_eval)

let replay_ms = [ 10; 25; 50 ]

let replay_bench ?(quick = false) () =
  let open Bechamel in
  print_endline
    "=== Replay microbench: rebuild-per-scenario vs compiled eval ===";
  let test name f = Test.make ~name (Staged.stage f) in
  let scheds = List.map (fun m -> (m, replay_case m)) replay_ms in
  let tests =
    Test.make_grouped ~name:"replay"
      (List.concat_map
         (fun (m, (_, rebuild, compiled_eval, batched_eval)) ->
           [
             test (Printf.sprintf "rebuild/m=%03d" m) rebuild;
             test (Printf.sprintf "compiled/m=%03d" m) compiled_eval;
             (* one estimate = one whole [batch_block]-scenario block *)
             test (Printf.sprintf "batched/m=%03d" m) batched_eval;
           ])
         scheds)
  in
  let limit, quota =
    if quick then (300, Time.second 0.05) else (2000, Time.second 0.5)
  in
  let rows = run_bechamel ~limit ~quota tests in
  replay_estimates := rows;
  let find kind m =
    match List.assoc_opt (Printf.sprintf "replay/%s/m=%03d" kind m) rows with
    | Some ns -> ns
    | None -> nan
  in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [
        "m";
        "rebuild/scenario";
        "compiled/scenario";
        "batched/scenario";
        "vs rebuild";
        "vs compiled";
      ]
  in
  List.iter
    (fun m ->
      let rebuild_ns = find "rebuild" m and compiled_ns = find "compiled" m in
      let batched_ns =
        find "batched" m /. float_of_int Monte_carlo.batch_block
      in
      Text_table.add_row t
        [
          string_of_int m;
          Printf.sprintf "%.2f us" (rebuild_ns /. 1e3);
          Printf.sprintf "%.2f us" (compiled_ns /. 1e3);
          Printf.sprintf "%.2f us" (batched_ns /. 1e3);
          Printf.sprintf "%.1fx" (rebuild_ns /. batched_ns);
          Printf.sprintf "%.1fx" (compiled_ns /. batched_ns);
        ])
    replay_ms;
  Text_table.print t;
  print_endline
    (Printf.sprintf
       "(cost of replaying one crash scenario; the rebuild path \
        reconstructs the event graph\n\
       \ per scenario, the compiled path runs the Kahn pass over a \
        preallocated arena, and\n\
       \ the batched path amortizes one [eval_batch] call over a \
        %d-scenario block)"
       Monte_carlo.batch_block);
  print_newline ();
  (* domain scaling of a whole Monte-Carlo campaign on the largest case *)
  let sched, _, _, _ = List.assoc (List.nth replay_ms 2) scheds in
  (* enough runs that the one compile per domain amortizes *)
  let runs = if quick then 2000 else 10_000 in
  let blocks = (runs + Monte_carlo.batch_block - 1) / Monte_carlo.batch_block in
  print_endline
    (Printf.sprintf
       "=== Monte-Carlo scaling: %d from-start scenarios in %d blocks, m=%d \
        (%d core%s available) ==="
       runs blocks (List.nth replay_ms 2)
       (Domain.recommended_domain_count ())
       (if Domain.recommended_domain_count () = 1 then "" else "s"));
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "domains"; "spawn"; "wall"; "scenarios/s"; "scaling" ]
  in
  let wall1 = ref nan in
  let attr =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [
        "domains"; "busy s"; "steal-idle s"; "spawn/other s"; "minor words";
        "gc min/maj";
      ]
  in
  (* Each row runs under the phase profiler: per-domain eval wall and GC
     plus worker busy/steal-idle go into the bench JSON, so the scaling
     verdict ships with the evidence for it. *)
  Obs.Prof.set_enabled true;
  List.iter
    (fun domains ->
      Obs.Prof.reset ();
      (* the pool is the campaign-scoped resource: its domains are spawned
         exactly once here (profiled, so the spawn cost is attributed in
         the JSON) and every Monte-Carlo run of the row reuses them *)
      let spawn0 = Obs_clock.now () in
      let pool =
        Obs.Prof.phase "parallel.pool_spawn" (fun () ->
            Parallel.pool ~domains ())
      in
      let spawn_s = Obs_clock.now () -. spawn0 in
      let t0 = Obs_clock.now () in
      let report =
        Monte_carlo.run ~seed:3 ~runs ~pool ~crashes:2
          ~mode:Monte_carlo.From_start sched
      in
      ignore (report : Monte_carlo.report);
      let wall = Obs_clock.now () -. t0 in
      Parallel.shutdown pool;
      let prof = Obs.Prof.report () in
      if domains = 1 then wall1 := wall;
      let per_sec = float_of_int runs /. wall in
      let eval_rows =
        List.filter_map
          (fun p ->
            if p.Obs.Prof.ph_name <> "montecarlo.eval" then None
            else
              Some
                (Json.Obj
                   [
                     ("domain", Json.Int p.Obs.Prof.ph_domain);
                     ("calls", Json.Int p.Obs.Prof.ph_count);
                     ("busy_s", Json.Float p.Obs.Prof.ph_wall_s);
                     ("minor_words", Json.Float p.Obs.Prof.ph_minor_words);
                     ("major_words", Json.Float p.Obs.Prof.ph_major_words);
                     ( "minor_collections",
                       Json.Int p.Obs.Prof.ph_minor_collections );
                     ( "major_collections",
                       Json.Int p.Obs.Prof.ph_major_collections );
                   ]))
          prof.Obs.Prof.r_phases
      in
      let worker_rows =
        List.map
          (fun w ->
            Json.Obj
              [
                ("worker", Json.Int w.Obs.Prof.wk_worker);
                ("items", Json.Int w.Obs.Prof.wk_items);
                ("busy_s", Json.Float w.Obs.Prof.wk_busy_s);
                ("steal_idle_s", Json.Float w.Obs.Prof.wk_idle_s);
                ("steal_attempts", Json.Int w.Obs.Prof.wk_steal_attempts);
              ])
          prof.Obs.Prof.r_workers
      in
      let profile =
        Json.Obj
          [ ("eval", Json.List eval_rows); ("workers", Json.List worker_rows) ]
      in
      let busy = List.fold_left (fun a w -> a +. w.Obs.Prof.wk_busy_s) 0. prof.Obs.Prof.r_workers in
      let idle = List.fold_left (fun a w -> a +. w.Obs.Prof.wk_idle_s) 0. prof.Obs.Prof.r_workers in
      let minor, mincol, majcol =
        List.fold_left
          (fun (w', a, b) p ->
            if p.Obs.Prof.ph_name = "montecarlo.eval" then
              ( w' +. p.Obs.Prof.ph_minor_words,
                a + p.Obs.Prof.ph_minor_collections,
                b + p.Obs.Prof.ph_major_collections )
            else (w', a, b))
          (0., 0, 0) prof.Obs.Prof.r_phases
      in
      (* spawn/teardown and scheduling slack: wall not spent evaluating or
         spinning in the steal loop, summed over all domains *)
      let other = (float_of_int domains *. wall) -. busy -. idle in
      Text_table.add_row attr
        [
          string_of_int domains;
          Printf.sprintf "%.3f" busy;
          Printf.sprintf "%.3f" idle;
          Printf.sprintf "%.3f" (Float.max 0. other);
          Printf.sprintf "%.0f" minor;
          Printf.sprintf "%d/%d" mincol majcol;
        ];
      replay_domain_rows :=
        !replay_domain_rows
        @ [ (domains, runs, blocks, spawn_s, wall, per_sec, profile) ];
      replay_profile_reports :=
        !replay_profile_reports @ [ (domains, Obs.Prof.to_json prof) ];
      Text_table.add_row t
        [
          string_of_int domains;
          Printf.sprintf "%.1f ms" (spawn_s *. 1e3);
          Printf.sprintf "%.3f s" wall;
          Printf.sprintf "%.0f" per_sec;
          Printf.sprintf "%.2fx" (!wall1 /. wall);
        ])
    [ 1; 2; 4 ];
  Obs.Prof.set_enabled false;
  Text_table.print t;
  print_endline
    "(same pre-drawn scenario set and byte-identical report for every \
     domain count;\n each row spawns a persistent pool once (the 'spawn' \
     column) and the campaign\n steals eval_batch blocks from it; scaling \
     above 1.0x needs more cores than\n domains — on a single-core host the \
     extra domains are pure spawn/GC overhead)";
  print_newline ();
  print_endline "=== where the wall time went (profiler attribution) ===";
  Text_table.print attr;
  print_endline
    "(busy = summed per-worker eval time, steal-idle = time in the steal \
     loop without\n an item, spawn/other = domains x wall minus both: domain \
     startup, GC pauses and\n core oversubscription)";
  print_newline ()

(* -- fault-plan microbench: degenerate crash path vs window engine ------ *)

(* [Replay.eval_plan] routes crash-only plans through the same code path
   as [eval]; any other event switches to the generalized down-window
   engine.  This bench prices that switch (same crashes, plus one no-op
   [Recover] to force the window engine), and times one budget-bounded
   adversary search on top. *)
let inject_case m =
  let rng = Rng.create (3000 + m) in
  let dag = Random_dag.generate_default rng in
  let params = Platform_gen.default ~m () in
  let costs = Platform_gen.instance rng ~granularity:1.0 params dag in
  let sched = Caft.run ~epsilon:2 costs in
  let compiled = Replay.compile sched in
  let crash_plan =
    [
      Replay.Crash { proc = 0; at = neg_infinity };
      Replay.Crash { proc = 1; at = neg_infinity };
    ]
  in
  let window_plan = Replay.Recover { proc = 2; at = 0. } :: crash_plan in
  ( sched,
    (fun () -> Replay.eval_plan_degraded compiled crash_plan),
    fun () -> Replay.eval_plan_degraded compiled window_plan )

let inject_ms = [ 10; 25; 50 ]

let inject_bench ?(quick = false) () =
  let open Bechamel in
  print_endline
    "=== Fault-plan microbench: degenerate crash path vs window engine ===";
  let test name f = Test.make ~name (Staged.stage f) in
  let scheds = List.map (fun m -> (m, inject_case m)) inject_ms in
  let tests =
    Test.make_grouped ~name:"inject"
      (List.concat_map
         (fun (m, (_, degenerate, windows)) ->
           [
             test (Printf.sprintf "degenerate/m=%03d" m) degenerate;
             test (Printf.sprintf "windows/m=%03d" m) windows;
           ])
         scheds)
  in
  let limit, quota =
    if quick then (300, Time.second 0.05) else (2000, Time.second 0.5)
  in
  let rows = run_bechamel ~limit ~quota tests in
  inject_estimates := rows;
  let find kind m =
    match List.assoc_opt (Printf.sprintf "inject/%s/m=%03d" kind m) rows with
    | Some ns -> ns
    | None -> nan
  in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "m"; "degenerate/plan"; "windows/plan"; "overhead" ]
  in
  List.iter
    (fun m ->
      let deg_ns = find "degenerate" m and win_ns = find "windows" m in
      Text_table.add_row t
        [
          string_of_int m;
          Printf.sprintf "%.2f us" (deg_ns /. 1e3);
          Printf.sprintf "%.2f us" (win_ns /. 1e3);
          Printf.sprintf "%.2fx" (win_ns /. deg_ns);
        ])
    inject_ms;
  Text_table.print t;
  print_endline
    "(same two from-start crashes per plan; the windows row adds a no-op \
     Recover event,\n forcing the generalized down-window engine instead of \
     the crash-time fast path)";
  print_newline ();
  (* one adversary search on the smallest case *)
  let sched, _, _ = List.assoc (List.hd inject_ms) scheds in
  let budget = if quick then 500 else 20_000 in
  let t0 = Obs_clock.now () in
  let report = Inject.adversary ~budget sched in
  let wall = Obs_clock.now () -. t0 in
  adversary_row := Some (List.hd inject_ms, budget, report.Inject.iv_evals, wall);
  print_endline
    (Printf.sprintf
       "adversary m=%d budget=%d: %d evals in %.3f s (%s worst slowdown)"
       (List.hd inject_ms) budget report.Inject.iv_evals wall
       (match report.Inject.iv_worst with
       | Some w -> Printf.sprintf "%.2fx" w.Inject.w_slowdown
       | None -> "no"));
  print_newline ()

(* -- scheduler scaling: CAFT tasks/sec on large workflow families ------- *)

let sched_scale_rows : Json.t list ref = ref []
let sched_efficiency_rows : Json.t list ref = ref []

(* Deterministic instances for the scaling grid.  The family parameters
   are the same formulas the CLI's --family staged/pipelines use, so a
   bench row can be reproduced interactively. *)
let sched_dag family n =
  match family with
  | "staged" ->
      let stages = 8 in
      let width = max 1 (((n - 1) / stages) - 1) in
      Families.staged_fanout ~stages ~width ()
  | "pipelines" ->
      let depth = 16 in
      let lanes = max 1 ((n - 2) / depth) in
      Families.parallel_chains ~lanes ~depth ()
  | other -> failwith ("sched_dag: unknown family " ^ other)

let sched_families = [ "staged"; "pipelines" ]

let sched_bench ?(quick = false) () =
  print_endline
    "=== Scheduler scaling: CAFT (eps=1) tasks/sec on workflow families ===";
  let ns = if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  let ms = if quick then [ 25 ] else [ 25; 100 ] in
  let epsilon = 1 in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "family"; "n"; "m"; "tasks"; "wall"; "tasks/s"; "minor Mw"; "peak Mw" ]
  in
  let tps = Hashtbl.create 16 in
  Obs.Prof.set_enabled true;
  List.iter
    (fun family ->
      List.iter
        (fun m ->
          List.iter
            (fun n ->
              let rng = Rng.create (4000 + m + (n / 1000)) in
              let dag = sched_dag family n in
              let params = Platform_gen.default ~m () in
              let costs =
                Platform_gen.instance rng ~granularity:1.0 params dag
              in
              let tasks = Dag.task_count dag in
              (* best-of-reps on the small sizes: both cells the
                 scaling-efficiency gate divides are sub-second, and a
                 single noisy run would swing the ratio past the CI
                 threshold; best-of-3 is stable against interference *)
              let reps = if n <= 1_000 then 7 else if n <= 10_000 then 3 else 1 in
              let best_wall = ref infinity in
              let minor = ref 0. and peak = ref 0 in
              let prof = ref None in
              for _ = 1 to reps do
                Gc.full_major ();
                Obs.Prof.reset ();
                let s0 = Gc.quick_stat () in
                let t0 = Obs_clock.now () in
                let sched = Caft.run ~seed:7 ~epsilon costs in
                let wall = Obs_clock.now () -. t0 in
                let s1 = Gc.quick_stat () in
                ignore (sched : Schedule.t);
                if wall < !best_wall then begin
                  best_wall := wall;
                  minor := s1.Gc.minor_words -. s0.Gc.minor_words;
                  peak := s1.Gc.top_heap_words;
                  prof := Some (Obs.Prof.report ())
                end
              done;
              let wall = !best_wall in
              let per_sec = float_of_int tasks /. wall in
              Hashtbl.replace tps (family, m, n) per_sec;
              let phases =
                match !prof with
                | None -> []
                | Some p ->
                    List.filter_map
                      (fun ph ->
                        let name = ph.Obs.Prof.ph_name in
                        if
                          String.length name >= 5
                          && String.sub name 0 5 = "caft."
                        then
                          Some
                            (Json.Obj
                               [
                                 ("phase", Json.String name);
                                 ("calls", Json.Int ph.Obs.Prof.ph_count);
                                 ("wall_s", Json.Float ph.Obs.Prof.ph_wall_s);
                                 ("self_s", Json.Float ph.Obs.Prof.ph_self_s);
                                 ( "minor_words",
                                   Json.Float ph.Obs.Prof.ph_minor_words );
                               ])
                        else None)
                      p.Obs.Prof.r_phases
              in
              sched_scale_rows :=
                !sched_scale_rows
                @ [
                    Json.Obj
                      [
                        ("family", Json.String family);
                        ("n", Json.Int n);
                        ("tasks", Json.Int tasks);
                        ("edges", Json.Int (Dag.edge_count dag));
                        ("m", Json.Int m);
                        ("epsilon", Json.Int epsilon);
                        ("wall_seconds", Json.Float wall);
                        ("tasks_per_sec", Json.Float per_sec);
                        ("minor_words", Json.Float !minor);
                        ("peak_heap_words", Json.Int !peak);
                        ("phases", Json.List phases);
                      ];
                  ];
              Text_table.add_row t
                [
                  family;
                  string_of_int n;
                  string_of_int m;
                  string_of_int tasks;
                  Printf.sprintf "%.3f s" wall;
                  Printf.sprintf "%.0f" per_sec;
                  Printf.sprintf "%.1f" (!minor /. 1e6);
                  Printf.sprintf "%.1f" (float_of_int !peak /. 1e6);
                ])
            ns)
        ms)
    sched_families;
  Obs.Prof.set_enabled false;
  Text_table.print t;
  (* Same-run scaling efficiency tps(10^4)/tps(10^3): a machine-class
     robust ratio (both runs on the same host seconds apart), so it can
     gate in CI where absolute tasks/sec cannot.  A constant-per-task
     scheduler holds it near 1.0; reintroducing an O(n)-ish term in the
     per-task cost drops it hard. *)
  List.iter
    (fun family ->
      List.iter
        (fun m ->
          match
            ( Hashtbl.find_opt tps (family, m, 1_000),
              Hashtbl.find_opt tps (family, m, 10_000) )
          with
          | Some t3, Some t4 when t3 > 0. ->
              let eff = t4 /. t3 in
              sched_efficiency_rows :=
                !sched_efficiency_rows
                @ [
                    Json.Obj
                      [
                        ("family", Json.String family);
                        ("m", Json.Int m);
                        ("efficiency_1e4_over_1e3", Json.Float eff);
                      ];
                  ];
              print_endline
                (Printf.sprintf
                   "scaling efficiency %s m=%d: tps(1e4)/tps(1e3) = %.2f"
                   family m eff)
          | _ -> ())
        ms)
    sched_families;
  print_endline
    "(one CAFT run per cell; peak = process top_heap_words after the run, \
     minor = words\n allocated during it; the efficiency ratio is the \
     same-machine CI gate)";
  print_newline ()

(* -- machine-readable summary ------------------------------------------ *)

(* Previous contents of the bench JSON, for the rolling [history] field:
   each regeneration prepends the old document (minus its own history) so
   the last few runs travel with the file and benchdiff has in-file
   context.  Capped to keep the file reviewable. *)
let history_cap = 10

let read_prev_doc path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.parse s with
      | Ok (Json.Obj kvs as doc)
        when Option.bind (Json.member "schema" doc) Json.to_str
             = Some "ftsched/bench/v1" ->
          let entry = Json.Obj (List.filter (fun (k, _) -> k <> "history") kvs) in
          let prev_hist =
            Json.member "history" doc |> Option.fold ~none:[] ~some:Json.to_list
          in
          Some (entry, prev_hist)
      | _ -> None)

let take n l = List.filteri (fun i _ -> i < n) l

let write_bench_json path ~seed ~graphs ~domains =
  let opt_int = function None -> Json.Null | Some n -> Json.Int n in
  let float_or_null x = if Float.is_nan x then Json.Null else Json.Float x in
  let prev = read_prev_doc path in
  let history =
    match prev with
    | None -> []
    | Some (entry, prev) -> take history_cap (entry :: prev)
  in
  (* A partial run (e.g. --sched only) must not wipe the other sections
     of the committed document: a section whose accumulator is empty
     inherits the previous document's value. *)
  let keep ~empty key fresh =
    if not empty then fresh
    else
      match prev with
      | Some (entry, _) -> Option.value (Json.member key entry) ~default:fresh
      | None -> fresh
  in
  let json =
    Json.Obj
      [
        ("schema", Json.String "ftsched/bench/v1");
        ( "meta",
          Json.Obj
            [
              ("seed", Json.Int seed);
              ("graphs_per_point", opt_int graphs);
              ("domains", opt_int domains);
              ( "recommended_domains",
                Json.Int (Domain.recommended_domain_count ()) );
              ("generated_at", Json.Float (Obs_clock.now ()));
            ] );
        ( "figures",
          keep ~empty:(!figure_timings = []) "figures" @@ Json.List
            (List.map
               (fun (n, wall, points) ->
                 Json.Obj
                   [
                     ("figure", Json.Int n);
                     ("points", Json.Int points);
                     ("wall_seconds", Json.Float wall);
                   ])
               !figure_timings) );
        ( "bechamel",
          keep ~empty:(!bechamel_estimates = []) "bechamel" @@ Json.List
            (List.map
               (fun (name, ns) ->
                 Json.Obj
                   [ ("name", Json.String name); ("ns_per_run", float_or_null ns) ])
               !bechamel_estimates) );
        ( "placement",
          keep ~empty:(!placement_estimates = []) "placement" @@ Json.List
            (List.filter_map
               (fun m ->
                 let find kind =
                   List.assoc_opt
                     (Printf.sprintf "placement/%s/m=%03d" kind m)
                     !placement_estimates
                 in
                 match (find "snapshot", find "journal") with
                 | Some snap_ns, Some jour_ns ->
                     Some
                       (Json.Obj
                          [
                            ("m", Json.Int m);
                            ("snapshot_ns_per_trial", float_or_null snap_ns);
                            ("journal_ns_per_trial", float_or_null jour_ns);
                            ("speedup", float_or_null (snap_ns /. jour_ns));
                          ])
                 | _ -> None)
               placement_ms) );
        ( "replay",
          keep ~empty:(!replay_estimates = []) "replay" @@ Json.List
            (List.filter_map
               (fun m ->
                 let find kind =
                   List.assoc_opt
                     (Printf.sprintf "replay/%s/m=%03d" kind m)
                     !replay_estimates
                 in
                 match (find "rebuild", find "compiled") with
                 | Some rebuild_ns, Some compiled_ns ->
                     Some
                       (Json.Obj
                          [
                            ("m", Json.Int m);
                            ("rebuild_ns_per_scenario", float_or_null rebuild_ns);
                            ( "compiled_ns_per_scenario",
                              float_or_null compiled_ns );
                            ("speedup", float_or_null (rebuild_ns /. compiled_ns));
                          ])
                 | _ -> None)
               replay_ms) );
        ( "replay_batch",
          keep ~empty:(!replay_estimates = []) "replay_batch" @@ Json.List
            (List.filter_map
               (fun m ->
                 let find kind =
                   List.assoc_opt
                     (Printf.sprintf "replay/%s/m=%03d" kind m)
                     !replay_estimates
                 in
                 match (find "compiled", find "batched") with
                 | Some compiled_ns, Some batched_block_ns ->
                     let batched_ns =
                       batched_block_ns
                       /. float_of_int Monte_carlo.batch_block
                     in
                     Some
                       (Json.Obj
                          [
                            ("m", Json.Int m);
                            ("block", Json.Int Monte_carlo.batch_block);
                            ("per_scenario_ns", float_or_null compiled_ns);
                            ( "batched_ns_per_scenario",
                              float_or_null batched_ns );
                            ( "batched_speedup",
                              float_or_null (compiled_ns /. batched_ns) );
                          ])
                 | _ -> None)
               replay_ms) );
        ( "replay_domains",
          keep ~empty:(!replay_domain_rows = []) "replay_domains" @@ Json.List
            (List.map
               (fun (domains, runs, blocks, spawn_s, wall, per_sec, profile) ->
                 Json.Obj
                   [
                     ("domains", Json.Int domains);
                     ("runs", Json.Int runs);
                     ("blocks", Json.Int blocks);
                     ("pool_spawn_seconds", Json.Float spawn_s);
                     ("wall_seconds", Json.Float wall);
                     ("scenarios_per_sec", float_or_null per_sec);
                     ("profile", profile);
                   ])
               !replay_domain_rows) );
        ( "inject",
          keep ~empty:(!inject_estimates = []) "inject" @@ Json.List
            (List.filter_map
               (fun m ->
                 let find kind =
                   List.assoc_opt
                     (Printf.sprintf "inject/%s/m=%03d" kind m)
                     !inject_estimates
                 in
                 match (find "degenerate", find "windows") with
                 | Some deg_ns, Some win_ns ->
                     Some
                       (Json.Obj
                          [
                            ("m", Json.Int m);
                            ("degenerate_ns_per_plan", float_or_null deg_ns);
                            ("windows_ns_per_plan", float_or_null win_ns);
                            ("overhead", float_or_null (win_ns /. deg_ns));
                          ])
                 | _ -> None)
               inject_ms) );
        ( "adversary",
          keep ~empty:(!adversary_row = None) "adversary"
          @@
          match !adversary_row with
          | None -> Json.Null
          | Some (m, budget, evals, wall) ->
              Json.Obj
                [
                  ("m", Json.Int m);
                  ("budget", Json.Int budget);
                  ("evals", Json.Int evals);
                  ("wall_seconds", Json.Float wall);
                ] );
        ( "sched_scale",
          keep ~empty:(!sched_scale_rows = []) "sched_scale"
          @@ Json.List !sched_scale_rows );
        ( "sched_efficiency",
          keep ~empty:(!sched_scale_rows = []) "sched_efficiency"
          @@ Json.List !sched_efficiency_rows );
        ("history", Json.List history);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 json);
      output_char oc '\n');
  Obs_log.info
    "wrote %s (%d figures, %d bechamel estimates, %d placement estimates, %d \
     replay estimates)"
    path
    (List.length !figure_timings)
    (List.length !bechamel_estimates)
    (List.length !placement_estimates)
    (List.length !replay_estimates)

(* -- command line ------------------------------------------------------ *)

let () =
  let figures = ref [] in
  let graphs = ref None in
  let domains = ref None in
  let seed = ref 2008 in
  let tables = ref [] in
  let bechamel = ref false in
  let placement = ref false in
  let sched = ref false in
  let replay = ref false in
  let inject = ref false in
  let quick = ref false in
  let all = ref true in
  let json = ref "BENCH_schedulers.json" in
  let profile_json = ref "" in
  let speclist =
    [
      ( "--figure",
        Arg.Int
          (fun n ->
            all := false;
            figures := !figures @ [ n ]),
        "N  regenerate figure N (1..6); repeatable" );
      ( "--graphs",
        Arg.Int (fun n -> graphs := Some n),
        "N  random graphs per point (default: the paper's 60)" );
      ("--seed", Arg.Set_int seed, "N  campaign seed (default 2008)");
      ( "--domains",
        Arg.Int (fun n -> domains := Some n),
        "N  parallelize figure campaigns over N domains" );
      ( "--table",
        Arg.String
          (fun s ->
            all := false;
            tables := !tables @ [ s ]),
        "NAME  regenerate a table: messages | outforest | batch | insertion | topology | mechanism | crashes | links | passive | models" );
      ( "--bechamel",
        Arg.Unit
          (fun () ->
            all := false;
            bechamel := true),
        "  run the bechamel micro-benchmarks only" );
      ( "--sched",
        Arg.Unit
          (fun () ->
            all := false;
            sched := true),
        "  run the scheduler scaling bench only (CAFT tasks/sec on the \
         staged/pipelines workflow families)" );
      ( "--placement",
        Arg.Unit
          (fun () ->
            all := false;
            placement := true),
        "  run the placement microbench only (snapshot vs undo-journal \
         trials)" );
      ( "--replay",
        Arg.Unit
          (fun () ->
            all := false;
            replay := true),
        "  run the replay microbench only (rebuild-per-scenario vs compiled \
         eval, domain scaling)" );
      ( "--inject",
        Arg.Unit
          (fun () ->
            all := false;
            inject := true),
        "  run the fault-plan microbench only (degenerate crash path vs \
         window engine, one adversary search)" );
      ( "--quick",
        Arg.Set quick,
        "  shrink the microbench quotas (CI smoke mode)" );
      ( "--json",
        Arg.Set_string json,
        "FILE  machine-readable summary (default BENCH_schedulers.json; \
         empty to skip)" );
      ( "--profile-json",
        Arg.Set_string profile_json,
        "FILE  write the full per-row profiler reports of the replay \
         domain-scaling bench (CI artifact)" );
    ]
  in
  Arg.parse speclist
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "bench/main.exe: regenerate the paper's figures and tables";
  if !all then begin
    run_figures [ 1; 2; 3; 4; 5; 6 ] !graphs !seed !domains;
    messages_table !graphs !seed;
    outforest_table !seed;
    batch_table !graphs !seed;
    insertion_table !graphs !seed;
    topology_table !graphs !seed;
    mechanism_table !graphs !seed;
    crash_sweep_table !graphs !seed;
    links_table !graphs !seed;
    passive_table !graphs !seed;
    models_table !graphs !seed;
    bechamel_benches ();
    placement_bench ~quick:!quick ();
    replay_bench ~quick:!quick ();
    inject_bench ~quick:!quick ();
    sched_bench ~quick:!quick ()
  end
  else begin
    if !figures <> [] then run_figures !figures !graphs !seed !domains;
    List.iter
      (function
        | "messages" -> messages_table !graphs !seed
        | "outforest" -> outforest_table !seed
        | "batch" -> batch_table !graphs !seed
        | "insertion" -> insertion_table !graphs !seed
        | "topology" -> topology_table !graphs !seed
        | "mechanism" -> mechanism_table !graphs !seed
        | "crashes" -> crash_sweep_table !graphs !seed
        | "links" -> links_table !graphs !seed
        | "passive" -> passive_table !graphs !seed
        | "models" -> models_table !graphs !seed
        | other -> Obs_log.warn "unknown table %s" other)
      !tables;
    if !bechamel then bechamel_benches ();
    if !placement then placement_bench ~quick:!quick ();
    if !sched then sched_bench ~quick:!quick ();
    if !replay then replay_bench ~quick:!quick ();
    if !inject then inject_bench ~quick:!quick ()
  end;
  if !json <> "" then
    write_bench_json !json ~seed:!seed ~graphs:!graphs ~domains:!domains;
  if !profile_json <> "" then begin
    let doc =
      Json.Obj
        [
          ("schema", Json.String "ftsched/profile-rows/v1");
          ( "rows",
            Json.List
              (List.map
                 (fun (domains, prof) ->
                   Json.Obj [ ("domains", Json.Int domains); ("profile", prof) ])
                 !replay_profile_reports) );
        ]
    in
    let oc = open_out !profile_json in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string ~indent:2 doc);
        output_char oc '\n');
    Obs_log.info "wrote %s (%d profiled replay rows)" !profile_json
      (List.length !replay_profile_reports)
  end
