(** Primary/backup (passive replication) scheduling — the {e other} family
    of fault-tolerant schedulers the paper surveys (Section 3 (i)):
    \[2, 9, 18, 19, 21, 28\].

    One {e primary} copy of every task is scheduled (HEFT order and
    placement); a {e backup} copy is reserved on a different processor,
    starting no earlier than the primary's expected finish (time
    exclusion: the backup is activated only if the primary's processor is
    observed to have failed).  Two classic optimizations apply:

    - {e backup overloading}: backup reservations of two tasks may overlap
      on a processor when their primaries are on {e different} processors
      — at most one of them can ever be activated under the single-failure
      assumption;
    - {e de-allocation}: when the primary completes, its backup slot is
      released (reflected here in {!reserved_time} being reservation, not
      consumption).

    As in the literature this scheme assumes (per the paper): at most
    {b one} processor fails, and a second failure cannot occur before
    recovery; and the {b macro-dataflow} model (no communication
    contention).  That makes it the natural foil for CAFT at
    [epsilon = 1]: passive replication has no fault-free overhead but pays
    a recovery delay on crash, active replication pays upfront and hides
    crashes entirely.  The comparison is benched by
    [bench/main.exe -- --table passive].

    A backup must be able to run with valid inputs when the (single)
    failure hits its primary's processor: for every predecessor, if the
    predecessor's primary sits on that same doomed processor the backup
    reads from the predecessor's {e backup}, otherwise from its primary —
    both with macro-dataflow communication delays. *)

type placement = { proc : Platform.proc; start : float; finish : float }

type entry = { primary : placement; backup : placement }

type t

val run : ?seed:int -> Costs.t -> t
(** Schedules primaries (HEFT under macro-dataflow) and backups (earliest
    feasible reservation honouring time exclusion, data availability and
    the overloading rule).  Raises [Invalid_argument] if the platform has
    fewer than 2 processors. *)

val entry : t -> Dag.task -> entry
val costs : t -> Costs.t

val fault_free_latency : t -> float
(** Makespan of the primaries alone — what the application costs when
    nothing fails (the whole point of passive replication). *)

val reserved_time : t -> float
(** Total backup reservation time (released when primaries succeed). *)

val overloaded_pairs : t -> int
(** Number of overlapping backup pairs sharing a processor — how much the
    overloading optimization compresses the reservations. *)

val latency_with_crash : t -> crashed:Platform.proc -> float option
(** Dynamic replay under the failure of one processor (from time zero):
    tasks whose primary sits on the crashed processor run their backup;
    every start time is recomputed from the executed copies of the
    predecessors.  [None] if some task cannot run at all (both copies on
    the crashed processor — excluded by construction, so [None] signals a
    bug, and the tests assert it never happens). *)

val validate : t -> string list
(** Static checks: primary/backup space exclusion, time exclusion,
    primaries pairwise disjoint per processor, backups disjoint from
    primaries on their processor, overlapping backups have distinct
    primary processors, data availability of both copies.  Empty list =
    valid. *)
