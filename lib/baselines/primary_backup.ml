type placement = { proc : Platform.proc; start : float; finish : float }

type entry = { primary : placement; backup : placement }

type t = { costs : Costs.t; entries : entry array }

let costs t = t.costs

let entry t task =
  if task < 0 || task >= Array.length t.entries then
    invalid_arg "Primary_backup.entry: bad task";
  t.entries.(task)

let comm costs src dst vol =
  Platform.comm_time (Costs.platform costs) ~src ~dst ~volume:vol

let run ?seed costs =
  let platform = Costs.platform costs in
  let m = Platform.proc_count platform in
  if m < 2 then
    invalid_arg "Primary_backup.run: need at least two processors";
  let dag = Costs.dag costs in
  let v = Dag.task_count dag in
  (* Primaries: plain HEFT under macro-dataflow (the model of the passive
     replication literature). *)
  let heft = Heft.run ~model:Netstate.Macro_dataflow ?seed costs in
  let primaries =
    Array.init v (fun task ->
        let r = (Schedule.replicas heft task).(0) in
        {
          proc = r.Schedule.r_proc;
          start = r.Schedule.r_start;
          finish = r.Schedule.r_finish;
        })
  in
  (* Backup reservations per processor: (interval, primary proc).  Two
     reservations may overlap iff their primary processors differ. *)
  let reservations = Array.make m [] in
  let backups = Array.make v None in
  let backup_of task =
    match backups.(task) with
    | Some b -> b
    | None -> invalid_arg "Primary_backup.run: predecessor backup missing"
  in
  (* earliest start >= [ready] on [p] avoiding the primaries of [p] and
     the incompatible reservations *)
  let earliest_slot p ~ready ~duration ~primary_proc =
    let blocking =
      List.filter_map
        (fun (s, f, pproc) ->
          if pproc = primary_proc then Some (s, f) else None)
        reservations.(p)
      @ List.filter_map
          (fun (pl : placement) ->
            if pl.proc = p then Some (pl.start, pl.finish) else None)
          (Array.to_list primaries)
    in
    let blocking = List.sort compare blocking in
    let rec fit cand = function
      | [] -> cand
      | (s, f) :: rest ->
          if cand +. duration <= s +. Flt.eps then cand
          else fit (Float.max cand f) rest
    in
    fit ready blocking
  in
  (* Schedule backups in topological order so predecessor backups exist. *)
  Array.iter
    (fun task ->
      let prim = primaries.(task) in
      let duration_on p = Costs.exec costs task p in
      let best = ref None in
      for p = 0 to m - 1 do
        if p <> prim.proc then begin
          (* data readiness on p under the scenario "prim.proc failed":
             predecessors whose primary shared prim.proc deliver from
             their backup, the others from their primary *)
          let data_ready =
            Array.fold_left
              (fun acc (q, vol) ->
                let source =
                  if primaries.(q).proc = prim.proc then backup_of q
                  else primaries.(q)
                in
                Float.max acc
                  (source.finish +. comm costs source.proc p vol))
              0. (Dag.preds dag task)
          in
          (* time exclusion: activation at the primary's deadline *)
          let ready = Float.max data_ready prim.finish in
          let start =
            earliest_slot p ~ready ~duration:(duration_on p)
              ~primary_proc:prim.proc
          in
          let finish = start +. duration_on p in
          match !best with
          | Some (bf, _, _) when bf <= finish -> ()
          | _ -> best := Some (finish, p, start)
        end
      done;
      match !best with
      | None -> invalid_arg "Primary_backup.run: no backup slot"
      | Some (finish, p, start) ->
          backups.(task) <- Some { proc = p; start; finish };
          reservations.(p) <- (start, finish, prim.proc) :: reservations.(p))
    (Dag.topological_order dag);
  let entries =
    Array.init v (fun task ->
        { primary = primaries.(task); backup = Option.get backups.(task) })
  in
  { costs; entries }

let fault_free_latency t =
  Array.fold_left (fun acc e -> Float.max acc e.primary.finish) 0. t.entries

let reserved_time t =
  Array.fold_left
    (fun acc e -> acc +. (e.backup.finish -. e.backup.start))
    0. t.entries

let overloaded_pairs t =
  let n = Array.length t.entries in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = t.entries.(i).backup and b = t.entries.(j).backup in
      if a.proc = b.proc && a.start < b.finish && b.start < a.finish then
        incr count
    done
  done;
  !count

let latency_with_crash t ~crashed =
  let dag = Costs.dag t.costs in
  let v = Dag.task_count dag in
  (* executed copy of each task under the single failure *)
  let copy task =
    let e = t.entries.(task) in
    if e.primary.proc = crashed then e.backup else e.primary
  in
  (* a task is stuck if both copies are on the crashed processor —
     excluded by construction *)
  let stuck =
    Array.exists
      (fun e -> e.primary.proc = crashed && e.backup.proc = crashed)
      t.entries
  in
  if stuck then None
  else begin
    (* dynamic recomputation: one pass in topological order (so
       predecessor times are known), each site executing its surviving
       copies in that precedence-compatible order; backups keep their
       activation deadline (the primary's expected finish) *)
    let dyn_finish = Array.make v nan in
    let proc_free = Array.make (Platform.proc_count (Costs.platform t.costs)) 0. in
    (* executed copies per proc, in static start order *)
    Array.iter
      (fun task ->
        let c = copy task in
        let e = t.entries.(task) in
        let data_ready =
          Array.fold_left
            (fun acc (q, vol) ->
              let qc = copy q in
              Float.max acc (dyn_finish.(q) +. comm t.costs qc.proc c.proc vol))
            0. (Dag.preds dag task)
        in
        let deadline =
          if e.primary.proc = crashed then e.primary.finish else 0.
        in
        let start =
          Float.max proc_free.(c.proc) (Float.max data_ready deadline)
        in
        let finish = start +. (c.finish -. c.start) in
        dyn_finish.(task) <- finish;
        proc_free.(c.proc) <- finish)
      (Dag.topological_order dag);
    Some (Array.fold_left Float.max 0. dyn_finish)
  end

let validate t =
  let dag = Costs.dag t.costs in
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  Array.iteri
    (fun task e ->
      if e.primary.proc = e.backup.proc then
        add "task %d: backup shares the primary's processor" task;
      if e.backup.start +. Flt.eps < e.primary.finish then
        add "task %d: backup starts before the primary's deadline" task;
      let dp = e.primary.finish -. e.primary.start in
      if not (Flt.approx_eq ~tol:1e-6 dp (Costs.exec t.costs task e.primary.proc))
      then add "task %d: primary duration mismatch" task;
      let db = e.backup.finish -. e.backup.start in
      if not (Flt.approx_eq ~tol:1e-6 db (Costs.exec t.costs task e.backup.proc))
      then add "task %d: backup duration mismatch" task;
      (* data availability of the primary (macro-dataflow) *)
      Array.iter
        (fun (q, vol) ->
          let qp = t.entries.(q).primary in
          if
            e.primary.start +. 1e-6
            < qp.finish +. comm t.costs qp.proc e.primary.proc vol
          then add "task %d: primary starts before data from %d" task q;
          (* data availability of the backup under its scenario *)
          let source =
            if qp.proc = e.primary.proc then t.entries.(q).backup else qp
          in
          if
            e.backup.start +. 1e-6
            < source.finish +. comm t.costs source.proc e.backup.proc vol
          then add "task %d: backup starts before data from %d" task q)
        (Dag.preds dag task))
    t.entries;
  (* per-processor exclusions *)
  let n = Array.length t.entries in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i < j then begin
        let pi = t.entries.(i).primary and pj = t.entries.(j).primary in
        if pi.proc = pj.proc && pi.start < pj.finish -. Flt.eps
           && pj.start < pi.finish -. Flt.eps
        then add "primaries %d and %d overlap on P%d" i j pi.proc
      end;
      let b = t.entries.(i).backup and p = t.entries.(j).primary in
      if
        b.proc = p.proc && b.start < p.finish -. Flt.eps
        && p.start < b.finish -. Flt.eps
      then add "backup %d overlaps primary %d on P%d" i j b.proc;
      if i < j then begin
        let bi = t.entries.(i).backup and bj = t.entries.(j).backup in
        if
          bi.proc = bj.proc
          && bi.start < bj.finish -. Flt.eps
          && bj.start < bi.finish -. Flt.eps
          && t.entries.(i).primary.proc = t.entries.(j).primary.proc
        then
          add "backups %d and %d overlap with the same primary processor" i j
      end
    done
  done;
  List.rev !issues
