(** FTSA — Fault Tolerant Scheduling Algorithm (Benoit, Hakem, Robert,
    2008 \[4\]), the fault-tolerant extension of HEFT used as the main
    baseline of the paper (Section 4.2).

    At each step the free task with the highest [tl + bl] priority is
    selected and its mapping simulated on every processor; the [epsilon+1]
    processors giving the smallest finish times receive one replica each.
    Every replica of every predecessor sends its data to every replica of
    the task (except co-located ones), so a schedule carries up to
    [e(epsilon+1)^2] messages.

    The [model] argument selects the original macro-dataflow behaviour or
    the one-port adaptation of Section 4.3, where all those messages are
    serialized on ports and links. *)

val run :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?seed:int ->
  epsilon:int ->
  Costs.t ->
  Schedule.t
(** [run ~epsilon costs] builds the fault-tolerant schedule.  [model]
    defaults to {!Netstate.One_port}; [seed] (default 42) only drives
    random tie-breaking.  Raises [Invalid_argument] if the platform has
    fewer than [epsilon + 1] processors. *)
