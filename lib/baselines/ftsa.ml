let run ?(model = Netstate.One_port) ?fabric ?insertion ?(seed = 42) ~epsilon costs =
  let ws = Workspace.create ~model ?fabric ?insertion ~epsilon costs in
  let net = Workspace.net ws in
  let platform = Workspace.platform ws in
  let m = Platform.proc_count platform in
  let rng = Rng.create seed in
  let prio = Prio.create ~rng costs in
  let rec loop () =
    match Prio.pop prio with
    | None ->
        if not (Prio.is_done prio) then
          failwith "Ftsa.run: no free task but tasks remain (DAG inconsistency)"
    | Some task ->
        let exec p = Costs.exec costs task p in
        let inputs =
          if Dag.in_degree (Workspace.dag ws) task = 0 then []
          else Workspace.sources_all ws task
        in
        (* Evaluation pass: simulate the mapping on every processor and
           rank by finish time ("the first epsilon+1 processors that allow
           the minimum finish time are kept").  Each simulation runs in a
           trial, rolling back only the cells it wrote. *)
        let candidates =
          List.map
            (fun p ->
              let booked =
                Netstate.with_trial net (fun () ->
                    if inputs = [] then
                      Netstate.book_exec_only net ~proc:p ~exec:(exec p)
                    else Netstate.book_replica net ~proc:p ~exec:(exec p) ~inputs)
              in
              (booked.Netstate.b_finish, p))
            (Platform.procs platform)
        in
        let ranked = List.sort compare candidates in
        let chosen =
          List.filteri (fun i _ -> i <= epsilon) ranked |> List.map snd
        in
        assert (List.length chosen = min (epsilon + 1) m);
        (* Commit pass: book the replicas on the evolving state, in rank
           order.  Within the one-port model the later replicas may land
           slightly after their simulated finish because the earlier
           replicas' messages now occupy the ports. *)
        List.iter
          (fun p ->
            let booked =
              if inputs = [] then Netstate.book_exec_only net ~proc:p ~exec:(exec p)
              else Netstate.book_replica net ~proc:p ~exec:(exec p) ~inputs
            in
            ignore (Workspace.place ws ~task ~proc:p booked))
          chosen;
        Prio.mark_scheduled prio task
          ~completion:(Workspace.completion_lower ws task);
        loop ()
  in
  loop ();
  let name =
    match model with
    | Netstate.One_port -> "FTSA"
    | Netstate.Macro_dataflow -> "FTSA-macro"
    | Netstate.Multiport k -> Printf.sprintf "FTSA-mp%d" k
  in
  Workspace.to_schedule ~algorithm:name ws
