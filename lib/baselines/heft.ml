let run ?model ?fabric ?insertion ?seed costs =
  let sched = Ftsa.run ?model ?fabric ?insertion ?seed ~epsilon:0 costs in
  (* Re-badge: a 0-replication FTSA run is the HEFT algorithm. *)
  Schedule.create
    ~insertion:(Schedule.insertion sched)
    ~algorithm:"HEFT" ~epsilon:0 ~model:(Schedule.model sched)
    ~costs:(Schedule.costs sched)
    (Schedule.all_replicas sched)
