(** HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu,
    2002), the reference fault-free list scheduler of the literature.

    The paper uses it twice: as the "FaultFree-CAFT" curve (the fault-free
    version of CAFT reduces to an implementation of HEFT, Section 6) and
    as the basis of FTSA.  Our implementation is exactly {!Ftsa.run} with
    [epsilon = 0]: highest [tl + bl] priority first, replica on the
    processor minimising the finish time, communications booked under the
    selected model. *)

val run :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?seed:int ->
  Costs.t ->
  Schedule.t
(** Fault-free schedule (one replica per task), algorithm name "HEFT". *)
