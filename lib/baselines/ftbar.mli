(** FTBAR — Fault Tolerance Based Active Replication (Girault, Kalla,
    Sighireanu, Sorel, DSN 2003), the second baseline of the paper
    (Section 4.1).

    FTBAR is a list scheduler driven by the {e schedule pressure}

    {v sigma(ti, pj) = S(ti, pj) + s(ti) - R v}

    where [S(ti, pj)] is the earliest start time of the free task [ti] on
    processor [pj] in the current partial schedule, [s(ti)] the latest
    possible start time of [ti] measured bottom-up (critical path minus
    bottom level), and [R] the current schedule length.  At each step:

    + for every free task, the [epsilon + 1] processors of minimum
      pressure are selected;
    + among free tasks, the {e most urgent} one — the task whose selected
      set contains the largest pressure — is scheduled on its [epsilon+1]
      processors.

    Like FTSA, every replica of a predecessor sends to every replica of
    the task.  The recursive minimize-start-time duplication refinement of
    the original FTBAR (Ahmad & Kwok's procedure) is omitted — it would
    add extra task copies beyond the [epsilon + 1] replication scheme (see
    DESIGN.md: the omission only handicaps FTBAR marginally and does not
    affect the paper's qualitative conclusions). *)

val run :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?seed:int ->
  epsilon:int ->
  Costs.t ->
  Schedule.t
(** [run ~epsilon costs] builds the FTBAR schedule.  Defaults as in
    {!Ftsa.run}. *)
