let run ?(model = Netstate.One_port) ?fabric ?insertion ?(seed = 42) ~epsilon costs =
  let ws = Workspace.create ~model ?fabric ?insertion ~epsilon costs in
  let net = Workspace.net ws in
  let dag = Workspace.dag ws in
  let platform = Workspace.platform ws in
  let rng = Rng.create seed in
  let n = Dag.task_count dag in
  let levels = Levels.compute costs in
  let cp = Levels.critical_path levels in
  (* Latest start time, bottom-up: how late the task may start without
     stretching the (average-weighted) critical path. *)
  let latest_start t = cp -. Levels.bottom_level levels t in
  let tiebreak = Array.init n (fun _ -> Rng.float rng 1.0) in
  let unscheduled_preds = Array.init n (fun t -> Dag.in_degree dag t) in
  let free = ref (Dag.entries dag) in
  let remaining = ref n in
  (* R^(n-1): current schedule length. *)
  let schedule_length = ref 0. in
  let book task p =
    let exec = Costs.exec costs task p in
    if Dag.in_degree dag task = 0 then Netstate.book_exec_only net ~proc:p ~exec
    else
      Netstate.book_replica net ~proc:p ~exec
        ~inputs:(Workspace.sources_all ws task)
  in
  while !remaining > 0 do
    (match !free with
    | [] -> failwith "Ftbar.run: no free task but tasks remain"
    | _ -> ());
    (* Evaluate the pressure of every free task on every processor; each
       trial booking rolls back only the cells it wrote. *)
    let evaluated =
      List.map
        (fun task ->
          let sigmas =
            List.map
              (fun p ->
                let booked = Netstate.with_trial net (fun () -> book task p) in
                let sigma =
                  booked.Netstate.b_start +. latest_start task
                  -. !schedule_length
                in
                (sigma, p))
              (Platform.procs platform)
          in
          let ranked = List.sort compare sigmas in
          let best = List.filteri (fun i _ -> i <= epsilon) ranked in
          (* urgency: the largest pressure within the selected set *)
          let urgency = List.fold_left (fun acc (s, _) -> Float.max acc s) neg_infinity best in
          (task, urgency, List.map snd best))
        !free
    in
    let chosen_task, _, chosen_procs =
      List.fold_left
        (fun (bt, bu, bp) (t, u, p) ->
          if u > bu || (u = bu && tiebreak.(t) < tiebreak.(bt)) then (t, u, p)
          else (bt, bu, bp))
        (match evaluated with
        | e :: _ -> e
        | [] -> assert false)
        evaluated
    in
    (* Commit the replicas on the evolving state, best processor first. *)
    List.iter
      (fun p ->
        let booked = book chosen_task p in
        let r = Workspace.place ws ~task:chosen_task ~proc:p booked in
        schedule_length := Float.max !schedule_length r.Schedule.r_finish)
      chosen_procs;
    (* Update the free list. *)
    free := List.filter (fun t -> t <> chosen_task) !free;
    Array.iter
      (fun (succ, _) ->
        unscheduled_preds.(succ) <- unscheduled_preds.(succ) - 1;
        if unscheduled_preds.(succ) = 0 then free := succ :: !free)
      (Dag.succs dag chosen_task);
    decr remaining
  done;
  let name =
    match model with
    | Netstate.One_port -> "FTBAR"
    | Netstate.Macro_dataflow -> "FTBAR-macro"
    | Netstate.Multiport k -> Printf.sprintf "FTBAR-mp%d" k
  in
  Workspace.to_schedule ~algorithm:name ws
