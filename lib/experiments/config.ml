(* Experiment configurations: one per figure of Section 6. *)

type t = {
  id : string;  (** "fig1" .. "fig6" *)
  description : string;
  granularities : float list;
  m : int;  (** processors *)
  epsilon : int;  (** failures supported by the schedules *)
  crashes : int;  (** processors actually crashed in the (b)/(c) panels *)
  graphs_per_point : int;  (** 60 in the paper *)
}

(* granularity range A: 0.2 .. 2.0 step 0.2; range B: 1 .. 10 step 1 *)
let range_a = List.init 10 (fun i -> 0.2 *. float_of_int (i + 1))
let range_b = List.init 10 (fun i -> float_of_int (i + 1))

let make id description granularities m epsilon crashes =
  { id; description; granularities; m; epsilon; crashes; graphs_per_point = 60 }

let figure = function
  | 1 ->
      make "fig1" "granularity 0.2-2.0, m=10, eps=1, 1 crash" range_a 10 1 1
  | 2 ->
      make "fig2" "granularity 0.2-2.0, m=10, eps=3, 2 crashes" range_a 10 3 2
  | 3 ->
      make "fig3" "granularity 0.2-2.0, m=20, eps=5, 3 crashes" range_a 20 5 3
  | 4 -> make "fig4" "granularity 1-10, m=10, eps=1, 1 crash" range_b 10 1 1
  | 5 -> make "fig5" "granularity 1-10, m=10, eps=3, 2 crashes" range_b 10 3 2
  | 6 -> make "fig6" "granularity 1-10, m=20, eps=5, 3 crashes" range_b 20 5 3
  | n -> invalid_arg (Printf.sprintf "Config.figure: no figure %d" n)

let all_figures = List.map figure [ 1; 2; 3; 4; 5; 6 ]

let with_graphs_per_point t n =
  if n < 1 then invalid_arg "Config.with_graphs_per_point";
  { t with graphs_per_point = n }
