(** Campaign runner: regenerates the data behind each figure.

    For every granularity point, [run] draws [graphs_per_point] random
    instances (paper parameters: 80-120 tasks, degrees 1-3, volumes
    50-150, delays 0.5-1), rescales the execution costs to the target
    granularity, schedules each instance with CAFT, FTSA and FTBAR (all
    one-port) at the configured [epsilon], plus the two fault-free
    references (fault-free CAFT = HEFT, and fault-free FTBAR), replays
    each fault-tolerant schedule under one uniformly drawn crash scenario
    of [crashes] processors (the same scenario for the three algorithms),
    and averages.

    The same 60 instances are reused across the granularity sweep (only
    the execution-cost scale changes), which removes sampling noise from
    the curve shapes.

    {b Normalization.}  The paper plots "normalized latency" without
    giving the normalization constant.  We divide every latency by the
    instance's mean edge communication cost (mean over edges of
    volume x mean unit delay), which is invariant under the granularity
    rescaling; see EXPERIMENTS.md.

    {b Overhead.}  Per the paper's formula, the overhead of a schedule
    latency [L] on an instance is [(L - Lstar) / Lstar] where [Lstar] is
    the latency of the fault-free CAFT schedule of the same instance; we
    report it in percent. *)

type algo_metrics = {
  latency0 : float;  (** normalized latency with 0 crash (mean) *)
  upper : float;  (** normalized upper bound (mean) *)
  latency_crash : float;  (** normalized latency with crashes (mean) *)
  overhead0 : float;  (** mean overhead with 0 crash, percent *)
  overhead_crash : float;  (** mean overhead with crashes, percent *)
  messages : float;  (** mean inter-processor message count *)
  latency0_stddev : float;  (** sample stddev of the normalized latency *)
}

type point = {
  granularity : float;
  caft : algo_metrics;
  ftsa : algo_metrics;
  ftbar : algo_metrics;
  fault_free_caft : float;  (** normalized latency of fault-free CAFT *)
  fault_free_ftbar : float;  (** normalized latency of fault-free FTBAR *)
  edges : float;  (** mean edge count of the instances *)
}

type result = { config : Config.t; points : point list }

exception Checkpoint_error of string
(** Raised by {!run} when [checkpoint] names an existing non-empty file
    that is not valid JSON.  Saves are atomic (temp + rename), so this
    is never the footprint of a crash mid-write — it means the file was
    damaged by something else, and silently restarting the sweep would
    discard the completed points it was supposed to protect.  The
    message names the file and says how to start over.  An empty file
    holds no points to protect and counts as absent. *)

val run :
  ?seed:int ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  ?checkpoint:string ->
  Config.t ->
  result
(** Runs the whole sweep.  [seed] (default 2008) makes the campaign
    reproducible; [progress] receives one message per completed
    granularity point.  [domains] (default: the machine's recommended
    domain count) parallelizes the per-point instances over OCaml 5
    domains — results are bit-identical to the sequential run ([1]).

    [checkpoint] names a JSON file recording every completed granularity
    point: after each point the whole file is rewritten atomically
    (write-to-temp-then-rename, so a kill never corrupts it), and a rerun
    with the same figure id and [seed] skips the recorded points and
    produces a result byte-identical to an uninterrupted run (floats are
    stored as exact ["%.17g"] strings).  A checkpoint from a different
    figure or seed is ignored (the sweep starts over); a file that is
    not valid JSON raises {!Checkpoint_error} instead — see above. *)

val normalization : Costs.t -> float
(** The per-instance normalization constant (mean edge communication
    cost; [1.] for edgeless graphs). *)
