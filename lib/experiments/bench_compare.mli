(** Regression diff between two [ftsched/bench/v1] documents.

    Backs [ftsched benchdiff OLD NEW]: the committed
    [BENCH_schedulers.json] is the baseline, a fresh quick-bench run is
    the candidate, and a change beyond the threshold in a metric's bad
    direction (slower ns/op, fewer scenarios/s) is a regression.  Only
    keys present in both documents are compared, so the diff is robust
    to benches that were skipped on one side ([--quick], machine
    class). *)

type direction = Higher_better | Lower_better

type entry = {
  e_key : string;  (** e.g. ["replay/m=50 compiled_ns_per_scenario"] *)
  e_old : float;
  e_new : float;
  e_change_pct : float;
      (** signed, in the metric's bad direction: positive = got worse *)
  e_direction : direction;
}

type result = {
  c_threshold_pct : float;
  c_entries : entry list;  (** keys present on both sides, in old order *)
  c_only_old : string list;
  c_only_new : string list;
}

val compare_docs : ?filter:string -> threshold_pct:float -> Json.t -> Json.t -> result
(** [filter] keeps only metrics whose key contains the given substring
    (e.g. ["batched"] for the batched-replay gate, or ["sched_scale"]
    for the scheduler scaling-efficiency gate — both blocked on in CI) —
    both sides are filtered, so "only in old/new" reporting stays
    scoped.  Machine-dependent absolute throughputs are published under
    prefixes outside the gating filters (e.g. ["sched_throughput/"]), so
    they show in an unfiltered diff but never block. *)

val regressions : result -> entry list
(** Entries at or beyond the threshold in the bad direction. *)

val improvements : result -> entry list

val to_table : result -> Text_table.t
(** [metric | old | new | change | verdict] rows. *)

val summary : result -> string
(** One-line verdict count for logs and CI step output. *)
