let cell = Text_table.float_cell ~decimals:2

let panel_a (r : Campaign.result) =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [
        "g";
        "FTSA-0";
        "FTSA-UB";
        "FTBAR-0";
        "FTBAR-UB";
        "CAFT-0";
        "CAFT-UB";
        "FF-CAFT";
        "FF-FTBAR";
      ]
  in
  List.iter
    (fun (p : Campaign.point) ->
      Text_table.add_row t
        [
          cell p.granularity;
          cell p.ftsa.Campaign.latency0;
          cell p.ftsa.Campaign.upper;
          cell p.ftbar.Campaign.latency0;
          cell p.ftbar.Campaign.upper;
          cell p.caft.Campaign.latency0;
          cell p.caft.Campaign.upper;
          cell p.fault_free_caft;
          cell p.fault_free_ftbar;
        ])
    r.Campaign.points;
  t

let panel_b (r : Campaign.result) =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [
        "g";
        "FTSA-0";
        "FTSA-crash";
        "FTBAR-0";
        "FTBAR-crash";
        "CAFT-0";
        "CAFT-crash";
      ]
  in
  List.iter
    (fun (p : Campaign.point) ->
      Text_table.add_row t
        [
          cell p.granularity;
          cell p.ftsa.Campaign.latency0;
          cell p.ftsa.Campaign.latency_crash;
          cell p.ftbar.Campaign.latency0;
          cell p.ftbar.Campaign.latency_crash;
          cell p.caft.Campaign.latency0;
          cell p.caft.Campaign.latency_crash;
        ])
    r.Campaign.points;
  t

let panel_c (r : Campaign.result) =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [
        "g";
        "FTSA-0 (%)";
        "FTSA-crash (%)";
        "FTBAR-0 (%)";
        "FTBAR-crash (%)";
        "CAFT-0 (%)";
        "CAFT-crash (%)";
      ]
  in
  List.iter
    (fun (p : Campaign.point) ->
      Text_table.add_row t
        [
          cell p.granularity;
          cell p.ftsa.Campaign.overhead0;
          cell p.ftsa.Campaign.overhead_crash;
          cell p.ftbar.Campaign.overhead0;
          cell p.ftbar.Campaign.overhead_crash;
          cell p.caft.Campaign.overhead0;
          cell p.caft.Campaign.overhead_crash;
        ])
    r.Campaign.points;
  t

let messages (r : Campaign.result) =
  let eps1 = float_of_int (r.Campaign.config.Config.epsilon + 1) in
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "g"; "CAFT"; "FTSA"; "FTBAR"; "e(eps+1)"; "e(eps+1)^2" ]
  in
  List.iter
    (fun (p : Campaign.point) ->
      Text_table.add_row t
        [
          cell p.granularity;
          cell p.caft.Campaign.messages;
          cell p.ftsa.Campaign.messages;
          cell p.ftbar.Campaign.messages;
          cell (p.edges *. eps1);
          cell (p.edges *. eps1 *. eps1);
        ])
    r.Campaign.points;
  t

let render (r : Campaign.result) =
  let c = r.Campaign.config in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "=== %s: %s ===\n" c.Config.id c.Config.description);
  Buffer.add_string buf
    (Printf.sprintf "(m=%d, epsilon=%d, crashes=%d, %d graphs/point)\n\n"
       c.Config.m c.Config.epsilon c.Config.crashes c.Config.graphs_per_point);
  Buffer.add_string buf
    (Printf.sprintf "-- panel (a): normalized latency, bounds --\n%s\n"
       (Text_table.to_string (panel_a r)));
  Buffer.add_string buf
    (Printf.sprintf "-- panel (b): normalized latency, with crashes --\n%s\n"
       (Text_table.to_string (panel_b r)));
  Buffer.add_string buf
    (Printf.sprintf "-- panel (c): average overhead (%%) --\n%s\n"
       (Text_table.to_string (panel_c r)));
  Buffer.add_string buf
    (Printf.sprintf "-- messages --\n%s\n" (Text_table.to_string (messages r)));
  Buffer.contents buf

let to_csv (r : Campaign.result) =
  let t =
    Text_table.create
      [
        "figure";
        "granularity";
        "ftsa_l0";
        "ftsa_ub";
        "ftsa_lc";
        "ftsa_ov0";
        "ftsa_ovc";
        "ftsa_msgs";
        "ftbar_l0";
        "ftbar_ub";
        "ftbar_lc";
        "ftbar_ov0";
        "ftbar_ovc";
        "ftbar_msgs";
        "caft_l0";
        "caft_ub";
        "caft_lc";
        "caft_ov0";
        "caft_ovc";
        "caft_msgs";
        "ff_caft";
        "ff_ftbar";
        "edges";
      ]
  in
  List.iter
    (fun (p : Campaign.point) ->
      let a (x : Campaign.algo_metrics) =
        [
          cell x.Campaign.latency0;
          cell x.Campaign.upper;
          cell x.Campaign.latency_crash;
          cell x.Campaign.overhead0;
          cell x.Campaign.overhead_crash;
          cell x.Campaign.messages;
        ]
      in
      Text_table.add_row t
        ((r.Campaign.config.Config.id :: cell p.granularity :: a p.ftsa)
        @ a p.ftbar @ a p.caft
        @ [ cell p.fault_free_caft; cell p.fault_free_ftbar; cell p.edges ]))
    r.Campaign.points;
  Text_table.to_csv t

let to_gnuplot (r : Campaign.result) ~data =
  let c = r.Campaign.config in
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# gnuplot script generated by ftsched; data file: %s" data;
  line "set datafile separator ','";
  line "set key top left";
  line "set xlabel 'Granularity'";
  line "set grid";
  (* CSV columns (1-based): figure,granularity, ftsa(l0,ub,lc,ov0,ovc,msgs),
     ftbar(...), caft(...), ff_caft, ff_ftbar, edges *)
  line "set terminal pngcairo size 900,600";
  line "set output '%s_a.png'" c.Config.id;
  line "set ylabel 'Normalized Latency'";
  line
    "plot '%s' skip 1 using 2:3 with linespoints title 'FTSA With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:4 with linespoints title 'FTSA-UpperBound', \\" data;
  line "     '%s' skip 1 using 2:9 with linespoints title 'FTBAR With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:10 with linespoints title 'FTBAR-UpperBound', \\" data;
  line "     '%s' skip 1 using 2:15 with linespoints title 'CAFT With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:16 with linespoints title 'CAFT-UpperBound', \\" data;
  line "     '%s' skip 1 using 2:21 with linespoints title 'FaultFree-CAFT', \\" data;
  line "     '%s' skip 1 using 2:22 with linespoints title 'FaultFree-FTBAR'" data;
  line "set output '%s_b.png'" c.Config.id;
  line "set ylabel 'Normalized Latency'";
  line "plot '%s' skip 1 using 2:3 with linespoints title 'FTSA With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:5 with linespoints title 'FTSA With %d Crash', \\" data
    c.Config.crashes;
  line "     '%s' skip 1 using 2:9 with linespoints title 'FTBAR With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:11 with linespoints title 'FTBAR With %d Crash', \\"
    data c.Config.crashes;
  line "     '%s' skip 1 using 2:15 with linespoints title 'CAFT With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:17 with linespoints title 'CAFT With %d Crash'" data
    c.Config.crashes;
  line "set output '%s_c.png'" c.Config.id;
  line "set ylabel 'Average OverHead (%%)'";
  line "plot '%s' skip 1 using 2:6 with linespoints title 'FTSA With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:7 with linespoints title 'FTSA With %d Crash', \\" data
    c.Config.crashes;
  line "     '%s' skip 1 using 2:12 with linespoints title 'FTBAR With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:13 with linespoints title 'FTBAR With %d Crash', \\"
    data c.Config.crashes;
  line "     '%s' skip 1 using 2:18 with linespoints title 'CAFT With 0 Crash', \\" data;
  line "     '%s' skip 1 using 2:19 with linespoints title 'CAFT With %d Crash'" data
    c.Config.crashes;
  Buffer.contents b
