(* Pairwise comparison of two ftsched/bench/v1 documents.

   The committed BENCH_schedulers.json is the performance baseline; CI
   re-runs the quick bench and diffs the fresh numbers against it with
   [ftsched benchdiff].  Only keys present in BOTH documents are
   compared (bench rows vary with --quick and machine class), so adding
   a figure or an m-point never trips the diff; keys that exist only on
   one side are reported as "missing" for the human reading the table.

   A regression is a change beyond the threshold in the metric's bad
   direction — slower ns/op, lower scenarios/s.  Improvements beyond the
   threshold are listed too (they often mean the baseline is stale) but
   never affect the exit code. *)

type direction = Higher_better | Lower_better

type entry = {
  e_key : string;
  e_old : float;
  e_new : float;
  e_change_pct : float;
      (* signed: positive = regression direction, whatever the metric *)
  e_direction : direction;
}

type result = {
  c_threshold_pct : float;
  c_entries : entry list;
  c_only_old : string list;
  c_only_new : string list;
}

(* -- metric extraction -------------------------------------------------- *)

let num k o = Option.bind (Json.member k o) Json.to_float

let int_key k o =
  match Option.bind (Json.member k o) Json.to_int with
  | Some i -> string_of_int i
  | None -> "?"

let str_key k o =
  match Option.bind (Json.member k o) Json.to_str with
  | Some s -> s
  | None -> "?"

let rows section doc =
  Json.member section doc |> Option.fold ~none:[] ~some:Json.to_list

(* Flatten one bench document into (key, value, direction) metrics. *)
let metrics doc =
  let out = ref [] in
  let push key v dir =
    match v with
    | Some x when not (Float.is_nan x) -> out := (key, x, dir) :: !out
    | _ -> ()
  in
  List.iter
    (fun r ->
      push
        (Printf.sprintf "bechamel/%s ns_per_run" (str_key "name" r))
        (num "ns_per_run" r) Lower_better)
    (rows "bechamel" doc);
  List.iter
    (fun r ->
      let m = int_key "m" r in
      push
        (Printf.sprintf "placement/m=%s snapshot_ns_per_trial" m)
        (num "snapshot_ns_per_trial" r)
        Lower_better;
      push
        (Printf.sprintf "placement/m=%s journal_ns_per_trial" m)
        (num "journal_ns_per_trial" r)
        Lower_better)
    (rows "placement" doc);
  List.iter
    (fun r ->
      let m = int_key "m" r in
      push
        (Printf.sprintf "replay/m=%s rebuild_ns_per_scenario" m)
        (num "rebuild_ns_per_scenario" r)
        Lower_better;
      push
        (Printf.sprintf "replay/m=%s compiled_ns_per_scenario" m)
        (num "compiled_ns_per_scenario" r)
        Lower_better)
    (rows "replay" doc);
  List.iter
    (fun r ->
      let m = int_key "m" r in
      push
        (Printf.sprintf "replay_batch/m=%s batched_ns_per_scenario" m)
        (num "batched_ns_per_scenario" r)
        Lower_better;
      push
        (Printf.sprintf "replay_batch/m=%s batched_speedup" m)
        (num "batched_speedup" r)
        Higher_better)
    (rows "replay_batch" doc);
  List.iter
    (fun r ->
      push
        (Printf.sprintf "replay_domains/domains=%s scenarios_per_sec"
           (int_key "domains" r))
        (num "scenarios_per_sec" r)
        Higher_better)
    (rows "replay_domains" doc);
  List.iter
    (fun r ->
      let m = int_key "m" r in
      push
        (Printf.sprintf "inject/m=%s degenerate_ns_per_plan" m)
        (num "degenerate_ns_per_plan" r)
        Lower_better;
      push
        (Printf.sprintf "inject/m=%s windows_ns_per_plan" m)
        (num "windows_ns_per_plan" r)
        Lower_better)
    (rows "inject" doc);
  (* Scheduler scaling.  Absolute tasks/sec varies with the machine class,
     so those keys are advisory (prefix deliberately outside the
     "sched_scale" filter the CI gate uses); the same-run scaling
     efficiency tps(1e4)/tps(1e3) is a within-host ratio and carries the
     gating prefix. *)
  List.iter
    (fun r ->
      push
        (Printf.sprintf "sched_throughput/%s/n=%s/m=%s tasks_per_sec"
           (str_key "family" r) (int_key "n" r) (int_key "m" r))
        (num "tasks_per_sec" r)
        Higher_better)
    (rows "sched_scale" doc);
  List.iter
    (fun r ->
      push
        (Printf.sprintf "sched_scale/%s/m=%s efficiency_1e4_over_1e3"
           (str_key "family" r) (int_key "m" r))
        (num "efficiency_1e4_over_1e3" r)
        Higher_better)
    (rows "sched_efficiency" doc);
  List.rev !out

(* -- comparison --------------------------------------------------------- *)

let change_pct dir vold vnew =
  if vold = 0. then 0.
  else
    let raw = (vnew -. vold) /. vold *. 100. in
    match dir with Lower_better -> raw | Higher_better -> -.raw

(* plain substring match; [filter] strings are short metric-key fragments *)
let contains ~sub s =
  let n = String.length sub and l = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    for i = 0 to l - n do
      if (not !found) && String.sub s i n = sub then found := true
    done;
    !found
  end

let compare_docs ?filter ~threshold_pct old_doc new_doc =
  let keep (k, _, _) =
    match filter with None -> true | Some sub -> contains ~sub k
  in
  let olds = List.filter keep (metrics old_doc)
  and news = List.filter keep (metrics new_doc) in
  let entries =
    List.filter_map
      (fun (key, vold, dir) ->
        match List.find_opt (fun (k, _, _) -> k = key) news with
        | Some (_, vnew, _) ->
            Some
              {
                e_key = key;
                e_old = vold;
                e_new = vnew;
                e_change_pct = change_pct dir vold vnew;
                e_direction = dir;
              }
        | None -> None)
      olds
  in
  let keys l = List.map (fun (k, _, _) -> k) l in
  let missing_from from l =
    List.filter (fun k -> not (List.exists (fun (k', _, _) -> k' = k) from)) l
  in
  {
    c_threshold_pct = threshold_pct;
    c_entries = entries;
    c_only_old = missing_from news (keys olds);
    c_only_new = missing_from olds (keys news);
  }

let regressions r =
  List.filter (fun e -> e.e_change_pct >= r.c_threshold_pct) r.c_entries

let improvements r =
  List.filter (fun e -> e.e_change_pct <= -.r.c_threshold_pct) r.c_entries

(* -- rendering ---------------------------------------------------------- *)

let verdict r e =
  if e.e_change_pct >= r.c_threshold_pct then "REGRESSION"
  else if e.e_change_pct <= -.r.c_threshold_pct then "improved"
  else "ok"

let to_table r =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left ]
      [ "metric"; "old"; "new"; "change"; "verdict" ]
  in
  List.iter
    (fun e ->
      (* signed change shown in the metric's own direction so "+" always
         reads as "got worse" *)
      Text_table.add_row t
        [
          e.e_key;
          Printf.sprintf "%.1f" e.e_old;
          Printf.sprintf "%.1f" e.e_new;
          Printf.sprintf "%+.1f%%" e.e_change_pct;
          verdict r e;
        ])
    r.c_entries;
  t

let summary r =
  let n_reg = List.length (regressions r) in
  let n_imp = List.length (improvements r) in
  Printf.sprintf
    "%d metric(s) compared, %d regression(s) beyond %.0f%%, %d improvement(s)%s"
    (List.length r.c_entries) n_reg r.c_threshold_pct n_imp
    (match (r.c_only_old, r.c_only_new) with
    | [], [] -> ""
    | o, n ->
        Printf.sprintf " (%d only in old, %d only in new)" (List.length o)
          (List.length n))
