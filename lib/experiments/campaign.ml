type algo_metrics = {
  latency0 : float;
  upper : float;
  latency_crash : float;
  overhead0 : float;
  overhead_crash : float;
  messages : float;
  latency0_stddev : float;
}

type point = {
  granularity : float;
  caft : algo_metrics;
  ftsa : algo_metrics;
  ftbar : algo_metrics;
  fault_free_caft : float;
  fault_free_ftbar : float;
  edges : float;
}

type result = { config : Config.t; points : point list }

let normalization costs =
  let dag = Costs.dag costs in
  let mean_delay = Platform.mean_delay (Costs.platform costs) in
  let e = Dag.edge_count dag in
  if e = 0 || mean_delay = 0. then 1.
  else
    Dag.fold_edges (fun _ _ vol acc -> acc +. (vol *. mean_delay)) dag 0.
    /. float_of_int e

(* one instance of the campaign: the DAG and its unscaled costs *)
type instance = {
  costs1 : Costs.t;
  sched_seed : int;
  crashed : Platform.proc list;
}

(* per-instance, per-algorithm normalized measurements *)
type algo_raw = {
  r_l0 : float;
  r_ub : float;
  r_lc : float;
  r_ov0 : float;
  r_ovc : float;
  r_msgs : float;
}

type instance_raw = {
  i_caft : algo_raw;
  i_ftsa : algo_raw;
  i_ftbar : algo_raw;
  i_ffc : float;
  i_ffb : float;
  i_edges : float;
}

let m_instances =
  Obs_metrics.counter ~help:"instances scheduled (all algorithms, all points)"
    "campaign.instances"

let m_point_seconds =
  Obs_metrics.histogram
    ~buckets:[| 0.01; 0.1; 1.; 10.; 60.; 300.; 1800. |]
    ~help:"wall-clock seconds per granularity point" "campaign.point_seconds"

let measure sched ~crashed =
  let out = Replay.crash_from_start sched ~crashed in
  if not out.Replay.completed then
    failwith
      (Printf.sprintf
         "Campaign.run: %s schedule failed under %d crashes (should resist)"
         (Schedule.algorithm sched) (List.length crashed));
  out.Replay.latency

(* Everything measured about one instance at one granularity.  Pure
   function of the instance (no shared mutable state), so the instances of
   a point can be evaluated on parallel domains. *)
let measure_instance ~epsilon ~granularity inst =
  Obs_metrics.incr m_instances;
  let costs = Granularity.rescale_to inst.costs1 granularity in
  let norm = normalization costs in
  let seed = inst.sched_seed in
  let ff_caft = Caft.fault_free ~seed costs in
  let ff_ftbar = Ftbar.run ~seed ~epsilon:0 costs in
  let lstar = Schedule.latency_zero_crash ff_caft in
  let overhead l = 100. *. (l -. lstar) /. lstar in
  let algo schedule =
    let sched = schedule ~seed ~epsilon costs in
    let lc = measure sched ~crashed:inst.crashed in
    let l0 = Schedule.latency_zero_crash sched in
    {
      r_l0 = l0 /. norm;
      r_ub = Schedule.latency_upper_bound sched /. norm;
      r_lc = lc /. norm;
      r_ov0 = overhead l0;
      r_ovc = overhead lc;
      r_msgs = float_of_int (Schedule.message_count sched);
    }
  in
  {
    i_caft = algo (fun ~seed ~epsilon costs -> Caft.run ~seed ~epsilon costs);
    i_ftsa = algo (fun ~seed ~epsilon costs -> Ftsa.run ~seed ~epsilon costs);
    i_ftbar = algo (fun ~seed ~epsilon costs -> Ftbar.run ~seed ~epsilon costs);
    i_ffc = Schedule.latency_zero_crash ff_caft /. norm;
    i_ffb = Schedule.latency_zero_crash ff_ftbar /. norm;
    i_edges = float_of_int (Dag.edge_count (Costs.dag costs));
  }

let summarize rows select =
  let raws = List.map select rows in
  {
    latency0 = Stats.mean (List.map (fun r -> r.r_l0) raws);
    upper = Stats.mean (List.map (fun r -> r.r_ub) raws);
    latency_crash = Stats.mean (List.map (fun r -> r.r_lc) raws);
    overhead0 = Stats.mean (List.map (fun r -> r.r_ov0) raws);
    overhead_crash = Stats.mean (List.map (fun r -> r.r_ovc) raws);
    messages = Stats.mean (List.map (fun r -> r.r_msgs) raws);
    latency0_stddev = Stats.stddev (List.map (fun r -> r.r_l0) raws);
  }

(* -- checkpointing ------------------------------------------------------ *)

(* Floats are stored as ["%.17g"] strings, not JSON numbers: the printer
   renders numbers with %.12g, which does not round-trip every double,
   and resuming from a checkpoint must reproduce the uninterrupted report
   byte for byte. *)
let json_of_float x = Json.String (Printf.sprintf "%.17g" x)

let float_of_json = function
  | Json.String s -> float_of_string_opt s
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let json_of_algo a =
  Json.Obj
    [
      ("latency0", json_of_float a.latency0);
      ("upper", json_of_float a.upper);
      ("latency_crash", json_of_float a.latency_crash);
      ("overhead0", json_of_float a.overhead0);
      ("overhead_crash", json_of_float a.overhead_crash);
      ("messages", json_of_float a.messages);
      ("latency0_stddev", json_of_float a.latency0_stddev);
    ]

let algo_of_json j =
  let f name = Option.bind (Json.member name j) float_of_json in
  match
    ( f "latency0",
      f "upper",
      f "latency_crash",
      f "overhead0",
      f "overhead_crash",
      f "messages",
      f "latency0_stddev" )
  with
  | Some l0, Some ub, Some lc, Some ov0, Some ovc, Some msgs, Some sd ->
      Some
        {
          latency0 = l0;
          upper = ub;
          latency_crash = lc;
          overhead0 = ov0;
          overhead_crash = ovc;
          messages = msgs;
          latency0_stddev = sd;
        }
  | _ -> None

let json_of_point p =
  Json.Obj
    [
      ("granularity", json_of_float p.granularity);
      ("caft", json_of_algo p.caft);
      ("ftsa", json_of_algo p.ftsa);
      ("ftbar", json_of_algo p.ftbar);
      ("fault_free_caft", json_of_float p.fault_free_caft);
      ("fault_free_ftbar", json_of_float p.fault_free_ftbar);
      ("edges", json_of_float p.edges);
    ]

let point_of_json j =
  let f name = Option.bind (Json.member name j) float_of_json in
  let a name = Option.bind (Json.member name j) algo_of_json in
  match
    ( f "granularity",
      a "caft",
      a "ftsa",
      a "ftbar",
      f "fault_free_caft",
      f "fault_free_ftbar",
      f "edges" )
  with
  | Some g, Some caft, Some ftsa, Some ftbar, Some ffc, Some ffb, Some edges
    ->
      Some
        {
          granularity = g;
          caft;
          ftsa;
          ftbar;
          fault_free_caft = ffc;
          fault_free_ftbar = ffb;
          edges;
        }
  | _ -> None

(* The completed-point map is keyed by the exact bits of the granularity. *)
let gkey g = Printf.sprintf "%.17g" g

let save_checkpoint path ~id ~seed pts =
  let doc =
    Json.Obj
      [
        ("campaign", Json.String id);
        ("seed", Json.Int seed);
        ("points", Json.List (List.map json_of_point (List.rev pts)));
      ]
  in
  (* atomic: write the whole file to a temp sibling, then rename over the
     destination — a kill mid-write never corrupts an existing checkpoint *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 doc);
      output_char oc '\n');
  Sys.rename tmp path

exception Checkpoint_error of string

let load_checkpoint path ~id ~seed =
  if not (Sys.file_exists path) then []
  else
    let contents =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* an empty file holds no completed points to protect — treat it as
       absent (Filename.temp_file and `touch` both produce one) *)
    if String.trim contents = "" then []
    else
    match Json.parse contents with
    | Error e ->
        (* Saves are atomic (temp + rename), so a malformed file is not
           the expected crash damage — it is outside interference.
           Silently starting over would discard hours of completed
           points; make the caller decide. *)
        raise
          (Checkpoint_error
             (Printf.sprintf
                "%s: corrupt campaign checkpoint (%s); remove the file to \
                 start the sweep over"
                path e))
    | Ok doc ->
        let same_id =
          Option.bind (Json.member "campaign" doc) Json.to_str = Some id
        in
        let same_seed =
          Option.bind (Json.member "seed" doc) Json.to_int = Some seed
        in
        if not (same_id && same_seed) then []
        else
          Json.member "points" doc
          |> Option.fold ~none:[] ~some:Json.to_list
          |> List.filter_map point_of_json

let run ?(seed = 2008) ?(progress = Obs_log.progress) ?domains ?checkpoint
    (config : Config.t) =
  let rng = Rng.create seed in
  (* Draw the instances once; the granularity sweep only rescales costs. *)
  let instances =
    List.init config.Config.graphs_per_point (fun _ ->
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let params = Platform_gen.default ~m:config.Config.m () in
        let costs1 = Platform_gen.instance grng ~granularity:1.0 params dag in
        let sched_seed = Rng.int grng 1_000_000 in
        let crashed =
          Scenario.uniform_procs grng ~m:config.Config.m
            ~count:config.Config.crashes
        in
        { costs1; sched_seed; crashed })
  in
  let epsilon = config.Config.epsilon in
  let point granularity =
    let t_start = Obs_clock.now () in
    let rows =
      Obs_trace.with_span ~cat:"campaign"
        ~args:(fun () ->
          [
            ("figure", Json.String config.Config.id);
            ("granularity", Json.Float granularity);
          ])
        "point"
        (fun () ->
          (* the trace span above already carries figure/granularity args;
             the phase only adds profiler attribution *)
          Obs_prof.phase ~trace:false "campaign.point" @@ fun () ->
          Parallel.map ?domains
            (measure_instance ~epsilon ~granularity)
            instances)
    in
    Obs_metrics.observe m_point_seconds (Obs_clock.now () -. t_start);
    let p =
      {
        granularity;
        caft = summarize rows (fun r -> r.i_caft);
        ftsa = summarize rows (fun r -> r.i_ftsa);
        ftbar = summarize rows (fun r -> r.i_ftbar);
        fault_free_caft = Stats.mean (List.map (fun r -> r.i_ffc) rows);
        fault_free_ftbar = Stats.mean (List.map (fun r -> r.i_ffb) rows);
        edges = Stats.mean (List.map (fun r -> r.i_edges) rows);
      }
    in
    progress
      (Printf.sprintf
         "%s: granularity %.2f done (CAFT %.2f, FTSA %.2f, FTBAR %.2f)"
         config.Config.id granularity p.caft.latency0 p.ftsa.latency0
         p.ftbar.latency0);
    p
  in
  let recorded =
    match checkpoint with
    | None -> []
    | Some path ->
        List.map
          (fun p -> (gkey p.granularity, p))
          (load_checkpoint path ~id:config.Config.id ~seed)
  in
  let done_points = ref [] in
  let point_or_resume granularity =
    let p =
      match List.assoc_opt (gkey granularity) recorded with
      | Some p ->
          progress
            (Printf.sprintf "%s: granularity %.2f restored from checkpoint"
               config.Config.id granularity);
          p
      | None ->
          let p = point granularity in
          (* persist immediately: a kill at any later instant finds the
             completed point on disk *)
          (match checkpoint with
          | Some path ->
              save_checkpoint path ~id:config.Config.id ~seed
                (p :: !done_points)
          | None -> ());
          p
    in
    done_points := p :: !done_points;
    p
  in
  { config; points = List.map point_or_resume config.Config.granularities }
