type algo_metrics = {
  latency0 : float;
  upper : float;
  latency_crash : float;
  overhead0 : float;
  overhead_crash : float;
  messages : float;
  latency0_stddev : float;
}

type point = {
  granularity : float;
  caft : algo_metrics;
  ftsa : algo_metrics;
  ftbar : algo_metrics;
  fault_free_caft : float;
  fault_free_ftbar : float;
  edges : float;
}

type result = { config : Config.t; points : point list }

let normalization costs =
  let dag = Costs.dag costs in
  let mean_delay = Platform.mean_delay (Costs.platform costs) in
  let e = Dag.edge_count dag in
  if e = 0 || mean_delay = 0. then 1.
  else
    Dag.fold_edges (fun _ _ vol acc -> acc +. (vol *. mean_delay)) dag 0.
    /. float_of_int e

(* one instance of the campaign: the DAG and its unscaled costs *)
type instance = {
  costs1 : Costs.t;
  sched_seed : int;
  crashed : Platform.proc list;
}

(* per-instance, per-algorithm normalized measurements *)
type algo_raw = {
  r_l0 : float;
  r_ub : float;
  r_lc : float;
  r_ov0 : float;
  r_ovc : float;
  r_msgs : float;
}

type instance_raw = {
  i_caft : algo_raw;
  i_ftsa : algo_raw;
  i_ftbar : algo_raw;
  i_ffc : float;
  i_ffb : float;
  i_edges : float;
}

let m_instances =
  Obs_metrics.counter ~help:"instances scheduled (all algorithms, all points)"
    "campaign.instances"

let m_point_seconds =
  Obs_metrics.histogram
    ~buckets:[| 0.01; 0.1; 1.; 10.; 60.; 300.; 1800. |]
    ~help:"wall-clock seconds per granularity point" "campaign.point_seconds"

let measure sched ~crashed =
  let out = Replay.crash_from_start sched ~crashed in
  if not out.Replay.completed then
    failwith
      (Printf.sprintf
         "Campaign.run: %s schedule failed under %d crashes (should resist)"
         (Schedule.algorithm sched) (List.length crashed));
  out.Replay.latency

(* Everything measured about one instance at one granularity.  Pure
   function of the instance (no shared mutable state), so the instances of
   a point can be evaluated on parallel domains. *)
let measure_instance ~epsilon ~granularity inst =
  Obs_metrics.incr m_instances;
  let costs = Granularity.rescale_to inst.costs1 granularity in
  let norm = normalization costs in
  let seed = inst.sched_seed in
  let ff_caft = Caft.fault_free ~seed costs in
  let ff_ftbar = Ftbar.run ~seed ~epsilon:0 costs in
  let lstar = Schedule.latency_zero_crash ff_caft in
  let overhead l = 100. *. (l -. lstar) /. lstar in
  let algo schedule =
    let sched = schedule ~seed ~epsilon costs in
    let lc = measure sched ~crashed:inst.crashed in
    let l0 = Schedule.latency_zero_crash sched in
    {
      r_l0 = l0 /. norm;
      r_ub = Schedule.latency_upper_bound sched /. norm;
      r_lc = lc /. norm;
      r_ov0 = overhead l0;
      r_ovc = overhead lc;
      r_msgs = float_of_int (Schedule.message_count sched);
    }
  in
  {
    i_caft = algo (fun ~seed ~epsilon costs -> Caft.run ~seed ~epsilon costs);
    i_ftsa = algo (fun ~seed ~epsilon costs -> Ftsa.run ~seed ~epsilon costs);
    i_ftbar = algo (fun ~seed ~epsilon costs -> Ftbar.run ~seed ~epsilon costs);
    i_ffc = Schedule.latency_zero_crash ff_caft /. norm;
    i_ffb = Schedule.latency_zero_crash ff_ftbar /. norm;
    i_edges = float_of_int (Dag.edge_count (Costs.dag costs));
  }

let summarize rows select =
  let raws = List.map select rows in
  {
    latency0 = Stats.mean (List.map (fun r -> r.r_l0) raws);
    upper = Stats.mean (List.map (fun r -> r.r_ub) raws);
    latency_crash = Stats.mean (List.map (fun r -> r.r_lc) raws);
    overhead0 = Stats.mean (List.map (fun r -> r.r_ov0) raws);
    overhead_crash = Stats.mean (List.map (fun r -> r.r_ovc) raws);
    messages = Stats.mean (List.map (fun r -> r.r_msgs) raws);
    latency0_stddev = Stats.stddev (List.map (fun r -> r.r_l0) raws);
  }

let run ?(seed = 2008) ?(progress = Obs_log.progress) ?domains
    (config : Config.t) =
  let rng = Rng.create seed in
  (* Draw the instances once; the granularity sweep only rescales costs. *)
  let instances =
    List.init config.Config.graphs_per_point (fun _ ->
        let grng = Rng.split rng in
        let dag = Random_dag.generate_default grng in
        let params = Platform_gen.default ~m:config.Config.m () in
        let costs1 = Platform_gen.instance grng ~granularity:1.0 params dag in
        let sched_seed = Rng.int grng 1_000_000 in
        let crashed =
          Scenario.uniform_procs grng ~m:config.Config.m
            ~count:config.Config.crashes
        in
        { costs1; sched_seed; crashed })
  in
  let epsilon = config.Config.epsilon in
  let point granularity =
    let t_start = Obs_clock.now () in
    let rows =
      Obs_trace.with_span ~cat:"campaign"
        ~args:(fun () ->
          [
            ("figure", Json.String config.Config.id);
            ("granularity", Json.Float granularity);
          ])
        "point"
        (fun () ->
          Parallel.map ?domains
            (measure_instance ~epsilon ~granularity)
            instances)
    in
    Obs_metrics.observe m_point_seconds (Obs_clock.now () -. t_start);
    let p =
      {
        granularity;
        caft = summarize rows (fun r -> r.i_caft);
        ftsa = summarize rows (fun r -> r.i_ftsa);
        ftbar = summarize rows (fun r -> r.i_ftbar);
        fault_free_caft = Stats.mean (List.map (fun r -> r.i_ffc) rows);
        fault_free_ftbar = Stats.mean (List.map (fun r -> r.i_ffb) rows);
        edges = Stats.mean (List.map (fun r -> r.i_edges) rows);
      }
    in
    progress
      (Printf.sprintf
         "%s: granularity %.2f done (CAFT %.2f, FTSA %.2f, FTBAR %.2f)"
         config.Config.id granularity p.caft.latency0 p.ftsa.latency0
         p.ftbar.latency0);
    p
  in
  { config; points = List.map point config.Config.granularities }
