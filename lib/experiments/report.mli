(** Rendering of campaign results in the layout of the paper's figures.

    Each figure has three panels: (a) normalized latency of the bound
    series (0-crash, upper bound, fault-free references), (b) normalized
    latency with effective crashes, (c) average fault-tolerance overhead
    in percent.  One row per granularity, one column per series, matching
    the curves of the paper. *)

val panel_a : Campaign.result -> Text_table.t
(** Series: FTSA-0, FTSA-UB, FTBAR-0, FTBAR-UB, CAFT-0, CAFT-UB,
    FF-CAFT, FF-FTBAR. *)

val panel_b : Campaign.result -> Text_table.t
(** Series: X-0 and X-crash for X in FTSA, FTBAR, CAFT. *)

val panel_c : Campaign.result -> Text_table.t
(** Overheads (percent): X-0 and X-crash for X in FTSA, FTBAR, CAFT. *)

val messages : Campaign.result -> Text_table.t
(** Mean inter-processor message counts per algorithm, with the
    [e(eps+1)] and [e(eps+1)^2] reference columns. *)

val render : Campaign.result -> string
(** All four tables, with headers. *)

val to_csv : Campaign.result -> string
(** Flat CSV of every series (one row per granularity). *)

val to_gnuplot : Campaign.result -> data:string -> string
(** A gnuplot script reproducing the figure's three panels from the CSV
    written by {!to_csv} (pass its path as [data]).  Running
    [gnuplot fig1.gp] renders [<id>_a.png], [<id>_b.png] and
    [<id>_c.png] with the same series and axes as the paper's plots. *)
