(** Experiment configurations for the paper's evaluation (Section 6).

    Every figure of the paper is a sweep over task-graph granularity at a
    fixed platform size [m], replication level [epsilon] and effective
    crash count, averaged over 60 random DAGs per point. *)

type t = {
  id : string;  (** "fig1" .. "fig6" *)
  description : string;
  granularities : float list;
  m : int;  (** processors *)
  epsilon : int;  (** failures supported by the schedules *)
  crashes : int;  (** processors actually crashed in the (b)/(c) panels *)
  graphs_per_point : int;  (** 60 in the paper *)
}

val range_a : float list
(** Granularity type A: 0.2 to 2.0 in steps of 0.2. *)

val range_b : float list
(** Granularity type B: 1 to 10 in steps of 1. *)

val figure : int -> t
(** [figure n] for [n] in 1..6, exactly the paper's six figures:
    Figures 1/2/3 sweep range A with (m=10, eps=1, 1 crash),
    (m=10, eps=3, 2 crashes), (m=20, eps=5, 3 crashes); Figures 4/5/6
    repeat those platforms on range B.  Raises [Invalid_argument]
    otherwise. *)

val all_figures : t list

val with_graphs_per_point : t -> int -> t
(** Override the sample count (e.g. for quick runs); raises
    [Invalid_argument] on non-positive values. *)
