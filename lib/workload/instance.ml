let families =
  [
    "random"; "fork"; "join"; "chain"; "out-tree"; "fork-join"; "stencil";
    "gauss"; "butterfly"; "cholesky"; "staged"; "pipelines";
  ]

(* The shape parameters derived from [tasks] are frozen: the stream-scale
   golden fingerprints and every cram transcript were produced by this
   exact dispatch (moved verbatim from bin/ftsched_cli.ml). *)
let make_dag rng ~family ~tasks =
  match family with
  | "random" ->
      Ok
        (Random_dag.generate rng
           {
             Random_dag.default with
             Random_dag.tasks_min = tasks;
             tasks_max = tasks;
           })
  | "fork" -> Ok (Families.fork (max 1 (tasks - 1)))
  | "join" -> Ok (Families.join (max 1 (tasks - 1)))
  | "chain" -> Ok (Families.chain (max 1 tasks))
  | "fork-join" -> Ok (Families.fork_join (max 1 (tasks - 2)))
  | "out-tree" ->
      (* choose the depth so a binary tree roughly reaches [tasks] nodes *)
      let depth = max 1 (int_of_float (Float.log2 (float_of_int (max 2 tasks)))) in
      Ok (Families.out_tree ~arity:2 ~depth ())
  | "staged" ->
      (* Montage-style staged fan-out/fan-in: 8 stages sized to [tasks] *)
      let stages = 8 in
      let width = max 1 (((max 2 tasks - 1) / stages) - 1) in
      Ok (Families.staged_fanout ~stages ~width ())
  | "pipelines" ->
      (* lane bundle: depth-16 chains, lane count sized to [tasks] *)
      let depth = 16 in
      let lanes = max 1 ((max 3 tasks - 2) / depth) in
      Ok (Families.parallel_chains ~lanes ~depth ())
  | "stencil" ->
      let width = max 2 (int_of_float (sqrt (float_of_int (max 4 tasks)))) in
      Ok (Families.stencil_1d ~width ~steps:(max 2 (tasks / width)) ())
  | "gauss" ->
      let n = max 3 (int_of_float (sqrt (2. *. float_of_int (max 4 tasks)))) in
      Ok (Families.gaussian_elimination n)
  | "butterfly" ->
      let k = max 1 (int_of_float (Float.log2 (float_of_int (max 2 tasks)) /. 2.)) in
      Ok (Families.butterfly k)
  | "cholesky" ->
      (* T tiles yield about T^3/6 tasks *)
      let t = max 2 (int_of_float (Float.cbrt (6. *. float_of_int (max 4 tasks)))) in
      Ok (Families.cholesky t)
  | other ->
      Error
        (Printf.sprintf "unknown graph family %S (expected one of: %s)" other
           (String.concat ", " families))

let make ?(seed = 1) ?(family = "random") ?(tasks = 40) ?(m = 10)
    ?(granularity = 1.0) () =
  if tasks < 1 then Error "tasks must be >= 1"
  else if m < 1 then Error "processors must be >= 1"
  else if not (Float.is_finite granularity) || granularity <= 0. then
    Error "granularity must be a positive finite number"
  else
    let rng = Rng.create seed in
    match make_dag rng ~family ~tasks with
    | Error _ as e -> e
    | Ok dag ->
        let params = Platform_gen.default ~m () in
        let costs = Platform_gen.instance rng ~granularity params dag in
        Ok (dag, costs)
