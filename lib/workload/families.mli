(** Structured task-graph families.

    Fork and out-forest graphs are the families for which Proposition 5.1
    proves CAFT's [e(epsilon+1)] message bound; the other shapes are the
    classic kernels used by examples and tests (pipelines, fork-join
    reductions, wavefronts, Gaussian elimination). *)

val fork : ?volume:float -> int -> Dag.t
(** [fork n]: one source with [n] independent children ([n+1] tasks).
    All edges carry [volume] (default [100.]). *)

val join : ?volume:float -> int -> Dag.t
(** [join n]: [n] independent tasks feeding one sink. *)

val chain : ?volume:float -> int -> Dag.t
(** [chain n]: a pipeline of [n] tasks.  Raises on [n < 1]. *)

val out_tree : ?volume:float -> arity:int -> depth:int -> unit -> Dag.t
(** Complete out-tree: every internal node has [arity] children, [depth]
    levels of edges ([depth = 0] is a single task).  An out-forest, hence
    covered by Proposition 5.1. *)

val in_tree : ?volume:float -> arity:int -> depth:int -> unit -> Dag.t
(** Mirror of {!out_tree}: a reduction tree. *)

val fork_join : ?volume:float -> int -> Dag.t
(** [fork_join n]: source, [n] parallel middle tasks, sink ([n+2]
    tasks). *)

val diamond : ?volume:float -> width:int -> unit -> Dag.t
(** Two-level diamond: source -> [width] parallel tasks -> sink, plus a
    direct source->sink shortcut edge. *)

val stencil_1d : ?volume:float -> width:int -> steps:int -> unit -> Dag.t
(** One-dimensional wavefront: [steps] rows of [width] tasks; task
    [(s, i)] depends on [(s-1, i-1)], [(s-1, i)] and [(s-1, i+1)] where
    they exist.  A classic iterative-stencil workload. *)

val staged_fanout : ?volume:float -> stages:int -> width:int -> unit -> Dag.t
(** Montage/Epigenomics-style scientific workflow: a source task, then
    [stages] successive rounds of [width] parallel tasks, each round
    gathered by a synchronization task that seeds the next round —
    [1 + stages * (width + 1)] tasks, [2 * stages * width] edges.  The
    repeated wide fan-out/fan-in is the frontier-width stress shape for
    large-n scheduling.  [stages >= 1], [width >= 1]. *)

val parallel_chains : ?volume:float -> lanes:int -> depth:int -> unit -> Dag.t
(** Pipeline bundle: one fork feeding [lanes] independent linear chains
    of [depth] tasks, joined by one sink — [lanes * depth + 2] tasks.
    The streaming-workflow shape of the Benoit–Rehn-Sonigo-Robert
    pipeline papers.  [lanes >= 1], [depth >= 1]. *)

val gaussian_elimination : ?volume:float -> int -> Dag.t
(** Task graph of Gaussian elimination on an [n x n] matrix: pivot tasks
    [piv_k] and update tasks [upd_(k,j)] for [k < j <= n-1], with the
    standard dependencies.  [n >= 2]. *)

val butterfly : ?volume:float -> int -> Dag.t
(** FFT butterfly over [2^k] points: [k + 1] ranks of [2^k] tasks; task
    [(rank, i)] depends on [(rank-1, i)] and [(rank-1, i xor 2^(rank-1))].
    [k >= 1]. *)

val cholesky : ?volume:float -> int -> Dag.t
(** Tiled Cholesky factorization over a [T x T] tile grid: POTRF / TRSM /
    SYRK / GEMM tasks with the standard dependencies — the classic
    irregular linear-algebra workflow.  [T >= 1]. *)
