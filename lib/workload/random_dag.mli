(** Random task graphs with the characteristics of the paper's
    experimental campaign (Section 6):

    - number of tasks uniform in [\[80, 120\]];
    - number of incoming/outgoing edges per task in [\[1, 3\]];
    - message volume per edge uniform in [\[50, 150\]].

    The generator works in a fixed topological order: each non-entry task
    draws an in-degree in the configured range and connects to that many
    distinct predecessors, chosen uniformly among the most recent tasks
    that still have out-capacity (a sliding locality window).  This keeps
    both degree distributions inside the range without saturating the
    tail of the order, and produces the layered structure of real
    workflow graphs.  The first task is always an entry; the last tasks
    naturally become exits. *)

type params = {
  tasks_min : int;
  tasks_max : int;
  degree_min : int;  (** desired out-degree lower bound *)
  degree_max : int;  (** out-degree and in-degree cap *)
  volume_min : float;
  volume_max : float;
}

val default : params
(** The paper's values: tasks in [\[80, 120\]], degrees in [\[1, 3\]],
    volumes in [\[50, 150\]]. *)

val generate : Rng.t -> params -> Dag.t
(** A fresh random DAG.  Raises [Invalid_argument] on inconsistent
    parameters (negative sizes, [degree_min > degree_max], empty volume
    range, [tasks_min > tasks_max] or [tasks_min < 1]). *)

val generate_default : Rng.t -> Dag.t
