(** Random heterogeneous platforms and cost matrices.

    Communication heterogeneity follows the paper: unit message delays of
    the links are uniform in [\[0.5, 1\]].  Computational heterogeneity is
    not specified by the paper; we use the standard "inconsistent
    heterogeneity" model [E(t, Pk) = base(t) * factor(t, Pk)] with
    [base(t)] uniform in [\[base_min, base_max\]] and [factor] uniform in
    [\[1 - het, 1 + het\]] (see DESIGN.md, Substitutions). *)

type params = {
  m : int;  (** number of processors *)
  delay_min : float;
  delay_max : float;
  base_min : float;  (** per-task base execution cost range *)
  base_max : float;
  heterogeneity : float;  (** per-processor factor spread, in [\[0, 1)] *)
}

val default : ?m:int -> unit -> params
(** The paper's values: delays in [\[0.5, 1\]]; bases in [\[50, 150\]]
    (same scale as message volumes — the granularity rescaling overrides
    the absolute scale anyway); heterogeneity 0.5.  [m] defaults to 10. *)

val platform : Rng.t -> params -> Platform.t
(** Fully connected platform with random per-link unit delays. *)

val costs : Rng.t -> params -> Dag.t -> Platform.t -> Costs.t
(** Random execution-cost matrix for the DAG on the platform. *)

val instance : Rng.t -> ?granularity:float -> params -> Dag.t -> Costs.t
(** Platform plus costs in one call; when [granularity] is given, the
    execution costs are rescaled so that [g(G, P)] hits it exactly
    ({!Granularity.rescale_to}). *)
