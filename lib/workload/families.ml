let build n_tasks ?names edges =
  Dag.make ?names ~n:n_tasks ~edges ()

let fork ?(volume = 100.) n =
  if n < 0 then invalid_arg "Families.fork";
  build (n + 1) (List.init n (fun i -> (0, i + 1, volume)))

let join ?(volume = 100.) n =
  if n < 0 then invalid_arg "Families.join";
  build (n + 1) (List.init n (fun i -> (i, n, volume)))

let chain ?(volume = 100.) n =
  if n < 1 then invalid_arg "Families.chain";
  build n (List.init (n - 1) (fun i -> (i, i + 1, volume)))

let tree_sizes ~arity ~depth =
  if arity < 1 || depth < 0 then invalid_arg "Families.tree";
  (* number of nodes of a complete arity-ary tree with [depth] edge levels *)
  let rec total level acc width =
    if level > depth then acc else total (level + 1) (acc + width) (width * arity)
  in
  total 0 0 1

let out_tree ?(volume = 100.) ~arity ~depth () =
  let n = tree_sizes ~arity ~depth in
  let edges = ref [] in
  (* node i's children are arity*i + 1 .. arity*i + arity, BFS layout *)
  for i = 0 to n - 1 do
    for c = 1 to arity do
      let j = (arity * i) + c in
      if j < n then edges := (i, j, volume) :: !edges
    done
  done;
  build n !edges

let in_tree ?(volume = 100.) ~arity ~depth () =
  let n = tree_sizes ~arity ~depth in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for c = 1 to arity do
      let j = (arity * i) + c in
      if j < n then edges := (j, i, volume) :: !edges
    done
  done;
  build n !edges

let fork_join ?(volume = 100.) n =
  if n < 1 then invalid_arg "Families.fork_join";
  let sink = n + 1 in
  build (n + 2)
    (List.init n (fun i -> (0, i + 1, volume))
    @ List.init n (fun i -> (i + 1, sink, volume)))

let diamond ?(volume = 100.) ~width () =
  if width < 1 then invalid_arg "Families.diamond";
  let sink = width + 1 in
  build (width + 2)
    ((0, sink, volume)
    :: (List.init width (fun i -> (0, i + 1, volume))
       @ List.init width (fun i -> (i + 1, sink, volume))))

let stencil_1d ?(volume = 100.) ~width ~steps () =
  if width < 1 || steps < 1 then invalid_arg "Families.stencil_1d";
  let id s i = (s * width) + i in
  let edges = ref [] in
  for s = 1 to steps - 1 do
    for i = 0 to width - 1 do
      List.iter
        (fun di ->
          let j = i + di in
          if j >= 0 && j < width then
            edges := (id (s - 1) j, id s i, volume) :: !edges)
        [ -1; 0; 1 ]
    done
  done;
  build (width * steps) !edges

let staged_fanout ?(volume = 100.) ~stages ~width () =
  if stages < 1 || width < 1 then invalid_arg "Families.staged_fanout";
  (* Montage/Epigenomics shape: a source, then [stages] rounds of
     [width]-way fan-out each gathered by one synchronization task.  Task
     ids are assigned stage by stage so the hub of stage [s] is the
     gather of stage [s - 1].  Edge count is 2 * stages * width. *)
  let b = Dag.Builder.create () in
  let source = Dag.Builder.add_task ~name:"src" b in
  let hub = ref source in
  for s = 0 to stages - 1 do
    let workers =
      Array.init width (fun i ->
          Dag.Builder.add_task ~name:(Printf.sprintf "s%d_w%d" s i) b)
    in
    let gather = Dag.Builder.add_task ~name:(Printf.sprintf "s%d_gather" s) b in
    Array.iter
      (fun w ->
        Dag.Builder.add_edge b ~src:!hub ~dst:w ~volume;
        Dag.Builder.add_edge b ~src:w ~dst:gather ~volume)
      workers;
    hub := gather
  done;
  Dag.Builder.build b

let parallel_chains ?(volume = 100.) ~lanes ~depth () =
  if lanes < 1 || depth < 1 then invalid_arg "Families.parallel_chains";
  (* [lanes] independent linear pipelines of [depth] tasks between one
     fork and one join — the streaming/pipeline workloads of the
     Benoit–Rehn-Sonigo–Robert line of work, and the widest frontier a
     scheduler can face at a given task count. *)
  let b = Dag.Builder.create () in
  let fork = Dag.Builder.add_task ~name:"fork" b in
  let tails =
    Array.init lanes (fun l ->
        let head = Dag.Builder.add_task ~name:(Printf.sprintf "l%d_0" l) b in
        Dag.Builder.add_edge b ~src:fork ~dst:head ~volume;
        let tail = ref head in
        for d = 1 to depth - 1 do
          let next =
            Dag.Builder.add_task ~name:(Printf.sprintf "l%d_%d" l d) b
          in
          Dag.Builder.add_edge b ~src:!tail ~dst:next ~volume;
          tail := next
        done;
        !tail)
  in
  let join = Dag.Builder.add_task ~name:"join" b in
  Array.iter (fun t -> Dag.Builder.add_edge b ~src:t ~dst:join ~volume) tails;
  Dag.Builder.build b

let gaussian_elimination ?(volume = 100.) n =
  if n < 2 then invalid_arg "Families.gaussian_elimination";
  (* steps k = 0 .. n-2; pivot(k) and updates (k, j) for k < j <= n-1 *)
  let b = Dag.Builder.create () in
  let piv = Array.make (n - 1) 0 in
  let upd = Hashtbl.create 64 in
  for k = 0 to n - 2 do
    piv.(k) <- Dag.Builder.add_task ~name:(Printf.sprintf "piv%d" k) b;
    for j = k + 1 to n - 1 do
      Hashtbl.add upd (k, j)
        (Dag.Builder.add_task ~name:(Printf.sprintf "upd%d_%d" k j) b)
    done
  done;
  for k = 0 to n - 2 do
    for j = k + 1 to n - 1 do
      let u = Hashtbl.find upd (k, j) in
      Dag.Builder.add_edge b ~src:piv.(k) ~dst:u ~volume;
      if k > 0 then
        Dag.Builder.add_edge b ~src:(Hashtbl.find upd (k - 1, j)) ~dst:u ~volume
    done;
    if k > 0 then
      Dag.Builder.add_edge b ~src:(Hashtbl.find upd (k - 1, k)) ~dst:piv.(k) ~volume
  done;
  Dag.Builder.build b

let butterfly ?(volume = 100.) k =
  if k < 1 then invalid_arg "Families.butterfly";
  let n = 1 lsl k in
  let b = Dag.Builder.create () in
  let node = Array.make_matrix (k + 1) n 0 in
  for rank = 0 to k do
    for i = 0 to n - 1 do
      node.(rank).(i) <-
        Dag.Builder.add_task ~name:(Printf.sprintf "b%d_%d" rank i) b
    done
  done;
  for rank = 1 to k do
    let stride = 1 lsl (rank - 1) in
    for i = 0 to n - 1 do
      Dag.Builder.add_edge b ~src:node.(rank - 1).(i) ~dst:node.(rank).(i)
        ~volume;
      Dag.Builder.add_edge b
        ~src:node.(rank - 1).(i lxor stride)
        ~dst:node.(rank).(i) ~volume
    done
  done;
  Dag.Builder.build b

let cholesky ?(volume = 100.) tiles =
  if tiles < 1 then invalid_arg "Families.cholesky";
  let b = Dag.Builder.create () in
  let potrf = Array.make tiles 0 in
  let trsm = Hashtbl.create 32 (* (k, i), k < i *) in
  let syrk = Hashtbl.create 32 (* (k, i), k < i *) in
  let gemm = Hashtbl.create 32 (* (k, i, j), k < j < i *) in
  for k = 0 to tiles - 1 do
    potrf.(k) <- Dag.Builder.add_task ~name:(Printf.sprintf "potrf%d" k) b;
    for i = k + 1 to tiles - 1 do
      Hashtbl.add trsm (k, i)
        (Dag.Builder.add_task ~name:(Printf.sprintf "trsm%d_%d" k i) b);
      Hashtbl.add syrk (k, i)
        (Dag.Builder.add_task ~name:(Printf.sprintf "syrk%d_%d" k i) b);
      for j = k + 1 to i - 1 do
        Hashtbl.add gemm (k, i, j)
          (Dag.Builder.add_task ~name:(Printf.sprintf "gemm%d_%d_%d" k i j) b)
      done
    done
  done;
  let edge src dst = Dag.Builder.add_edge b ~src ~dst ~volume in
  for k = 0 to tiles - 1 do
    (* POTRF(k) consumes the diagonal updates SYRK(j, k) for j < k *)
    for j = 0 to k - 1 do
      edge (Hashtbl.find syrk (j, k)) potrf.(k)
    done;
    for i = k + 1 to tiles - 1 do
      let t = Hashtbl.find trsm (k, i) in
      edge potrf.(k) t;
      (* TRSM(k, i) consumes the panel updates GEMM(j, i, k) for j < k *)
      for j = 0 to k - 1 do
        edge (Hashtbl.find gemm (j, i, k)) t
      done;
      edge t (Hashtbl.find syrk (k, i));
      (* GEMM(k, i, j): needs the two panels TRSM(k, i) and TRSM(k, j) *)
      for j = k + 1 to i - 1 do
        let g = Hashtbl.find gemm (k, i, j) in
        edge t g;
        edge (Hashtbl.find trsm (k, j)) g
      done
    done
  done;
  Dag.Builder.build b
