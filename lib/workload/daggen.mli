(** Daggen-style parametric task graphs.

    The synthetic-DAG generator of the scheduling literature (Suter's
    [daggen], used by countless HEFT-family papers) shapes a graph with
    four intuitive knobs instead of degree ranges:

    - [fat] in [(0, 1\]]: width of the graph — [fat = 1] gives maximal
      parallelism (few fat levels), small [fat] gives a long skinny chain
      of levels;
    - [regular] in [\[0, 1\]]: how uniform the level widths are;
    - [density] in [\[0, 1\]]: fraction of the possible edges between
      consecutive levels that exist;
    - [jump >= 1]: edges may skip up to [jump] levels ahead ([1] connects
      only consecutive levels).

    Volumes are drawn uniformly from [\[volume_min, volume_max\]].  Every
    non-entry task keeps at least one incoming edge, so the graph never
    has dangling levels. *)

type params = {
  tasks : int;
  fat : float;
  regular : float;
  density : float;
  jump : int;
  volume_min : float;
  volume_max : float;
}

val default : params
(** 100 tasks, [fat 0.5], [regular 0.5], [density 0.5], [jump 2],
    volumes in [\[50, 150\]]. *)

val generate : Rng.t -> params -> Dag.t
(** Raises [Invalid_argument] on out-of-range parameters. *)
