type params = {
  tasks : int;
  fat : float;
  regular : float;
  density : float;
  jump : int;
  volume_min : float;
  volume_max : float;
}

let default =
  {
    tasks = 100;
    fat = 0.5;
    regular = 0.5;
    density = 0.5;
    jump = 2;
    volume_min = 50.;
    volume_max = 150.;
  }

let validate p =
  if p.tasks < 1 then invalid_arg "Daggen.generate: tasks < 1";
  if p.fat <= 0. || p.fat > 1. then invalid_arg "Daggen.generate: fat not in (0,1]";
  if p.regular < 0. || p.regular > 1. then
    invalid_arg "Daggen.generate: regular not in [0,1]";
  if p.density < 0. || p.density > 1. then
    invalid_arg "Daggen.generate: density not in [0,1]";
  if p.jump < 1 then invalid_arg "Daggen.generate: jump < 1";
  if p.volume_min < 0. || p.volume_min > p.volume_max then
    invalid_arg "Daggen.generate: bad volume range"

let generate rng p =
  validate p;
  (* mean level width: fat scales between 1 and sqrt(tasks)-ish wide *)
  let mean_width =
    Float.max 1. (p.fat *. sqrt (float_of_int p.tasks) *. 2.)
  in
  (* carve the task count into levels whose widths wobble around
     [mean_width] by (1 - regular) *)
  let widths = ref [] in
  let remaining = ref p.tasks in
  while !remaining > 0 do
    let wobble = (1. -. p.regular) *. mean_width in
    let w =
      int_of_float (Float.round (Rng.float_in rng (mean_width -. wobble) (mean_width +. wobble +. 1e-9)))
    in
    let w = max 1 (min w !remaining) in
    widths := w :: !widths;
    remaining := !remaining - w
  done;
  let widths = Array.of_list (List.rev !widths) in
  let levels = Array.length widths in
  (* allocate task ids level by level *)
  let b = Dag.Builder.create () in
  (* explicit loops: allocation order defines the task ids *)
  let level_tasks =
    Array.map
      (fun w ->
        let ids = Array.make w 0 in
        for i = 0 to w - 1 do
          ids.(i) <- Dag.Builder.add_task b
        done;
        ids)
      widths
  in
  (* edges: for each pair of levels (l, l') with l < l' <= l + jump, each
     possible edge exists with probability density / (l' - l) (nearer
     levels are denser); then guarantee every non-entry task one parent *)
  let has_parent = Hashtbl.create 64 in
  let edge_exists = Hashtbl.create 256 in
  let try_edge src dst =
    if not (Hashtbl.mem edge_exists (src, dst)) then begin
      Hashtbl.add edge_exists (src, dst) ();
      Dag.Builder.add_edge b ~src ~dst
        ~volume:(Rng.float_in rng p.volume_min p.volume_max);
      Hashtbl.replace has_parent dst ()
    end
  in
  for l = 0 to levels - 2 do
    for l' = l + 1 to min (levels - 1) (l + p.jump) do
      let prob = p.density /. float_of_int (l' - l) in
      Array.iter
        (fun src ->
          Array.iter
            (fun dst -> if Rng.float rng 1.0 < prob then try_edge src dst)
            level_tasks.(l'))
        level_tasks.(l)
    done
  done;
  (* ensure connectivity downward: every task beyond level 0 has a parent *)
  for l = 1 to levels - 1 do
    Array.iter
      (fun dst ->
        if not (Hashtbl.mem has_parent dst) then begin
          let parent_level = Rng.int_in rng (max 0 (l - p.jump)) (l - 1) in
          let src = Rng.pick rng level_tasks.(parent_level) in
          try_edge src dst
        end)
      level_tasks.(l)
  done;
  Dag.Builder.build b
