(** Named problem instances: the (DAG, costs) pair behind one seed.

    The CLI and the serve daemon both accept the same generation
    parameters — seed, graph family, task count, processor count,
    granularity — and must build byte-identical instances from them (a
    cached serve result is only valid if the daemon reconstructs exactly
    the instance the CLI would).  This module is that single definition:
    the family dispatch table and the seeded instance constructor, with
    [result]-typed errors so bad input from a network request or the
    command line never surfaces as a raw exception. *)

val families : string list
(** Accepted [family] names, in documentation order: random, fork, join,
    chain, out-tree, fork-join, stencil, gauss, butterfly, cholesky,
    staged, pipelines. *)

val make_dag : Rng.t -> family:string -> tasks:int -> (Dag.t, string) result
(** Generate one task graph of roughly [tasks] nodes.  The RNG is only
    consumed by the [random] family; the deterministic families derive
    their shape parameters from [tasks] exactly as the historical CLI
    dispatch did (sizes pinned by the stream-scale golden tests).
    [Error] names the unknown family and lists the accepted ones. *)

val make :
  ?seed:int ->
  ?family:string ->
  ?tasks:int ->
  ?m:int ->
  ?granularity:float ->
  unit ->
  (Dag.t * Costs.t, string) result
(** [make ()] draws the DAG and a random heterogeneous platform + cost
    matrix from one root RNG ([seed], default 1), rescaled to the target
    [granularity] (default 1.0) — byte-identical to the CLI's
    [--seed/--family/--tasks/--m/--granularity] instance.  Defaults:
    family [random], 40 tasks, 10 processors.  [Error] (instead of an
    exception) on an unknown family or non-positive sizes. *)
