type params = {
  m : int;
  delay_min : float;
  delay_max : float;
  base_min : float;
  base_max : float;
  heterogeneity : float;
}

let default ?(m = 10) () =
  {
    m;
    delay_min = 0.5;
    delay_max = 1.0;
    base_min = 50.;
    base_max = 150.;
    heterogeneity = 0.5;
  }

let validate p =
  if p.m < 1 then invalid_arg "Platform_gen: m < 1";
  if p.delay_min < 0. || p.delay_min > p.delay_max then
    invalid_arg "Platform_gen: bad delay range";
  if p.base_min < 0. || p.base_min > p.base_max then
    invalid_arg "Platform_gen: bad base cost range";
  if p.heterogeneity < 0. || p.heterogeneity >= 1. then
    invalid_arg "Platform_gen: heterogeneity must be in [0, 1)"

let platform rng p =
  validate p;
  let delays = Array.make_matrix p.m p.m 0. in
  for k = 0 to p.m - 1 do
    for h = 0 to p.m - 1 do
      if k <> h then delays.(k).(h) <- Rng.float_in rng p.delay_min p.delay_max
    done
  done;
  Platform.create ~delays

let costs rng p dag plat =
  validate p;
  let v = Dag.task_count dag in
  let m = Platform.proc_count plat in
  (* explicit loops: Array.init would leave the draw order unspecified *)
  let matrix = Array.make_matrix v m 0. in
  for t = 0 to v - 1 do
    let base = Rng.float_in rng p.base_min p.base_max in
    for proc = 0 to m - 1 do
      matrix.(t).(proc) <-
        base *. Rng.float_in rng (1. -. p.heterogeneity) (1. +. p.heterogeneity)
    done
  done;
  Costs.of_matrix dag plat matrix

let instance rng ?granularity p dag =
  let plat = platform rng p in
  let c = costs rng p dag plat in
  match granularity with
  | None -> c
  | Some g -> Granularity.rescale_to c g
