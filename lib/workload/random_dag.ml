type params = {
  tasks_min : int;
  tasks_max : int;
  degree_min : int;
  degree_max : int;
  volume_min : float;
  volume_max : float;
}

let default =
  {
    tasks_min = 80;
    tasks_max = 120;
    degree_min = 1;
    degree_max = 3;
    volume_min = 50.;
    volume_max = 150.;
  }

let validate p =
  if p.tasks_min < 1 || p.tasks_min > p.tasks_max then
    invalid_arg "Random_dag.generate: bad task-count range";
  if p.degree_min < 0 || p.degree_min > p.degree_max then
    invalid_arg "Random_dag.generate: bad degree range";
  if p.volume_min < 0. || p.volume_min > p.volume_max then
    invalid_arg "Random_dag.generate: bad volume range"

(* Each non-entry task draws its in-degree in [degree_min, degree_max]
   and connects to that many distinct predecessors chosen uniformly in a
   sliding window of the [locality] most recent tasks that still have
   out-capacity.  The window spreads both degree distributions evenly
   (no saturated tail) and produces the layered structure of real
   workflow graphs; out-degrees are capped at [degree_max] as well. *)
let locality = 8

let generate rng p =
  validate p;
  let v = Rng.int_in rng p.tasks_min p.tasks_max in
  let b = Dag.Builder.create () in
  for _ = 1 to v do
    ignore (Dag.Builder.add_task b)
  done;
  let out_deg = Array.make v 0 in
  for j = 1 to v - 1 do
    let window = ref [] in
    for i = max 0 (j - locality) to j - 1 do
      if out_deg.(i) < p.degree_max then window := i :: !window
    done;
    let window = Array.of_list !window in
    let want = Rng.int_in rng p.degree_min p.degree_max in
    let want = min want (Array.length window) in
    if want > 0 then begin
      Rng.shuffle_in_place rng window;
      for k = 0 to want - 1 do
        let i = window.(k) in
        out_deg.(i) <- out_deg.(i) + 1;
        Dag.Builder.add_edge b ~src:i ~dst:j
          ~volume:(Rng.float_in rng p.volume_min p.volume_max)
      done
    end
  done;
  Dag.Builder.build b

let generate_default rng = generate rng default
