(** ASCII Gantt charts of schedules, for examples and debugging.

    Renders one row per processor with task replicas as labelled blocks,
    plus optional rows for the send/receive activity of each processor so
    one-port serialization is visible. *)

val render : ?width:int -> ?show_comm:bool -> Schedule.t -> string
(** [render sched] draws the schedule scaled to [width] characters
    (default 100) per time line.  With [show_comm] (default [false]),
    adds "P<i> snd" and "P<i> rcv" rows showing message legs and
    reception windows. *)

val print : ?width:int -> ?show_comm:bool -> Schedule.t -> unit

val to_svg : ?width:int -> ?row_height:int -> Schedule.t -> string
(** Standalone SVG rendering: one row per processor, one rectangle per
    replica (colour-coded by task, labelled "task.replica"), message legs
    drawn as lines from the sender's row to the receiver's row.  [width]
    (default 900) is the drawing width in pixels; [row_height] defaults
    to 28. *)

val svg_to_file :
  ?width:int -> ?row_height:int -> string -> Schedule.t -> unit
