(** Lower bounds on the achievable latency of an instance.

    Scheduling DAGs with communication is NP-hard; these classical bounds
    put measured latencies in perspective (reports, sanity tests).  Both
    bounds ignore fault tolerance, so they also bound every fault-free
    schedule, and every zero-crash latency of a replicated schedule is
    bounded by... nothing in general (replication may delay the first
    copies), but in practice they calibrate the plots. *)

val critical_path : Costs.t -> float
(** Optimistic critical path: longest path where each task counts its
    {e fastest} execution over processors and edges cost zero (two tasks
    in precedence can always be co-located).  No schedule, under any
    communication model, finishes earlier. *)

val work : Costs.t -> float
(** Work bound: the sum over tasks of the fastest execution time divided
    by the number of processors — even perfect load balancing of one copy
    of every task cannot beat it. *)

val combined : Costs.t -> float
(** [max (critical_path c) (work c)]. *)

val efficiency : Costs.t -> Schedule.t -> float
(** [combined c / latency_zero_crash s], in [\[0, 1\]] for fault-free
    schedules: how close the schedule is to the naive lower bound. *)
