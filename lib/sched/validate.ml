type violation = { check : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.check v.detail

(* Both sweeps live in [Ftsched_util.Intervals]; these wrappers only
   translate interval conflicts into [violation] records.  [intervals]:
   (start, finish, payload) list.  Zero-length intervals never conflict. *)

let bounds (s, f, _) = (s, f)
let payload (_, _, p) = p

let overlap_violations ~check ~describe intervals =
  Intervals.overlaps ~bounds intervals
  |> List.rev_map (fun ov ->
         {
           check;
           detail =
             Printf.sprintf
               "%s overlaps %s (running until %.6f, next starts %.6f)"
               (describe (payload ov.Intervals.ov_running))
               (describe (payload ov.Intervals.ov_starter))
               ov.Intervals.ov_running_until ov.Intervals.ov_starts;
         })

(* at most [capacity] of the intervals may overlap at any instant *)
let depth_violations ~capacity ~check ~describe intervals =
  if capacity = 1 then overlap_violations ~check ~describe intervals
  else
    Intervals.exceeding ~capacity ~bounds intervals
    |> List.rev_map (fun (x, s, f) ->
           {
             check;
             detail =
               Printf.sprintf "%s exceeds port capacity %d ([%.6f,%.6f])"
                 (describe (payload x)) capacity s f;
           })

let describe_replica (r : Schedule.replica) =
  Printf.sprintf "task %d replica %d on P%d" r.Schedule.r_task r.Schedule.r_index
    r.Schedule.r_proc

let describe_message (m : Netstate.message) =
  Printf.sprintf "msg t%d[%d] P%d->P%d" m.Netstate.m_source.Netstate.s_task
    m.Netstate.m_source.Netstate.s_replica m.Netstate.m_source.Netstate.s_proc
    m.Netstate.m_dst_proc

let run_impl ?fabric sched =
  let open Schedule in
  let fabric =
    match fabric with
    | Some f -> f
    | None ->
        Netstate.clique_fabric (Platform.proc_count (Schedule.platform sched))
  in
  let dag = Schedule.dag sched in
  let costs = Schedule.costs sched in
  let violations = ref [] in
  let add check fmt = Printf.ksprintf (fun detail -> violations := { check; detail } :: !violations) fmt in

  (* 1. Execution intervals on each processor are disjoint. *)
  List.iter
    (fun p ->
      let intervals =
        List.map (fun r -> (r.r_start, r.r_finish, r)) (on_proc sched p)
      in
      violations :=
        overlap_violations ~check:"proc-exclusive" ~describe:describe_replica
          intervals
        @ !violations)
    (Platform.procs (Schedule.platform sched));

  (* 2. Durations match the cost matrix; starts are non-negative. *)
  List.iter
    (fun r ->
      let expected = Costs.exec costs r.r_task r.r_proc in
      if not (Flt.approx_eq ~tol:1e-6 (r.r_finish -. r.r_start) expected) then
        add "duration" "%s lasts %.6f, cost matrix says %.6f"
          (describe_replica r) (r.r_finish -. r.r_start) expected;
      if r.r_start < -.Flt.eps then
        add "start-time" "%s starts before time zero (%.6f)"
          (describe_replica r) r.r_start)
    (all_replicas sched);

  (* 3. Supplies: well-formed and causally consistent. *)
  let replica_finish task idx =
    let rs = replicas sched task in
    if idx < 0 || idx >= Array.length rs then None else Some rs.(idx)
  in
  List.iter
    (fun r ->
      let preds = Dag.pred_tasks dag r.r_task in
      (* every predecessor covered by at least one supply *)
      List.iter
        (fun pred ->
          let covered =
            List.exists
              (function
                | Local l -> l.l_pred = pred
                | Message m -> m.Netstate.m_source.Netstate.s_task = pred)
              r.r_inputs
          in
          if not covered then
            add "missing-input" "%s has no supply for predecessor %d"
              (describe_replica r) pred)
        preds;
      (* per-predecessor readiness: at least one supply per pred must be
         delivered by the replica start *)
      List.iter
        (fun pred ->
          let readies =
            List.filter_map
              (function
                | Local l when l.l_pred = pred -> Some l.l_finish
                | Message m when m.Netstate.m_source.Netstate.s_task = pred ->
                    Some m.Netstate.m_arrival
                | Local _ | Message _ -> None)
              r.r_inputs
          in
          match readies with
          | [] -> () (* reported above *)
          | _ ->
              let earliest = Flt.min_list readies in
              if not (Flt.leq ~tol:1e-6 earliest r.r_start) then
                add "precedence" "%s starts at %.6f before data from %d (ready %.6f)"
                  (describe_replica r) r.r_start pred earliest)
        preds;
      List.iter
        (function
          | Local l -> (
              if not (Dag.mem_edge dag ~src:l.l_pred ~dst:r.r_task) then
                add "supply-edge" "%s consumes non-edge %d->%d"
                  (describe_replica r) l.l_pred r.r_task;
              match replica_finish l.l_pred l.l_pred_replica with
              | None ->
                  add "supply-replica" "%s: local supply from unknown replica"
                    (describe_replica r)
              | Some src ->
                  if src.r_proc <> r.r_proc then
                    add "local-colocation"
                      "%s: local supply from t%d[%d] on different proc P%d"
                      (describe_replica r) l.l_pred l.l_pred_replica src.r_proc;
                  if not (Flt.approx_eq ~tol:1e-6 src.r_finish l.l_finish) then
                    add "local-finish"
                      "%s: local supply finish %.6f but source finishes %.6f"
                      (describe_replica r) l.l_finish src.r_finish)
          | Message m -> (
              let s = m.Netstate.m_source in
              if not (Dag.mem_edge dag ~src:s.Netstate.s_task ~dst:r.r_task) then
                add "supply-edge" "%s consumes non-edge %d->%d"
                  (describe_replica r) s.Netstate.s_task r.r_task;
              if m.Netstate.m_dst_proc <> r.r_proc then
                add "message-dst" "%s: message destined to P%d"
                  (describe_replica r) m.Netstate.m_dst_proc;
              if s.Netstate.s_proc = r.r_proc then
                add "message-loop" "%s: message from its own processor"
                  (describe_replica r);
              match replica_finish s.Netstate.s_task s.Netstate.s_replica with
              | None ->
                  add "supply-replica" "%s: message from unknown replica"
                    (describe_replica r)
              | Some src ->
                  if src.r_proc <> s.Netstate.s_proc then
                    add "message-src-proc"
                      "%s: message says source on P%d but replica is on P%d"
                      (describe_replica r) s.Netstate.s_proc src.r_proc;
                  if not (Flt.leq ~tol:1e-6 src.r_finish m.Netstate.m_leg_start)
                  then
                    add "message-causality"
                      "%s: leg starts %.6f before source finish %.6f"
                      (describe_replica r) m.Netstate.m_leg_start src.r_finish;
                  if
                    not
                      (Flt.leq ~tol:1e-6 m.Netstate.m_leg_finish
                         m.Netstate.m_arrival)
                  then
                    add "message-arrival"
                      "%s: arrival %.6f precedes link finish %.6f"
                      (describe_replica r) m.Netstate.m_arrival
                      m.Netstate.m_leg_finish;
                  let expected_w =
                    Platform.comm_time (Schedule.platform sched)
                      ~src:s.Netstate.s_proc ~dst:r.r_proc
                      ~volume:s.Netstate.s_volume
                  in
                  if not (Flt.approx_eq ~tol:1e-6 expected_w m.Netstate.m_duration)
                  then
                    add "message-duration"
                      "%s: duration %.6f but volume*delay is %.6f"
                      (describe_replica r) m.Netstate.m_duration expected_w))
        r.r_inputs)
    (all_replicas sched);

  (* 4. Port and link constraints: inequalities (1)-(3) for the one-port
     model, generalized to depth-k occupancy for the bounded multi-port
     model. *)
  (match Schedule.model sched with
   | Netstate.Macro_dataflow -> ()
   | Netstate.One_port | Netstate.Multiport _ ->
     let capacity =
       match Schedule.model sched with
       | Netstate.Multiport k -> max 1 k
       | Netstate.One_port | Netstate.Macro_dataflow -> 1
     in
     let msgs = messages sched in
     let m = Platform.proc_count (Schedule.platform sched) in
     (* sending constraint (2): at most [capacity] concurrent legs *)
     for p = 0 to m - 1 do
       let legs =
         List.filter_map
           (fun msg ->
             if msg.Netstate.m_source.Netstate.s_proc = p then
               Some (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish, msg)
             else None)
           msgs
       in
       violations :=
         depth_violations ~capacity ~check:"one-port-send"
           ~describe:describe_message legs
         @ !violations
     done;
     (* receiving constraint (3): at most [capacity] concurrent windows *)
     for p = 0 to m - 1 do
       let windows =
         List.filter_map
           (fun msg ->
             if msg.Netstate.m_dst_proc = p then
               Some
                 ( msg.Netstate.m_arrival -. msg.Netstate.m_duration,
                   msg.Netstate.m_arrival,
                   msg )
             else None)
           msgs
       in
       violations :=
         depth_violations ~capacity ~check:"one-port-recv"
           ~describe:describe_message windows
         @ !violations
     done;
     (* link constraint (1), per physical link of the fabric *)
     let per_phys = Array.make fabric.Netstate.phys_count [] in
     List.iter
       (fun msg ->
         let src = msg.Netstate.m_source.Netstate.s_proc in
         let dst = msg.Netstate.m_dst_proc in
         List.iter
           (fun l ->
             per_phys.(l) <-
               (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish, msg)
               :: per_phys.(l))
           (fabric.Netstate.route src dst))
       msgs;
     Array.iter
       (fun legs ->
         violations :=
           overlap_violations ~check:"one-port-link" ~describe:describe_message
             legs
           @ !violations)
       per_phys);
  List.rev !violations

let run ?fabric sched =
  Obs_trace.with_span ~cat:"sched" "validate" (fun () ->
      run_impl ?fabric sched)

let is_valid ?fabric sched = run ?fabric sched = []

let check_exn ?fabric sched =
  match run ?fabric sched with
  | [] -> ()
  | vs ->
      let msg =
        String.concat "\n"
          (List.map (fun v -> Format.asprintf "%a" pp_violation v) vs)
      in
      failwith ("invalid schedule:\n" ^ msg)
