type supply =
  | Local of { l_pred : Dag.task; l_pred_replica : int; l_finish : float }
  | Message of Netstate.message

type replica = {
  r_task : Dag.task;
  r_index : int;
  r_proc : Platform.proc;
  r_start : float;
  r_finish : float;
  r_inputs : supply list;
}

type t = {
  algorithm : string;
  epsilon : int;
  model : Netstate.model;
  insertion : bool;
  costs : Costs.t;
  by_task : replica array array;
  by_proc : replica list array;
  message_count : int;
}

let create ?(insertion = false) ~algorithm ~epsilon ~model ~costs replicas =
  let dag = Costs.dag costs in
  let platform = Costs.platform costs in
  let v = Dag.task_count dag in
  let m = Platform.proc_count platform in
  if epsilon < 0 then invalid_arg "Schedule.create: negative epsilon";
  let per_task = Array.make v [] in
  List.iter
    (fun r ->
      if r.r_task < 0 || r.r_task >= v then
        invalid_arg "Schedule.create: unknown task";
      if r.r_proc < 0 || r.r_proc >= m then
        invalid_arg "Schedule.create: unknown processor";
      per_task.(r.r_task) <- r :: per_task.(r.r_task))
    replicas;
  let by_task =
    Array.mapi
      (fun task rs ->
        let rs = List.sort (fun a b -> compare a.r_index b.r_index) rs in
        if List.length rs <> epsilon + 1 then
          invalid_arg
            (Printf.sprintf
               "Schedule.create: task %d has %d replicas, expected %d" task
               (List.length rs) (epsilon + 1));
        List.iteri
          (fun i r ->
            if r.r_index <> i then
              invalid_arg "Schedule.create: replica indices not 0..epsilon")
          rs;
        let procs = List.map (fun r -> r.r_proc) rs in
        if List.length (List.sort_uniq compare procs) <> epsilon + 1 then
          invalid_arg
            (Printf.sprintf
               "Schedule.create: task %d replicas share a processor" task);
        Array.of_list rs)
      per_task
  in
  let by_proc = Array.make m [] in
  Array.iter
    (fun rs -> Array.iter (fun r -> by_proc.(r.r_proc) <- r :: by_proc.(r.r_proc)) rs)
    by_task;
  let by_proc =
    Array.map (fun rs -> List.sort (fun a b -> compare a.r_start b.r_start) rs) by_proc
  in
  let message_count =
    Array.fold_left
      (fun acc rs ->
        Array.fold_left
          (fun acc r ->
            acc
            + List.length
                (List.filter (function Message _ -> true | Local _ -> false)
                   r.r_inputs))
          acc rs)
      0 by_task
  in
  { algorithm; epsilon; model; insertion; costs; by_task; by_proc; message_count }

let algorithm t = t.algorithm
let epsilon t = t.epsilon
let model t = t.model
let insertion t = t.insertion
let costs t = t.costs
let dag t = Costs.dag t.costs
let platform t = Costs.platform t.costs
let replicas t task = t.by_task.(task)
let replica t task i = t.by_task.(task).(i)

let all_replicas t =
  Array.fold_right (fun rs acc -> Array.to_list rs @ acc) t.by_task []

let on_proc t p = t.by_proc.(p)

let messages t =
  List.filter_map
    (fun r ->
      Some
        (List.filter_map
           (function Message m -> Some m | Local _ -> None)
           r.r_inputs))
    (all_replicas t)
  |> List.concat

let message_count t = t.message_count

let latency_zero_crash t =
  Array.fold_left
    (fun acc rs ->
      let first =
        Array.fold_left (fun best r -> Float.min best r.r_finish) infinity rs
      in
      Float.max acc first)
    0. t.by_task

let latency_upper_bound t =
  Array.fold_left
    (fun acc rs ->
      Array.fold_left (fun best r -> Float.max best r.r_finish) acc rs)
    0. t.by_task

let makespan = latency_upper_bound

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>schedule %s: %d tasks x %d replicas on %d processors (%s model)@,\
     latency (0 crash) %.3f, upper bound %.3f, %d messages@]"
    t.algorithm
    (Array.length t.by_task)
    (t.epsilon + 1)
    (Platform.proc_count (platform t))
    (match t.model with
    | Netstate.One_port -> "one-port"
    | Netstate.Macro_dataflow -> "macro-dataflow"
    | Netstate.Multiport k -> Printf.sprintf "multiport-%d" k)
    (latency_zero_crash t) (latency_upper_bound t) t.message_count
