type proc_stats = {
  proc : Platform.proc;
  busy : float;
  replica_count : int;
  send_busy : float;
  recv_busy : float;
}

type t = {
  horizon : float;
  latency : float;
  total_exec : float;
  total_comm_time : float;
  total_volume : float;
  message_count : int;
  local_supply_count : int;
  mean_utilization : float;
  max_utilization : float;
  replica_imbalance : float;
  per_proc : proc_stats list;
}

let analyze sched =
  let platform = Schedule.platform sched in
  let horizon = Schedule.makespan sched in
  let messages = Schedule.messages sched in
  let per_proc =
    List.map
      (fun p ->
        let replicas = Schedule.on_proc sched p in
        let busy =
          List.fold_left
            (fun acc (r : Schedule.replica) ->
              acc +. (r.Schedule.r_finish -. r.Schedule.r_start))
            0. replicas
        in
        let send_busy =
          List.fold_left
            (fun acc (msg : Netstate.message) ->
              if msg.Netstate.m_source.Netstate.s_proc = p then
                acc +. (msg.Netstate.m_leg_finish -. msg.Netstate.m_leg_start)
              else acc)
            0. messages
        in
        let recv_busy =
          List.fold_left
            (fun acc (msg : Netstate.message) ->
              if msg.Netstate.m_dst_proc = p then acc +. msg.Netstate.m_duration
              else acc)
            0. messages
        in
        { proc = p; busy; replica_count = List.length replicas; send_busy; recv_busy })
      (Platform.procs platform)
  in
  let total_exec = List.fold_left (fun acc s -> acc +. s.busy) 0. per_proc in
  let total_comm_time =
    List.fold_left (fun acc (msg : Netstate.message) -> acc +. msg.Netstate.m_duration) 0. messages
  in
  let total_volume =
    List.fold_left
      (fun acc (msg : Netstate.message) ->
        acc +. msg.Netstate.m_source.Netstate.s_volume)
      0. messages
  in
  let local_supply_count =
    List.fold_left
      (fun acc (r : Schedule.replica) ->
        acc
        + List.length
            (List.filter
               (function Schedule.Local _ -> true | Schedule.Message _ -> false)
               r.Schedule.r_inputs))
      0 (Schedule.all_replicas sched)
  in
  let utilizations =
    List.map (fun s -> if horizon > 0. then s.busy /. horizon else 0.) per_proc
  in
  let replica_counts = List.map (fun s -> float_of_int s.replica_count) per_proc in
  let mean_replicas = Stats.mean replica_counts in
  {
    horizon;
    latency = Schedule.latency_zero_crash sched;
    total_exec;
    total_comm_time;
    total_volume;
    message_count = List.length messages;
    local_supply_count;
    mean_utilization = Stats.mean utilizations;
    max_utilization = Flt.max_list utilizations;
    replica_imbalance =
      (if mean_replicas > 0. then Flt.max_list replica_counts /. mean_replicas
       else 0.);
    per_proc;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>horizon %.3f, latency %.3f@,\
     execution: %.3f total (utilization mean %.1f%%, max %.1f%%)@,\
     communication: %d messages, %.3f time, %.3f volume; %d local supplies@,\
     replica imbalance: %.2f@,%a@]"
    t.horizon t.latency t.total_exec
    (100. *. t.mean_utilization)
    (100. *. t.max_utilization)
    t.message_count t.total_comm_time t.total_volume t.local_supply_count
    t.replica_imbalance
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf s ->
         Format.fprintf ppf
           "  P%d: %d replicas, busy %.3f, snd %.3f, rcv %.3f" s.proc
           s.replica_count s.busy s.send_busy s.recv_busy))
    t.per_proc

let serial_comm_lower_bound sched =
  let m = Platform.proc_count (Schedule.platform sched) in
  let total =
    List.fold_left
      (fun acc (msg : Netstate.message) -> acc +. msg.Netstate.m_duration)
      0. (Schedule.messages sched)
  in
  total /. float_of_int m
