(** Transactional network/processor state for list scheduling.

    This module is the communication engine shared by every scheduler in
    the repository.  It maintains, for the platform being scheduled onto:

    - [r(P)] — the ready time of each processor (finish time of the last
      task placed on it; the paper appends tasks, it never back-fills);
    - [SF(P)] — the sending free time of each processor (the one-port
      output port);
    - [RF(P)] — the receiving free time of each processor (the one-port
      input port);
    - [R(l)] — the ready time of every directed link.

    Under the {e bidirectional one-port model} (Section 4.3 of the paper),
    booking a replica serializes its incoming communications according to
    equations (4)–(6): each message leg starts at
    [S(c,l) = max(SF(src), F(src task), R(l))], finishes at [S + W], and
    arrivals at the destination are serialized on the receive port in
    non-decreasing order of link finish time.

    One deliberate deviation from the literal equation (6): we serialize
    each arrival after the {e previous arrival} rather than after the
    previous message's link finish.  The published formula can produce
    overlapping reception windows when [RF(P)] is large (both windows get
    pushed right by the same [max]); using the previous arrival restores
    inequality (3) in all cases and coincides with the published formula
    whenever it is consistent.

    Under the {e macro-dataflow model} there is no contention: a message
    leaves as soon as its source task completes and arrives [W] later;
    ports and links are never busy.

    All booking mutates the state; callers that merely want to evaluate a
    candidate placement run the booking inside {!with_trial}, which
    journals every mutated cell and rolls back only those cells — the
    paper's "the incoming communications are removed from the links
    before the procedure is repeated on the next processor", made
    O(writes-per-booking) instead of the O(m^2) {!snapshot}/{!restore}
    copy (kept as the reference implementation and for whole-phase
    checkpointing). *)

(** Communication model.

    - {!Macro_dataflow}: the traditional contention-free model — a message
      leaves at source completion, arrives [W] later, ports are never
      busy.
    - {!One_port}: the paper's bidirectional one-port model — one send and
      one receive at a time per processor, links exclusive.
    - [Multiport k]: the bounded multi-port model the paper discusses as
      the end-point-contention alternative (Hong & Prasanna's model, cited
      as \[14\]): each processor owns [k] send slots and [k] receive
      slots; a message occupies one slot at each end and its (exclusive)
      link.  [Multiport 1] behaves like {!One_port}. *)
type model = Macro_dataflow | One_port | Multiport of int

(** Physical interconnect description for sparse topologies (the paper's
    Section 7 extension).  [phys_count] physical directed links exist;
    [route src dst] lists the physical links a message from [src] to
    [dst] traverses.  A message reserves {e every} link of its route for
    its whole duration ("at most one message can circulate on a given
    link at a given time-step"), so routes sharing a link contend.  The
    default fabric is the paper's clique: one dedicated link per ordered
    pair. *)
type fabric = {
  phys_count : int;
  route : Platform.proc -> Platform.proc -> int list;
}

val clique_fabric : int -> fabric
(** The fully connected fabric over [m] processors (the default). *)

(** A {e healing} link outage: the directed route [o_src -> o_dst] cannot
    carry data during [\[o_from, o_until)] and works again afterwards
    ([o_until = infinity] models a cut that never heals).  Unlike the
    permanently dead routes of [Ftsched_sim.Replay] ([dead_links]), an
    outage delays traffic rather than losing it: the fault-plan replay
    pushes a message leg past the window, modelling retransmission once
    the link is back. *)
type outage = {
  o_src : Platform.proc;
  o_dst : Platform.proc;
  o_from : float;
  o_until : float;
}

val outage_windows : fabric -> outage list -> (float * float) list array
(** [outage_windows fabric outages] projects pair-level outages onto the
    physical links of the fabric: index [l] holds the merged, disjoint,
    increasing down windows of physical link [l] (every link of
    [route o_src o_dst] is down for the outage's window).  Routes sharing
    a physical link therefore share its outages, exactly like they share
    its contention.  Empty (zero-length) windows are dropped. *)

val merge_windows : (float * float) list -> (float * float) list
(** Sort and coalesce arbitrary [(from, until)] windows into a disjoint
    increasing sequence (windows touching at a point are merged).
    Exposed for the fault-plan replay, which needs the same normalization
    for per-processor down time. *)

type t

type snapshot

val create :
  ?model:model -> ?fabric:fabric -> ?insertion:bool -> Platform.t -> t
(** Fresh state, all free times at zero.  [model] defaults to
    {!One_port}; [fabric] to {!clique_fabric}.  With [insertion] (default
    [false]) execution bookings fill the earliest idle gap of the
    processor instead of appending after its last task — the classic HEFT
    insertion policy, kept as an ablation; the paper's algorithms use
    append semantics. *)

val model : t -> model
val platform : t -> Platform.t
val fabric : t -> fabric

val insertion : t -> bool
(** Whether execution bookings gap-fill (see {!create}). *)

val snapshot : t -> snapshot
(** O(m^2) copy of the whole state. *)

val restore : t -> snapshot -> unit
(** Roll the state back to a snapshot taken on the same value.  Must not
    be called while a {!with_trial} is in flight on [t]: the journal
    records cell values relative to the state it was opened on. *)

val with_trial : t -> (unit -> 'a) -> 'a
(** [with_trial t f] runs [f] — typically one or more speculative
    bookings — and then rolls the state back to exactly where it was,
    undoing only the cells [f] wrote (each booking touches O(in-degree)
    cells, against the O(m^2) floats a {!snapshot} copies).  The result
    of [f] is returned; the rollback also runs if [f] raises.  Trials
    nest: an inner trial rolls back to its own entry point, the outer one
    to its. *)

val proc_ready : t -> Platform.proc -> float
(** [r(P)]. *)

val send_free : t -> Platform.proc -> float
(** [SF(P)]. *)

val recv_free : t -> Platform.proc -> float
(** [RF(P)]. *)

val link_ready : t -> src:Platform.proc -> dst:Platform.proc -> float
(** [R(l)] for the directed link: under a routed fabric, the latest ready
    time over the physical links of the route. *)

(** A candidate data source for one input of a replica under
    consideration: replica [s_replica] of predecessor task [s_task],
    placed on [s_proc], finishing at [s_finish], sending [s_volume] units
    of data. *)
type source = {
  s_task : Dag.task;
  s_replica : int;
  s_proc : Platform.proc;
  s_finish : float;
  s_volume : float;
}

(** One booked message: the link leg [\[leg_start, leg_finish\]] on
    [src_proc -> dst_proc] plus the serialized [arrival] at the
    destination (the reception window is
    [\[arrival - duration, arrival\]]). *)
type message = {
  m_source : source;
  m_dst_proc : Platform.proc;
  m_duration : float;
  m_leg_start : float;
  m_leg_finish : float;
  m_arrival : float;
}

(** Result of booking one replica. *)
type booked = {
  b_start : float;  (** execution start on the processor *)
  b_finish : float;  (** [b_start + exec] *)
  b_messages : message list;  (** inter-processor messages, arrival order *)
  b_local : (Dag.task * int * float) list;
      (** co-located supplies used instead of messages:
          (predecessor, replica index, finish time) *)
}

val book_replica :
  ?colocate_exclusive:bool ->
  t ->
  proc:Platform.proc ->
  exec:float ->
  inputs:(Dag.task * source list) list ->
  booked
(** [book_replica t ~proc ~exec ~inputs] books one replica on [proc].

    [inputs] gives, for each predecessor of the task, the list of sources
    that may supply its data.  If some source of a predecessor is located
    on [proc] itself it becomes a {e local} supply (no message, data ready
    at the source finish) and, when [colocate_exclusive] is [true] (the
    default), the remaining copies of that predecessor are {e not} sent at
    all — the paper's intra-processor rule ("there is no need for other
    copies of [t*] to send data to processor [P]").  Passing
    [colocate_exclusive:false] books the remote copies as messages anyway,
    which CAFT's fallback rounds need when the co-located supplier might
    itself starve under a crash elsewhere (see [Caft]).  Sources on other
    processors are always booked as messages.  The replica may start once {e at least one} source of every
    predecessor has delivered (the "first complete input set" rule used by
    all the schedulers), and once the processor is ready.

    Raises [Invalid_argument] if some predecessor has an empty source
    list.

    The call mutates [t]: link legs consume [SF] of the source processors
    and [R] of the links, arrivals consume [RF(proc)], and the execution
    consumes [r(proc)].  Wrap in {!with_trial} to evaluate without
    committing. *)

val book_exec_only : t -> proc:Platform.proc -> exec:float -> booked
(** Booking for a task with no inputs (entry tasks): starts at [r(proc)]. *)
