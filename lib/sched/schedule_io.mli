(** Plain-text serialization of instances and schedules.

    The format is line-oriented and self-contained: it carries the task
    graph (names, edges, volumes), the platform (unit delays), the cost
    matrix and every replica with its supplies, so a schedule can be
    saved, inspected with standard text tools, diffed across runs, and
    reloaded later for replay or validation without regenerating the
    instance.

    {v
ftsched-schedule v1
algorithm CAFT
epsilon 1
model one-port
tasks 4
procs 3
task 0 load
edge 0 1 80
delay 0 1 0.5
cost 0 0 60
replica 0 0 2 0 60
local 1 0 0 0 60
message 1 1 0 0 2 60 80 1 40 60 100 100
end
    v}

    Floating-point fields are printed with enough digits ([%.17g]) to
    round-trip exactly. *)

val to_string : Schedule.t -> string

val to_file : string -> Schedule.t -> unit

(** {1 Streaming writer}

    Incremental emission for schedules too large to hold in memory: the
    instance header (graph, delays, costs) is written on creation, each
    replica with its supplies as it is placed, and the terminating [end]
    on close.  The format is the same as {!to_string}, so a streamed file
    parses back with {!of_file}; replica lines appear in placement order
    rather than task-id order, which {!Schedule.create} renormalizes on
    parse — re-serializing the parsed schedule yields the exact
    {!to_string} bytes of the equivalent in-memory schedule. *)

type writer

val stream_writer :
  ?insertion:bool ->
  algorithm:string ->
  epsilon:int ->
  model:Netstate.model ->
  path:string ->
  Costs.t ->
  writer
(** Opens [path] for writing and emits the instance header.  The channel
    is closed (and the partial file left behind) if header emission
    raises. *)

val stream_replica : writer -> Schedule.replica -> unit
(** Appends one replica and its supply lines.  Raises [Invalid_argument]
    if the writer is closed. *)

val stream_close : writer -> unit
(** Writes the [end] line and closes the channel; idempotent. *)

exception Parse_error of { line : int; message : string }

val of_string : string -> Schedule.t
(** Rebuilds the costs and the schedule.  Raises {!Parse_error} on
    malformed input and [Invalid_argument] if the payload violates the
    shape checks of {!Schedule.create} (e.g. duplicated replicas). *)

val of_file : string -> Schedule.t
