(** Fault-tolerant schedules: the common output type of all schedulers.

    A schedule maps every task of a DAG onto [epsilon + 1] replicas placed
    on distinct processors (active replication, Section 2), and records
    every data supply each replica depends on — either a co-located
    predecessor replica or an inter-processor message with its booked link
    leg and serialized arrival.  The fail-stop replay simulator and the
    static validator both work from this record. *)

type supply =
  | Local of { l_pred : Dag.task; l_pred_replica : int; l_finish : float }
      (** Data produced by a predecessor replica on the same processor;
          available when that replica finishes. *)
  | Message of Netstate.message
      (** Inter-processor message as booked by {!Netstate.book_replica}. *)

type replica = {
  r_task : Dag.task;
  r_index : int;  (** replica number, [0 .. epsilon] *)
  r_proc : Platform.proc;
  r_start : float;
  r_finish : float;
  r_inputs : supply list;
      (** every supply booked for this replica; each predecessor of the
          task appears in at least one supply *)
}

type t

val create :
  ?insertion:bool ->
  algorithm:string ->
  epsilon:int ->
  model:Netstate.model ->
  costs:Costs.t ->
  replica list ->
  t
(** Packages the replicas produced by a scheduler.  Checks shape only
    (every task present with exactly [epsilon + 1] replicas on pairwise
    distinct processors, replica indices [0..epsilon]); temporal
    consistency is the business of {!Validate}.  Raises
    [Invalid_argument] on shape violations. *)

(** {1 Accessors} *)

val algorithm : t -> string
val epsilon : t -> int
val model : t -> Netstate.model

val insertion : t -> bool
(** Whether the schedule was built with gap-filling execution bookings
    ([false] for the paper's append-only algorithms).  The replay
    simulator uses a work-conserving processor model for insertion
    schedules — see [Ftsched_sim.Replay]. *)

val costs : t -> Costs.t
val dag : t -> Dag.t
val platform : t -> Platform.t

val replicas : t -> Dag.task -> replica array
(** The [epsilon + 1] replicas of a task, by replica index
    ({i do not mutate}). *)

val replica : t -> Dag.task -> int -> replica

val all_replicas : t -> replica list
(** All replicas, tasks in increasing id order. *)

val on_proc : t -> Platform.proc -> replica list
(** Replicas placed on a processor, sorted by start time. *)

val messages : t -> Netstate.message list
(** Every inter-processor message of the schedule. *)

val message_count : t -> int
(** Number of inter-processor messages — the paper's communication-count
    metric ([e(epsilon+1)^2] worst case for FTSA/FTBAR, [e(epsilon+1)] for
    CAFT on out-forests). *)

(** {1 Latency} *)

val latency_zero_crash : t -> float
(** The schedule latency when no processor fails: the latest time at
    which at least one replica of each task has completed —
    [max over tasks of (min over replicas of finish)].  This is the
    paper's lower bound / "with 0 crash" metric. *)

val latency_upper_bound : t -> float
(** The pessimistic bound, "always achieved even with [epsilon]
    failures": the completion time of the last replica of each task —
    [max over tasks of (max over replicas of finish)]. *)

val makespan : t -> float
(** Synonym of {!latency_upper_bound}: when everything in the schedule
    runs, the time the last replica finishes. *)

(** {1 Rendering} *)

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph summary: algorithm, sizes, latencies, message count. *)
