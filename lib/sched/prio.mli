(** Free-task management for list scheduling (Algorithm 5.1 scaffolding).

    Maintains the list [alpha] of free tasks — unscheduled tasks whose
    predecessors are all scheduled — ordered by the priority
    [tl(t) + bl(t)] of Section 5.  Top levels are {e dynamic}: when a task
    is scheduled, the top level of each successor is refreshed with the
    task's achieved completion time (the "current partially clustered
    DAG"), so the priority of a task is fixed at the moment it becomes
    free.  Ties are broken randomly but deterministically, by a tiebreak
    drawn per task from the supplied generator. *)

type t

val create : rng:Rng.t -> Costs.t -> t
(** Computes static levels, seeds the free list with the entry tasks. *)

val levels : t -> Levels.t

val pop : t -> Dag.task option
(** Remove and return the free task with the highest priority ([H(alpha)]
    in the paper); [None] when no task is free.  If [None] while
    {!remaining} is positive, the caller forgot {!mark_scheduled}. *)

val peek : t -> Dag.task option

val free_count : t -> int

val remaining : t -> int
(** Number of tasks not yet marked scheduled. *)

val is_done : t -> bool

val priority : t -> Dag.task -> float
(** Current priority [tl(t) + bl(t)] with the dynamic top level. *)

val mark_scheduled : t -> Dag.task -> completion:float -> unit
(** Declare the popped task scheduled, with [completion] its achieved
    completion time (the earliest replica finish).  Updates successor top
    levels and releases the successors that become free.  Raises
    [Invalid_argument] if the task is not currently popped-unscheduled or
    was already marked. *)
