type t = {
  net : Netstate.t;
  costs : Costs.t;
  epsilon : int;
  placed : Schedule.replica list array;  (* per task, reverse placement order *)
}

let create ?model ?fabric ?insertion ~epsilon costs =
  if epsilon < 0 then invalid_arg "Workspace.create: negative epsilon";
  let platform = Costs.platform costs in
  if epsilon >= Platform.proc_count platform then
    invalid_arg
      "Workspace.create: need at least epsilon+1 processors for replication";
  {
    net = Netstate.create ?model ?fabric ?insertion platform;
    costs;
    epsilon;
    placed = Array.make (Dag.task_count (Costs.dag costs)) [];
  }

let net t = t.net
let costs t = t.costs
let dag t = Costs.dag t.costs
let platform t = Costs.platform t.costs
let epsilon t = t.epsilon
let placed t task = List.rev t.placed.(task)
let placed_count t task = List.length t.placed.(task)

let procs_of t task =
  List.rev_map (fun r -> r.Schedule.r_proc) t.placed.(task)

let is_placed_on t task proc =
  List.exists (fun r -> r.Schedule.r_proc = proc) t.placed.(task)

let source_of_replica _t (r : Schedule.replica) ~volume =
  {
    Netstate.s_task = r.Schedule.r_task;
    s_replica = r.Schedule.r_index;
    s_proc = r.Schedule.r_proc;
    s_finish = r.Schedule.r_finish;
    s_volume = volume;
  }

let sources_all t task =
  let g = dag t in
  Array.to_list
    (Array.map
       (fun (pred, volume) ->
         match placed t pred with
         | [] ->
             invalid_arg
               (Printf.sprintf
                  "Workspace.sources_all: predecessor %d of %d unplaced" pred
                  task)
         | rs -> (pred, List.map (fun r -> source_of_replica t r ~volume) rs))
       (Dag.preds g task))

let sources_chosen t task chosen =
  let g = dag t in
  Array.to_list
    (Array.map
       (fun (pred, volume) ->
         match List.assoc_opt pred chosen with
         | None ->
             invalid_arg
               (Printf.sprintf
                  "Workspace.sources_chosen: no choice for predecessor %d of %d"
                  pred task)
         | Some r -> (pred, [ source_of_replica t r ~volume ]))
       (Dag.preds g task))

let supplies_of_booked (b : Netstate.booked) =
  List.map (fun m -> Schedule.Message m) b.Netstate.b_messages
  @ List.map
      (fun (pred, idx, finish) ->
        Schedule.Local { l_pred = pred; l_pred_replica = idx; l_finish = finish })
      b.Netstate.b_local

let place_unbooked t ~task ~proc ~start ~finish ~inputs =
  let index = List.length t.placed.(task) in
  if index > t.epsilon then
    invalid_arg "Workspace.place: task already fully replicated";
  let r =
    {
      Schedule.r_task = task;
      r_index = index;
      r_proc = proc;
      r_start = start;
      r_finish = finish;
      r_inputs = inputs;
    }
  in
  t.placed.(task) <- r :: t.placed.(task);
  r

let place t ~task ~proc (b : Netstate.booked) =
  place_unbooked t ~task ~proc ~start:b.Netstate.b_start
    ~finish:b.Netstate.b_finish ~inputs:(supplies_of_booked b)

let completion_lower t task =
  match t.placed.(task) with
  | [] -> invalid_arg "Workspace.completion_lower: no replica placed"
  | rs -> List.fold_left (fun acc r -> Float.min acc r.Schedule.r_finish) infinity rs

let to_schedule ~algorithm t =
  let replicas =
    Array.to_list t.placed |> List.concat_map (fun rs -> List.rev rs)
  in
  Schedule.create
    ~insertion:(Netstate.insertion t.net)
    ~algorithm ~epsilon:t.epsilon ~model:(Netstate.model t.net) ~costs:t.costs
    replicas
