type t = {
  net : Netstate.t;
  costs : Costs.t;
  epsilon : int;
  (* Replica storage is per-task fixed-capacity rows (epsilon + 1 slots,
     allocated on first placement) plus a count array, so the per-candidate
     queries of the placement inner loop — placed_count, is_placed_on, the
     next replica index — are O(1) instead of O(|placed|) list walks. *)
  counts : int array;
  slots : Schedule.replica array array;
}

let no_row : Schedule.replica array = [||]

let create ?model ?fabric ?insertion ~epsilon costs =
  if epsilon < 0 then invalid_arg "Workspace.create: negative epsilon";
  let platform = Costs.platform costs in
  if epsilon >= Platform.proc_count platform then
    invalid_arg
      "Workspace.create: need at least epsilon+1 processors for replication";
  let n = Dag.task_count (Costs.dag costs) in
  {
    net = Netstate.create ?model ?fabric ?insertion platform;
    costs;
    epsilon;
    counts = Array.make n 0;
    slots = Array.make n no_row;
  }

let net t = t.net
let costs t = t.costs
let dag t = Costs.dag t.costs
let platform t = Costs.platform t.costs
let epsilon t = t.epsilon

let placed t task =
  let row = t.slots.(task) in
  List.init t.counts.(task) (fun i -> row.(i))

let placed_count t task = t.counts.(task)
let get_placed t task i = t.slots.(task).(i)

let procs_of t task =
  let row = t.slots.(task) in
  List.init t.counts.(task) (fun i -> row.(i).Schedule.r_proc)

let is_placed_on t task proc =
  let row = t.slots.(task) in
  let rec go i =
    i < t.counts.(task)
    && (row.(i).Schedule.r_proc = proc || go (i + 1))
  in
  go 0

let source_of_replica _t (r : Schedule.replica) ~volume =
  {
    Netstate.s_task = r.Schedule.r_task;
    s_replica = r.Schedule.r_index;
    s_proc = r.Schedule.r_proc;
    s_finish = r.Schedule.r_finish;
    s_volume = volume;
  }

let sources_all t task =
  let g = dag t in
  Array.to_list
    (Array.map
       (fun (pred, volume) ->
         match placed t pred with
         | [] ->
             invalid_arg
               (Printf.sprintf
                  "Workspace.sources_all: predecessor %d of %d unplaced" pred
                  task)
         | rs -> (pred, List.map (fun r -> source_of_replica t r ~volume) rs))
       (Dag.preds g task))

let sources_chosen t task chosen =
  let g = dag t in
  Array.to_list
    (Array.map
       (fun (pred, volume) ->
         match List.assoc_opt pred chosen with
         | None ->
             invalid_arg
               (Printf.sprintf
                  "Workspace.sources_chosen: no choice for predecessor %d of %d"
                  pred task)
         | Some r -> (pred, [ source_of_replica t r ~volume ]))
       (Dag.preds g task))

let supplies_of_booked (b : Netstate.booked) =
  List.map (fun m -> Schedule.Message m) b.Netstate.b_messages
  @ List.map
      (fun (pred, idx, finish) ->
        Schedule.Local { l_pred = pred; l_pred_replica = idx; l_finish = finish })
      b.Netstate.b_local

let place_unbooked t ~task ~proc ~start ~finish ~inputs =
  let index = t.counts.(task) in
  if index > t.epsilon then
    invalid_arg "Workspace.place: task already fully replicated";
  let r =
    {
      Schedule.r_task = task;
      r_index = index;
      r_proc = proc;
      r_start = start;
      r_finish = finish;
      r_inputs = inputs;
    }
  in
  if t.slots.(task) == no_row then t.slots.(task) <- Array.make (t.epsilon + 1) r
  else t.slots.(task).(index) <- r;
  t.counts.(task) <- index + 1;
  r

let place t ~task ~proc (b : Netstate.booked) =
  place_unbooked t ~task ~proc ~start:b.Netstate.b_start
    ~finish:b.Netstate.b_finish ~inputs:(supplies_of_booked b)

let strip_inputs t ~task ~index =
  let r = t.slots.(task).(index) in
  if r.Schedule.r_inputs <> [] then
    t.slots.(task).(index) <- { r with Schedule.r_inputs = [] }

let completion_lower t task =
  if t.counts.(task) = 0 then
    invalid_arg "Workspace.completion_lower: no replica placed"
  else begin
    let row = t.slots.(task) in
    let acc = ref infinity in
    for i = 0 to t.counts.(task) - 1 do
      acc := Float.min !acc row.(i).Schedule.r_finish
    done;
    !acc
  end

let to_schedule ~algorithm t =
  let replicas =
    List.concat_map (fun task -> placed t task)
      (List.init (Array.length t.counts) Fun.id)
  in
  Schedule.create
    ~insertion:(Netstate.insertion t.net)
    ~algorithm ~epsilon:t.epsilon ~model:(Netstate.model t.net) ~costs:t.costs
    replicas
