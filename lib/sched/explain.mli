(** Critical-chain analysis: {e why} is the latency what it is?

    Starting from the replica that determines the zero-crash latency, the
    chain walks backwards through whatever constraint fixed each start
    time — the arrival of the last needed input message, a co-located
    supplier, or the previous replica occupying the processor — down to a
    replica that starts at time zero.  The result reads as the schedule's
    actual critical path through computation, communication and
    contention, and is the first thing to look at when a latency
    surprises you. *)

type link =
  | Start  (** chain origin: the replica starts at time 0 *)
  | Processor_busy of { prev_task : Dag.task; prev_replica : int }
      (** the processor was running the previous replica until our start *)
  | Local_supply of { pred : Dag.task; pred_replica : int }
      (** waiting for a co-located predecessor replica to finish *)
  | Message_arrival of {
      pred : Dag.task;
      pred_replica : int;
      src_proc : Platform.proc;
      leg_start : float;
      arrival : float;
    }
      (** waiting for the decisive input message to arrive *)

type step = {
  task : Dag.task;
  replica : int;
  proc : Platform.proc;
  start : float;
  finish : float;
  via : link;  (** what the start of this step was waiting on *)
}

val critical_chain : Schedule.t -> step list
(** The chain, from the origin (earliest step, [via = Start]) to the
    replica that realizes {!Schedule.latency_zero_crash}.  Empty only for
    an empty DAG. *)

val pp : Format.formatter -> step list -> unit
(** One line per step, oldest first. *)

val comm_share : Schedule.t -> float
(** Fraction of the critical chain's span spent waiting on message
    arrivals rather than computing — a direct measure of how much
    contention and communication shape the latency.  In [\[0, 1\]]. *)
