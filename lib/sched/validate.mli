(** Static validation of fault-tolerant schedules.

    Checks that a schedule is {e valid} in the sense of Section 5 of the
    paper: tasks respect precedence through recorded supplies, replicas of
    one task occupy distinct processors, execution durations match the
    cost matrix, no processor computes two tasks at once, and — under the
    one-port model — inequalities (1), (2) and (3) hold: link legs on a
    directed link never overlap, the messages leaving a processor are
    serialized on its send port, and the messages entering a processor are
    serialized on its receive port.

    Fault-tolerance itself (the schedule survives any [epsilon] crashes)
    is a dynamic property checked by [Ftsched_sim.Fault_check]. *)

type violation = {
  check : string;  (** short identifier of the violated rule *)
  detail : string;  (** human-readable description with times and ids *)
}

val run : ?fabric:Netstate.fabric -> Schedule.t -> violation list
(** All violations; the empty list means the schedule is valid.  When the
    schedule was built over a sparse interconnect, pass the same [fabric]
    so the link constraint (1) is checked per {e physical} link (routes
    sharing a link must not overlap); the default is the clique fabric. *)

val is_valid : ?fabric:Netstate.fabric -> Schedule.t -> bool

val check_exn : ?fabric:Netstate.fabric -> Schedule.t -> unit
(** Raises [Failure] listing every violation, if any. *)

val pp_violation : Format.formatter -> violation -> unit

(** {1 Interval sweeps}

    Thin wrappers over [Ftsched_util.Intervals] producing [violation]
    records; exposed so analyses and tests can exercise the exact sweep
    semantics the validator uses.  Intervals are [(start, finish,
    payload)] triples; zero-length intervals (within [Flt.eps]) never
    conflict. *)

val overlap_violations :
  check:string ->
  describe:('a -> string) ->
  (float * float * 'a) list ->
  violation list
(** One violation per interval that starts strictly inside another. *)

val depth_violations :
  capacity:int ->
  check:string ->
  describe:('a -> string) ->
  (float * float * 'a) list ->
  violation list
(** One violation per interval whose start raises the overlap depth above
    [capacity].  [capacity = 1] degenerates to {!overlap_violations}. *)
