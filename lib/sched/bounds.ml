let critical_path costs =
  let dag = Costs.dag costs in
  let n = Dag.task_count dag in
  let finish = Array.make n 0. in
  Array.iter
    (fun t ->
      let ready =
        Array.fold_left
          (fun acc (pred, _) -> Float.max acc finish.(pred))
          0. (Dag.preds dag t)
      in
      finish.(t) <- ready +. Costs.min_exec costs t)
    (Dag.topological_order dag);
  Array.fold_left Float.max 0. finish

let work costs =
  let dag = Costs.dag costs in
  let m = Platform.proc_count (Costs.platform costs) in
  let total =
    Dag.fold_tasks (fun t acc -> acc +. Costs.min_exec costs t) dag 0.
  in
  total /. float_of_int m

let combined costs = Float.max (critical_path costs) (work costs)

let efficiency costs sched =
  let l = Schedule.latency_zero_crash sched in
  if l <= 0. then 1. else combined costs /. l
