(** Quantitative analysis of schedules beyond the two latency bounds.

    These metrics feed the experiment reports and the CLI's inspection
    output: processor utilization, communication footprint, idle time,
    and the distribution of the replication work. *)

type proc_stats = {
  proc : Platform.proc;
  busy : float;  (** total execution time booked on the processor *)
  replica_count : int;
  send_busy : float;  (** total time the send port is transmitting *)
  recv_busy : float;  (** total time the receive port is receiving *)
}

type t = {
  horizon : float;  (** makespan (upper bound) of the schedule *)
  latency : float;  (** zero-crash latency *)
  total_exec : float;  (** sum of all replica execution times *)
  total_comm_time : float;  (** sum of all message durations *)
  total_volume : float;  (** sum of all message data volumes *)
  message_count : int;
  local_supply_count : int;
      (** co-located supplies (messages saved by the intra-processor rule) *)
  mean_utilization : float;
      (** mean over processors of busy / horizon, in [\[0, 1\]] *)
  max_utilization : float;
  replica_imbalance : float;
      (** max replicas on a processor / mean replicas per processor *)
  per_proc : proc_stats list;
}

val analyze : Schedule.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)

val serial_comm_lower_bound : Schedule.t -> float
(** Sum of message durations divided by the processor count — a crude
    lower bound on the communication time that must be spent somewhere in
    any one-port execution of the same message set.  Used by the
    contention discussions in the reports. *)
