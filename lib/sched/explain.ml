type link =
  | Start
  | Processor_busy of { prev_task : Dag.task; prev_replica : int }
  | Local_supply of { pred : Dag.task; pred_replica : int }
  | Message_arrival of {
      pred : Dag.task;
      pred_replica : int;
      src_proc : Platform.proc;
      leg_start : float;
      arrival : float;
    }

type step = {
  task : Dag.task;
  replica : int;
  proc : Platform.proc;
  start : float;
  finish : float;
  via : link;
}

(* What fixed the start time of [r]?  The binding constraint is whichever
   of (a) the previous replica on the processor, (b) the latest
   predecessor readiness, ends exactly at [r.start] (ties: prefer the
   message, it is the more informative story). *)
let binding_constraint sched (r : Schedule.replica) =
  let tol = 1e-6 in
  (* (b) per-predecessor readiness = earliest supply of that pred; the
     binding pred is the one whose readiness is the latest *)
  let dag = Schedule.dag sched in
  let pred_ready pred =
    List.filter_map
      (function
        | Schedule.Local { l_pred; l_pred_replica; l_finish }
          when l_pred = pred ->
            Some (l_finish, Local_supply { pred; pred_replica = l_pred_replica })
        | Schedule.Message m when m.Netstate.m_source.Netstate.s_task = pred ->
            Some
              ( m.Netstate.m_arrival,
                Message_arrival
                  {
                    pred;
                    pred_replica = m.Netstate.m_source.Netstate.s_replica;
                    src_proc = m.Netstate.m_source.Netstate.s_proc;
                    leg_start = m.Netstate.m_leg_start;
                    arrival = m.Netstate.m_arrival;
                  } )
        | Schedule.Local _ | Schedule.Message _ -> None)
      r.Schedule.r_inputs
    |> List.fold_left
         (fun best (t, l) ->
           match best with
           | Some (bt, _) when bt <= t -> best
           | _ -> Some (t, l))
         None
  in
  let data =
    List.filter_map pred_ready (Dag.pred_tasks dag r.Schedule.r_task)
    |> List.fold_left
         (fun best (t, l) ->
           match best with
           | Some (bt, _) when bt >= t -> best
           | _ -> Some (t, l))
         None
  in
  (match data with
  | Some (t, l) when Flt.approx_eq ~tol t r.Schedule.r_start -> Some l
  | _ -> None)
  |> function
  | Some l -> Some l
  | None -> (
      (* (a) processor occupancy *)
      let prev =
        List.fold_left
          (fun best (r' : Schedule.replica) ->
            if
              r' != r
              && Flt.approx_eq ~tol r'.Schedule.r_finish r.Schedule.r_start
              (* strictly earlier start: keeps the walk well-founded even
                 with zero-duration replicas *)
              && r'.Schedule.r_start < r.Schedule.r_start -. tol
            then Some r'
            else best)
          None
          (Schedule.on_proc sched r.Schedule.r_proc)
      in
      match prev with
      | Some r' ->
          Some
            (Processor_busy
               {
                 prev_task = r'.Schedule.r_task;
                 prev_replica = r'.Schedule.r_index;
               })
      | None -> (
          (* fall back to the latest data constraint even if it does not
             exactly reach the start (idle gap); else the chain origin *)
          match data with Some (_, l) -> Some l | None -> None))

let critical_chain sched =
  let dag = Schedule.dag sched in
  if Dag.task_count dag = 0 then []
  else begin
    (* the replica realizing the zero-crash latency *)
    let final =
      List.fold_left
        (fun best task ->
          let first =
            Array.fold_left
              (fun acc (r : Schedule.replica) ->
                match acc with
                | Some (b : Schedule.replica) when b.Schedule.r_finish <= r.Schedule.r_finish -> acc
                | _ -> Some r)
              None (Schedule.replicas sched task)
          in
          match (best, first) with
          | Some (b : Schedule.replica), Some f ->
              if f.Schedule.r_finish > b.Schedule.r_finish then first else best
          | None, Some _ -> first
          | _, None -> best)
        None
        (List.init (Dag.task_count dag) Fun.id)
    in
    let rec walk (r : Schedule.replica) acc =
      let via =
        match binding_constraint sched r with Some l -> l | None -> Start
      in
      let step =
        {
          task = r.Schedule.r_task;
          replica = r.Schedule.r_index;
          proc = r.Schedule.r_proc;
          start = r.Schedule.r_start;
          finish = r.Schedule.r_finish;
          via;
        }
      in
      match via with
      | Start -> step :: acc
      | Processor_busy { prev_task; prev_replica } ->
          walk (Schedule.replica sched prev_task prev_replica) (step :: acc)
      | Local_supply { pred; pred_replica }
      | Message_arrival { pred; pred_replica; _ } ->
          walk (Schedule.replica sched pred pred_replica) (step :: acc)
    in
    match final with None -> [] | Some r -> walk r []
  end

let pp ppf steps =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun ppf s ->
      let reason =
        match s.via with
        | Start -> "starts the chain"
        | Processor_busy { prev_task; prev_replica } ->
            Printf.sprintf "after t%d[%d] freed the processor" prev_task
              prev_replica
        | Local_supply { pred; pred_replica } ->
            Printf.sprintf "after local data from t%d[%d]" pred pred_replica
        | Message_arrival { pred; pred_replica; src_proc; arrival; _ } ->
            Printf.sprintf "after the message from t%d[%d]@P%d arrived at %.2f"
              pred pred_replica src_proc arrival
      in
      Format.fprintf ppf "t%d[%d] on P%d [%.2f, %.2f] — %s" s.task s.replica
        s.proc s.start s.finish reason)
    ppf steps

let comm_share sched =
  let steps = critical_chain sched in
  match steps with
  | [] | [ _ ] -> 0.
  | first :: _ ->
      let last = List.nth steps (List.length steps - 1) in
      let span = last.finish -. first.start in
      if span <= 0. then 0.
      else begin
        (* time between a step's availability and its start that is
           attributable to a message in flight *)
        let waiting =
          List.fold_left
            (fun acc s ->
              match s.via with
              | Message_arrival { leg_start; arrival; _ } ->
                  acc +. (arrival -. leg_start)
              | Start | Processor_busy _ | Local_supply _ -> acc)
            0. steps
        in
        Flt.clamp ~lo:0. ~hi:1. (waiting /. span)
      end
