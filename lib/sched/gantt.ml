let render ?(width = 100) ?(show_comm = false) sched =
  let horizon = Schedule.makespan sched in
  let horizon = if horizon <= 0. then 1. else horizon in
  let platform = Schedule.platform sched in
  let m = Platform.proc_count platform in
  let col time =
    let c = int_of_float (Float.of_int width *. time /. horizon) in
    Flt.clamp ~lo:0. ~hi:(float_of_int (width - 1)) (float_of_int c)
    |> int_of_float
  in
  let buf = Buffer.create 4096 in
  let line label fill =
    Buffer.add_string buf (Printf.sprintf "%-8s|" label);
    Buffer.add_string buf (Bytes.to_string fill);
    Buffer.add_string buf "|\n"
  in
  let blank () = Bytes.make width ' ' in
  let stamp bytes start finish label =
    let c0 = col start and c1 = max (col start) (col finish - 1) in
    for c = c0 to c1 do
      Bytes.set bytes c '='
    done;
    (* centre the label in the block when it fits *)
    let lbl = label in
    let len = String.length lbl in
    if len <= c1 - c0 + 1 then begin
      let at = c0 + (((c1 - c0 + 1) - len) / 2) in
      String.iteri (fun i ch -> Bytes.set bytes (at + i) ch) lbl
    end
  in
  Buffer.add_string buf
    (Printf.sprintf "Gantt: %s (horizon %.2f, 1 column = %.3f time units)\n"
       (Schedule.algorithm sched) horizon (horizon /. float_of_int width));
  for p = 0 to m - 1 do
    let row = blank () in
    List.iter
      (fun (r : Schedule.replica) ->
        stamp row r.Schedule.r_start r.Schedule.r_finish
          (Printf.sprintf "%d.%d" r.Schedule.r_task r.Schedule.r_index))
      (Schedule.on_proc sched p);
    line (Printf.sprintf "P%d" p) row;
    if show_comm then begin
      let snd_row = blank () and rcv_row = blank () in
      List.iter
        (fun (msg : Netstate.message) ->
          if msg.Netstate.m_source.Netstate.s_proc = p then
            stamp snd_row msg.Netstate.m_leg_start msg.Netstate.m_leg_finish
              (Printf.sprintf ">%d" msg.Netstate.m_dst_proc);
          if msg.Netstate.m_dst_proc = p then
            stamp rcv_row
              (msg.Netstate.m_arrival -. msg.Netstate.m_duration)
              msg.Netstate.m_arrival
              (Printf.sprintf "<%d" msg.Netstate.m_source.Netstate.s_proc))
        (Schedule.messages sched);
      line (Printf.sprintf "P%d snd" p) snd_row;
      line (Printf.sprintf "P%d rcv" p) rcv_row
    end
  done;
  Buffer.contents buf

let print ?width ?show_comm sched =
  print_string (render ?width ?show_comm sched)

(* -- SVG rendering ------------------------------------------------------ *)

(* A fixed qualitative palette; tasks cycle through it. *)
let palette =
  [|
    "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
    "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac";
  |]

let to_svg ?(width = 900) ?(row_height = 28) sched =
  let horizon = Schedule.makespan sched in
  let horizon = if horizon <= 0. then 1. else horizon in
  let platform = Schedule.platform sched in
  let m = Platform.proc_count platform in
  let margin_left = 50 and margin_top = 30 in
  let x time =
    float_of_int margin_left
    +. (time /. horizon *. float_of_int (width - margin_left - 10))
  in
  let row p = margin_top + (p * row_height) in
  let total_h = margin_top + (m * row_height) + 30 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"sans-serif\" font-size=\"10\">\n"
       width total_h);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"16\" font-size=\"12\">%s — horizon %.2f</text>\n"
       margin_left (Schedule.algorithm sched) horizon);
  (* processor lanes *)
  for p = 0 to m - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"4\" y=\"%d\">P%d</text>\n<line x1=\"%d\" y1=\"%d\" \
          x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n"
         (row p + (row_height * 2 / 3))
         p margin_left
         (row p + row_height)
         (width - 10)
         (row p + row_height))
  done;
  (* message legs as lines between rows *)
  List.iter
    (fun (msg : Netstate.message) ->
      let sp = msg.Netstate.m_source.Netstate.s_proc in
      let dp = msg.Netstate.m_dst_proc in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" \
            stroke=\"#999\" stroke-dasharray=\"3,2\" opacity=\"0.6\"/>\n"
           (x msg.Netstate.m_leg_start)
           (row sp + (row_height / 2))
           (x msg.Netstate.m_arrival)
           (row dp + (row_height / 2))))
    (Schedule.messages sched);
  (* replicas as rectangles *)
  List.iter
    (fun (r : Schedule.replica) ->
      let x0 = x r.Schedule.r_start and x1 = x r.Schedule.r_finish in
      let color = palette.(r.Schedule.r_task mod Array.length palette) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" \
            fill=\"%s\" stroke=\"#333\" rx=\"2\"/>\n"
           x0
           (row r.Schedule.r_proc + 3)
           (Float.max 1. (x1 -. x0))
           (row_height - 8) color);
      if x1 -. x0 > 24. then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%d\" fill=\"white\">%d.%d</text>\n"
             (x0 +. 3.)
             (row r.Schedule.r_proc + (row_height * 3 / 5))
             r.Schedule.r_task r.Schedule.r_index))
    (Schedule.all_replicas sched);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let svg_to_file ?width ?row_height path sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_svg ?width ?row_height sched))
