(** Mutable scheduling workspace shared by all schedulers.

    Couples a {!Netstate.t} with the set of replicas placed so far and
    turns the result into a {!Schedule.t} at the end.  The workspace also
    builds the canonical source lists:

    - {!sources_all}: every placed replica of every predecessor — the
      replication scheme of FTSA and FTBAR (and CAFT's fallback loop),
      where each replica communicates with all replicas of its
      predecessors;
    - {!sources_chosen}: exactly one designated replica per predecessor —
      CAFT's one-to-one scheme. *)

type t

val create :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  epsilon:int ->
  Costs.t ->
  t
(** Empty workspace over a fresh network state.  [fabric] selects a
    sparse interconnect (defaults to the clique); [insertion] enables
    gap-filling execution bookings (see {!Netstate.create}). *)

val net : t -> Netstate.t
val costs : t -> Costs.t
val dag : t -> Dag.t
val platform : t -> Platform.t
val epsilon : t -> int

val placed : t -> Dag.task -> Schedule.replica list
(** Replicas of a task placed so far, in placement order. *)

val placed_count : t -> Dag.task -> int
(** Number of replicas placed so far; O(1). *)

val get_placed : t -> Dag.task -> int -> Schedule.replica
(** [get_placed t task i] is the [i]-th placed replica of [task]
    ([0 <= i < placed_count t task]); O(1), no list materialized —
    the form the placement inner loop iterates with. *)

val procs_of : t -> Dag.task -> Platform.proc list
(** Processors hosting a replica of the task. *)

val is_placed_on : t -> Dag.task -> Platform.proc -> bool

val source_of_replica : t -> Schedule.replica -> volume:float -> Netstate.source
(** View a placed replica as a data source shipping [volume] units. *)

val sources_all : t -> Dag.task -> (Dag.task * Netstate.source list) list
(** For each predecessor of the task, all its placed replicas.  Raises
    [Invalid_argument] if some predecessor has no placed replica yet (the
    task was not free). *)

val sources_chosen :
  t -> Dag.task -> (Dag.task * Schedule.replica) list ->
  (Dag.task * Netstate.source list) list
(** For each predecessor, the single designated replica.  The association
    list must cover every predecessor exactly once. *)

val place :
  t -> task:Dag.task -> proc:Platform.proc -> Netstate.booked -> Schedule.replica
(** Record a booked replica (the booking must have been committed on
    {!net}).  The replica index is the number of copies of the task placed
    before.  Returns the created record. *)

val place_unbooked :
  t ->
  task:Dag.task ->
  proc:Platform.proc ->
  start:float ->
  finish:float ->
  inputs:Schedule.supply list ->
  Schedule.replica
(** Low-level variant for schedulers that book by hand. *)

val strip_inputs : t -> task:Dag.task -> index:int -> unit
(** Drop the stored communication record ([r_inputs]) of an already-placed
    replica.  Used by the streaming scheduler after the record has been
    emitted to disk: later placements only read a replica's task, index,
    processor and finish time, so the schedule stays byte-identical while
    the O(edges) supply lists stop accumulating in memory. *)

val completion_lower : t -> Dag.task -> float
(** Earliest finish among the placed replicas of the task (the optimistic
    completion used to refresh successor priorities). *)

val to_schedule : algorithm:string -> t -> Schedule.t
(** Freeze into a schedule; same shape checks as {!Schedule.create}. *)
