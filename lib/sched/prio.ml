type entry = { task : Dag.task; prio : float; tiebreak : float }

type t = {
  dag : Dag.t;
  levels : Levels.t;
  tl : float array;  (* dynamic top levels *)
  bl : float array;
  tiebreaks : float array;
  free : entry Heap.t;
  unscheduled_preds : int array;
  scheduled : bool array;
  mutable remaining : int;
  mean_delay : float;
}

let cmp_entry a b =
  (* max-heap on priority: invert the comparison; ties by tiebreak then id *)
  let c = compare b.prio a.prio in
  if c <> 0 then c
  else
    let c = compare a.tiebreak b.tiebreak in
    if c <> 0 then c else compare a.task b.task

let create ~rng costs =
  let dag = Costs.dag costs in
  let levels = Levels.compute costs in
  let n = Dag.task_count dag in
  let tl = Levels.dynamic_top_levels levels in
  let bl = Array.init n (fun i -> Levels.bottom_level levels i) in
  let tiebreaks = Array.init n (fun _ -> Rng.float rng 1.0) in
  (* Pre-size to the task count: the free list can hold a whole frontier
     (n - 1 tasks on a fork), and doubling-growth churn matters at 1e5+. *)
  let free =
    Heap.with_capacity ~cmp:cmp_entry
      ~dummy:{ task = -1; prio = 0.; tiebreak = 0. }
      n
  in
  let unscheduled_preds = Array.init n (fun i -> Dag.in_degree dag i) in
  List.iter
    (fun task ->
      Heap.add free { task; prio = tl.(task) +. bl.(task); tiebreak = tiebreaks.(task) })
    (Dag.entries dag);
  {
    dag;
    levels;
    tl;
    bl;
    tiebreaks;
    free;
    unscheduled_preds;
    scheduled = Array.make n false;
    remaining = n;
    mean_delay = Platform.mean_delay (Costs.platform costs);
  }

let levels t = t.levels
let pop t = Option.map (fun e -> e.task) (Heap.pop t.free)
let peek t = Option.map (fun e -> e.task) (Heap.peek t.free)
let free_count t = Heap.length t.free
let remaining t = t.remaining
let is_done t = t.remaining = 0
let priority t task = t.tl.(task) +. t.bl.(task)

let mark_scheduled t task ~completion =
  if t.scheduled.(task) then invalid_arg "Prio.mark_scheduled: already scheduled";
  t.scheduled.(task) <- true;
  t.remaining <- t.remaining - 1;
  Array.iter
    (fun (succ, vol) ->
      let cand = completion +. (vol *. t.mean_delay) in
      if cand > t.tl.(succ) then t.tl.(succ) <- cand;
      t.unscheduled_preds.(succ) <- t.unscheduled_preds.(succ) - 1;
      if t.unscheduled_preds.(succ) = 0 then
        Heap.add t.free
          {
            task = succ;
            prio = t.tl.(succ) +. t.bl.(succ);
            tiebreak = t.tiebreaks.(succ);
          })
    (Dag.succs t.dag task)
