type model = Macro_dataflow | One_port | Multiport of int

(* Observability: booking decisions recorded here cover every scheduler
   (CAFT, the baselines, the batch variant) since they all book through
   this module.  Speculative bookings (snapshot/restore trials) run under
   [Obs_metrics.suppressed] at the call site so only committed
   reservations are counted. *)
let m_send_wait =
  Obs_metrics.histogram
    ~help:"send-port serialization wait beyond source finish (time units)"
    "net.send_wait"

let m_recv_wait =
  Obs_metrics.histogram
    ~help:"receive-port serialization wait beyond link arrival (time units)"
    "net.recv_wait"

let m_link_busy =
  Obs_metrics.gauge ~help:"total reserved physical-link time (time units)"
    "net.link_busy_time"

let m_msgs_remote =
  Obs_metrics.counter ~help:"inter-processor messages booked"
    "net.messages.remote"

let m_msgs_local =
  Obs_metrics.counter ~help:"co-located supplies (no link traffic)"
    "net.messages.local"

let ports_of_model = function
  | Macro_dataflow -> 1 (* unused *)
  | One_port -> 1
  | Multiport k ->
      if k < 1 then invalid_arg "Netstate: Multiport needs k >= 1";
      k

type fabric = {
  phys_count : int;
  route : Platform.proc -> Platform.proc -> int list;
}

(* Clique fabric: one dedicated physical link per ordered processor
   pair.  Routes are memoized: [link_ready] asks for one on every leg
   estimate of the placement inner loop, and a fresh cons cell per call
   is measurable GC pressure at 10^5+ tasks. *)
let clique_fabric m =
  let routes = Array.make (m * m) [] in
  let route src dst =
    let l = (src * m) + dst in
    match routes.(l) with
    | [] ->
        let r = [ l ] in
        routes.(l) <- r;
        r
    | r -> r
  in
  { phys_count = m * m; route }

type outage = {
  o_src : Platform.proc;
  o_dst : Platform.proc;
  o_from : float;
  o_until : float;
}

(* Sort-and-merge a list of half-open windows into a disjoint increasing
   sequence.  Windows touching at a point are coalesced: a link that
   heals and fails again at the same instant was never really up. *)
let merge_windows ws =
  let ws = List.sort compare ws in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, f) :: rest -> (
        match acc with
        | (s0, f0) :: acc' when s <= f0 ->
            go ((s0, Float.max f0 f) :: acc') rest
        | _ -> go ((s, f) :: acc) rest)
  in
  go [] ws

let outage_windows fabric outages =
  let per_link = Array.make (max 1 fabric.phys_count) [] in
  List.iter
    (fun o ->
      if o.o_until > o.o_from then
        List.iter
          (fun l -> per_link.(l) <- (o.o_from, o.o_until) :: per_link.(l))
          (fabric.route o.o_src o.o_dst))
    outages;
  Array.map merge_windows per_link

(* One journal entry per mutated cell: the cell's coordinates and its
   value before the write.  Undoing the journal newest-first restores the
   pre-trial state exactly, even when a cell is written several times (the
   oldest entry, holding the pre-trial value, is replayed last). *)
type undo =
  | U_ready of int * float
  | U_busy of int * (float * float) list
  | U_sf of int * int * float
  | U_rf of int * int * float
  | U_phys of int * float

type t = {
  platform : Platform.t;
  model : model;
  fabric : fabric;
  insertion : bool;
  ready : float array;
  busy : (float * float) list array;
      (* per-processor busy intervals, sorted by start; only maintained
         when [insertion] — the append-only mode needs just [ready] *)
  sf : float array array;  (* per-processor send slots (k per port) *)
  rf : float array array;  (* per-processor receive slots *)
  phys : float array;  (* ready time per physical link *)
  mutable trial_depth : int;  (* > 0 while inside [with_trial] *)
  mutable journal : undo list;  (* newest first; empty outside trials *)
}

type snapshot = {
  snap_ready : float array;
  snap_busy : (float * float) list array;
  snap_sf : float array array;
  snap_rf : float array array;
  snap_phys : float array;
}

let create ?(model = One_port) ?fabric ?(insertion = false) platform =
  let m = Platform.proc_count platform in
  let fabric =
    match fabric with Some f -> f | None -> clique_fabric m
  in
  let k = ports_of_model model in
  {
    platform;
    model;
    fabric;
    insertion;
    ready = Array.make m 0.;
    busy = Array.make m [];
    sf = Array.init m (fun _ -> Array.make k 0.);
    rf = Array.init m (fun _ -> Array.make k 0.);
    phys = Array.make fabric.phys_count 0.;
    trial_depth = 0;
    journal = [];
  }

let model t = t.model
let platform t = t.platform
let fabric t = t.fabric
let insertion t = t.insertion

let snapshot t =
  {
    snap_ready = Array.copy t.ready;
    snap_busy = Array.copy t.busy;
    snap_sf = Array.map Array.copy t.sf;
    snap_rf = Array.map Array.copy t.rf;
    snap_phys = Array.copy t.phys;
  }

let restore t snap =
  Array.blit snap.snap_ready 0 t.ready 0 (Array.length t.ready);
  Array.blit snap.snap_busy 0 t.busy 0 (Array.length t.busy);
  Array.iteri (fun i row -> Array.blit row 0 t.sf.(i) 0 (Array.length row))
    snap.snap_sf;
  Array.iteri (fun i row -> Array.blit row 0 t.rf.(i) 0 (Array.length row))
    snap.snap_rf;
  Array.blit snap.snap_phys 0 t.phys 0 (Array.length t.phys)

(* Journaled writes: every mutation of the state goes through one of
   these, so a trial records exactly the cells it touches and rollback is
   O(writes) instead of the O(m^2) snapshot copy. *)
let set_ready t p v =
  if t.trial_depth > 0 then t.journal <- U_ready (p, t.ready.(p)) :: t.journal;
  t.ready.(p) <- v

let set_busy t p v =
  if t.trial_depth > 0 then t.journal <- U_busy (p, t.busy.(p)) :: t.journal;
  t.busy.(p) <- v

let set_sf t p slot v =
  if t.trial_depth > 0 then
    t.journal <- U_sf (p, slot, t.sf.(p).(slot)) :: t.journal;
  t.sf.(p).(slot) <- v

let set_rf t p slot v =
  if t.trial_depth > 0 then
    t.journal <- U_rf (p, slot, t.rf.(p).(slot)) :: t.journal;
  t.rf.(p).(slot) <- v

let set_phys t l v =
  if t.trial_depth > 0 then t.journal <- U_phys (l, t.phys.(l)) :: t.journal;
  t.phys.(l) <- v

let with_trial t f =
  let mark = t.journal in
  t.trial_depth <- t.trial_depth + 1;
  let rollback () =
    t.trial_depth <- t.trial_depth - 1;
    let rec undo l =
      if l != mark then
        match l with
        | [] -> assert false (* mark is a suffix of the journal *)
        | entry :: rest ->
            (match entry with
            | U_ready (p, v) -> t.ready.(p) <- v
            | U_busy (p, v) -> t.busy.(p) <- v
            | U_sf (p, slot, v) -> t.sf.(p).(slot) <- v
            | U_rf (p, slot, v) -> t.rf.(p).(slot) <- v
            | U_phys (l', v) -> t.phys.(l') <- v);
            undo rest
    in
    undo t.journal;
    t.journal <- mark
  in
  match f () with
  | result ->
      rollback ();
      result
  | exception exn ->
      rollback ();
      raise exn

let proc_ready t p = t.ready.(p)

(* the earliest-free slot of a port; with one slot this is the paper's
   scalar SF/RF — fast-pathed because the one-port model queries it once
   per candidate leg estimate in the placement inner loop *)
let min_slot slots =
  if Array.length slots = 1 then Array.unsafe_get slots 0
  else Array.fold_left Float.min infinity slots

let argmin_slot slots =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < slots.(!best) then best := i) slots;
  !best

let send_free t p = min_slot t.sf.(p)
let recv_free t p = min_slot t.rf.(p)

let link_ready t ~src ~dst =
  match t.fabric.route src dst with
  | [] -> 0.
  | [ l ] -> t.phys.(l) (* clique fast path: no closure, no fold *)
  | route -> List.fold_left (fun acc l -> Float.max acc t.phys.(l)) 0. route

type source = {
  s_task : Dag.task;
  s_replica : int;
  s_proc : Platform.proc;
  s_finish : float;
  s_volume : float;
}

type message = {
  m_source : source;
  m_dst_proc : Platform.proc;
  m_duration : float;
  m_leg_start : float;
  m_leg_finish : float;
  m_arrival : float;
}

type booked = {
  b_start : float;
  b_finish : float;
  b_messages : message list;
  b_local : (Dag.task * int * float) list;
}

(* Book the link leg of one message under the current model; equations (4)
   of the paper for the one-port case.  Under a routed fabric the leg
   reserves every physical link of the route for its whole duration
   (circuit-style, "at most one message on a given link at a time"). *)
let book_leg t src dst w s_finish =
  match t.model with
  | Macro_dataflow ->
      let start = s_finish in
      (start, start +. w)
  | One_port | Multiport _ ->
      let slot = argmin_slot t.sf.(src) in
      let start =
        Float.max t.sf.(src).(slot)
          (Float.max s_finish (link_ready t ~src ~dst))
      in
      let finish = start +. w in
      set_sf t src slot finish;
      let route = t.fabric.route src dst in
      List.iter (fun l -> set_phys t l finish) route;
      if Obs_metrics.enabled () then begin
        Obs_metrics.observe m_send_wait (start -. s_finish);
        Obs_metrics.add m_link_busy (w *. float_of_int (List.length route))
      end;
      (start, finish)

(* Execution booking.  The paper's list schedulers append after the last
   task of the processor (ready time r(P)); with [insertion] enabled the
   replica is placed in the earliest idle gap that fits — the classic
   HEFT insertion policy, kept as an ablation. *)
let book_exec t proc exec data_ready =
  if not t.insertion then begin
    let start = Float.max t.ready.(proc) data_ready in
    let finish = start +. exec in
    set_ready t proc finish;
    (start, finish)
  end
  else begin
    let rec fit prev_end = function
      | [] -> Float.max prev_end data_ready
      | (s, f) :: rest ->
          let cand = Float.max prev_end data_ready in
          if cand +. exec <= s +. Flt.eps then cand else fit (Float.max prev_end f) rest
    in
    let start = fit 0. t.busy.(proc) in
    let finish = start +. exec in
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((s, _) as iv) :: rest when s < start -> iv :: insert rest
      | rest -> (start, finish) :: rest
    in
    set_busy t proc (insert t.busy.(proc));
    if finish > t.ready.(proc) then set_ready t proc finish;
    (start, finish)
  end

let book_exec_only t ~proc ~exec =
  let b_start, b_finish = book_exec t proc exec 0. in
  { b_start; b_finish; b_messages = []; b_local = [] }

let book_replica ?(colocate_exclusive = true) t ~proc ~exec ~inputs =
  List.iter
    (fun (pred, sources) ->
      if sources = [] then
        invalid_arg
          (Printf.sprintf "Netstate.book_replica: predecessor %d has no source"
             pred))
    inputs;
  (* Split sources into local supplies and remote legs, preserving the
     predecessor structure to compute per-predecessor readiness.  Paper,
     Section 6: when a replica of a predecessor lives on [proc], the other
     copies of that predecessor do not send to [proc] at all. *)
  let locals = ref [] in
  let remote_of_pred =
    List.map
      (fun (pred, sources) ->
        let local_here = List.filter (fun s -> s.s_proc = proc) sources in
        match local_here with
        | s :: _ when colocate_exclusive ->
            locals := (pred, s.s_replica, s.s_finish) :: !locals;
            (pred, [ s ], [])
        | s :: _ ->
            (* keep the local supply but still ship the remote copies *)
            locals := (pred, s.s_replica, s.s_finish) :: !locals;
            let remote = List.filter (fun s' -> s'.s_proc <> proc) sources in
            (pred, sources, remote)
        | [] -> (pred, sources, sources))
      inputs
  in
  (* Book all remote legs.  Legs are booked in non-decreasing order of
     source availability, which serializes same-source sends
     deterministically. *)
  let all_remote = List.concat_map (fun (_, _, remote) -> remote) remote_of_pred in
  let all_remote =
    match all_remote with
    | [] | [ _ ] -> all_remote (* sorting is the identity; skip the pass *)
    | _ ->
        List.stable_sort
          (fun a b ->
            let c = compare a.s_finish b.s_finish in
            if c <> 0 then c
            else
              compare (a.s_proc, a.s_task, a.s_replica)
                (b.s_proc, b.s_task, b.s_replica))
          all_remote
  in
  let legs =
    List.map
      (fun s ->
        let w = Platform.comm_time t.platform ~src:s.s_proc ~dst:proc ~volume:s.s_volume in
        let leg_start, leg_finish = book_leg t s.s_proc proc w s.s_finish in
        (s, w, leg_start, leg_finish))
      all_remote
  in
  (* Serialize arrivals on the receive port in non-decreasing link finish
     order (equation (6), with the arrival-chaining fix). *)
  let legs =
    match legs with
    | [] | [ _ ] -> legs
    | _ ->
        List.stable_sort (fun (_, _, _, f1) (_, _, _, f2) -> compare f1 f2) legs
  in
  let messages =
    match t.model with
    | Macro_dataflow ->
        List.map
          (fun (s, w, leg_start, leg_finish) ->
            {
              m_source = s;
              m_dst_proc = proc;
              m_duration = w;
              m_leg_start = leg_start;
              m_leg_finish = leg_finish;
              m_arrival = leg_finish;
            })
          legs
    | One_port | Multiport _ ->
        (* receive slots, earliest-free first; with one slot this is the
           paper's serialized RF chain *)
        List.map
          (fun (s, w, leg_start, _leg_finish) ->
            let slot = argmin_slot t.rf.(proc) in
            let arrival = w +. Float.max t.rf.(proc).(slot) leg_start in
            if Obs_metrics.enabled () then
              Obs_metrics.observe m_recv_wait (arrival -. w -. leg_start);
            set_rf t proc slot arrival;
            {
              m_source = s;
              m_dst_proc = proc;
              m_duration = w;
              m_leg_start = leg_start;
              m_leg_finish = leg_start +. w;
              m_arrival = arrival;
            })
          legs
  in
  (* Per-predecessor readiness: the earliest supply of each predecessor
     ("at least one replica of each predecessor has sent its results").
     Arrivals are looked up through a map keyed by the source identity,
     built in one pass over [messages], instead of re-scanning the whole
     message list per remote source (which made booking O(k^2) in the
     in-degree). *)
  let arrival_of =
    (* short bookings (the common case in the placement trial loop) scan
       the message list directly; wide fan-ins keep the hashtable so the
       lookup stays O(1) in the in-degree.  Both return the arrival of
       the *last* matching message, like [Hashtbl.replace] did. *)
    match messages with
    | [] | [ _; _; _; _ ] | [ _; _; _ ] | [ _; _ ] | [ _ ] ->
        fun s ->
          let best = ref infinity in
          List.iter
            (fun m ->
              if
                m.m_source.s_task = s.s_task
                && m.m_source.s_replica = s.s_replica
                && m.m_source.s_proc = s.s_proc
              then best := m.m_arrival)
            messages;
          !best
    | _ ->
        let arrivals = Hashtbl.create 16 in
        List.iter
          (fun m ->
            Hashtbl.replace arrivals
              (m.m_source.s_task, m.m_source.s_replica, m.m_source.s_proc)
              m.m_arrival)
          messages;
        fun s ->
          match
            Hashtbl.find_opt arrivals (s.s_task, s.s_replica, s.s_proc)
          with
          | Some a -> a
          | None -> infinity
  in
  let data_ready =
    List.fold_left
      (fun acc (_, sources, remote) ->
        let local_ready =
          List.fold_left
            (fun best s -> if s.s_proc = proc then Float.min best s.s_finish else best)
            infinity sources
        in
        let remote_ready =
          List.fold_left (fun best s -> Float.min best (arrival_of s)) infinity remote
        in
        Float.max acc (Float.min local_ready remote_ready))
      0. remote_of_pred
  in
  let b_start, b_finish = book_exec t proc exec data_ready in
  if Obs_metrics.enabled () then begin
    Obs_metrics.incr ~by:(List.length messages) m_msgs_remote;
    Obs_metrics.incr ~by:(List.length !locals) m_msgs_local
  end;
  { b_start; b_finish; b_messages = messages; b_local = List.rev !locals }
