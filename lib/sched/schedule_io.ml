exception Parse_error of { line : int; message : string }

let fl x = Printf.sprintf "%.17g" x

(* Shared emitters: [to_string] and the streaming writer both go through
   these, so the two paths produce identical bytes for identical content
   by construction (line order aside — see [stream_writer]). *)

let emit_instance add ~algorithm ~epsilon ~model ~insertion costs =
  let dag = Costs.dag costs in
  let platform = Costs.platform costs in
  let v = Dag.task_count dag and m = Platform.proc_count platform in
  add "ftsched-schedule v1\n";
  add (Printf.sprintf "algorithm %s\n" algorithm);
  add (Printf.sprintf "epsilon %d\n" epsilon);
  add
    (Printf.sprintf "model %s\n"
       (match model with
       | Netstate.One_port -> "one-port"
       | Netstate.Macro_dataflow -> "macro-dataflow"
       | Netstate.Multiport k -> Printf.sprintf "multiport-%d" k));
  if insertion then add "insertion true\n";
  add (Printf.sprintf "tasks %d\n" v);
  add (Printf.sprintf "procs %d\n" m);
  for t = 0 to v - 1 do
    add (Printf.sprintf "task %d %s\n" t (Dag.name dag t))
  done;
  Dag.iter_edges
    (fun src dst vol -> add (Printf.sprintf "edge %d %d %s\n" src dst (fl vol)))
    dag;
  for k = 0 to m - 1 do
    for h = 0 to m - 1 do
      if k <> h then
        add
          (Printf.sprintf "delay %d %d %s\n" k h (fl (Platform.delay platform k h)))
    done
  done;
  for t = 0 to v - 1 do
    for p = 0 to m - 1 do
      add (Printf.sprintf "cost %d %d %s\n" t p (fl (Costs.exec costs t p)))
    done
  done

let emit_replica add (r : Schedule.replica) =
  add
    (Printf.sprintf "replica %d %d %d %s %s\n" r.Schedule.r_task
       r.Schedule.r_index r.Schedule.r_proc (fl r.Schedule.r_start)
       (fl r.Schedule.r_finish));
  List.iter
    (function
      | Schedule.Local { l_pred; l_pred_replica; l_finish } ->
          add
            (Printf.sprintf "local %d %d %d %d %s\n" r.Schedule.r_task
               r.Schedule.r_index l_pred l_pred_replica (fl l_finish))
      | Schedule.Message msg ->
          let s = msg.Netstate.m_source in
          add
            (Printf.sprintf "message %d %d %d %d %d %s %s %d %s %s %s %s\n"
               r.Schedule.r_task r.Schedule.r_index s.Netstate.s_task
               s.Netstate.s_replica s.Netstate.s_proc (fl s.Netstate.s_finish)
               (fl s.Netstate.s_volume) msg.Netstate.m_dst_proc
               (fl msg.Netstate.m_duration) (fl msg.Netstate.m_leg_start)
               (fl msg.Netstate.m_leg_finish) (fl msg.Netstate.m_arrival)))
    r.Schedule.r_inputs

let to_string sched =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  emit_instance add
    ~algorithm:(Schedule.algorithm sched)
    ~epsilon:(Schedule.epsilon sched) ~model:(Schedule.model sched)
    ~insertion:(Schedule.insertion sched)
    (Schedule.costs sched);
  List.iter (emit_replica add) (Schedule.all_replicas sched);
  add "end\n";
  Buffer.contents buf

let to_file path sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sched))

(* -- streaming writer --------------------------------------------------- *)

type writer = { oc : out_channel; mutable state : [ `Open | `Closed ] }

let stream_writer ?(insertion = false) ~algorithm ~epsilon ~model ~path costs =
  let oc = open_out path in
  (try emit_instance (output_string oc) ~algorithm ~epsilon ~model ~insertion costs
   with exn ->
     close_out_noerr oc;
     raise exn);
  { oc; state = `Open }

let stream_replica w r =
  if w.state = `Closed then invalid_arg "Schedule_io.stream_replica: closed";
  emit_replica (output_string w.oc) r

let stream_close w =
  if w.state = `Open then begin
    w.state <- `Closed;
    Fun.protect
      ~finally:(fun () -> close_out w.oc)
      (fun () -> output_string w.oc "end\n")
  end

(* -- parsing ------------------------------------------------------------ *)

type parse_state = {
  mutable algorithm : string;
  mutable epsilon : int;
  mutable insertion : bool;
  mutable pmodel : Netstate.model;
  mutable tasks : int;
  mutable procs : int;
  mutable names : (int * string) list;
  mutable edges : (int * int * float) list;
  mutable delays : (int * int * float) list;
  mutable costs : (int * int * float) list;
  (* replicas keyed by (task, idx); supplies accumulated in reverse *)
  replicas : (int * int, float * float * int) Hashtbl.t;
  supplies : (int * int, Schedule.supply list) Hashtbl.t;
}

let of_string text =
  let st =
    {
      algorithm = "?";
      epsilon = -1;
      insertion = false;
      pmodel = Netstate.One_port;
      tasks = -1;
      procs = -1;
      names = [];
      edges = [];
      delays = [];
      costs = [];
      replicas = Hashtbl.create 64;
      supplies = Hashtbl.create 64;
    }
  in
  let fail line message = raise (Parse_error { line; message }) in
  let int_of line s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail line (Printf.sprintf "expected integer, got %S" s)
  in
  let float_of line s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail line (Printf.sprintf "expected float, got %S" s)
  in
  let saw_end = ref false in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line <> "" && not !saw_end then begin
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        match words with
        | [ "ftsched-schedule"; "v1" ] when lineno = 1 -> ()
        | _ when lineno = 1 -> fail lineno "missing header 'ftsched-schedule v1'"
        | [ "algorithm"; name ] -> st.algorithm <- name
        | [ "epsilon"; e ] -> st.epsilon <- int_of lineno e
        | [ "insertion"; "true" ] -> st.insertion <- true
        | [ "insertion"; "false" ] -> st.insertion <- false
        | [ "model"; "one-port" ] -> st.pmodel <- Netstate.One_port
        | [ "model"; "macro-dataflow" ] -> st.pmodel <- Netstate.Macro_dataflow
        | [ "model"; other ]
          when String.length other > 10 && String.sub other 0 10 = "multiport-" -> (
            match int_of_string_opt (String.sub other 10 (String.length other - 10)) with
            | Some k when k >= 1 -> st.pmodel <- Netstate.Multiport k
            | _ -> fail lineno ("bad multiport model " ^ other))
        | [ "model"; other ] -> fail lineno ("unknown model " ^ other)
        | [ "tasks"; n ] -> st.tasks <- int_of lineno n
        | [ "procs"; n ] -> st.procs <- int_of lineno n
        | [ "task"; id; name ] -> st.names <- (int_of lineno id, name) :: st.names
        | [ "edge"; src; dst; vol ] ->
            st.edges <-
              (int_of lineno src, int_of lineno dst, float_of lineno vol)
              :: st.edges
        | [ "delay"; k; h; d ] ->
            st.delays <-
              (int_of lineno k, int_of lineno h, float_of lineno d) :: st.delays
        | [ "cost"; t; p; c ] ->
            st.costs <-
              (int_of lineno t, int_of lineno p, float_of lineno c) :: st.costs
        | [ "replica"; task; idx; proc; start; finish ] ->
            Hashtbl.replace st.replicas
              (int_of lineno task, int_of lineno idx)
              (float_of lineno start, float_of lineno finish, int_of lineno proc)
        | [ "local"; task; idx; pred; pidx; finish ] ->
            let key = (int_of lineno task, int_of lineno idx) in
            let supply =
              Schedule.Local
                {
                  l_pred = int_of lineno pred;
                  l_pred_replica = int_of lineno pidx;
                  l_finish = float_of lineno finish;
                }
            in
            Hashtbl.replace st.supplies key
              (supply :: Option.value (Hashtbl.find_opt st.supplies key) ~default:[])
        | [
         "message"; task; idx; pred; pidx; sproc; sfinish; volume; dst; dur;
         lstart; lfinish; arrival;
        ] ->
            let key = (int_of lineno task, int_of lineno idx) in
            let supply =
              Schedule.Message
                {
                  Netstate.m_source =
                    {
                      Netstate.s_task = int_of lineno pred;
                      s_replica = int_of lineno pidx;
                      s_proc = int_of lineno sproc;
                      s_finish = float_of lineno sfinish;
                      s_volume = float_of lineno volume;
                    };
                  m_dst_proc = int_of lineno dst;
                  m_duration = float_of lineno dur;
                  m_leg_start = float_of lineno lstart;
                  m_leg_finish = float_of lineno lfinish;
                  m_arrival = float_of lineno arrival;
                }
            in
            Hashtbl.replace st.supplies key
              (supply :: Option.value (Hashtbl.find_opt st.supplies key) ~default:[])
        | [ "end" ] -> saw_end := true
        | w :: _ -> fail lineno ("unknown directive " ^ w)
        | [] -> ()
      end)
    lines;
  if not !saw_end then fail (List.length lines) "missing 'end'";
  if st.tasks < 0 then fail 0 "missing 'tasks'";
  if st.procs < 1 then fail 0 "missing 'procs'";
  if st.epsilon < 0 then fail 0 "missing 'epsilon'";
  (* rebuild the instance *)
  let names = Array.make st.tasks "" in
  List.iter
    (fun (id, name) ->
      if id < 0 || id >= st.tasks then fail 0 "task id out of range";
      names.(id) <- name)
    st.names;
  let dag = Dag.make ~names ~n:st.tasks ~edges:(List.rev st.edges) () in
  let delays = Array.make_matrix st.procs st.procs 0. in
  List.iter
    (fun (k, h, d) ->
      if k < 0 || k >= st.procs || h < 0 || h >= st.procs then
        fail 0 "delay endpoint out of range";
      delays.(k).(h) <- d)
    st.delays;
  let platform = Platform.create ~delays in
  let matrix = Array.make_matrix st.tasks st.procs 0. in
  List.iter
    (fun (t, p, c) ->
      if t < 0 || t >= st.tasks || p < 0 || p >= st.procs then
        fail 0 "cost index out of range";
      matrix.(t).(p) <- c)
    st.costs;
  let costs = Costs.of_matrix dag platform matrix in
  let replicas =
    Hashtbl.fold
      (fun (task, idx) (start, finish, proc) acc ->
        {
          Schedule.r_task = task;
          r_index = idx;
          r_proc = proc;
          r_start = start;
          r_finish = finish;
          r_inputs =
            List.rev
              (Option.value (Hashtbl.find_opt st.supplies (task, idx)) ~default:[]);
        }
        :: acc)
      st.replicas []
  in
  Schedule.create ~insertion:st.insertion ~algorithm:st.algorithm
    ~epsilon:st.epsilon ~model:st.pmodel ~costs replicas

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)
  |> of_string
