(** Fail-stop execution replay of a static schedule.

    Section 6 of the paper compares the algorithms "when processors crash
    down by computing the real execution time for a given schedule rather
    than just bounds".  This module is that computation: a deterministic
    discrete-event replay of a {!Schedule.t} under a crash scenario.

    Semantics:

    - processors are {e fail-silent}: a crashed processor computes nothing
      and sends nothing (results already delivered before a timed crash
      remain valid);
    - surviving resources keep the {e static order} of their work: a
      processor executes its replicas, and each port/link carries its
      messages, in the order of the static schedule (skipping dead items);
    - durations are the static ones, but start times are recomputed: a
      replica starts when its processor is free {e and}, for every
      predecessor task, at least one supply (co-located replica finish or
      message arrival) has been delivered — the paper's "as soon as it
      receives its input data from [one replica], the task is executed and
      ignores the later incoming data";
    - a replica none of whose supplies survive for some predecessor is
      {e starved}: it never runs (the runtime cancels it), freeing its
      processor time;
    - messages whose destination is crashed are still emitted (the static
      sender does not know) and occupy the send port and link; messages
      whose {e source} is dead are never emitted and free all their
      resources.

    Under the one-port model the replay keeps port serialization; under
    macro-dataflow, messages leave at source completion and arrive [W]
    later with no port queuing — exactly the models used at scheduling
    time.  For schedules built over a sparse interconnect, pass the same
    [fabric] so physical-link contention is replayed faithfully (default:
    the clique fabric).

    Schedules built with the {e insertion} policy
    ([Schedule.insertion = true]) get a work-conserving processor model
    instead of the strict static order: a gap-filled replica may precede,
    on its processor, a replica that was scheduled earlier, so freezing
    the static order could deadlock against the (spare) input messages of
    the gap-filled replica.  Their replicas are therefore placed into the
    earliest dynamic idle gap once their data is ready, in static-start
    priority order — deterministic, and never slower than the plan when
    nothing fails. *)

type replica_outcome =
  | Ran of { start : float; finish : float }
  | Crashed  (** processor in the crash scenario, or died mid-execution *)
  | Starved of Dag.task
      (** never ran: no surviving supply for this predecessor *)
  | Lost of { start : float; finish : float }
      (** ran but its result was silently dropped — the fail-silent
          task-grain fault of {!eval_plan}'s [Lose_result] events; the
          replica occupied its processor yet supplied no consumer *)

(** {1 Compile-once evaluation}

    The static event graph (node numbering, dependency and resource-order
    edges, physical routes, supply index) does not depend on the crash
    scenario, only on the schedule and fabric.  {!compile} builds it
    exactly once, together with a preallocated scratch arena; {!eval}
    then replays any number of scenarios with zero per-scenario graph
    construction and near-zero allocation.  A [compiled] value owns its
    scratch arena and is therefore {b not} safe to share across domains —
    compile one per domain (cheap relative to thousands of evals). *)

type compiled
(** A crash-independent replay simulator for one schedule + fabric. *)

val compile : ?fabric:Netstate.fabric -> Schedule.t -> compiled
(** Build the reusable simulator.  [fabric] defaults to the clique over
    the schedule's processors, as in {!crash_from_start}.  Raises
    [Failure] if the schedule's static order is cyclic (the check runs
    here once, not per {!eval}). *)

val proc_count : compiled -> int
(** Processor count [m] of the compiled schedule — the required length of
    the [crash_time] array passed to {!eval}. *)

val task_count : compiled -> int
(** Tasks [v] of the compiled DAG (the [br_tasks] denominator of
    {!eval_batch}). *)

val sink_count : compiled -> int
(** Exit tasks of the compiled DAG (the [br_sinks] denominator). *)

type outcome = {
  completed : bool;
      (** at least one replica of every task produced its result *)
  latency : float;
      (** the real execution time: latest over tasks of the earliest
          surviving replica completion; [nan] if not [completed] *)
  failed_tasks : Dag.task list;
      (** tasks with no surviving completed replica *)
  replicas : replica_outcome array array;
      (** dynamic outcome per task, per replica index *)
}

val eval :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  crash_time:float array ->
  outcome
(** Replay one scenario.  [crash_time.(p)] is the instant processor [p]
    dies: [neg_infinity] for dead-from-start, [infinity] for never.  The
    array is only read.  Outcomes are identical to rebuilding the graph
    per scenario (pinned by the differential test suite). *)

val eval_latency :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  crash_time:float array ->
  float
(** Like {!eval} but returns only the latency ([nan] if any task failed),
    without materializing the per-replica outcome arrays — the
    allocation-free inner loop of Monte-Carlo and fault-check campaigns. *)

val eval_crashed :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  crashed:Platform.proc list ->
  outcome
(** {!eval} with the given processors dead from time zero. *)

val eval_timed :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  crashes:(Platform.proc * float) list ->
  outcome
(** {!eval} where processor [p] dies at time [tau] (earliest wins if a
    processor is listed twice). *)

(** {1 Batched evaluation}

    The campaign throughput path: evaluate a whole block of pre-drawn
    scenarios ({!Scenario.draw_block}) over one compiled engine, writing
    results into flat struct-of-arrays result vectors.  Per scenario it
    walks the traversal order precomputed by {!compile} (no priority
    heap, no in-degree bookkeeping), resets the scratch arena in place,
    and probes dead-from-start / dead-link state through {!Bitset} masks
    with no bounds checks.  Results are bit-identical to calling
    {!eval_latency} (resp. {!eval_degraded}) scenario by scenario —
    pinned against {!reference} by the 108-config differential suite.

    Sets the [replay.batch_size] gauge to the block length and
    [replay.scenarios_per_sec] to this block's evaluation rate. *)

type batch = {
  br_count : int;  (** scenarios evaluated *)
  br_latency : float array;
      (** per scenario: the {!eval_latency} result — frontier latency, or
          [nan] if some task completed no replica *)
  br_tasks : int array;
      (** per scenario, tasks with a surviving replica; [[||]] unless
          [~degradation:true] *)
  br_sinks : int array;  (** sink tasks delivered; [[||]] likewise *)
  br_frontier : float array;
      (** latency of the surviving frontier; [[||]] likewise *)
}

val eval_batch :
  ?cancel:Cancel.token ->
  ?degradation:bool ->
  compiled ->
  Scenario.t array ->
  batch
(** [eval_batch c scenarios] replays every scenario of the block on [c]'s
    arena.  With [~degradation:true] (default [false]) it additionally
    fills the per-scenario degradation columns, and [br_latency] follows
    the Monte-Carlo rule: the frontier when every task completed, [nan]
    otherwise — exactly {!eval_degraded} folded the way
    {!Monte_carlo.run} does.  Raises [Invalid_argument] if a scenario's
    crash-time array length differs from {!proc_count}.

    [cancel] (default {!Cancel.never}) is polled once per scenario;
    when it trips the batch raises [Cancel.Cancelled] between scenarios
    — the serve daemon's request-deadline hook.  A batch that returns
    normally is byte-identical whether or not a token was polled. *)

(** {1 Fault plans}

    A fault plan generalizes the crash-time array into a timeline of
    heterogeneous fault events — the input language of the
    [Ftsched_sim.Inject] adversary and of [ftsched stress]:

    - [Crash]/[Recover] pairs carve {e down windows} out of a
      processor's timeline.  While down it computes nothing, sends
      nothing and receives nothing; work is {e delayed} past the window
      (results produced before a crash persist — stable local storage —
      and a window that never closes reproduces the classic fail-stop
      crash exactly);
    - [Link_outage] makes a directed route unusable for a window; unlike
      [dead_links] (permanent, traffic lost in transit) an outage
      {e delays} traffic, modelling retransmission once the link heals;
    - [Lose_result] is the paper's fail-silent behaviour at task grain: a
      single replica runs, occupies its processor, but its result is
      silently dropped — no co-located consumer and no message ever sees
      it.

    A plan containing only [Crash] events is {e degenerate}: it reduces
    to a crash-time array (earliest crash per processor wins) and is
    routed through the exact same code path as {!eval}, so the one-shot
    wrappers below — re-expressed over plans — keep their historical
    outcomes bit for bit. *)

type fault_event =
  | Crash of { proc : Platform.proc; at : float }
      (** processor dies at [at] ([neg_infinity]: dead from start) *)
  | Recover of { proc : Platform.proc; at : float }
      (** processor comes back at [at] (no matching crash: ignored) *)
  | Link_outage of Netstate.outage
      (** healing outage window on a directed route *)
  | Lose_result of { task : Dag.task; replica : int }
      (** this replica's result is silently lost (transient fault) *)

type plan = fault_event list

val eval_plan :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  plan ->
  outcome
(** Replay one fault plan.  Event order in the list is irrelevant (the
    timeline is reconstructed from the instants); crashing an
    already-dead processor or recovering a live one is a no-op.  Raises
    [Invalid_argument] for out-of-range processor, task or replica ids.
    The empty plan is fault-free: [eval_plan c [] = fault_free sched]. *)

(** Graceful-degradation summary of one replay: what still completed
    when the plan exceeded the schedule's tolerance.  [d_frontier] is
    the latency of the surviving frontier — the latest completion over
    tasks that did complete ([0.] if none did); it equals
    [outcome.latency] when everything completed. *)
type degradation = {
  d_tasks : int;  (** tasks with at least one surviving replica *)
  d_task_count : int;
  d_sinks : int;  (** sink (exit) tasks delivered *)
  d_sink_count : int;
  d_frontier : float;
}

val completion_fraction : degradation -> float
(** [d_tasks / d_task_count] (1.0 on an empty DAG). *)

val sink_fraction : degradation -> float
(** [d_sinks / d_sink_count] (1.0 on an empty DAG). *)

val eval_plan_degraded :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  plan ->
  degradation
(** Like {!eval_plan} but returns only the degradation summary, without
    materializing per-replica outcomes — the inner loop of degradation
    curves and adversary search. *)

val eval_degraded :
  ?dead_links:(Platform.proc * Platform.proc) list ->
  compiled ->
  crash_time:float array ->
  degradation
(** {!eval_degraded} for a plain crash-time scenario (the Monte-Carlo
    degradation sweep's hot path). *)

val reference :
  ?fabric:Netstate.fabric ->
  ?dead_links:(Platform.proc * Platform.proc) list ->
  Schedule.t ->
  crash_time:float array ->
  outcome
(** The original rebuild-the-graph-per-scenario implementation, kept as
    the differential oracle for {!eval} and as the baseline of
    [bench/main.exe --replay].  Semantically identical to
    [eval (compile ?fabric sched) ~crash_time]. *)

(** {1 One-shot wrappers}

    Thin compile-then-eval conveniences; every pre-existing caller goes
    through these, so their outcomes (and the golden schedule
    fingerprints derived from them) are unchanged. *)

val crash_from_start :
  ?fabric:Netstate.fabric ->
  ?dead_links:(Platform.proc * Platform.proc) list ->
  Schedule.t ->
  crashed:Platform.proc list ->
  outcome
(** Replay with the given processors dead from time zero (the adversarial
    model of the paper: tolerating [epsilon] arbitrary failures).
    Duplicate processors in [crashed] are ignored. *)

val crash_timed :
  ?fabric:Netstate.fabric ->
  ?dead_links:(Platform.proc * Platform.proc) list ->
  Schedule.t ->
  crashes:(Platform.proc * float) list ->
  outcome
(** Replay where processor [p] dies at time [tau]: replicas and message
    emissions of [p] that would complete after [tau] are lost, earlier
    ones survive. *)

val fault_free : ?fabric:Netstate.fabric -> Schedule.t -> outcome
(** Replay with no crash.  For a valid schedule, [latency] equals
    {!Schedule.latency_zero_crash} (a useful cross-check, exercised by the
    test suite). *)

val crash_links :
  ?fabric:Netstate.fabric ->
  Schedule.t ->
  links:(Platform.proc * Platform.proc) list ->
  outcome
(** Replay with the given {e directed} processor pairs unable to deliver:
    messages on a dead route are emitted (the sender cannot know) and lost
    in transit, so they still occupy the send port and the physical links.
    Link failures are outside the paper's ε-processor-crash guarantee;
    active replication still masks many of them — this entry point
    measures how many. *)
