(** Crash-scenario generation for experiment campaigns.

    The paper's crash experiments pick the processors that fail uniformly
    among the platform's processors (Section 6: "Processors that fail
    during the schedule process are chosen uniformly from the range
    [\[1, 10\]]"). *)

val uniform_procs : Rng.t -> m:int -> count:int -> Platform.proc list
(** [count] distinct processors chosen uniformly among [m]. *)

val timed :
  Rng.t -> m:int -> count:int -> horizon:float -> (Platform.proc * float) list
(** [count] distinct processors, each with a crash instant uniform in
    [\[0, horizon)] — for the timed-crash extension experiments. *)

(** {1 Pre-drawn scenario blocks}

    The batched replay path ({!Replay.eval_batch}) consumes scenarios in
    the engine's native representation: a per-processor crash-time array
    ([neg_infinity] = dead from the start, [infinity] = never crashes,
    finite = crash instant) plus an optional list of permanently dead
    links.  [draw_block] pre-draws a whole campaign into an array up
    front, off a single root generator, so evaluation order — sequential,
    [Parallel.map], or a {!Parallel.map_pool} — can never perturb the
    stream (the PR 4 determinism contract). *)

type t = {
  sc_crash_time : float array;  (** one entry per processor *)
  sc_dead_links : (Platform.proc * Platform.proc) list;
      (** directed links dead for the whole run *)
}

type mode = From_start | Timed of float
(** [Timed horizon]: crash instants uniform in [\[0, horizon)]. *)

val of_crash_times :
  ?dead_links:(Platform.proc * Platform.proc) list -> float array -> t
(** Wrap an explicit crash-time array (not copied). *)

val draw_block : Rng.t -> m:int -> count:int -> mode:mode -> runs:int -> t array
(** [draw_block rng ~m ~count ~mode ~runs] draws [runs] independent
    scenarios, each crashing [min count m] distinct processors chosen
    uniformly among [m].  Consumes the exact same generator stream as
    drawing each scenario with {!uniform_procs} / {!timed}. *)
