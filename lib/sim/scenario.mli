(** Crash-scenario generation for experiment campaigns.

    The paper's crash experiments pick the processors that fail uniformly
    among the platform's processors (Section 6: "Processors that fail
    during the schedule process are chosen uniformly from the range
    [\[1, 10\]]"). *)

val uniform_procs : Rng.t -> m:int -> count:int -> Platform.proc list
(** [count] distinct processors chosen uniformly among [m]. *)

val timed :
  Rng.t -> m:int -> count:int -> horizon:float -> (Platform.proc * float) list
(** [count] distinct processors, each with a crash instant uniform in
    [\[0, horizon)] — for the timed-crash extension experiments. *)
