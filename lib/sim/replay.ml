type replica_outcome =
  | Ran of { start : float; finish : float }
  | Crashed
  | Starved of Dag.task

type outcome = {
  completed : bool;
  latency : float;
  failed_tasks : Dag.task list;
  replicas : replica_outcome array array;
}

(* Internal event graph.  Nodes are replicas and messages; edges encode
   data prerequisites and the static order of each resource.  A Kahn
   traversal computes dynamic times in one pass. *)

type msg_state = { mutable m_delivered : float (* arrival, or infinity if dead *) }

let m_replays =
  Obs_metrics.counter ~help:"schedule replays run (all crash modes)"
    "replay.runs"

let run sched ~fabric ~crash_time ~dead_links =
  Obs_metrics.incr m_replays;
  Obs_trace.with_span ~cat:"sim" "replay" @@ fun () ->
  let dag = Schedule.dag sched in
  let platform = Schedule.platform sched in
  let model = Schedule.model sched in
  let m = Platform.proc_count platform in
  let fabric =
    match fabric with
    | Some f -> f
    | None -> Netstate.clique_fabric m
  in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in

  (* -- node numbering ---------------------------------------------- *)
  let replica_node task idx = (task * eps1) + idx in
  let nreplicas = v * eps1 in
  (* collect messages: one node per Message supply, remembering its
     consumer *)
  let messages = ref [] in
  let nmsgs = ref 0 in
  let consumer_msgs = Array.make nreplicas [] in
  Array.iter
    (fun (r : Schedule.replica) ->
      List.iter
        (function
          | Schedule.Message msg ->
              let id = nreplicas + !nmsgs in
              incr nmsgs;
              messages := (id, msg, r) :: !messages;
              consumer_msgs.(replica_node r.Schedule.r_task r.Schedule.r_index) <-
                (id, msg) :: consumer_msgs.(replica_node r.Schedule.r_task r.Schedule.r_index)
          | Schedule.Local _ -> ())
        r.Schedule.r_inputs)
    (Array.of_list (Schedule.all_replicas sched));
  let messages = Array.of_list (List.rev !messages) in
  let nnodes = nreplicas + !nmsgs in

  (* -- dependency edges -------------------------------------------- *)
  let adj = Array.make nnodes [] in
  let indeg = Array.make nnodes 0 in
  let add_edge a b =
    adj.(a) <- b :: adj.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  (* data edges *)
  Array.iter
    (fun (id, msg, _consumer) ->
      let s = msg.Netstate.m_source in
      add_edge (replica_node s.Netstate.s_task s.Netstate.s_replica) id)
    messages;
  List.iter
    (fun (r : Schedule.replica) ->
      let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
      List.iter
        (function
          | Schedule.Message _ -> () (* edge added from the message node *)
          | Schedule.Local { l_pred; l_pred_replica; _ } ->
              add_edge (replica_node l_pred l_pred_replica) rn)
        r.Schedule.r_inputs;
      List.iter (fun (id, _) -> add_edge id rn) consumer_msgs.(rn))
    (Schedule.all_replicas sched);
  (* resource-order edges: chain consecutive static events *)
  let chain nodes =
    let rec go = function
      | a :: (b :: _ as rest) ->
          add_edge a b;
          go rest
      | [ _ ] | [] -> ()
    in
    go nodes
  in
  let insertion = Schedule.insertion sched in
  (* Append-built schedules execute each processor's replicas in static
     start order.  Insertion-built schedules cannot: a gap-filled replica
     may start before a replica scheduled earlier while one of its (spare)
     input messages transitively depends on that replica — chaining by
     start order would manufacture a cycle.  They instead get a
     work-conserving processor: dynamic gap placement, no chain edges. *)
  if not insertion then
    for p = 0 to m - 1 do
      (* processor execution order *)
      chain
        (List.map
           (fun (r : Schedule.replica) ->
             replica_node r.Schedule.r_task r.Schedule.r_index)
           (Schedule.on_proc sched p))
    done;
  (if model <> Netstate.Macro_dataflow then begin
     let by_key key_of filter =
       let evs =
         Array.to_list messages
         |> List.filter (fun (_, msg, _) -> filter msg)
         |> List.map (fun (id, msg, _) -> (key_of msg, id))
         |> List.sort compare
       in
       chain (List.map snd evs)
     in
     (* Port sequencing: only the strictly serializing one-port model
        guarantees that static leg/arrival order matches booking order; a
        k-slot port can give a later-booked message an earlier static time
        (it grabbed a free slot), and chaining by static time would then
        manufacture cycles against the data edges.  Multiport ports are
        sequenced dynamically by the slot state instead. *)
     (if model = Netstate.One_port then
        for p = 0 to m - 1 do
          (* send port of p *)
          by_key
            (fun msg -> (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish))
            (fun msg -> msg.Netstate.m_source.Netstate.s_proc = p);
          (* receive port of p *)
          by_key
            (fun msg ->
              (msg.Netstate.m_arrival -. msg.Netstate.m_duration, msg.Netstate.m_arrival))
            (fun msg -> msg.Netstate.m_dst_proc = p)
        done);
     (* each physical link of the fabric serializes the legs routed
        through it *)
     for l = 0 to fabric.Netstate.phys_count - 1 do
       by_key
         (fun msg -> (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish))
         (fun msg ->
           List.mem l
             (fabric.Netstate.route msg.Netstate.m_source.Netstate.s_proc
                msg.Netstate.m_dst_proc))
     done
   end);

  (* -- dynamic state ------------------------------------------------ *)
  let contended = model <> Netstate.Macro_dataflow in
  let port_slots =
    match model with Netstate.Multiport k -> max 1 k | _ -> 1
  in
  let min_slot slots = Array.fold_left Float.min infinity slots in
  let argmin_slot slots =
    let best = ref 0 in
    Array.iteri (fun i v -> if v < slots.(!best) then best := i) slots;
    !best
  in
  let exec_free = Array.make m 0. in
  let busy = Array.make m [] in
  (* earliest gap of length [dur] at or after [ready] on processor [p]
     (insertion mode) *)
  let fit_gap p ~ready ~dur =
    let rec fit prev_end = function
      | [] -> Float.max prev_end ready
      | (s, f) :: rest ->
          let cand = Float.max prev_end ready in
          if cand +. dur <= s +. 1e-9 then cand else fit (Float.max prev_end f) rest
    in
    fit 0. busy.(p)
  in
  let occupy p start finish =
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((s, _) as iv) :: rest when s < start -> iv :: insert rest
      | rest -> (start, finish) :: rest
    in
    busy.(p) <- insert busy.(p)
  in
  let send_free = Array.init m (fun _ -> Array.make port_slots 0.) in
  let recv_free = Array.init m (fun _ -> Array.make port_slots 0.) in
  let phys_free = Array.make fabric.Netstate.phys_count 0. in
  let link_free src dst =
    List.fold_left (fun acc l -> Float.max acc phys_free.(l)) 0.
      (fabric.Netstate.route src dst)
  in
  let occupy_link src dst finish =
    List.iter (fun l -> phys_free.(l) <- finish) (fabric.Netstate.route src dst)
  in
  let replica_result = Array.init v (fun _ -> Array.make eps1 Crashed) in
  let replica_by_node = Array.make nreplicas None in
  List.iter
    (fun (r : Schedule.replica) ->
      replica_by_node.(replica_node r.Schedule.r_task r.Schedule.r_index) <- Some r)
    (Schedule.all_replicas sched);
  let msg_state = Array.init nnodes (fun _ -> { m_delivered = infinity }) in
  let msg_by_node = Array.make nnodes None in
  Array.iter (fun (id, msg, c) -> msg_by_node.(id) <- Some (msg, c)) messages;

  let replica_finish_dyn = Array.make nreplicas infinity in

  let process_replica rn =
    match replica_by_node.(rn) with
    | None -> ()
    | Some r ->
        let task = r.Schedule.r_task and idx = r.Schedule.r_index in
        let p = r.Schedule.r_proc in
        let dur = r.Schedule.r_finish -. r.Schedule.r_start in
        (* per-predecessor earliest surviving supply *)
        let starved = ref None in
        let data_ready = ref 0. in
        List.iter
          (fun pred ->
            let ready = ref infinity in
            List.iter
              (function
                | Schedule.Local { l_pred; l_pred_replica; _ } when l_pred = pred ->
                    let srn = replica_node pred l_pred_replica in
                    ready := Float.min !ready replica_finish_dyn.(srn)
                | Schedule.Local _ -> ()
                | Schedule.Message msg
                  when msg.Netstate.m_source.Netstate.s_task = pred ->
                    (* find the message node to read its delivery time *)
                    List.iter
                      (fun (id, msg') ->
                        if msg' == msg then
                          ready := Float.min !ready msg_state.(id).m_delivered)
                      consumer_msgs.(rn)
                | Schedule.Message _ -> ())
              r.Schedule.r_inputs;
            if !ready = infinity && !starved = None then starved := Some pred
            else data_ready := Float.max !data_ready !ready)
          (Dag.pred_tasks dag task);
        let result =
          if crash_time.(p) = neg_infinity then Crashed
          else
            match !starved with
            | Some pred -> Starved pred
            | None ->
                let start =
                  if insertion then fit_gap p ~ready:!data_ready ~dur
                  else Float.max exec_free.(p) !data_ready
                in
                let finish = start +. dur in
                if finish > crash_time.(p) then begin
                  (* the processor dies while (or before) this replica
                     would run: nothing later on it can run either *)
                  exec_free.(p) <- infinity;
                  if insertion then occupy p crash_time.(p) infinity;
                  Crashed
                end
                else begin
                  exec_free.(p) <- Float.max exec_free.(p) finish;
                  if insertion then occupy p start finish;
                  replica_finish_dyn.(rn) <- finish;
                  Ran { start; finish }
                end
        in
        replica_result.(task).(idx) <- result
  in

  let process_message id =
    match msg_by_node.(id) with
    | None -> ()
    | Some (msg, _consumer) ->
        let s = msg.Netstate.m_source in
        let src = s.Netstate.s_proc and dst = msg.Netstate.m_dst_proc in
        let w = msg.Netstate.m_duration in
        let src_rn = replica_node s.Netstate.s_task s.Netstate.s_replica in
        let src_finish = replica_finish_dyn.(src_rn) in
        if src_finish = infinity then
          (* source never produced: message never emitted *)
          msg_state.(id).m_delivered <- infinity
        else if List.mem (src, dst) dead_links then begin
          (* the route is down: the message is emitted (the sender cannot
             know) and lost in transit *)
          (if contended then begin
             let slot = argmin_slot send_free.(src) in
             let leg_start =
               Float.max send_free.(src).(slot)
                 (Float.max src_finish (link_free src dst))
             in
             let leg_finish = leg_start +. w in
             send_free.(src).(slot) <- leg_finish;
             occupy_link src dst leg_finish
           end);
          msg_state.(id).m_delivered <- infinity
        end
        else begin
          let leg_start =
            if not contended then src_finish
            else
              Float.max (min_slot send_free.(src))
                (Float.max src_finish (link_free src dst))
          in
          let leg_finish = leg_start +. w in
          if leg_finish > crash_time.(src) then begin
            (* sender died before the message fully left; its port sends
               nothing further *)
            Array.fill send_free.(src) 0 port_slots infinity;
            msg_state.(id).m_delivered <- infinity
          end
          else begin
            (if contended then begin
               send_free.(src).(argmin_slot send_free.(src)) <- leg_finish;
               occupy_link src dst leg_finish
             end);
            if crash_time.(dst) = neg_infinity then
              msg_state.(id).m_delivered <- infinity
            else begin
              let slot = argmin_slot recv_free.(dst) in
              let arrival =
                if not contended then leg_finish
                else w +. Float.max recv_free.(dst).(slot) leg_start
              in
              if arrival > crash_time.(dst) then
                msg_state.(id).m_delivered <- infinity
              else begin
                if contended then recv_free.(dst).(slot) <- arrival;
                msg_state.(id).m_delivered <- arrival
              end
            end
          end
        end
  in

  (* -- Kahn traversal, static-time priority order -------------------- *)
  let static_key n =
    if n < nreplicas then
      match replica_by_node.(n) with
      | Some r -> (r.Schedule.r_start, n)
      | None -> (0., n)
    else
      match msg_by_node.(n) with
      | Some (msg, _) -> (msg.Netstate.m_leg_start, n)
      | None -> (0., n)
  in
  let queue = Heap.create ~cmp:(fun a b -> compare (static_key a) (static_key b)) in
  Array.iteri (fun n d -> if d = 0 then Heap.add queue n) indeg;
  let processed = ref 0 in
  while not (Heap.is_empty queue) do
    let n = Heap.pop_exn queue in
    incr processed;
    if n < nreplicas then process_replica n else process_message n;
    List.iter
      (fun n' ->
        indeg.(n') <- indeg.(n') - 1;
        if indeg.(n') = 0 then Heap.add queue n')
      adj.(n)
  done;
  if !processed <> nnodes then
    failwith "Replay.run: cyclic schedule (inconsistent static order)";

  (* -- outcome ------------------------------------------------------ *)
  let failed = ref [] in
  let latency = ref 0. in
  for task = 0 to v - 1 do
    let earliest = ref infinity in
    Array.iter
      (function
        | Ran { finish; _ } -> earliest := Float.min !earliest finish
        | Crashed | Starved _ -> ())
      replica_result.(task);
    if !earliest = infinity then failed := task :: !failed
    else latency := Float.max !latency !earliest
  done;
  let failed_tasks = List.rev !failed in
  {
    completed = failed_tasks = [];
    latency = (if failed_tasks = [] then !latency else nan);
    failed_tasks;
    replicas = replica_result;
  }

let crash_times sched f =
  let m = Platform.proc_count (Schedule.platform sched) in
  Array.init m f

let crash_from_start ?fabric ?(dead_links = []) sched ~crashed =
  let crash_time =
    crash_times sched (fun p ->
        if List.mem p crashed then neg_infinity else infinity)
  in
  run sched ~fabric ~crash_time ~dead_links

let crash_timed ?fabric ?(dead_links = []) sched ~crashes =
  let crash_time =
    crash_times sched (fun p ->
        List.fold_left
          (fun acc (q, tau) -> if q = p then Float.min acc tau else acc)
          infinity crashes)
  in
  run sched ~fabric ~crash_time ~dead_links

let fault_free ?fabric sched =
  let crash_time = crash_times sched (fun _ -> infinity) in
  run sched ~fabric ~crash_time ~dead_links:[]

let crash_links ?fabric sched ~links =
  let crash_time = crash_times sched (fun _ -> infinity) in
  run sched ~fabric ~crash_time ~dead_links:links
