type replica_outcome =
  | Ran of { start : float; finish : float }
  | Crashed
  | Starved of Dag.task
  | Lost of { start : float; finish : float }

type outcome = {
  completed : bool;
  latency : float;
  failed_tasks : Dag.task list;
  replicas : replica_outcome array array;
}

(* Internal event graph.  Nodes are replicas and messages; edges encode
   data prerequisites and the static order of each resource.  A Kahn
   traversal computes dynamic times in one pass.

   The graph is crash-independent, so it is built once by [compile] and
   shared by every [eval] of the same schedule; [reference] below keeps
   the original build-then-traverse implementation as the differential
   oracle and the rebuild-per-scenario bench baseline. *)

let m_replays =
  Obs_metrics.counter ~help:"schedule replays run (all crash modes)"
    "replay.runs"

let m_compiles =
  Obs_metrics.counter ~help:"replay simulators compiled (one per schedule)"
    "replay.compiles"

(* ==================================================================== *)
(* Reference implementation: rebuilds the event graph for one scenario. *)
(* ==================================================================== *)

type msg_state = { mutable m_delivered : float (* arrival, or infinity if dead *) }

let reference ?fabric ?(dead_links = []) sched ~crash_time =
  Obs_metrics.incr m_replays;
  Obs_prof.phase ~cat:"sim" "replay" @@ fun () ->
  let dag = Schedule.dag sched in
  let platform = Schedule.platform sched in
  let model = Schedule.model sched in
  let m = Platform.proc_count platform in
  let fabric =
    match fabric with
    | Some f -> f
    | None -> Netstate.clique_fabric m
  in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in

  (* -- node numbering ---------------------------------------------- *)
  let replica_node task idx = (task * eps1) + idx in
  let nreplicas = v * eps1 in
  (* collect messages: one node per Message supply, remembering its
     consumer *)
  let messages = ref [] in
  let nmsgs = ref 0 in
  let consumer_msgs = Array.make nreplicas [] in
  Array.iter
    (fun (r : Schedule.replica) ->
      List.iter
        (function
          | Schedule.Message msg ->
              let id = nreplicas + !nmsgs in
              incr nmsgs;
              messages := (id, msg, r) :: !messages;
              consumer_msgs.(replica_node r.Schedule.r_task r.Schedule.r_index) <-
                (id, msg) :: consumer_msgs.(replica_node r.Schedule.r_task r.Schedule.r_index)
          | Schedule.Local _ -> ())
        r.Schedule.r_inputs)
    (Array.of_list (Schedule.all_replicas sched));
  let messages = Array.of_list (List.rev !messages) in
  let nnodes = nreplicas + !nmsgs in

  (* -- dependency edges -------------------------------------------- *)
  let adj = Array.make nnodes [] in
  let indeg = Array.make nnodes 0 in
  let add_edge a b =
    adj.(a) <- b :: adj.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  (* data edges *)
  Array.iter
    (fun (id, msg, _consumer) ->
      let s = msg.Netstate.m_source in
      add_edge (replica_node s.Netstate.s_task s.Netstate.s_replica) id)
    messages;
  List.iter
    (fun (r : Schedule.replica) ->
      let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
      List.iter
        (function
          | Schedule.Message _ -> () (* edge added from the message node *)
          | Schedule.Local { l_pred; l_pred_replica; _ } ->
              add_edge (replica_node l_pred l_pred_replica) rn)
        r.Schedule.r_inputs;
      List.iter (fun (id, _) -> add_edge id rn) consumer_msgs.(rn))
    (Schedule.all_replicas sched);
  (* resource-order edges: chain consecutive static events *)
  let chain nodes =
    let rec go = function
      | a :: (b :: _ as rest) ->
          add_edge a b;
          go rest
      | [ _ ] | [] -> ()
    in
    go nodes
  in
  let insertion = Schedule.insertion sched in
  (* Append-built schedules execute each processor's replicas in static
     start order.  Insertion-built schedules cannot: a gap-filled replica
     may start before a replica scheduled earlier while one of its (spare)
     input messages transitively depends on that replica — chaining by
     start order would manufacture a cycle.  They instead get a
     work-conserving processor: dynamic gap placement, no chain edges. *)
  if not insertion then
    for p = 0 to m - 1 do
      (* processor execution order *)
      chain
        (List.map
           (fun (r : Schedule.replica) ->
             replica_node r.Schedule.r_task r.Schedule.r_index)
           (Schedule.on_proc sched p))
    done;
  (if model <> Netstate.Macro_dataflow then begin
     let by_key key_of filter =
       let evs =
         Array.to_list messages
         |> List.filter (fun (_, msg, _) -> filter msg)
         |> List.map (fun (id, msg, _) -> (key_of msg, id))
         |> List.sort compare
       in
       chain (List.map snd evs)
     in
     (* Port sequencing: only the strictly serializing one-port model
        guarantees that static leg/arrival order matches booking order; a
        k-slot port can give a later-booked message an earlier static time
        (it grabbed a free slot), and chaining by static time would then
        manufacture cycles against the data edges.  Multiport ports are
        sequenced dynamically by the slot state instead. *)
     (if model = Netstate.One_port then
        for p = 0 to m - 1 do
          (* send port of p *)
          by_key
            (fun msg -> (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish))
            (fun msg -> msg.Netstate.m_source.Netstate.s_proc = p);
          (* receive port of p *)
          by_key
            (fun msg ->
              (msg.Netstate.m_arrival -. msg.Netstate.m_duration, msg.Netstate.m_arrival))
            (fun msg -> msg.Netstate.m_dst_proc = p)
        done);
     (* each physical link of the fabric serializes the legs routed
        through it *)
     for l = 0 to fabric.Netstate.phys_count - 1 do
       by_key
         (fun msg -> (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish))
         (fun msg ->
           List.mem l
             (fabric.Netstate.route msg.Netstate.m_source.Netstate.s_proc
                msg.Netstate.m_dst_proc))
     done
   end);

  (* -- dynamic state ------------------------------------------------ *)
  let contended = model <> Netstate.Macro_dataflow in
  let port_slots =
    match model with Netstate.Multiport k -> max 1 k | _ -> 1
  in
  let min_slot slots = Array.fold_left Float.min infinity slots in
  let argmin_slot slots =
    let best = ref 0 in
    Array.iteri (fun i v -> if v < slots.(!best) then best := i) slots;
    !best
  in
  let exec_free = Array.make m 0. in
  let busy = Array.make m [] in
  (* earliest gap of length [dur] at or after [ready] on processor [p]
     (insertion mode) *)
  let fit_gap p ~ready ~dur =
    let rec fit prev_end = function
      | [] -> Float.max prev_end ready
      | (s, f) :: rest ->
          let cand = Float.max prev_end ready in
          if cand +. dur <= s +. 1e-9 then cand else fit (Float.max prev_end f) rest
    in
    fit 0. busy.(p)
  in
  let occupy p start finish =
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((s, _) as iv) :: rest when s < start -> iv :: insert rest
      | rest -> (start, finish) :: rest
    in
    busy.(p) <- insert busy.(p)
  in
  let send_free = Array.init m (fun _ -> Array.make port_slots 0.) in
  let recv_free = Array.init m (fun _ -> Array.make port_slots 0.) in
  let phys_free = Array.make fabric.Netstate.phys_count 0. in
  let link_free src dst =
    List.fold_left (fun acc l -> Float.max acc phys_free.(l)) 0.
      (fabric.Netstate.route src dst)
  in
  let occupy_link src dst finish =
    List.iter (fun l -> phys_free.(l) <- finish) (fabric.Netstate.route src dst)
  in
  let replica_result = Array.init v (fun _ -> Array.make eps1 Crashed) in
  let replica_by_node = Array.make nreplicas None in
  List.iter
    (fun (r : Schedule.replica) ->
      replica_by_node.(replica_node r.Schedule.r_task r.Schedule.r_index) <- Some r)
    (Schedule.all_replicas sched);
  let msg_state = Array.init nnodes (fun _ -> { m_delivered = infinity }) in
  let msg_by_node = Array.make nnodes None in
  Array.iter (fun (id, msg, c) -> msg_by_node.(id) <- Some (msg, c)) messages;

  let replica_finish_dyn = Array.make nreplicas infinity in

  let process_replica rn =
    match replica_by_node.(rn) with
    | None -> ()
    | Some r ->
        let task = r.Schedule.r_task and idx = r.Schedule.r_index in
        let p = r.Schedule.r_proc in
        let dur = r.Schedule.r_finish -. r.Schedule.r_start in
        (* per-predecessor earliest surviving supply *)
        let starved = ref None in
        let data_ready = ref 0. in
        List.iter
          (fun pred ->
            let ready = ref infinity in
            List.iter
              (function
                | Schedule.Local { l_pred; l_pred_replica; _ } when l_pred = pred ->
                    let srn = replica_node pred l_pred_replica in
                    ready := Float.min !ready replica_finish_dyn.(srn)
                | Schedule.Local _ -> ()
                | Schedule.Message msg
                  when msg.Netstate.m_source.Netstate.s_task = pred ->
                    (* find the message node to read its delivery time *)
                    List.iter
                      (fun (id, msg') ->
                        if msg' == msg then
                          ready := Float.min !ready msg_state.(id).m_delivered)
                      consumer_msgs.(rn)
                | Schedule.Message _ -> ())
              r.Schedule.r_inputs;
            if !ready = infinity && !starved = None then starved := Some pred
            else data_ready := Float.max !data_ready !ready)
          (Dag.pred_tasks dag task);
        let result =
          if crash_time.(p) = neg_infinity then Crashed
          else
            match !starved with
            | Some pred -> Starved pred
            | None ->
                let start =
                  if insertion then fit_gap p ~ready:!data_ready ~dur
                  else Float.max exec_free.(p) !data_ready
                in
                let finish = start +. dur in
                if finish > crash_time.(p) then begin
                  (* the processor dies while (or before) this replica
                     would run: nothing later on it can run either *)
                  exec_free.(p) <- infinity;
                  if insertion then occupy p crash_time.(p) infinity;
                  Crashed
                end
                else begin
                  exec_free.(p) <- Float.max exec_free.(p) finish;
                  if insertion then occupy p start finish;
                  replica_finish_dyn.(rn) <- finish;
                  Ran { start; finish }
                end
        in
        replica_result.(task).(idx) <- result
  in

  let process_message id =
    match msg_by_node.(id) with
    | None -> ()
    | Some (msg, _consumer) ->
        let s = msg.Netstate.m_source in
        let src = s.Netstate.s_proc and dst = msg.Netstate.m_dst_proc in
        let w = msg.Netstate.m_duration in
        let src_rn = replica_node s.Netstate.s_task s.Netstate.s_replica in
        let src_finish = replica_finish_dyn.(src_rn) in
        if src_finish = infinity then
          (* source never produced: message never emitted *)
          msg_state.(id).m_delivered <- infinity
        else if List.mem (src, dst) dead_links then begin
          (* the route is down: the message is emitted (the sender cannot
             know) and lost in transit *)
          (if contended then begin
             let slot = argmin_slot send_free.(src) in
             let leg_start =
               Float.max send_free.(src).(slot)
                 (Float.max src_finish (link_free src dst))
             in
             let leg_finish = leg_start +. w in
             send_free.(src).(slot) <- leg_finish;
             occupy_link src dst leg_finish
           end);
          msg_state.(id).m_delivered <- infinity
        end
        else begin
          let leg_start =
            if not contended then src_finish
            else
              Float.max (min_slot send_free.(src))
                (Float.max src_finish (link_free src dst))
          in
          let leg_finish = leg_start +. w in
          if leg_finish > crash_time.(src) then begin
            (* sender died before the message fully left; its port sends
               nothing further *)
            Array.fill send_free.(src) 0 port_slots infinity;
            msg_state.(id).m_delivered <- infinity
          end
          else begin
            (if contended then begin
               send_free.(src).(argmin_slot send_free.(src)) <- leg_finish;
               occupy_link src dst leg_finish
             end);
            if crash_time.(dst) = neg_infinity then
              msg_state.(id).m_delivered <- infinity
            else begin
              let slot = argmin_slot recv_free.(dst) in
              let arrival =
                if not contended then leg_finish
                else w +. Float.max recv_free.(dst).(slot) leg_start
              in
              if arrival > crash_time.(dst) then
                msg_state.(id).m_delivered <- infinity
              else begin
                if contended then recv_free.(dst).(slot) <- arrival;
                msg_state.(id).m_delivered <- arrival
              end
            end
          end
        end
  in

  (* -- Kahn traversal, static-time priority order -------------------- *)
  let static_key n =
    if n < nreplicas then
      match replica_by_node.(n) with
      | Some r -> (r.Schedule.r_start, n)
      | None -> (0., n)
    else
      match msg_by_node.(n) with
      | Some (msg, _) -> (msg.Netstate.m_leg_start, n)
      | None -> (0., n)
  in
  let queue = Heap.create ~cmp:(fun a b -> compare (static_key a) (static_key b)) in
  Array.iteri (fun n d -> if d = 0 then Heap.add queue n) indeg;
  let processed = ref 0 in
  while not (Heap.is_empty queue) do
    let n = Heap.pop_exn queue in
    incr processed;
    if n < nreplicas then process_replica n else process_message n;
    List.iter
      (fun n' ->
        indeg.(n') <- indeg.(n') - 1;
        if indeg.(n') = 0 then Heap.add queue n')
      adj.(n)
  done;
  if !processed <> nnodes then
    failwith "Replay.run: cyclic schedule (inconsistent static order)";

  (* -- outcome ------------------------------------------------------ *)
  let failed = ref [] in
  let latency = ref 0. in
  for task = 0 to v - 1 do
    let earliest = ref infinity in
    Array.iter
      (function
        | Ran { finish; _ } -> earliest := Float.min !earliest finish
        | Crashed | Starved _ | Lost _ -> ())
      replica_result.(task);
    if !earliest = infinity then failed := task :: !failed
    else latency := Float.max !latency !earliest
  done;
  let failed_tasks = List.rev !failed in
  {
    completed = failed_tasks = [];
    latency = (if failed_tasks = [] then !latency else nan);
    failed_tasks;
    replicas = replica_result;
  }

(* ==================================================================== *)
(* Compiled simulator: everything crash-independent, built exactly once *)
(* ==================================================================== *)

(* Replica outcome states in the scratch arena. *)
let st_crashed = 0
let st_ran = 1
let st_starved = 2
let st_lost = 3

type compiled = {
  (* immutable description ------------------------------------------- *)
  c_m : int;
  c_v : int;
  c_eps1 : int;
  c_insertion : bool;
  c_contended : bool;
  c_port_slots : int;
  c_nreplicas : int;
  c_nmsgs : int;
  (* dependency + resource-order edges, CSR *)
  c_adj_off : int array;
  c_adj : int array;
  c_indeg0 : int array;
  c_key : float array;  (* static-time Kahn priority per node *)
  c_order : int array;
  (* The heap pop order of the Kahn traversal depends only on static data
     (c_indeg0 / c_adj / c_key), never on the scenario, so [compile]
     precomputes it once.  The batched path walks this array in a flat
     loop — no heap operations, no in-degree resets per scenario. *)
  (* per replica node *)
  c_r_proc : int array;
  c_r_dur : float array;
  (* supply index: replica node -> predecessor slots -> supply nodes.
     A supply node < c_nreplicas is a co-located replica (read its
     dynamic finish); otherwise it is a message node (read its dynamic
     arrival). *)
  c_pred_off : int array;   (* nreplicas + 1 *)
  c_pred_task : int array;  (* per predecessor slot *)
  c_sup_off : int array;    (* pred slots + 1 *)
  c_sup : int array;
  (* per message node, indexed by id - nreplicas *)
  c_msg_src_rn : int array;
  c_msg_src : int array;
  c_msg_dst : int array;
  c_msg_dur : float array;
  c_route_off : int array;  (* nmsgs + 1; precomputed physical routes *)
  c_route : int array;
  c_phys_count : int;
  c_fabric : Netstate.fabric;  (* for projecting plan outages onto links *)
  c_sinks : int array;  (* exit tasks, for degradation reports *)
  (* scratch arena: reset in place at the start of every eval ---------- *)
  s_indeg : int array;
  s_finish : float array;     (* dynamic replica finish, infinity if not Ran *)
  s_start : float array;      (* dynamic replica start (valid when Ran) *)
  s_state : int array;        (* st_crashed / st_ran / st_starved *)
  s_starved : int array;      (* starving predecessor (valid when Starved) *)
  s_delivered : float array;  (* dynamic message arrival, infinity if dead *)
  s_exec_free : float array;
  s_busy : (float * float) list array;  (* insertion schedules only *)
  s_send_free : float array array;
  s_recv_free : float array array;
  s_phys_free : float array;
  s_msg_dead : bool array;    (* message rides a dead link this scenario *)
  mutable s_dead_dirty : bool;
  s_queue : int Heap.t;
  (* batch-path masks: crash/outage state as bitsets, tested without
     bounds checks in the ordered inner loop *)
  s_crashed : Bitset.t;       (* processors dead from the scenario start *)
  s_dead_mask : Bitset.t;     (* message rides a dead link (batch path) *)
  mutable s_mask_dirty : bool;
}

let proc_count c = c.c_m
let task_count c = c.c_v
let sink_count c = Array.length c.c_sinks

let compile ?fabric sched =
  Obs_metrics.incr m_compiles;
  Obs_prof.phase ~cat:"sim" "replay.compile" @@ fun () ->
  let dag = Schedule.dag sched in
  let platform = Schedule.platform sched in
  let model = Schedule.model sched in
  let m = Platform.proc_count platform in
  let fabric =
    match fabric with
    | Some f -> f
    | None -> Netstate.clique_fabric m
  in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in
  let replica_node task idx = (task * eps1) + idx in
  let nreplicas = v * eps1 in
  let all_replicas = Schedule.all_replicas sched in

  (* -- message node numbering (same discovery order as [reference]) -- *)
  let messages = ref [] in
  let nmsgs = ref 0 in
  let consumer_msgs = Array.make nreplicas [] in
  List.iter
    (fun (r : Schedule.replica) ->
      List.iter
        (function
          | Schedule.Message msg ->
              let id = nreplicas + !nmsgs in
              incr nmsgs;
              messages := (id, msg) :: !messages;
              let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
              consumer_msgs.(rn) <- (id, msg) :: consumer_msgs.(rn)
          | Schedule.Local _ -> ())
        r.Schedule.r_inputs)
    all_replicas;
  let messages = Array.of_list (List.rev !messages) in
  let nmsgs = !nmsgs in
  let nnodes = nreplicas + nmsgs in

  (* -- edges (identical set to [reference]) -------------------------- *)
  let adj = Array.make nnodes [] in
  let indeg = Array.make nnodes 0 in
  let add_edge a b =
    adj.(a) <- b :: adj.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  Array.iter
    (fun (id, msg) ->
      let s = msg.Netstate.m_source in
      add_edge (replica_node s.Netstate.s_task s.Netstate.s_replica) id)
    messages;
  List.iter
    (fun (r : Schedule.replica) ->
      let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
      List.iter
        (function
          | Schedule.Message _ -> ()
          | Schedule.Local { l_pred; l_pred_replica; _ } ->
              add_edge (replica_node l_pred l_pred_replica) rn)
        r.Schedule.r_inputs;
      List.iter (fun (id, _) -> add_edge id rn) consumer_msgs.(rn))
    all_replicas;
  let chain nodes =
    let rec go = function
      | a :: (b :: _ as rest) ->
          add_edge a b;
          go rest
      | [ _ ] | [] -> ()
    in
    go nodes
  in
  let insertion = Schedule.insertion sched in
  if not insertion then
    for p = 0 to m - 1 do
      chain
        (List.map
           (fun (r : Schedule.replica) ->
             replica_node r.Schedule.r_task r.Schedule.r_index)
           (Schedule.on_proc sched p))
    done;
  let contended = model <> Netstate.Macro_dataflow in
  (* Precomputed routes: [reference] re-evaluates [fabric.route] per
     message per physical link (O(phys * msgs * route_len) per replay);
     here each route is computed once and the link chains fall out of a
     single bucketing pass. *)
  let route_of =
    Array.map
      (fun (_, msg) ->
        if contended then
          Array.of_list
            (fabric.Netstate.route msg.Netstate.m_source.Netstate.s_proc
               msg.Netstate.m_dst_proc)
        else [||])
      messages
  in
  (if contended then begin
     let chain_sorted bucket =
       (* (key1, key2, id) triples sort exactly like ((key1, key2), id)
          pairs; ids are unique, so the order is total and matches
          [reference]'s [by_key]. *)
       chain (List.map (fun (_, _, id) -> id) (List.sort compare bucket))
     in
     (if model = Netstate.One_port then begin
        let send_bucket = Array.make m [] in
        let recv_bucket = Array.make m [] in
        Array.iter
          (fun (id, msg) ->
            let src = msg.Netstate.m_source.Netstate.s_proc in
            let dst = msg.Netstate.m_dst_proc in
            send_bucket.(src) <-
              (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish, id)
              :: send_bucket.(src);
            recv_bucket.(dst) <-
              ( msg.Netstate.m_arrival -. msg.Netstate.m_duration,
                msg.Netstate.m_arrival,
                id )
              :: recv_bucket.(dst))
          messages;
        for p = 0 to m - 1 do
          chain_sorted send_bucket.(p);
          chain_sorted recv_bucket.(p)
        done
      end);
     let link_bucket = Array.make fabric.Netstate.phys_count [] in
     Array.iteri
       (fun mi (id, msg) ->
         Array.iter
           (fun l ->
             link_bucket.(l) <-
               (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish, id)
               :: link_bucket.(l))
           route_of.(mi))
       messages;
     for l = 0 to fabric.Netstate.phys_count - 1 do
       chain_sorted link_bucket.(l)
     done
   end);

  (* -- flatten edges to CSR ------------------------------------------ *)
  let adj_off = Array.make (nnodes + 1) 0 in
  for n = 0 to nnodes - 1 do
    adj_off.(n + 1) <- adj_off.(n) + List.length adj.(n)
  done;
  let adj_dat = Array.make adj_off.(nnodes) 0 in
  for n = 0 to nnodes - 1 do
    List.iteri (fun i n' -> adj_dat.(adj_off.(n) + i) <- n') adj.(n)
  done;

  (* -- per-node static data ------------------------------------------ *)
  let key = Array.make nnodes 0. in
  let r_proc = Array.make nreplicas 0 in
  let r_dur = Array.make nreplicas 0. in
  List.iter
    (fun (r : Schedule.replica) ->
      let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
      key.(rn) <- r.Schedule.r_start;
      r_proc.(rn) <- r.Schedule.r_proc;
      r_dur.(rn) <- r.Schedule.r_finish -. r.Schedule.r_start)
    all_replicas;
  let msg_src_rn = Array.make nmsgs 0 in
  let msg_src = Array.make nmsgs 0 in
  let msg_dst = Array.make nmsgs 0 in
  let msg_dur = Array.make nmsgs 0. in
  Array.iteri
    (fun mi (id, msg) ->
      let s = msg.Netstate.m_source in
      key.(id) <- msg.Netstate.m_leg_start;
      msg_src_rn.(mi) <- replica_node s.Netstate.s_task s.Netstate.s_replica;
      msg_src.(mi) <- s.Netstate.s_proc;
      msg_dst.(mi) <- msg.Netstate.m_dst_proc;
      msg_dur.(mi) <- msg.Netstate.m_duration)
    messages;
  let route_off = Array.make (nmsgs + 1) 0 in
  for mi = 0 to nmsgs - 1 do
    route_off.(mi + 1) <- route_off.(mi) + Array.length route_of.(mi)
  done;
  let route_dat = Array.make route_off.(nmsgs) 0 in
  for mi = 0 to nmsgs - 1 do
    Array.iteri (fun i l -> route_dat.(route_off.(mi) + i) <- l) route_of.(mi)
  done;

  (* -- supply index: predecessor task -> surviving-supply candidates.
        [reference] rescans [r_inputs] and [consumer_msgs] per
        predecessor on every replay; resolved here once. -------------- *)
  let pred_off = Array.make (nreplicas + 1) 0 in
  let pred_tasks_of = Array.make nreplicas [||] in
  List.iter
    (fun (r : Schedule.replica) ->
      let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
      pred_tasks_of.(rn) <- Array.of_list (Dag.pred_tasks dag r.Schedule.r_task))
    all_replicas;
  for rn = 0 to nreplicas - 1 do
    pred_off.(rn + 1) <- pred_off.(rn) + Array.length pred_tasks_of.(rn)
  done;
  let npred_slots = pred_off.(nreplicas) in
  let pred_task = Array.make npred_slots 0 in
  let supplies = Array.make npred_slots [] in
  List.iter
    (fun (r : Schedule.replica) ->
      let rn = replica_node r.Schedule.r_task r.Schedule.r_index in
      Array.iteri
        (fun i pred ->
          let slot = pred_off.(rn) + i in
          pred_task.(slot) <- pred;
          let sup = ref [] in
          List.iter
            (function
              | Schedule.Local { l_pred; l_pred_replica; _ } when l_pred = pred
                ->
                  sup := replica_node pred l_pred_replica :: !sup
              | Schedule.Local _ -> ()
              | Schedule.Message _ -> ())
            r.Schedule.r_inputs;
          List.iter
            (fun (id, msg) ->
              if msg.Netstate.m_source.Netstate.s_task = pred then
                sup := id :: !sup)
            consumer_msgs.(rn);
          supplies.(slot) <- !sup)
        pred_tasks_of.(rn))
    all_replicas;
  let sup_off = Array.make (npred_slots + 1) 0 in
  for slot = 0 to npred_slots - 1 do
    sup_off.(slot + 1) <- sup_off.(slot) + List.length supplies.(slot)
  done;
  let sup_dat = Array.make sup_off.(npred_slots) 0 in
  for slot = 0 to npred_slots - 1 do
    List.iteri (fun i s -> sup_dat.(sup_off.(slot) + i) <- s) supplies.(slot)
  done;

  let port_slots =
    match model with Netstate.Multiport k -> max 1 k | _ -> 1
  in
  (* Allocation-free equivalent of [reference]'s polymorphic
     [compare (static_key a) (static_key b)]: keys are finite floats, so
     Float.compare-then-id gives the identical total order. *)
  let cmp a b =
    let d = Float.compare key.(a) key.(b) in
    if d <> 0 then d else Stdlib.compare a b
  in
  (* -- static traversal order ---------------------------------------- *)
  (* Run the Kahn heap once here: the pop order is scenario-independent,
     so [eval_batch] replays it as a flat array walk.  Draining every
     node doubles as the acyclicity check that lets eval skip it. *)
  let order = Array.make nnodes 0 in
  (let deg = Array.copy indeg in
   let queue = Heap.create ~cmp in
   Array.iteri (fun n d -> if d = 0 then Heap.add queue n) deg;
   let processed = ref 0 in
   while not (Heap.is_empty queue) do
     let n = Heap.pop_exn queue in
     order.(!processed) <- n;
     incr processed;
     for k = adj_off.(n) to adj_off.(n + 1) - 1 do
       let n' = adj_dat.(k) in
       deg.(n') <- deg.(n') - 1;
       if deg.(n') = 0 then Heap.add queue n'
     done
   done;
   if !processed <> nnodes then
     failwith "Replay.compile: cyclic schedule (inconsistent static order)");
  {
      c_m = m;
      c_v = v;
      c_eps1 = eps1;
      c_insertion = insertion;
      c_contended = contended;
      c_port_slots = port_slots;
      c_nreplicas = nreplicas;
      c_nmsgs = nmsgs;
      c_adj_off = adj_off;
      c_adj = adj_dat;
      c_indeg0 = indeg;
      c_key = key;
      c_order = order;
      c_r_proc = r_proc;
      c_r_dur = r_dur;
      c_pred_off = pred_off;
      c_pred_task = pred_task;
      c_sup_off = sup_off;
      c_sup = sup_dat;
      c_msg_src_rn = msg_src_rn;
      c_msg_src = msg_src;
      c_msg_dst = msg_dst;
      c_msg_dur = msg_dur;
      c_route_off = route_off;
      c_route = route_dat;
      c_phys_count = fabric.Netstate.phys_count;
      c_fabric = fabric;
      c_sinks = Array.of_list (Dag.exits dag);
      s_indeg = Array.make nnodes 0;
      s_finish = Array.make (max 1 nreplicas) infinity;
      s_start = Array.make (max 1 nreplicas) 0.;
      s_state = Array.make (max 1 nreplicas) st_crashed;
      s_starved = Array.make (max 1 nreplicas) 0;
      s_delivered = Array.make (max 1 nmsgs) infinity;
      s_exec_free = Array.make m 0.;
      s_busy = Array.make m [];
      s_send_free = Array.init m (fun _ -> Array.make port_slots 0.);
      s_recv_free = Array.init m (fun _ -> Array.make port_slots 0.);
      s_phys_free = Array.make (max 1 fabric.Netstate.phys_count) 0.;
      s_msg_dead = Array.make (max 1 nmsgs) false;
      s_dead_dirty = false;
      s_queue = Heap.create ~cmp;
      s_crashed = Bitset.create m;
      s_dead_mask = Bitset.create (max 1 nmsgs);
      s_mask_dirty = false;
    }

(* Reset the scratch arena and run the Kahn pass for one scenario.
   [crash_time] is read, never written or retained. *)
let eval_core c ~crash_time ~dead_links =
  Obs_metrics.incr m_replays;
  if Array.length crash_time <> c.c_m then
    invalid_arg "Replay.eval: crash_time length <> processor count";
  (* -- reset --------------------------------------------------------- *)
  Array.fill c.s_finish 0 (Array.length c.s_finish) infinity;
  Array.fill c.s_state 0 (Array.length c.s_state) st_crashed;
  Array.fill c.s_delivered 0 (Array.length c.s_delivered) infinity;
  Array.fill c.s_exec_free 0 c.c_m 0.;
  if c.c_insertion then Array.fill c.s_busy 0 c.c_m [];
  if c.c_contended then begin
    for p = 0 to c.c_m - 1 do
      Array.fill c.s_send_free.(p) 0 c.c_port_slots 0.;
      Array.fill c.s_recv_free.(p) 0 c.c_port_slots 0.
    done;
    Array.fill c.s_phys_free 0 (Array.length c.s_phys_free) 0.
  end;
  (if c.s_dead_dirty then begin
     Array.fill c.s_msg_dead 0 (Array.length c.s_msg_dead) false;
     c.s_dead_dirty <- false
   end);
  (match dead_links with
  | [] -> ()
  | dl ->
      c.s_dead_dirty <- true;
      for mi = 0 to c.c_nmsgs - 1 do
        c.s_msg_dead.(mi) <- List.mem (c.c_msg_src.(mi), c.c_msg_dst.(mi)) dl
      done);

  let min_slot slots = Array.fold_left Float.min infinity slots in
  let argmin_slot slots =
    let best = ref 0 in
    Array.iteri (fun i v -> if v < slots.(!best) then best := i) slots;
    !best
  in
  let fit_gap p ~ready ~dur =
    let rec fit prev_end = function
      | [] -> Float.max prev_end ready
      | (s, f) :: rest ->
          let cand = Float.max prev_end ready in
          if cand +. dur <= s +. 1e-9 then cand
          else fit (Float.max prev_end f) rest
    in
    fit 0. c.s_busy.(p)
  in
  let occupy p start finish =
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((s, _) as iv) :: rest when s < start -> iv :: insert rest
      | rest -> (start, finish) :: rest
    in
    c.s_busy.(p) <- insert c.s_busy.(p)
  in
  let link_free mi =
    let acc = ref 0. in
    for k = c.c_route_off.(mi) to c.c_route_off.(mi + 1) - 1 do
      let f = c.s_phys_free.(c.c_route.(k)) in
      if f > !acc then acc := f
    done;
    !acc
  in
  let occupy_link mi finish =
    for k = c.c_route_off.(mi) to c.c_route_off.(mi + 1) - 1 do
      c.s_phys_free.(c.c_route.(k)) <- finish
    done
  in

  let process_replica rn =
    let p = c.c_r_proc.(rn) in
    let dur = c.c_r_dur.(rn) in
    let starved = ref (-1) in
    let data_ready = ref 0. in
    for slot = c.c_pred_off.(rn) to c.c_pred_off.(rn + 1) - 1 do
      let ready = ref infinity in
      for k = c.c_sup_off.(slot) to c.c_sup_off.(slot + 1) - 1 do
        let node = c.c_sup.(k) in
        let t =
          if node < c.c_nreplicas then c.s_finish.(node)
          else c.s_delivered.(node - c.c_nreplicas)
        in
        if t < !ready then ready := t
      done;
      if !ready = infinity && !starved < 0 then starved := c.c_pred_task.(slot)
      else data_ready := Float.max !data_ready !ready
    done;
    if crash_time.(p) = neg_infinity then () (* stays st_crashed *)
    else if !starved >= 0 then begin
      c.s_state.(rn) <- st_starved;
      c.s_starved.(rn) <- !starved
    end
    else begin
      let start =
        if c.c_insertion then fit_gap p ~ready:!data_ready ~dur
        else Float.max c.s_exec_free.(p) !data_ready
      in
      let finish = start +. dur in
      if finish > crash_time.(p) then begin
        c.s_exec_free.(p) <- infinity;
        if c.c_insertion then occupy p crash_time.(p) infinity
        (* stays st_crashed *)
      end
      else begin
        c.s_exec_free.(p) <- Float.max c.s_exec_free.(p) finish;
        if c.c_insertion then occupy p start finish;
        c.s_finish.(rn) <- finish;
        c.s_start.(rn) <- start;
        c.s_state.(rn) <- st_ran
      end
    end
  in

  let process_message mi =
    let src = c.c_msg_src.(mi) and dst = c.c_msg_dst.(mi) in
    let w = c.c_msg_dur.(mi) in
    let src_finish = c.s_finish.(c.c_msg_src_rn.(mi)) in
    if src_finish = infinity then c.s_delivered.(mi) <- infinity
    else if c.s_dead_dirty && c.s_msg_dead.(mi) then begin
      (if c.c_contended then begin
         let slot = argmin_slot c.s_send_free.(src) in
         let leg_start =
           Float.max
             c.s_send_free.(src).(slot)
             (Float.max src_finish (link_free mi))
         in
         let leg_finish = leg_start +. w in
         c.s_send_free.(src).(slot) <- leg_finish;
         occupy_link mi leg_finish
       end);
      c.s_delivered.(mi) <- infinity
    end
    else begin
      let leg_start =
        if not c.c_contended then src_finish
        else
          Float.max
            (min_slot c.s_send_free.(src))
            (Float.max src_finish (link_free mi))
      in
      let leg_finish = leg_start +. w in
      if leg_finish > crash_time.(src) then begin
        Array.fill c.s_send_free.(src) 0 c.c_port_slots infinity;
        c.s_delivered.(mi) <- infinity
      end
      else begin
        (if c.c_contended then begin
           c.s_send_free.(src).(argmin_slot c.s_send_free.(src)) <- leg_finish;
           occupy_link mi leg_finish
         end);
        if crash_time.(dst) = neg_infinity then c.s_delivered.(mi) <- infinity
        else begin
          let slot = argmin_slot c.s_recv_free.(dst) in
          let arrival =
            if not c.c_contended then leg_finish
            else w +. Float.max c.s_recv_free.(dst).(slot) leg_start
          in
          if arrival > crash_time.(dst) then c.s_delivered.(mi) <- infinity
          else begin
            if c.c_contended then c.s_recv_free.(dst).(slot) <- arrival;
            c.s_delivered.(mi) <- arrival
          end
        end
      end
    end
  in

  (* -- Kahn traversal over the prebuilt graph ------------------------ *)
  let nnodes = c.c_nreplicas + c.c_nmsgs in
  let queue = c.s_queue in
  Heap.clear queue;
  for n = 0 to nnodes - 1 do
    c.s_indeg.(n) <- c.c_indeg0.(n);
    if c.c_indeg0.(n) = 0 then Heap.add queue n
  done;
  while not (Heap.is_empty queue) do
    let n = Heap.pop_exn queue in
    if n < c.c_nreplicas then process_replica n
    else process_message (n - c.c_nreplicas);
    for k = c.c_adj_off.(n) to c.c_adj_off.(n + 1) - 1 do
      let n' = c.c_adj.(k) in
      c.s_indeg.(n') <- c.s_indeg.(n') - 1;
      if c.s_indeg.(n') = 0 then Heap.add queue n'
    done
  done

let eval_latency ?(dead_links = []) c ~crash_time =
  eval_core c ~crash_time ~dead_links;
  let latency = ref 0. in
  let failed = ref false in
  let rn = ref 0 in
  for _task = 0 to c.c_v - 1 do
    let earliest = ref infinity in
    for _idx = 0 to c.c_eps1 - 1 do
      let f = c.s_finish.(!rn) in
      if f < !earliest then earliest := f;
      incr rn
    done;
    if !earliest = infinity then failed := true
    else latency := Float.max !latency !earliest
  done;
  if !failed then nan else !latency

(* Materialize the outcome record from the scratch arena (after a core
   pass).  Shared by [eval] and [eval_plan]; only plans can leave a
   replica in [st_lost]. *)
let collect_outcome c =
  let replica_result =
    Array.init c.c_v (fun task ->
        Array.init c.c_eps1 (fun idx ->
            let rn = (task * c.c_eps1) + idx in
            if c.s_state.(rn) = st_ran then
              Ran { start = c.s_start.(rn); finish = c.s_finish.(rn) }
            else if c.s_state.(rn) = st_starved then Starved c.s_starved.(rn)
            else if c.s_state.(rn) = st_lost then
              Lost
                {
                  start = c.s_start.(rn);
                  finish = c.s_start.(rn) +. c.c_r_dur.(rn);
                }
            else Crashed))
  in
  let failed = ref [] in
  let latency = ref 0. in
  for task = 0 to c.c_v - 1 do
    let earliest = ref infinity in
    Array.iter
      (function
        | Ran { finish; _ } -> earliest := Float.min !earliest finish
        | Crashed | Starved _ | Lost _ -> ())
      replica_result.(task);
    if !earliest = infinity then failed := task :: !failed
    else latency := Float.max !latency !earliest
  done;
  let failed_tasks = List.rev !failed in
  {
    completed = failed_tasks = [];
    latency = (if failed_tasks = [] then !latency else nan);
    failed_tasks;
    replicas = replica_result;
  }

let eval ?(dead_links = []) c ~crash_time =
  Obs_prof.phase ~cat:"sim" "replay.eval" @@ fun () ->
  eval_core c ~crash_time ~dead_links;
  collect_outcome c

(* -- crash-time helpers and thin wrappers ------------------------------ *)

let crash_times_from_start m crashed =
  Array.init m (fun p ->
      if List.mem p crashed then neg_infinity else infinity)

let crash_times_timed m crashes =
  Array.init m (fun p ->
      List.fold_left
        (fun acc (q, tau) -> if q = p then Float.min acc tau else acc)
        infinity crashes)

let eval_crashed ?(dead_links = []) c ~crashed =
  eval ~dead_links c ~crash_time:(crash_times_from_start c.c_m crashed)

let eval_timed ?(dead_links = []) c ~crashes =
  eval ~dead_links c ~crash_time:(crash_times_timed c.c_m crashes)

(* ==================================================================== *)
(* Batched evaluation: a block of scenarios over one scratch arena.     *)
(* ==================================================================== *)

(* [eval_batch] is the throughput path: it walks the precomputed
   [c_order] in a flat loop (no heap, no in-degree bookkeeping), tests
   dead-from-start / dead-link state through unchecked bitset probes,
   and writes one result per scenario into pre-sized result arrays — no
   per-scenario records, lists, or outcome materialization.  Every float
   operation mirrors [eval_core] exactly, so results are bit-identical
   to the per-scenario path (pinned against [reference] by the
   differential suite). *)

type batch = {
  br_count : int;
  br_latency : float array;
      (* per scenario: frontier latency, or nan if some task failed *)
  br_tasks : int array;     (* filled only with ~degradation *)
  br_sinks : int array;
  br_frontier : float array;
}

let g_batch_size =
  Obs_metrics.gauge ~help:"scenarios in the last eval_batch block"
    "replay.batch_size"

let g_throughput =
  Obs_metrics.gauge
    ~help:
      "replay scenarios evaluated per second (last batch or campaign, \
       whichever path ran)"
    "replay.scenarios_per_sec"

let eval_batch ?(cancel = Cancel.never) ?(degradation = false) c
    (scenarios : Scenario.t array) =
  let count = Array.length scenarios in
  Obs_metrics.incr ~by:count m_replays;
  Obs_metrics.set g_batch_size (float_of_int count);
  Obs_prof.phase ~trace:false ~cat:"sim" "replay.eval_batch" @@ fun () ->
  let t_begin = Obs_clock.now () in
  let br_latency = Array.make count nan in
  let br_tasks = if degradation then Array.make count 0 else [||] in
  let br_sinks = if degradation then Array.make count 0 else [||] in
  let br_frontier = if degradation then Array.make count 0. else [||] in

  (* hoisted immutable descriptions (all reads below are unsafe: every
     index comes from compile-built CSR arrays, in range by construction) *)
  let m = c.c_m in
  let nreplicas = c.c_nreplicas in
  let order = c.c_order in
  let nnodes = nreplicas + c.c_nmsgs in
  let insertion = c.c_insertion in
  let contended = c.c_contended in
  let port_slots = c.c_port_slots in
  let finish = c.s_finish in
  let delivered = c.s_delivered in
  let exec_free = c.s_exec_free in
  let crashed = c.s_crashed in
  let dead_mask = c.s_dead_mask in

  let min_slot slots = Array.fold_left Float.min infinity slots in
  let argmin_slot (slots : float array) =
    let best = ref 0 in
    Array.iteri (fun i v -> if v < slots.(!best) then best := i) slots;
    !best
  in
  let fit_gap p ~ready ~dur =
    let rec fit prev_end = function
      | [] -> Float.max prev_end ready
      | (s, f) :: rest ->
          let cand = Float.max prev_end ready in
          if cand +. dur <= s +. 1e-9 then cand
          else fit (Float.max prev_end f) rest
    in
    fit 0. c.s_busy.(p)
  in
  let occupy p start finish =
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((s, _) as iv) :: rest when s < start -> iv :: insert rest
      | rest -> (start, finish) :: rest
    in
    c.s_busy.(p) <- insert c.s_busy.(p)
  in
  let link_free mi =
    let acc = ref 0. in
    for k = c.c_route_off.(mi) to Array.unsafe_get c.c_route_off (mi + 1) - 1 do
      let f = Array.unsafe_get c.s_phys_free (Array.unsafe_get c.c_route k) in
      if f > !acc then acc := f
    done;
    !acc
  in
  let occupy_link mi fin =
    for k = c.c_route_off.(mi) to Array.unsafe_get c.c_route_off (mi + 1) - 1 do
      Array.unsafe_set c.s_phys_free (Array.unsafe_get c.c_route k) fin
    done
  in

  (* scenario loop: reset arena in place, walk c_order, collect *)
  for si = 0 to count - 1 do
    (* cooperative cancellation poll, once per scenario: an expired
       request deadline aborts between scenarios, never mid-arena *)
    Cancel.check cancel;
    let sc = Array.unsafe_get scenarios si in
    let crash_time = sc.Scenario.sc_crash_time in
    if Array.length crash_time <> m then
      invalid_arg "Replay.eval_batch: crash_time length <> processor count";

    (* -- reset ------------------------------------------------------- *)
    Array.fill finish 0 (Array.length finish) infinity;
    Array.fill delivered 0 (Array.length delivered) infinity;
    Array.fill exec_free 0 m 0.;
    if insertion then Array.fill c.s_busy 0 m [];
    if contended then begin
      for p = 0 to m - 1 do
        Array.fill c.s_send_free.(p) 0 port_slots 0.;
        Array.fill c.s_recv_free.(p) 0 port_slots 0.
      done;
      Array.fill c.s_phys_free 0 (Array.length c.s_phys_free) 0.
    end;
    Bitset.clear crashed;
    for p = 0 to m - 1 do
      if Array.unsafe_get crash_time p = neg_infinity then
        Bitset.unsafe_add crashed p
    done;
    (if c.s_mask_dirty then begin
       Bitset.clear dead_mask;
       c.s_mask_dirty <- false
     end);
    (match sc.Scenario.sc_dead_links with
    | [] -> ()
    | dl ->
        c.s_mask_dirty <- true;
        for mi = 0 to c.c_nmsgs - 1 do
          if List.mem (c.c_msg_src.(mi), c.c_msg_dst.(mi)) dl then
            Bitset.unsafe_add dead_mask mi
        done);
    let has_dead = c.s_mask_dirty in

    (* -- ordered traversal (the Kahn pass, order precompiled) -------- *)
    for k = 0 to nnodes - 1 do
      let n = Array.unsafe_get order k in
      if n < nreplicas then begin
        (* replica node: mirror of [eval_core].process_replica minus the
           s_state/s_starved bookkeeping (the batch reports need only
           finish times) *)
        let rn = n in
        let starved = ref false in
        let data_ready = ref 0. in
        for slot = Array.unsafe_get c.c_pred_off rn
               to Array.unsafe_get c.c_pred_off (rn + 1) - 1 do
          let ready = ref infinity in
          for ks = Array.unsafe_get c.c_sup_off slot
                 to Array.unsafe_get c.c_sup_off (slot + 1) - 1 do
            let node = Array.unsafe_get c.c_sup ks in
            let t =
              if node < nreplicas then Array.unsafe_get finish node
              else Array.unsafe_get delivered (node - nreplicas)
            in
            if t < !ready then ready := t
          done;
          if !ready = infinity then starved := true
          else data_ready := Float.max !data_ready !ready
        done;
        let p = Array.unsafe_get c.c_r_proc rn in
        if Bitset.unsafe_mem crashed p || !starved then ()
          (* dead from start, or an input never arrives: no resource
             bookings, finish stays infinity — exactly [eval_core]'s
             crashed/starved branches *)
        else begin
          let dur = Array.unsafe_get c.c_r_dur rn in
          let start =
            if insertion then fit_gap p ~ready:!data_ready ~dur
            else Float.max (Array.unsafe_get exec_free p) !data_ready
          in
          let fin = start +. dur in
          if fin > Array.unsafe_get crash_time p then begin
            Array.unsafe_set exec_free p infinity;
            if insertion then occupy p (Array.unsafe_get crash_time p) infinity
          end
          else begin
            Array.unsafe_set exec_free p
              (Float.max (Array.unsafe_get exec_free p) fin);
            if insertion then occupy p start fin;
            Array.unsafe_set finish rn fin
          end
        end
      end
      else begin
        (* message node: mirror of [eval_core].process_message *)
        let mi = n - nreplicas in
        let src = Array.unsafe_get c.c_msg_src mi in
        let dst = Array.unsafe_get c.c_msg_dst mi in
        let w = Array.unsafe_get c.c_msg_dur mi in
        let src_finish =
          Array.unsafe_get finish (Array.unsafe_get c.c_msg_src_rn mi)
        in
        if src_finish = infinity then ()
          (* never emitted; delivered stays infinity *)
        else if has_dead && Bitset.unsafe_mem dead_mask mi then begin
          (if contended then begin
             let slot = argmin_slot c.s_send_free.(src) in
             let leg_start =
               Float.max
                 c.s_send_free.(src).(slot)
                 (Float.max src_finish (link_free mi))
             in
             let leg_finish = leg_start +. w in
             c.s_send_free.(src).(slot) <- leg_finish;
             occupy_link mi leg_finish
           end)
          (* delivered stays infinity: emitted and lost in transit *)
        end
        else begin
          let leg_start =
            if not contended then src_finish
            else
              Float.max
                (min_slot c.s_send_free.(src))
                (Float.max src_finish (link_free mi))
          in
          let leg_finish = leg_start +. w in
          if leg_finish > Array.unsafe_get crash_time src then
            Array.fill c.s_send_free.(src) 0 port_slots infinity
          else begin
            (if contended then begin
               c.s_send_free.(src).(argmin_slot c.s_send_free.(src)) <-
                 leg_finish;
               occupy_link mi leg_finish
             end);
            if Bitset.unsafe_mem crashed dst then ()
            else begin
              let slot = argmin_slot c.s_recv_free.(dst) in
              let arrival =
                if not contended then leg_finish
                else w +. Float.max c.s_recv_free.(dst).(slot) leg_start
              in
              if arrival > Array.unsafe_get crash_time dst then ()
              else begin
                if contended then c.s_recv_free.(dst).(slot) <- arrival;
                Array.unsafe_set delivered mi arrival
              end
            end
          end
        end
      end
    done;

    (* -- collect ------------------------------------------------------ *)
    if not degradation then begin
      (* mirror of [eval_latency]'s fold, same Float.max sequence *)
      let latency = ref 0. in
      let failed = ref false in
      let rn = ref 0 in
      for _task = 0 to c.c_v - 1 do
        let earliest = ref infinity in
        for _idx = 0 to c.c_eps1 - 1 do
          let f = Array.unsafe_get finish !rn in
          if f < !earliest then earliest := f;
          incr rn
        done;
        if !earliest = infinity then failed := true
        else latency := Float.max !latency !earliest
      done;
      Array.unsafe_set br_latency si (if !failed then nan else !latency)
    end
    else begin
      (* mirror of [degradation_of_scratch] + the Monte-Carlo rule
         "frontier if everything completed, nan otherwise" *)
      let tasks_done = ref 0 in
      let frontier = ref 0. in
      let sinks_done = ref 0 in
      let rn = ref 0 in
      for _task = 0 to c.c_v - 1 do
        let earliest = ref infinity in
        for _idx = 0 to c.c_eps1 - 1 do
          let f = Array.unsafe_get finish !rn in
          if f < !earliest then earliest := f;
          incr rn
        done;
        if !earliest < infinity then begin
          incr tasks_done;
          if !earliest > !frontier then frontier := !earliest
        end
      done;
      (* second pass over the (few) sinks, reusing the per-task earliest
         computation instead of a v-sized done-flags array *)
      Array.iter
        (fun s ->
          let earliest = ref infinity in
          for idx = s * c.c_eps1 to ((s + 1) * c.c_eps1) - 1 do
            let f = Array.unsafe_get finish idx in
            if f < !earliest then earliest := f
          done;
          if !earliest < infinity then incr sinks_done)
        c.c_sinks;
      Array.unsafe_set br_tasks si !tasks_done;
      Array.unsafe_set br_sinks si !sinks_done;
      Array.unsafe_set br_frontier si !frontier;
      Array.unsafe_set br_latency si
        (if !tasks_done = c.c_v then !frontier else nan)
    end
  done;
  let dt = Obs_clock.now () -. t_begin in
  if dt > 0. && count > 0 then
    Obs_metrics.set g_throughput (float_of_int count /. dt);
  {
    br_count = count;
    br_latency;
    br_tasks;
    br_sinks;
    br_frontier;
  }

(* ==================================================================== *)
(* Fault plans: timeline events generalizing the crash-only scenarios.  *)
(* ==================================================================== *)

type fault_event =
  | Crash of { proc : Platform.proc; at : float }
  | Recover of { proc : Platform.proc; at : float }
  | Link_outage of Netstate.outage
  | Lose_result of { task : Dag.task; replica : int }

type plan = fault_event list

let m_plans =
  Obs_metrics.counter ~help:"fault plans executed (Replay.eval_plan)"
    "inject.plans"

(* Per-processor down windows from the crash/recover events of a plan:
   a two-state machine over the time-ordered events.  Crashing a dead
   processor or recovering a live one is a no-op; a crash with no later
   recovery leaves the processor down forever.  At equal instants the
   crash is applied first, so the zero-width window is dropped. *)
let down_windows m plan =
  let evs = Array.make m [] in
  let check proc =
    if proc < 0 || proc >= m then
      invalid_arg "Replay.eval_plan: processor out of range"
  in
  List.iter
    (function
      | Crash { proc; at } ->
          check proc;
          evs.(proc) <- (at, 0) :: evs.(proc)
      | Recover { proc; at } ->
          check proc;
          evs.(proc) <- (at, 1) :: evs.(proc)
      | Link_outage _ | Lose_result _ -> ())
    plan;
  Array.map
    (fun l ->
      let windows = ref [] in
      let open_at = ref None in
      List.iter
        (fun (t, kind) ->
          match (kind, !open_at) with
          | 0, None -> open_at := Some t
          | 0, Some _ -> ()
          | _, Some s ->
              if t > s then windows := (s, t) :: !windows;
              open_at := None
          | _, None -> ())
        (List.sort compare l);
      (match !open_at with
      | Some s -> windows := (s, infinity) :: !windows
      | None -> ());
      Netstate.merge_windows !windows)
    evs

(* Earliest start >= [t] such that [start, start + dur] avoids every
   window of the sorted disjoint list [ws].  The boundary convention
   matches [eval]'s kill rule (finish > crash_time dies): finishing
   exactly when a window opens, or starting exactly when one closes, is
   fine.  Returns [infinity] iff blocked by a window that never ends. *)
let rec fit_windows ws t dur =
  match ws with
  | [] -> t
  | (s, f) :: rest ->
      if t +. dur <= s then t
      else if f = infinity then infinity
      else fit_windows rest (Float.max t f) dur

(* Earliest instant >= [t] outside every window (open on the left:
   an event exactly at a window start still lands).  Buffering model for
   macro-dataflow arrivals: a receiver down at the arrival instant picks
   the data up on recovery. *)
let rec defer_instant ws t =
  match ws with
  | [] -> t
  | (s, f) :: rest -> if t <= s then t else if t < f then f else defer_instant rest t

(* Generalized core: [eval_core] with per-processor down windows,
   per-message link-outage windows (healing: traffic is delayed, not
   lost) and transient result losses.  Kept separate so the crash-only
   fast path stays branch-free. *)
let eval_plan_core c ~down ~never_up ~msg_down ~lost ~dead_links =
  Obs_metrics.incr m_replays;
  (* -- reset (identical to [eval_core]) ------------------------------ *)
  Array.fill c.s_finish 0 (Array.length c.s_finish) infinity;
  Array.fill c.s_state 0 (Array.length c.s_state) st_crashed;
  Array.fill c.s_delivered 0 (Array.length c.s_delivered) infinity;
  Array.fill c.s_exec_free 0 c.c_m 0.;
  if c.c_insertion then
    (* seed the gap structure with the down windows so gap placement
       never lands inside one *)
    for p = 0 to c.c_m - 1 do
      c.s_busy.(p) <- down.(p)
    done;
  if c.c_contended then begin
    for p = 0 to c.c_m - 1 do
      Array.fill c.s_send_free.(p) 0 c.c_port_slots 0.;
      Array.fill c.s_recv_free.(p) 0 c.c_port_slots 0.
    done;
    Array.fill c.s_phys_free 0 (Array.length c.s_phys_free) 0.
  end;
  (if c.s_dead_dirty then begin
     Array.fill c.s_msg_dead 0 (Array.length c.s_msg_dead) false;
     c.s_dead_dirty <- false
   end);
  (match dead_links with
  | [] -> ()
  | dl ->
      c.s_dead_dirty <- true;
      for mi = 0 to c.c_nmsgs - 1 do
        c.s_msg_dead.(mi) <- List.mem (c.c_msg_src.(mi), c.c_msg_dst.(mi)) dl
      done);

  let min_slot slots = Array.fold_left Float.min infinity slots in
  let argmin_slot slots =
    let best = ref 0 in
    Array.iteri (fun i v -> if v < slots.(!best) then best := i) slots;
    !best
  in
  let fit_gap p ~ready ~dur =
    let rec fit prev_end = function
      | [] -> Float.max prev_end ready
      | (s, f) :: rest ->
          let cand = Float.max prev_end ready in
          if cand +. dur <= s +. 1e-9 then cand
          else fit (Float.max prev_end f) rest
    in
    fit 0. c.s_busy.(p)
  in
  let occupy p start finish =
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((s, _) as iv) :: rest when s < start -> iv :: insert rest
      | rest -> (start, finish) :: rest
    in
    c.s_busy.(p) <- insert c.s_busy.(p)
  in
  let link_free mi =
    let acc = ref 0. in
    for k = c.c_route_off.(mi) to c.c_route_off.(mi + 1) - 1 do
      let f = c.s_phys_free.(c.c_route.(k)) in
      if f > !acc then acc := f
    done;
    !acc
  in
  let occupy_link mi finish =
    for k = c.c_route_off.(mi) to c.c_route_off.(mi + 1) - 1 do
      c.s_phys_free.(c.c_route.(k)) <- finish
    done
  in

  let process_replica rn =
    let p = c.c_r_proc.(rn) in
    let dur = c.c_r_dur.(rn) in
    let starved = ref (-1) in
    let data_ready = ref 0. in
    for slot = c.c_pred_off.(rn) to c.c_pred_off.(rn + 1) - 1 do
      let ready = ref infinity in
      for k = c.c_sup_off.(slot) to c.c_sup_off.(slot + 1) - 1 do
        let node = c.c_sup.(k) in
        let t =
          if node < c.c_nreplicas then c.s_finish.(node)
          else c.s_delivered.(node - c.c_nreplicas)
        in
        if t < !ready then ready := t
      done;
      if !ready = infinity && !starved < 0 then starved := c.c_pred_task.(slot)
      else data_ready := Float.max !data_ready !ready
    done;
    if never_up.(p) then () (* stays st_crashed, like dead-from-start *)
    else if !starved >= 0 then begin
      c.s_state.(rn) <- st_starved;
      c.s_starved.(rn) <- !starved
    end
    else begin
      let start =
        if c.c_insertion then fit_gap p ~ready:!data_ready ~dur
        else fit_windows down.(p) (Float.max c.s_exec_free.(p) !data_ready) dur
      in
      if start = infinity then
        (* blocked by a crash that never heals: nothing later on this
           processor runs either, matching [eval]'s mid-run kill rule *)
        c.s_exec_free.(p) <- infinity (* stays st_crashed *)
      else begin
        let finish = start +. dur in
        c.s_exec_free.(p) <- Float.max c.s_exec_free.(p) finish;
        if c.c_insertion then occupy p start finish;
        c.s_start.(rn) <- start;
        if lost.(rn) then c.s_state.(rn) <- st_lost
          (* ran, but the result is silently dropped: s_finish stays
             infinity so no consumer and no message sees it *)
        else begin
          c.s_finish.(rn) <- finish;
          c.s_state.(rn) <- st_ran
        end
      end
    end
  in

  let process_message mi =
    let src = c.c_msg_src.(mi) and dst = c.c_msg_dst.(mi) in
    let w = c.c_msg_dur.(mi) in
    let src_finish = c.s_finish.(c.c_msg_src_rn.(mi)) in
    if src_finish = infinity then c.s_delivered.(mi) <- infinity
    else begin
      let dead = c.s_dead_dirty && c.s_msg_dead.(mi) in
      (* settle the leg to a fixpoint: it must clear both the sender's
         down windows (the port sends nothing while down) and, unless the
         route is permanently dead anyway, the link-outage windows *)
      let settle t0 =
        let t = ref t0 in
        let stable = ref false in
        while (not !stable) && !t < infinity do
          let t' = fit_windows down.(src) !t w in
          let t'' = if dead then t' else fit_windows msg_down.(mi) t' w in
          if t'' = !t then stable := true else t := t''
        done;
        !t
      in
      let base =
        if not c.c_contended then src_finish
        else
          Float.max
            (min_slot c.s_send_free.(src))
            (Float.max src_finish (link_free mi))
      in
      let leg_start = settle base in
      if leg_start = infinity then begin
        (* if the block is the sender dying for good, it died with the
           port busy mid-send: no later message leaves this port either,
           matching [eval]'s kill rule (an unhealed link outage, by
           contrast, strands only this message) *)
        if c.c_contended && fit_windows down.(src) base w = infinity then
          Array.fill c.s_send_free.(src) 0 c.c_port_slots infinity;
        c.s_delivered.(mi) <- infinity
      end
      else begin
        let leg_finish = leg_start +. w in
        (if c.c_contended then begin
           c.s_send_free.(src).(argmin_slot c.s_send_free.(src)) <- leg_finish;
           occupy_link mi leg_finish
         end);
        if dead || never_up.(dst) then c.s_delivered.(mi) <- infinity
        else if not c.c_contended then
          c.s_delivered.(mi) <- defer_instant down.(dst) leg_finish
        else begin
          let slot = argmin_slot c.s_recv_free.(dst) in
          let arrival0 = w +. Float.max c.s_recv_free.(dst).(slot) leg_start in
          (* the whole reception window must avoid the receiver's down
             time; a receiver down at arrival retries after recovery *)
          let rs = fit_windows down.(dst) (arrival0 -. w) w in
          if rs = infinity then c.s_delivered.(mi) <- infinity
          else begin
            let arrival = rs +. w in
            c.s_recv_free.(dst).(slot) <- arrival;
            c.s_delivered.(mi) <- arrival
          end
        end
      end
    end
  in

  (* -- Kahn traversal over the prebuilt graph ------------------------ *)
  let nnodes = c.c_nreplicas + c.c_nmsgs in
  let queue = c.s_queue in
  Heap.clear queue;
  for n = 0 to nnodes - 1 do
    c.s_indeg.(n) <- c.c_indeg0.(n);
    if c.c_indeg0.(n) = 0 then Heap.add queue n
  done;
  while not (Heap.is_empty queue) do
    let n = Heap.pop_exn queue in
    if n < c.c_nreplicas then process_replica n
    else process_message (n - c.c_nreplicas);
    for k = c.c_adj_off.(n) to c.c_adj_off.(n + 1) - 1 do
      let n' = c.c_adj.(k) in
      c.s_indeg.(n') <- c.s_indeg.(n') - 1;
      if c.s_indeg.(n') = 0 then Heap.add queue n'
    done
  done

(* A plan with only [Crash] events is a crash-time array in disguise:
   route it through [eval_core] so the golden outcomes of the historical
   wrappers are preserved by construction. *)
let degenerate_crash_times c plan =
  let crash_time = Array.make c.c_m infinity in
  List.iter
    (function
      | Crash { proc; at } ->
          if proc < 0 || proc >= c.c_m then
            invalid_arg "Replay.eval_plan: processor out of range";
          crash_time.(proc) <- Float.min crash_time.(proc) at
      | _ -> ())
    plan;
  crash_time

let run_plan_core ?(dead_links = []) c plan =
  Obs_metrics.incr m_plans;
  let degenerate =
    List.for_all (function Crash _ -> true | _ -> false) plan
  in
  if degenerate then
    eval_core c ~crash_time:(degenerate_crash_times c plan) ~dead_links
  else begin
    let down = down_windows c.c_m plan in
    let never_up =
      Array.map
        (function (s, f) :: _ -> s = neg_infinity && f = infinity | [] -> false)
        down
    in
    let lost = Array.make (max 1 c.c_nreplicas) false in
    List.iter
      (function
        | Lose_result { task; replica } ->
            if
              task < 0 || task >= c.c_v || replica < 0 || replica >= c.c_eps1
            then invalid_arg "Replay.eval_plan: replica out of range";
            lost.((task * c.c_eps1) + replica) <- true
        | _ -> ())
      plan;
    let outages =
      List.filter_map (function Link_outage o -> Some o | _ -> None) plan
    in
    let msg_down = Array.make (max 1 c.c_nmsgs) [] in
    (if outages <> [] then
       if c.c_contended then begin
         let per_link = Netstate.outage_windows c.c_fabric outages in
         for mi = 0 to c.c_nmsgs - 1 do
           let ws = ref [] in
           for k = c.c_route_off.(mi) to c.c_route_off.(mi + 1) - 1 do
             ws := per_link.(c.c_route.(k)) @ !ws
           done;
           msg_down.(mi) <- Netstate.merge_windows !ws
         done
       end
       else
         (* macro-dataflow has no shared physical links: an outage hits
            exactly the matching ordered pair *)
         for mi = 0 to c.c_nmsgs - 1 do
           msg_down.(mi) <-
             Netstate.merge_windows
               (List.filter_map
                  (fun (o : Netstate.outage) ->
                    if
                      o.Netstate.o_src = c.c_msg_src.(mi)
                      && o.Netstate.o_dst = c.c_msg_dst.(mi)
                      && o.Netstate.o_until > o.Netstate.o_from
                    then Some (o.Netstate.o_from, o.Netstate.o_until)
                    else None)
                  outages)
         done);
    Obs_prof.phase ~cat:"sim" "replay.eval_plan" @@ fun () ->
    eval_plan_core c ~down ~never_up ~msg_down ~lost ~dead_links
  end

let eval_plan ?dead_links c plan =
  run_plan_core ?dead_links c plan;
  collect_outcome c

(* -- degradation report ------------------------------------------------ *)

type degradation = {
  d_tasks : int;
  d_task_count : int;
  d_sinks : int;
  d_sink_count : int;
  d_frontier : float;
}

(* Scan the scratch arena for the surviving frontier (no per-replica
   materialization — the Monte-Carlo degradation sweep's inner loop). *)
let degradation_of_scratch c =
  let tasks_done = ref 0 in
  let frontier = ref 0. in
  let task_done = Array.make c.c_v false in
  let rn = ref 0 in
  for task = 0 to c.c_v - 1 do
    let earliest = ref infinity in
    for _idx = 0 to c.c_eps1 - 1 do
      let f = c.s_finish.(!rn) in
      if f < !earliest then earliest := f;
      incr rn
    done;
    if !earliest < infinity then begin
      incr tasks_done;
      task_done.(task) <- true;
      if !earliest > !frontier then frontier := !earliest
    end
  done;
  let sinks_done =
    Array.fold_left
      (fun acc s -> if task_done.(s) then acc + 1 else acc)
      0 c.c_sinks
  in
  {
    d_tasks = !tasks_done;
    d_task_count = c.c_v;
    d_sinks = sinks_done;
    d_sink_count = Array.length c.c_sinks;
    d_frontier = !frontier;
  }

let completion_fraction d =
  if d.d_task_count = 0 then 1.
  else float_of_int d.d_tasks /. float_of_int d.d_task_count

let sink_fraction d =
  if d.d_sink_count = 0 then 1.
  else float_of_int d.d_sinks /. float_of_int d.d_sink_count

let eval_plan_degraded ?dead_links c plan =
  run_plan_core ?dead_links c plan;
  degradation_of_scratch c

let eval_degraded ?(dead_links = []) c ~crash_time =
  eval_core c ~crash_time ~dead_links;
  degradation_of_scratch c

(* -- one-shot wrappers, re-expressed as degenerate plans --------------- *)

let crash_from_start ?fabric ?(dead_links = []) sched ~crashed =
  eval_plan ~dead_links (compile ?fabric sched)
    (List.map (fun p -> Crash { proc = p; at = neg_infinity }) crashed)

let crash_timed ?fabric ?(dead_links = []) sched ~crashes =
  eval_plan ~dead_links (compile ?fabric sched)
    (List.map (fun (p, tau) -> Crash { proc = p; at = tau }) crashes)

let fault_free ?fabric sched = eval_plan (compile ?fabric sched) []

let crash_links ?fabric sched ~links =
  eval_plan ~dead_links:links (compile ?fabric sched) []
