type worst = {
  w_crashes : (Platform.proc * float) list;
  w_latency : float;
  w_slowdown : float;
  w_exhaustive : bool;
}

type kill = {
  k_procs : Platform.proc list;
  k_degradation : Replay.degradation;
  k_certified : bool;
}

type report = {
  iv_epsilon : int;
  iv_m : int;
  iv_budget : int;
  iv_evals : int;
  iv_fault_free : float;
  iv_cert_resists : bool option;
  iv_worst : worst option;
  iv_min_kill : kill option;
}

let m_frontier =
  Obs_metrics.counter ~help:"adversary frontier evaluations (Inject)"
    "stress.frontier_evals"

(* Descending latency, then the lexicographically smallest subset: a
   total deterministic order on search candidates. *)
let cand_cmp (l1, s1) (l2, s2) = compare (-.l1, s1) (-.l2, s2)

let take n l = List.filteri (fun i _ -> i < n) l

let adversary ?(seed = 11) ?(budget = 20_000) ?(beam = 8) ?(domains = 1) sched
    =
  Obs_trace.with_span ~cat:"sim" "inject.adversary" @@ fun () ->
  let c = Replay.compile sched in
  let m = Replay.proc_count c in
  let eps = Schedule.epsilon sched in
  let budget = max 8 budget in
  let beam = max 1 beam in
  let evals = ref 0 in
  let crash_time = Array.make m infinity in
  let set_times crashes =
    incr evals;
    Obs_metrics.incr m_frontier;
    Array.fill crash_time 0 m infinity;
    List.iter
      (fun (p, tau) -> crash_time.(p) <- Float.min crash_time.(p) tau)
      crashes
  in
  let eval_timed crashes =
    set_times crashes;
    Replay.eval_latency c ~crash_time
  in
  let eval_subset procs =
    eval_timed (List.map (fun p -> (p, neg_infinity)) procs)
  in
  let degrade_subset procs =
    set_times (List.map (fun p -> (p, neg_infinity)) procs);
    Replay.eval_degraded c ~crash_time
  in
  let l0 = eval_timed [] in

  (* -- worst-case slowdown within epsilon crashes -------------------- *)
  (* Phase 1: from-start subsets of size exactly epsilon (completion is
     monotone in the crash set, and certified schedules complete them
     all, so size epsilon dominates smaller sets for coverage). *)
  let subset_budget = budget / 2 in
  let nsub = Fault_check.count_combinations m (min eps m) in
  let exhaustive = eps = 0 || nsub <= subset_budget - !evals in
  let best = ref (l0, []) in
  let consider procs =
    let l = eval_subset procs in
    (if not (Float.is_nan l) then
       let cand = (l, procs) in
       if cand_cmp cand !best < 0 then best := cand);
    l
  in
  (if eps > 0 then
     if exhaustive then
       Seq.iter
         (fun procs -> ignore (consider procs))
         (Fault_check.combinations m (min eps m))
     else begin
       (* greedy criticality seeding: rank singletons by damage, then
          grow the best [beam] of them one processor at a time *)
       let singles =
         List.init m (fun p -> (consider [ p ], [ p ]))
         |> List.filter (fun (l, _) -> not (Float.is_nan l))
         |> List.sort cand_cmp
       in
       let frontier = ref (List.map snd (take beam singles)) in
       for _size = 2 to min eps m do
         let grown = ref [] in
         List.iter
           (fun set ->
             for p = m - 1 downto 0 do
               if (not (List.mem p set)) && !evals < subset_budget then begin
                 let set' = List.sort compare (p :: set) in
                 if not (List.exists (fun (_, s) -> s = set') !grown) then begin
                   let l = consider set' in
                   if not (Float.is_nan l) then grown := (l, set') :: !grown
                 end
               end
             done)
           !frontier;
         frontier := List.map snd (take beam (List.sort cand_cmp !grown))
       done;
       (* top up with seeded random subsets while the budget allows *)
       let rng = Rng.create seed in
       while !evals < subset_budget do
         ignore
           (consider
              (List.sort compare (Scenario.uniform_procs rng ~m ~count:eps)))
       done
     end);
  (* Phase 2: crash-instant refinement by coordinate descent.  Candidate
     instants per processor are the static execution midpoints of its
     replicas: each one kills that replica (and everything after) at the
     last possible moment, wasting the most completed work. *)
  let refine (l_start, procs) =
    let current =
      ref (l_start, List.map (fun p -> (p, neg_infinity)) procs)
    in
    let instants p =
      neg_infinity
      :: List.map
           (fun (r : Schedule.replica) ->
             (r.Schedule.r_start +. r.Schedule.r_finish) /. 2.)
           (Schedule.on_proc sched p)
    in
    let improved = ref true in
    let pass = ref 0 in
    while !improved && !pass < 3 && !evals < budget do
      improved := false;
      incr pass;
      List.iter
        (fun p ->
          List.iter
            (fun tau ->
              if !evals < budget then begin
                let _, assign = !current in
                let assign' =
                  List.map (fun (q, t) -> if q = p then (q, tau) else (q, t))
                    assign
                in
                let l = eval_timed assign' in
                if (not (Float.is_nan l)) && l > fst !current then begin
                  current := (l, assign');
                  improved := true
                end
              end)
            (instants p))
        procs
    done;
    !current
  in
  let w_latency, w_crashes = refine !best in
  let iv_worst =
    if Float.is_nan w_latency then None
    else
      Some
        {
          w_crashes = List.sort compare w_crashes;
          w_latency;
          w_slowdown = (if l0 > 0. then w_latency /. l0 else nan);
          w_exhaustive = exhaustive;
        }
  in

  (* -- minimal kill set ---------------------------------------------- *)
  let cert =
    match Resilience.certify ~epsilon:eps ~domains sched with
    | r -> Some r
    | exception Resilience.Family_overflow _ -> None
  in
  let iv_cert_resists =
    Option.map (fun r -> r.Resilience.rs_resists) cert
  in
  let iv_min_kill =
    match cert with
    | Some { Resilience.rs_counterexample = Some (procs, _); _ } ->
        (* the certificate's own minimal refutation, size <= epsilon *)
        Some
          {
            k_procs = procs;
            k_degradation = degrade_subset procs;
            k_certified = true;
          }
    | _ ->
        (* epsilon-resistance certified (or certification abandoned): the
           cheapest kill sets are the replica-processor sets of single
           tasks, size epsilon + 1 — provably minimal when certified.
           Pick the one degrading completion the most. *)
        let v = Dag.task_count (Schedule.dag sched) in
        let seen = Hashtbl.create 64 in
        let best = ref None in
        (try
           for t = 0 to v - 1 do
             if !evals >= budget then raise Exit;
             let procs =
               List.sort_uniq compare
                 (List.init (eps + 1) (fun i ->
                      (Schedule.replica sched t i).Schedule.r_proc))
             in
             if not (Hashtbl.mem seen procs) then begin
               Hashtbl.add seen procs ();
               let d = degrade_subset procs in
               let key =
                 (Replay.completion_fraction d, List.length procs, procs)
               in
               match !best with
               | Some (bkey, _, _) when bkey <= key -> ()
               | _ -> best := Some (key, procs, d)
             end
           done
         with Exit -> ());
        Option.map
          (fun (_, procs, d) ->
            {
              k_procs = procs;
              k_degradation = d;
              k_certified = (iv_cert_resists = Some true);
            })
          !best
  in
  {
    iv_epsilon = eps;
    iv_m = m;
    iv_budget = budget;
    iv_evals = !evals;
    iv_fault_free = l0;
    iv_cert_resists;
    iv_worst;
    iv_min_kill;
  }

(* -- reporting --------------------------------------------------------- *)

let pp_instant ppf tau =
  if tau = neg_infinity then Format.fprintf ppf "start"
  else Format.fprintf ppf "t=%.3f" tau

let pp ppf r =
  Format.fprintf ppf "@[<v>adversary: m=%d epsilon=%d (%d/%d evals)@,"
    r.iv_m r.iv_epsilon r.iv_evals r.iv_budget;
  Format.fprintf ppf "fault-free latency: %.3f@," r.iv_fault_free;
  (match r.iv_cert_resists with
  | Some true -> Format.fprintf ppf "certificate: resists %d crashes@," r.iv_epsilon
  | Some false ->
      Format.fprintf ppf "certificate: REFUTED at %d crashes@," r.iv_epsilon
  | None -> Format.fprintf ppf "certificate: unavailable@,");
  (match r.iv_worst with
  | None -> Format.fprintf ppf "worst plan: none completed@,"
  | Some w ->
      Format.fprintf ppf
        "worst <=epsilon plan: latency %.3f (slowdown %.2fx, %s) [%a]@,"
        w.w_latency w.w_slowdown
        (if w.w_exhaustive then "exhaustive" else "beam")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (p, tau) -> Format.fprintf ppf "P%d@@%a" p pp_instant tau))
        w.w_crashes);
  match r.iv_min_kill with
  | None -> Format.fprintf ppf "min kill set: none found@]"
  | Some k ->
      Format.fprintf ppf
        "min kill set: {%a} (%s) -> %d/%d tasks, %d/%d sinks, frontier %.3f@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf p -> Format.fprintf ppf "P%d" p))
        k.k_procs
        (if k.k_certified then "certified minimal" else "heuristic")
        k.k_degradation.Replay.d_tasks k.k_degradation.Replay.d_task_count
        k.k_degradation.Replay.d_sinks k.k_degradation.Replay.d_sink_count
        k.k_degradation.Replay.d_frontier

let json_of_degradation (d : Replay.degradation) =
  Json.Obj
    [
      ("tasks_completed", Json.Int d.Replay.d_tasks);
      ("task_count", Json.Int d.Replay.d_task_count);
      ("sinks_completed", Json.Int d.Replay.d_sinks);
      ("sink_count", Json.Int d.Replay.d_sink_count);
      ("completion_fraction", Json.Float (Replay.completion_fraction d));
      ("sink_fraction", Json.Float (Replay.sink_fraction d));
      ("frontier_latency", Json.Float d.Replay.d_frontier);
    ]

let to_json r =
  Json.Obj
    [
      ("m", Json.Int r.iv_m);
      ("epsilon", Json.Int r.iv_epsilon);
      ("budget", Json.Int r.iv_budget);
      ("evals", Json.Int r.iv_evals);
      ("fault_free_latency", Json.Float r.iv_fault_free);
      ( "certificate_resists",
        match r.iv_cert_resists with
        | None -> Json.Null
        | Some b -> Json.Bool b );
      ( "worst",
        match r.iv_worst with
        | None -> Json.Null
        | Some w ->
            Json.Obj
              [
                ( "crashes",
                  Json.List
                    (List.map
                       (fun (p, tau) ->
                         Json.Obj
                           [
                             ("proc", Json.Int p);
                             ( "at",
                               if tau = neg_infinity then
                                 Json.String "start"
                               else Json.Float tau );
                           ])
                       w.w_crashes) );
                ("latency", Json.Float w.w_latency);
                ("slowdown", Json.Float w.w_slowdown);
                ("exhaustive", Json.Bool w.w_exhaustive);
              ] );
      ( "min_kill",
        match r.iv_min_kill with
        | None -> Json.Null
        | Some k ->
            Json.Obj
              [
                ( "procs",
                  Json.List (List.map (fun p -> Json.Int p) k.k_procs) );
                ("size", Json.Int (List.length k.k_procs));
                ("certified", Json.Bool k.k_certified);
                ("degradation", json_of_degradation k.k_degradation);
              ] );
    ]
