type mode = From_start | Timed of float

type degradation = {
  deg_completion_mean : float;
  deg_completion_min : float;
  deg_sink_mean : float;
  deg_frontier_mean : float;
}

type report = {
  runs : int;
  completed : int;
  replays : int;
  latency : Stats.summary option;
  worst_slowdown : float;
  failure_rate : float;
  degradation : degradation option;
}

let m_scenarios =
  Obs_metrics.counter ~help:"Monte-Carlo crash scenarios drawn"
    "montecarlo.scenarios"

let g_throughput =
  Obs_metrics.gauge ~help:"replay scenarios evaluated per second (last campaign)"
    "replay.scenarios_per_sec"

let run ?(seed = 20) ?(runs = 1000) ?(domains = 1) ?fabric ~crashes ~mode sched
    =
  if runs < 1 then invalid_arg "Monte_carlo.run: runs < 1";
  let rng = Rng.create seed in
  let m = Platform.proc_count (Schedule.platform sched) in
  let l0 = Schedule.latency_zero_crash sched in
  (* Pre-draw every scenario from the root RNG, in run order, before any
     evaluation: the scenario set is byte-identical to the sequential
     run whatever [domains] is.  A from-start crash is a timed crash at
     [neg_infinity], so both modes share one representation. *)
  let scenarios = ref [] in
  Obs_prof.phase ~cat:"sim" "montecarlo.draw" (fun () ->
      for _ = 1 to runs do
        Obs_metrics.incr m_scenarios;
        let scenario =
          match mode with
          | From_start ->
              List.map
                (fun p -> (p, neg_infinity))
                (Scenario.uniform_procs rng ~m ~count:crashes)
          | Timed horizon -> Scenario.timed rng ~m ~count:crashes ~horizon
        in
        scenarios := scenario :: !scenarios
      done);
  let scenarios = List.rev !scenarios in
  (* One compiled simulator + crash-time scratch per domain: a [compiled]
     value owns its arena and must not be shared. *)
  let sim =
    Domain.DLS.new_key (fun () ->
        (Replay.compile ?fabric sched, Array.make m infinity))
  in
  (* Degradation tracking only engages beyond the tolerance the schedule
     was built for: within epsilon the completion fraction is constantly
     1.0 (Proposition 5.2) and the plain latency path stays bit-identical
     to the historical reports. *)
  let beyond = crashes > Schedule.epsilon sched in
  let eval_one scenario =
    (* profiled but untraced: one span per scenario would drown the
       timeline that the [point]/[replay] spans already structure *)
    Obs_prof.phase ~trace:false "montecarlo.eval" @@ fun () ->
    let c, crash_time = Domain.DLS.get sim in
    Array.fill crash_time 0 m infinity;
    List.iter
      (fun (p, tau) ->
        crash_time.(p) <- Float.min crash_time.(p) tau)
      scenario;
    if not beyond then (Replay.eval_latency c ~crash_time, None)
    else
      let d = Replay.eval_degraded c ~crash_time in
      let lat =
        if d.Replay.d_tasks = d.Replay.d_task_count then d.Replay.d_frontier
        else nan
      in
      (lat, Some d)
  in
  let t0 = Obs_clock.now () in
  let results = Parallel.map ~domains eval_one scenarios in
  let dt = Obs_clock.now () -. t0 in
  if dt > 0. then Obs_metrics.set g_throughput (float_of_int runs /. dt);
  (* Aggregate in run order so the Kahan sums in [Stats.summarize] see
     the same list (hence the same rounding) as the sequential loop. *)
  Obs_prof.phase ~cat:"sim" "montecarlo.aggregate" @@ fun () ->
  let latencies = ref [] in
  let completed = ref 0 in
  List.iter
    (fun (lat, _) ->
      if not (Float.is_nan lat) then begin
        incr completed;
        latencies := lat :: !latencies
      end)
    results;
  let latency =
    match !latencies with [] -> None | ls -> Some (Stats.summarize ls)
  in
  let degradation =
    if not beyond then None
    else begin
      let n = float_of_int runs in
      let csum = ref 0. and cmin = ref 1. in
      let ssum = ref 0. and fsum = ref 0. in
      List.iter
        (fun (_, d) ->
          match d with
          | None -> ()
          | Some d ->
              let cf = Replay.completion_fraction d in
              csum := !csum +. cf;
              if cf < !cmin then cmin := cf;
              ssum := !ssum +. Replay.sink_fraction d;
              fsum := !fsum +. d.Replay.d_frontier)
        results;
      Some
        {
          deg_completion_mean = !csum /. n;
          deg_completion_min = !cmin;
          deg_sink_mean = !ssum /. n;
          deg_frontier_mean = !fsum /. n;
        }
    end
  in
  {
    runs;
    completed = !completed;
    replays = runs;
    latency;
    worst_slowdown =
      (match latency with
      | Some s when l0 > 0. -> s.Stats.max /. l0
      | _ -> nan);
    failure_rate = float_of_int (runs - !completed) /. float_of_int runs;
    degradation;
  }

let degradation_curve ?seed ?runs ?domains ?fabric ?max_crashes ~mode sched =
  let m = Platform.proc_count (Schedule.platform sched) in
  let eps = Schedule.epsilon sched in
  let hi =
    match max_crashes with Some k -> min k m | None -> min m (eps + 3)
  in
  List.init (hi + 1) (fun crashes ->
      (crashes, run ?seed ?runs ?domains ?fabric ~crashes ~mode sched))

let slowdown_cell x =
  if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d/%d runs completed (failure rate %.2f%%, %d replays)@,%a%a@]"
    r.completed r.runs
    (100. *. r.failure_rate)
    r.replays
    (fun ppf -> function
      | None ->
          Format.fprintf ppf "no completed run (worst slowdown %s)"
            (slowdown_cell r.worst_slowdown)
      | Some s ->
          Format.fprintf ppf
            "latency: mean %.3f, median %.3f, min %.3f, max %.3f (worst \
             slowdown %s)"
            s.Stats.mean s.Stats.median s.Stats.min s.Stats.max
            (slowdown_cell r.worst_slowdown))
    r.latency
    (fun ppf -> function
      | None -> ()
      | Some d ->
          Format.fprintf ppf
            "@,degradation: completion mean %.3f min %.3f, sinks mean %.3f, \
             frontier mean %.3f"
            d.deg_completion_mean d.deg_completion_min d.deg_sink_mean
            d.deg_frontier_mean)
    r.degradation
