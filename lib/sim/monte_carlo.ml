type mode = From_start | Timed of float

type report = {
  runs : int;
  completed : int;
  replays : int;
  latency : Stats.summary option;
  worst_slowdown : float;
  failure_rate : float;
}

let m_scenarios =
  Obs_metrics.counter ~help:"Monte-Carlo crash scenarios drawn"
    "montecarlo.scenarios"

let g_throughput =
  Obs_metrics.gauge ~help:"replay scenarios evaluated per second (last campaign)"
    "replay.scenarios_per_sec"

let run ?(seed = 20) ?(runs = 1000) ?(domains = 1) ?fabric ~crashes ~mode sched
    =
  if runs < 1 then invalid_arg "Monte_carlo.run: runs < 1";
  let rng = Rng.create seed in
  let m = Platform.proc_count (Schedule.platform sched) in
  let l0 = Schedule.latency_zero_crash sched in
  (* Pre-draw every scenario from the root RNG, in run order, before any
     evaluation: the scenario set is byte-identical to the sequential
     run whatever [domains] is.  A from-start crash is a timed crash at
     [neg_infinity], so both modes share one representation. *)
  let scenarios = ref [] in
  for _ = 1 to runs do
    Obs_metrics.incr m_scenarios;
    let scenario =
      match mode with
      | From_start ->
          List.map
            (fun p -> (p, neg_infinity))
            (Scenario.uniform_procs rng ~m ~count:crashes)
      | Timed horizon -> Scenario.timed rng ~m ~count:crashes ~horizon
    in
    scenarios := scenario :: !scenarios
  done;
  let scenarios = List.rev !scenarios in
  (* One compiled simulator + crash-time scratch per domain: a [compiled]
     value owns its arena and must not be shared. *)
  let sim =
    Domain.DLS.new_key (fun () ->
        (Replay.compile ?fabric sched, Array.make m infinity))
  in
  let eval_one scenario =
    let c, crash_time = Domain.DLS.get sim in
    Array.fill crash_time 0 m infinity;
    List.iter
      (fun (p, tau) ->
        crash_time.(p) <- Float.min crash_time.(p) tau)
      scenario;
    Replay.eval_latency c ~crash_time
  in
  let t0 = Obs_clock.now () in
  let lats = Parallel.map ~domains eval_one scenarios in
  let dt = Obs_clock.now () -. t0 in
  if dt > 0. then Obs_metrics.set g_throughput (float_of_int runs /. dt);
  (* Aggregate in run order so the Kahan sums in [Stats.summarize] see
     the same list (hence the same rounding) as the sequential loop. *)
  let latencies = ref [] in
  let completed = ref 0 in
  List.iter
    (fun lat ->
      if not (Float.is_nan lat) then begin
        incr completed;
        latencies := lat :: !latencies
      end)
    lats;
  let latency =
    match !latencies with [] -> None | ls -> Some (Stats.summarize ls)
  in
  {
    runs;
    completed = !completed;
    replays = runs;
    latency;
    worst_slowdown =
      (match latency with
      | Some s when l0 > 0. -> s.Stats.max /. l0
      | _ -> nan);
    failure_rate = float_of_int (runs - !completed) /. float_of_int runs;
  }

let slowdown_cell x =
  if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d/%d runs completed (failure rate %.2f%%, %d replays)@,%a@]"
    r.completed r.runs
    (100. *. r.failure_rate)
    r.replays
    (fun ppf -> function
      | None ->
          Format.fprintf ppf "no completed run (worst slowdown %s)"
            (slowdown_cell r.worst_slowdown)
      | Some s ->
          Format.fprintf ppf
            "latency: mean %.3f, median %.3f, min %.3f, max %.3f (worst \
             slowdown %s)"
            s.Stats.mean s.Stats.median s.Stats.min s.Stats.max
            (slowdown_cell r.worst_slowdown))
    r.latency
