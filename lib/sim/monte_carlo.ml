type mode = From_start | Timed of float

type degradation = {
  deg_completion_mean : float;
  deg_completion_min : float;
  deg_sink_mean : float;
  deg_frontier_mean : float;
}

type report = {
  runs : int;
  completed : int;
  replays : int;
  latency : Stats.summary option;
  worst_slowdown : float;
  failure_rate : float;
  degradation : degradation option;
}

let m_scenarios =
  Obs_metrics.counter ~help:"Monte-Carlo crash scenarios drawn"
    "montecarlo.scenarios"

let g_throughput =
  Obs_metrics.gauge ~help:"replay scenarios evaluated per second (last campaign)"
    "replay.scenarios_per_sec"

(* Scenarios per [Replay.eval_batch] block.  The block size never changes
   the results — the arena is reset per scenario and aggregation runs in
   run order over flat arrays — only the work-stealing granularity. *)
let batch_block = 256

let run ?(seed = 20) ?(runs = 1000) ?(domains = 1) ?pool ?(batch = true)
    ?(batch_block = batch_block) ?(cancel = Cancel.never) ?fabric ~crashes
    ~mode sched =
  if runs < 1 then invalid_arg "Monte_carlo.run: runs < 1";
  if batch_block < 1 then invalid_arg "Monte_carlo.run: batch_block < 1";
  let rng = Rng.create seed in
  let m = Platform.proc_count (Schedule.platform sched) in
  let l0 = Schedule.latency_zero_crash sched in
  (* Pre-draw every scenario from the root RNG, in run order, before any
     evaluation: the scenario set is byte-identical to the sequential
     run whatever [domains] (or pool size) is.  A from-start crash is a
     timed crash at [neg_infinity], so both modes share one
     representation. *)
  let smode =
    match mode with
    | From_start -> Scenario.From_start
    | Timed horizon -> Scenario.Timed horizon
  in
  let scenarios =
    Obs_prof.phase ~cat:"sim" "montecarlo.draw" (fun () ->
        Obs_metrics.incr ~by:runs m_scenarios;
        Scenario.draw_block rng ~m ~count:crashes ~mode:smode ~runs)
  in
  (* One compiled simulator per domain: a [compiled] value owns its
     scratch arena and must not be shared. *)
  let sim = Domain.DLS.new_key (fun () -> Replay.compile ?fabric sched) in
  (* Degradation tracking only engages beyond the tolerance the schedule
     was built for: within epsilon the completion fraction is constantly
     1.0 (Proposition 5.2) and the plain latency path stays bit-identical
     to the historical reports. *)
  let beyond = crashes > Schedule.epsilon sched in
  (* Per-scenario results land in flat arrays at the scenario's own run
     index, so workers touch disjoint slots and aggregation order is the
     run order however the items were stolen. *)
  let lat = Array.make runs nan in
  let deg_tasks = if beyond then Array.make runs 0 else [||] in
  let deg_sinks = if beyond then Array.make runs 0 else [||] in
  let deg_frontier = if beyond then Array.make runs 0. else [||] in
  let dispatch f items =
    match pool with
    | Some p -> ignore (Parallel.map_pool p f items : unit list)
    | None -> ignore (Parallel.map ~domains f items : unit list)
  in
  let t0 = Obs_clock.now () in
  (if batch then begin
     (* batched path: blocks of [batch_block] scenarios, one
        struct-of-arrays [Replay.eval_batch] call per block *)
     let nblocks = (runs + batch_block - 1) / batch_block in
     let eval_block b =
       (* profiled but untraced: one span per block would still drown the
          timeline the [point]/[replay] spans already structure *)
       Obs_prof.phase ~trace:false "montecarlo.eval" @@ fun () ->
       let c = Domain.DLS.get sim in
       let start = b * batch_block in
       let len = min batch_block (runs - start) in
       let res =
         Replay.eval_batch ~cancel ~degradation:beyond c
           (Array.sub scenarios start len)
       in
       Array.blit res.Replay.br_latency 0 lat start len;
       if beyond then begin
         Array.blit res.Replay.br_tasks 0 deg_tasks start len;
         Array.blit res.Replay.br_sinks 0 deg_sinks start len;
         Array.blit res.Replay.br_frontier 0 deg_frontier start len
       end
     in
     dispatch eval_block (List.init nblocks Fun.id)
   end
   else begin
     (* legacy per-scenario path, retained as the batched path's
        differential baseline *)
     let eval_one i =
       Obs_prof.phase ~trace:false "montecarlo.eval" @@ fun () ->
       Cancel.check cancel;
       let c = Domain.DLS.get sim in
       let crash_time = scenarios.(i).Scenario.sc_crash_time in
       if not beyond then lat.(i) <- Replay.eval_latency c ~crash_time
       else begin
         let d = Replay.eval_degraded c ~crash_time in
         deg_tasks.(i) <- d.Replay.d_tasks;
         deg_sinks.(i) <- d.Replay.d_sinks;
         deg_frontier.(i) <- d.Replay.d_frontier;
         lat.(i) <-
           (if d.Replay.d_tasks = d.Replay.d_task_count then
              d.Replay.d_frontier
            else nan)
       end
     in
     dispatch eval_one (List.init runs Fun.id)
   end);
  let dt = Obs_clock.now () -. t0 in
  if dt > 0. then Obs_metrics.set g_throughput (float_of_int runs /. dt);
  (* Aggregate in run order so the Kahan sums in [Stats.summarize] see
     the same list (hence the same rounding) as the sequential loop. *)
  Obs_prof.phase ~cat:"sim" "montecarlo.aggregate" @@ fun () ->
  let latencies = ref [] in
  let completed = ref 0 in
  Array.iter
    (fun lat ->
      if not (Float.is_nan lat) then begin
        incr completed;
        latencies := lat :: !latencies
      end)
    lat;
  let latency =
    match !latencies with [] -> None | ls -> Some (Stats.summarize ls)
  in
  let degradation =
    if not beyond then None
    else begin
      (* the caller domain's compiled simulator carries the constant
         denominators; reconstructing the per-run record keeps the float
         operations identical to the historical per-record fold *)
      let c0 = Domain.DLS.get sim in
      let task_count = Replay.task_count c0 in
      let sink_count = Replay.sink_count c0 in
      let n = float_of_int runs in
      let csum = ref 0. and cmin = ref 1. in
      let ssum = ref 0. and fsum = ref 0. in
      for i = 0 to runs - 1 do
        let d =
          {
            Replay.d_tasks = deg_tasks.(i);
            d_task_count = task_count;
            d_sinks = deg_sinks.(i);
            d_sink_count = sink_count;
            d_frontier = deg_frontier.(i);
          }
        in
        let cf = Replay.completion_fraction d in
        csum := !csum +. cf;
        if cf < !cmin then cmin := cf;
        ssum := !ssum +. Replay.sink_fraction d;
        fsum := !fsum +. d.Replay.d_frontier
      done;
      Some
        {
          deg_completion_mean = !csum /. n;
          deg_completion_min = !cmin;
          deg_sink_mean = !ssum /. n;
          deg_frontier_mean = !fsum /. n;
        }
    end
  in
  {
    runs;
    completed = !completed;
    replays = runs;
    latency;
    worst_slowdown =
      (match latency with
      | Some s when l0 > 0. -> s.Stats.max /. l0
      | _ -> nan);
    failure_rate = float_of_int (runs - !completed) /. float_of_int runs;
    degradation;
  }

let degradation_curve ?seed ?runs ?domains ?pool ?batch ?batch_block ?cancel
    ?fabric ?max_crashes ~mode sched =
  let m = Platform.proc_count (Schedule.platform sched) in
  let eps = Schedule.epsilon sched in
  let hi =
    match max_crashes with Some k -> min k m | None -> min m (eps + 3)
  in
  List.init (hi + 1) (fun crashes ->
      ( crashes,
        run ?seed ?runs ?domains ?pool ?batch ?batch_block ?cancel ?fabric
          ~crashes ~mode sched ))

let slowdown_cell x =
  if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d/%d runs completed (failure rate %.2f%%, %d replays)@,%a%a@]"
    r.completed r.runs
    (100. *. r.failure_rate)
    r.replays
    (fun ppf -> function
      | None ->
          Format.fprintf ppf "no completed run (worst slowdown %s)"
            (slowdown_cell r.worst_slowdown)
      | Some s ->
          Format.fprintf ppf
            "latency: mean %.3f, median %.3f, min %.3f, max %.3f (worst \
             slowdown %s)"
            s.Stats.mean s.Stats.median s.Stats.min s.Stats.max
            (slowdown_cell r.worst_slowdown))
    r.latency
    (fun ppf -> function
      | None -> ()
      | Some d ->
          Format.fprintf ppf
            "@,degradation: completion mean %.3f min %.3f, sinks mean %.3f, \
             frontier mean %.3f"
            d.deg_completion_mean d.deg_completion_min d.deg_sink_mean
            d.deg_frontier_mean)
    r.degradation
