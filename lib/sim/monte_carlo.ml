type mode = From_start | Timed of float

type report = {
  runs : int;
  completed : int;
  replays : int;
  latency : Stats.summary option;
  worst_slowdown : float;
  failure_rate : float;
}

let m_scenarios =
  Obs_metrics.counter ~help:"Monte-Carlo crash scenarios drawn"
    "montecarlo.scenarios"

let run ?(seed = 20) ?(runs = 1000) ?fabric ~crashes ~mode sched =
  if runs < 1 then invalid_arg "Monte_carlo.run: runs < 1";
  let rng = Rng.create seed in
  let m = Platform.proc_count (Schedule.platform sched) in
  let l0 = Schedule.latency_zero_crash sched in
  let latencies = ref [] in
  let completed = ref 0 in
  let replays = ref 0 in
  for _ = 1 to runs do
    Obs_metrics.incr m_scenarios;
    incr replays;
    let out =
      match mode with
      | From_start ->
          let crashed = Scenario.uniform_procs rng ~m ~count:crashes in
          Replay.crash_from_start ?fabric sched ~crashed
      | Timed horizon ->
          let scenario = Scenario.timed rng ~m ~count:crashes ~horizon in
          Replay.crash_timed ?fabric sched ~crashes:scenario
    in
    if out.Replay.completed then begin
      incr completed;
      latencies := out.Replay.latency :: !latencies
    end
  done;
  let latency =
    match !latencies with [] -> None | ls -> Some (Stats.summarize ls)
  in
  {
    runs;
    completed = !completed;
    replays = !replays;
    latency;
    worst_slowdown =
      (match latency with
      | Some s when l0 > 0. -> s.Stats.max /. l0
      | _ -> nan);
    failure_rate = float_of_int (runs - !completed) /. float_of_int runs;
  }

let slowdown_cell x =
  if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d/%d runs completed (failure rate %.2f%%, %d replays)@,%a@]"
    r.completed r.runs
    (100. *. r.failure_rate)
    r.replays
    (fun ppf -> function
      | None ->
          Format.fprintf ppf "no completed run (worst slowdown %s)"
            (slowdown_cell r.worst_slowdown)
      | Some s ->
          Format.fprintf ppf
            "latency: mean %.3f, median %.3f, min %.3f, max %.3f (worst \
             slowdown %s)"
            s.Stats.mean s.Stats.median s.Stats.min s.Stats.max
            (slowdown_cell r.worst_slowdown))
    r.latency
