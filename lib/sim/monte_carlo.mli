(** Monte-Carlo fault-injection campaigns over a single schedule.

    Draws many random crash scenarios (from-start or timed), replays each
    one, and aggregates the real execution times — the dynamic counterpart
    of the static bounds, used by the examples and the CLI. *)

type mode =
  | From_start  (** crashed processors are dead from time zero *)
  | Timed of float
      (** each crashed processor dies at a uniform instant in
          [\[0, horizon)], where horizon is the given value (use the
          schedule makespan for full coverage) *)

(** Graceful-degradation statistics over the runs of one campaign,
    computed only when it injects {e more} crashes than the schedule's
    [epsilon] — within tolerance the completion fraction is constantly
    1.0 by Proposition 5.2 and the plain path is kept bit-identical. *)
type degradation = {
  deg_completion_mean : float;
      (** mean fraction of tasks still completing per run *)
  deg_completion_min : float;  (** worst run *)
  deg_sink_mean : float;  (** mean fraction of sink tasks delivered *)
  deg_frontier_mean : float;
      (** mean latency of the surviving frontier (0 when nothing ran) *)
}

type report = {
  runs : int;
  completed : int;  (** runs in which every task produced a result *)
  replays : int;
      (** replays executed (one per scenario; also visible as the
          [montecarlo.scenarios] / [replay.runs] metrics) *)
  latency : Stats.summary option;  (** over the completed runs; [None] if none *)
  worst_slowdown : float;
      (** max completed latency / zero-crash latency; [nan] if none —
          printed as ["-"] by {!pp} *)
  failure_rate : float;  (** fraction of runs that lost a task *)
  degradation : degradation option;
      (** [Some] iff [crashes > epsilon]; {!pp} adds a degradation line
          only in that case, so historical output is unchanged *)
}

val batch_block : int
(** Default scenarios per {!Replay.eval_batch} block on the batched path
    (256).  Purely a work-stealing granularity: the report never depends
    on it. *)

val run :
  ?seed:int ->
  ?runs:int ->
  ?domains:int ->
  ?pool:Parallel.pool ->
  ?batch:bool ->
  ?batch_block:int ->
  ?cancel:Cancel.token ->
  ?fabric:Netstate.fabric ->
  crashes:int ->
  mode:mode ->
  Schedule.t ->
  report
(** [run ~crashes ~mode sched] replays [runs] (default 1000) scenarios,
    each crashing [crashes] distinct processors chosen uniformly.  With
    [mode = From_start] and [crashes <= epsilon] on a fault-tolerant
    schedule, [failure_rate] is [0.] by Proposition 5.2.

    [domains] (default [1]) spreads the replays over OCaml domains with
    one compiled simulator per domain ({!Replay.compile}).  Passing
    [pool] instead evaluates on a persistent {!Parallel.pool} (and
    ignores [domains]): a campaign of many [run] calls then spawns its
    domains exactly once.  All scenarios are pre-drawn from the root RNG
    ({!Scenario.draw_block}) and aggregated in run order, so the report
    is byte-identical for every [domains] value, pool size, and [batch]
    setting (pinned by the test suite).  The default stays sequential
    because campaign code may already be running one {!Parallel.map}
    over experiment points.

    [batch] (default [true]) evaluates scenarios in [batch_block]-sized
    blocks (default {!batch_block}) through {!Replay.eval_batch} — the
    throughput path.  [batch_block] tunes the work-stealing granularity
    for multi-core hosts and never changes the report (result-invariant,
    pinned by the test suite); raises [Invalid_argument] when [< 1].
    [~batch:false] keeps the historical one-{!Replay.eval_latency}-per-
    scenario loop, retained as the differential baseline.  Sets the
    [replay.scenarios_per_sec] gauge either way.

    [cancel] (default [Cancel.never]) is polled once per scenario on
    both paths (inside {!Replay.eval_batch} on the batched one); when it
    trips — an expired serve-request deadline, a daemon shutdown — the
    campaign raises [Cancel.Cancelled] instead of finishing.  Every
    worker domain polls the same token, so a multi-domain campaign
    unwinds promptly.  A run that returns normally is byte-identical
    whether or not a token was polled. *)

val degradation_curve :
  ?seed:int ->
  ?runs:int ->
  ?domains:int ->
  ?pool:Parallel.pool ->
  ?batch:bool ->
  ?batch_block:int ->
  ?cancel:Cancel.token ->
  ?fabric:Netstate.fabric ->
  ?max_crashes:int ->
  mode:mode ->
  Schedule.t ->
  (int * report) list
(** [degradation_curve ~mode sched] sweeps the crash count from [0] to
    [max_crashes] (default [min m (epsilon + 3)] — past the tolerance)
    and runs one campaign per count: the completion-fraction-vs-crash
    curve of the schedule.  Reports for counts [<= epsilon] have
    [degradation = None] (they complete everything); later points carry
    the degradation statistics. *)

val pp : Format.formatter -> report -> unit
