type report = {
  resists : bool;
  scenarios_checked : int;
  exhaustive : bool;
  counterexample : (Platform.proc list * Dag.task list) option;
  worst_latency : float;
  static_agrees : bool option;
}

let m_scenarios =
  Obs_metrics.counter ~help:"crash sets enumerated or sampled by check"
    "fault_check.scenarios"

(* -- crash-set enumeration --------------------------------------------- *)

(* The hot path iterates increasing k-subsets of [0, n-1] with an in-place
   index array — the crash-time scratch is filled straight from it, so no
   list (or Bitset mask) is materialized per subset.  [advance_subset]
   steps [idx] to its lexicographic successor; it returns [false] when
   [idx] was the last subset. *)
let advance_subset ~n ~k idx =
  let i = ref (k - 1) in
  while !i >= 0 && idx.(!i) = n - k + !i do
    decr i
  done;
  if !i < 0 then false
  else begin
    idx.(!i) <- idx.(!i) + 1;
    for j = !i + 1 to k - 1 do
      idx.(j) <- idx.(j - 1) + 1
    done;
    true
  end

(* thin wrapper for tests: same subsets, as materialized lists *)
let combinations n k =
  if k < 0 || k > n then Seq.empty
  else if k = 0 then Seq.return []
  else
    let first = Array.init k (fun i -> i) in
    let successor idx =
      let idx = Array.copy idx in
      let i = ref (k - 1) in
      while !i >= 0 && idx.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then None
      else begin
        idx.(!i) <- idx.(!i) + 1;
        for j = !i + 1 to k - 1 do
          idx.(j) <- idx.(j - 1) + 1
        done;
        Some idx
      end
    in
    Seq.unfold
      (function
        | None -> None
        | Some idx -> Some (Array.to_list idx, successor idx))
      (Some first)

let count_combinations n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc' = acc * (n - k + i) / i in
        if acc' < acc then max_int (* overflow *) else go acc' (i + 1)
    in
    go 1 1
  end

(* Lexicographic unranking (combinatorial number system): the [rank]-th
   increasing k-subset of [0, n-1], counting from 0 — the entry point of
   an enumeration shard.  Requires [0 <= rank < count_combinations n k],
   which the exhaustive check guarantees via [max_exhaustive], far below
   the saturation threshold of [count_combinations]. *)
let subset_at_rank ~n ~k rank =
  let idx = Array.make k 0 in
  let rank = ref rank in
  let next = ref 0 in
  for i = 0 to k - 1 do
    (* smallest element c >= next leaving more than [rank] subsets after
       fixing prefix..c *)
    let rec find c =
      let after = count_combinations (n - c - 1) (k - i - 1) in
      if after <= !rank then begin
        rank := !rank - after;
        find (c + 1)
      end
      else c
    in
    let c = find !next in
    idx.(i) <- c;
    next := c + 1
  done;
  idx

(* -- the check --------------------------------------------------------- *)

(* One shard of the exhaustive enumeration: ranks [start, stop). *)
type shard = {
  sh_start : int;
  sh_worst : float;  (* max completed latency before the counterexample *)
  sh_counterexample : (int * Platform.proc list * Dag.task list) option;
      (* rank, crash set, starved tasks — the shard's lowest-rank refutation *)
}

let check ?(max_exhaustive = 20000) ?(samples = 1000) ?(seed = 7)
    ?(domains = 1) ?pool ?(cancel = Cancel.never) ?static ~epsilon sched =
  let m = Platform.proc_count (Schedule.platform sched) in
  let epsilon = min epsilon m in
  let total = count_combinations m epsilon in
  let exhaustive = total <= max_exhaustive in
  let checked = ref 0 in
  let counterexample = ref None in
  let worst = ref nan in
  (* one compiled simulator + crash-time scratch per domain *)
  let sim =
    Domain.DLS.new_key (fun () ->
        (Replay.compile sched, Array.make m infinity))
  in
  let fill_crash_time crash_time idx =
    Array.fill crash_time 0 m infinity;
    Array.iter (fun p -> crash_time.(p) <- neg_infinity) idx
  in
  if exhaustive then begin
    (* Shard the rank space into [domains] contiguous ranges.  Each shard
       stops at its own first counterexample; the combine step keeps the
       lowest-rank one, so the report cannot depend on [domains]: the
       scenarios at ranks below the winning rank are exactly those the
       sequential enumeration would have completed. *)
    let workers =
      match pool with Some p -> Parallel.pool_size p | None -> domains
    in
    let shards = max 1 (min workers total) in
    let bounds = Array.init (shards + 1) (fun i -> total * i / shards) in
    let run_shard i =
      Obs_prof.phase ~trace:false "check.shard" @@ fun () ->
      let start = bounds.(i) and stop = bounds.(i + 1) in
      let c, crash_time = Domain.DLS.get sim in
      let idx = subset_at_rank ~n:m ~k:epsilon start in
      let rank = ref start in
      let sh_worst = ref nan in
      let sh_ce = ref None in
      while !rank < stop && !sh_ce = None do
        Cancel.check cancel;
        Obs_metrics.incr m_scenarios;
        fill_crash_time crash_time idx;
        let lat = Replay.eval_latency c ~crash_time in
        if Float.is_nan lat then begin
          (* re-evaluate in full (once per shard at most) for the task list *)
          let out = Replay.eval c ~crash_time in
          sh_ce :=
            Some (!rank, Array.to_list idx, out.Replay.failed_tasks)
        end
        else begin
          if Float.is_nan !sh_worst || lat > !sh_worst then sh_worst := lat;
          incr rank;
          if !rank < stop then ignore (advance_subset ~n:m ~k:epsilon idx)
        end
      done;
      { sh_start = start; sh_worst = !sh_worst; sh_counterexample = !sh_ce }
    in
    let results =
      match pool with
      | Some p -> Parallel.map_pool p run_shard (List.init shards (fun i -> i))
      | None -> Parallel.map ~domains run_shard (List.init shards (fun i -> i))
    in
    let winner =
      List.fold_left
        (fun acc sh ->
          match (acc, sh.sh_counterexample) with
          | None, Some _ -> Some sh
          | Some best, Some (r, _, _) ->
              let br =
                match best.sh_counterexample with
                | Some (br, _, _) -> br
                | None -> assert false
              in
              if r < br then Some sh else acc
          | _, None -> acc)
        None results
    in
    match winner with
    | Some { sh_counterexample = Some (r, crashed, failed); _ } ->
        counterexample := Some (crashed, failed);
        checked := r + 1;
        (* worst over the completed scenarios at ranks below [r] only —
           shards beyond the winning rank are discarded *)
        List.iter
          (fun sh ->
            if sh.sh_start <= r && not (Float.is_nan sh.sh_worst) then
              if Float.is_nan !worst || sh.sh_worst > !worst then
                worst := sh.sh_worst)
          results
    | _ ->
        checked := total;
        List.iter
          (fun sh ->
            if not (Float.is_nan sh.sh_worst) then
              if Float.is_nan !worst || sh.sh_worst > !worst then
                worst := sh.sh_worst)
          results
  end
  else begin
    Obs_prof.phase ~cat:"sim" "check.sample" @@ fun () ->
    let rng = Rng.create seed in
    let c, crash_time = Domain.DLS.get sim in
    let i = ref 0 in
    while !i < samples && !counterexample = None do
      Cancel.check cancel;
      incr i;
      incr checked;
      Obs_metrics.incr m_scenarios;
      let crashed = Rng.sample_without_replacement rng epsilon m in
      Array.fill crash_time 0 m infinity;
      List.iter (fun p -> crash_time.(p) <- neg_infinity) crashed;
      let lat = Replay.eval_latency c ~crash_time in
      if Float.is_nan lat then begin
        let out = Replay.eval c ~crash_time in
        counterexample := Some (crashed, out.Replay.failed_tasks)
      end
      else if Float.is_nan !worst || lat > !worst then worst := lat
    done
  end;
  (* Cross-validation against the static supply-graph certificate.  The
     static verdict is exact, so in exhaustive mode the two must agree
     outright.  In sampled mode the replay may have missed the refuting
     crash set — replay the static counterexample before judging, and
     adopt it when the replay confirms it. *)
  let static_agrees =
    match static with
    | None -> None
    | Some (st : Resilience.report) -> (
        match (st.Resilience.rs_counterexample, !counterexample) with
        | None, None -> Some true
        | None, Some _ -> Some false
        | Some _, Some _ -> Some true
        | Some (crashed, _), None ->
            let out = Replay.crash_from_start sched ~crashed in
            incr checked;
            if not out.Replay.completed then begin
              counterexample := Some (crashed, out.Replay.failed_tasks);
              Some true
            end
            else Some false)
  in
  {
    resists = !counterexample = None;
    scenarios_checked = !checked;
    exhaustive;
    counterexample = !counterexample;
    worst_latency = !worst;
    static_agrees;
  }
