type report = {
  resists : bool;
  scenarios_checked : int;
  exhaustive : bool;
  counterexample : (Platform.proc list * Dag.task list) option;
  worst_latency : float;
  static_agrees : bool option;
}

let m_scenarios =
  Obs_metrics.counter ~help:"crash sets enumerated or sampled by check"
    "fault_check.scenarios"

(* -- crash-set enumeration --------------------------------------------- *)

(* The hot path iterates increasing k-subsets of [0, n-1] with an in-place
   index array and an incrementally-maintained Bitset mask — no per-subset
   allocation.  [f mask idx] must not retain either argument; it returns
   [false] to stop the enumeration early. *)
let iter_subsets ~n ~k f =
  if k = 0 then ignore (f (Bitset.create (max n 0)) [||])
  else if k > 0 && k <= n then begin
    let idx = Array.init k (fun i -> i) in
    let mask = Bitset.create n in
    Array.iter (Bitset.add mask) idx;
    let continue = ref true in
    while !continue do
      if not (f mask idx) then continue := false
      else begin
        (* lexicographic successor: bump the rightmost index that still
           has room, reset the suffix right after it *)
        let i = ref (k - 1) in
        while !i >= 0 && idx.(!i) = n - k + !i do
          decr i
        done;
        if !i < 0 then continue := false
        else begin
          for j = !i to k - 1 do
            Bitset.remove mask idx.(j)
          done;
          idx.(!i) <- idx.(!i) + 1;
          for j = !i + 1 to k - 1 do
            idx.(j) <- idx.(j - 1) + 1
          done;
          for j = !i to k - 1 do
            Bitset.add mask idx.(j)
          done
        end
      end
    done
  end

(* thin wrapper for tests: same subsets, as materialized lists *)
let combinations n k =
  if k < 0 || k > n then Seq.empty
  else if k = 0 then Seq.return []
  else
    let first = Array.init k (fun i -> i) in
    let successor idx =
      let idx = Array.copy idx in
      let i = ref (k - 1) in
      while !i >= 0 && idx.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then None
      else begin
        idx.(!i) <- idx.(!i) + 1;
        for j = !i + 1 to k - 1 do
          idx.(j) <- idx.(j - 1) + 1
        done;
        Some idx
      end
    in
    Seq.unfold
      (function
        | None -> None
        | Some idx -> Some (Array.to_list idx, successor idx))
      (Some first)

let count_combinations n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc' = acc * (n - k + i) / i in
        if acc' < acc then max_int (* overflow *) else go acc' (i + 1)
    in
    go 1 1
  end

(* -- the check --------------------------------------------------------- *)

let check ?(max_exhaustive = 20000) ?(samples = 1000) ?(seed = 7) ?static
    ~epsilon sched =
  let m = Platform.proc_count (Schedule.platform sched) in
  let epsilon = min epsilon m in
  let total = count_combinations m epsilon in
  let exhaustive = total <= max_exhaustive in
  let checked = ref 0 in
  let counterexample = ref None in
  let worst = ref nan in
  let try_scenario crashed =
    incr checked;
    Obs_metrics.incr m_scenarios;
    let out = Replay.crash_from_start sched ~crashed in
    if not out.Replay.completed then begin
      counterexample := Some (crashed, out.Replay.failed_tasks);
      false
    end
    else begin
      if Float.is_nan !worst || out.Replay.latency > !worst then
        worst := out.Replay.latency;
      true
    end
  in
  if exhaustive then
    iter_subsets ~n:m ~k:epsilon (fun _mask idx ->
        try_scenario (Array.to_list idx))
  else begin
    let rng = Rng.create seed in
    let i = ref 0 in
    while !i < samples && !counterexample = None do
      incr i;
      ignore (try_scenario (Rng.sample_without_replacement rng epsilon m))
    done
  end;
  (* Cross-validation against the static supply-graph certificate.  The
     static verdict is exact, so in exhaustive mode the two must agree
     outright.  In sampled mode the replay may have missed the refuting
     crash set — replay the static counterexample before judging, and
     adopt it when the replay confirms it. *)
  let static_agrees =
    match static with
    | None -> None
    | Some (st : Resilience.report) -> (
        match (st.Resilience.rs_counterexample, !counterexample) with
        | None, None -> Some true
        | None, Some _ -> Some false
        | Some _, Some _ -> Some true
        | Some (crashed, _), None ->
            let out = Replay.crash_from_start sched ~crashed in
            incr checked;
            if not out.Replay.completed then begin
              counterexample := Some (crashed, out.Replay.failed_tasks);
              Some true
            end
            else Some false)
  in
  {
    resists = !counterexample = None;
    scenarios_checked = !checked;
    exhaustive;
    counterexample = !counterexample;
    worst_latency = !worst;
    static_agrees;
  }
