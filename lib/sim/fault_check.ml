type report = {
  resists : bool;
  scenarios_checked : int;
  exhaustive : bool;
  counterexample : (Platform.proc list * Dag.task list) option;
  worst_latency : float;
}

let combinations n k =
  (* lazily enumerate increasing k-subsets of [0, n-1] *)
  let rec from lo k () =
    if k = 0 then Seq.Cons ([], Seq.empty)
    else if lo > n - k then Seq.Nil
    else
      Seq.append
        (Seq.map (fun rest -> lo :: rest) (from (lo + 1) (k - 1)))
        (from (lo + 1) k)
        ()
  in
  if k < 0 || k > n then Seq.empty else from 0 k

let count_combinations n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc' = acc * (n - k + i) / i in
        if acc' < acc then max_int (* overflow *) else go acc' (i + 1)
    in
    go 1 1
  end

let check ?(max_exhaustive = 20000) ?(samples = 1000) ?(seed = 7) ~epsilon sched =
  let m = Platform.proc_count (Schedule.platform sched) in
  let epsilon = min epsilon m in
  let total = count_combinations m epsilon in
  let exhaustive = total <= max_exhaustive in
  let scenarios =
    if exhaustive then combinations m epsilon
    else begin
      let rng = Rng.create seed in
      Seq.init samples (fun _ -> Rng.sample_without_replacement rng epsilon m)
    end
  in
  let checked = ref 0 in
  let counterexample = ref None in
  let worst = ref nan in
  Seq.iter
    (fun crashed ->
      if !counterexample = None then begin
        incr checked;
        let out = Replay.crash_from_start sched ~crashed in
        if not out.Replay.completed then
          counterexample := Some (crashed, out.Replay.failed_tasks)
        else if Float.is_nan !worst || out.Replay.latency > !worst then
          worst := out.Replay.latency
      end)
    scenarios;
  {
    resists = !counterexample = None;
    scenarios_checked = !checked;
    exhaustive;
    counterexample = !counterexample;
    worst_latency = !worst;
  }
