(** Adversarial fault injection: worst-case search over fault plans.

    [Monte_carlo] samples crash scenarios uniformly; this module {e hunts}
    for them.  Two questions are answered for one schedule:

    - {b worst-case slowdown}: over plans with at most [epsilon] crashes —
      which the schedule must survive (Proposition 5.2) — which crash
      subset and which crash {e instants} maximize the real execution
      time?  The search enumerates from-start subsets exhaustively when
      the subset space fits the budget (then its maximum provably
      dominates any Monte-Carlo sample of the same space), and otherwise
      seeds greedily with the most critical singletons and grows them with
      a beam; the surviving subsets then get their crash instants refined
      by coordinate descent over the static execution midpoints of each
      crashed processor.
    - {b minimal kill set}: the smallest from-start crash set that loses a
      task.  When [Analysis.Resilience] refutes ε-resistance, its minimal
      counterexample is adopted (certified minimal, size [<= epsilon]).
      When it certifies, every size-[epsilon + 1] replica-processor set of
      a single task is a kill set and no smaller one exists — the search
      then picks the one with the worst graceful degradation.

    The whole search is deterministic from [seed] (randomness is only used
    to top up the subset pool when the space exceeds the budget) and
    bounded by [budget] frontier evaluations — each one a compiled replay
    ({!Replay.eval_latency} / {!Replay.eval_degraded}), counted by the
    [stress.frontier_evals] metric.  Exposed on the command line as
    [ftsched stress]. *)

(** Worst completed plan found within [epsilon] crashes. *)
type worst = {
  w_crashes : (Platform.proc * float) list;
      (** crash instants, sorted by processor; [neg_infinity] means dead
          from start *)
  w_latency : float;
  w_slowdown : float;  (** [w_latency /. fault-free latency] *)
  w_exhaustive : bool;
      (** the from-start subset space was fully enumerated, so
          [w_latency] is a true maximum over from-start scenarios *)
}

(** Smallest crash set found that loses at least one task. *)
type kill = {
  k_procs : Platform.proc list;  (** increasing ids *)
  k_degradation : Replay.degradation;
      (** what still completes under that crash set *)
  k_certified : bool;
      (** minimality is backed by the {!Resilience} certificate: either
          its refuting counterexample, or [epsilon]-resistance was
          certified so no set of [<= epsilon] processors can kill *)
}

type report = {
  iv_epsilon : int;
  iv_m : int;
  iv_budget : int;  (** frontier-evaluation budget given *)
  iv_evals : int;  (** frontier evaluations actually spent *)
  iv_fault_free : float;  (** replay latency with no fault *)
  iv_cert_resists : bool option;
      (** static certificate verdict; [None] if certification was
          abandoned ({!Resilience.Family_overflow}) *)
  iv_worst : worst option;  (** [None] only if no plan completed *)
  iv_min_kill : kill option;
}

val adversary :
  ?seed:int ->
  ?budget:int ->
  ?beam:int ->
  ?domains:int ->
  Schedule.t ->
  report
(** [adversary sched] runs the budget-bounded search described above.
    [seed] (default 11) only matters when the subset space exceeds
    [budget] (default 20000) evaluations; [beam] (default 8) bounds the
    greedy frontier; [domains] parallelizes the static certification
    (the search itself is sequential and deterministic). *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line report. *)

val to_json : report -> Json.t
(** Machine-readable report ([ftsched stress --json]). *)
