let uniform_procs rng ~m ~count =
  Rng.sample_without_replacement rng (min count m) m

let timed rng ~m ~count ~horizon =
  List.map
    (fun p -> (p, Rng.float rng horizon))
    (uniform_procs rng ~m ~count)

(* -- pre-drawn scenario blocks ------------------------------------------ *)

type t = {
  sc_crash_time : float array;
  sc_dead_links : (Platform.proc * Platform.proc) list;
}

type mode = From_start | Timed of float

let of_crash_times ?(dead_links = []) crash_time =
  { sc_crash_time = crash_time; sc_dead_links = dead_links }

let draw_block rng ~m ~count ~mode ~runs =
  if runs < 0 then invalid_arg "Scenario.draw_block: negative runs";
  if m < 1 then invalid_arg "Scenario.draw_block: empty platform";
  (* One scratch bitset reused across the whole block; each scenario still
     owns its crash-time array (the replay engine reads them in place).
     The generator stream is identical to drawing the same scenarios
     through [uniform_procs]/[timed]: [Rng.sample_into] replays Floyd's
     draws verbatim, and the crash instants are drawn in increasing
     processor order exactly as [timed] maps over the sorted sample. *)
  let chosen = Bitset.create m in
  let one () =
    Rng.sample_into rng chosen (min count m);
    let crash_time = Array.make m infinity in
    (match mode with
    | From_start ->
        Bitset.iter (fun p -> crash_time.(p) <- neg_infinity) chosen
    | Timed horizon ->
        Bitset.iter (fun p -> crash_time.(p) <- Rng.float rng horizon) chosen);
    { sc_crash_time = crash_time; sc_dead_links = [] }
  in
  (* explicit left-to-right loop: [Array.init]'s evaluation order is
     unspecified and would scramble the generator stream *)
  let block = Array.make runs (of_crash_times [||]) in
  for i = 0 to runs - 1 do
    block.(i) <- one ()
  done;
  block
