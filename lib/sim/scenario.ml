let uniform_procs rng ~m ~count =
  Rng.sample_without_replacement rng (min count m) m

let timed rng ~m ~count ~horizon =
  List.map
    (fun p -> (p, Rng.float rng horizon))
    (uniform_procs rng ~m ~count)
