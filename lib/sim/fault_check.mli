(** Dynamic fault-tolerance verification (Proposition 5.2 in executable
    form).

    A schedule {e resists} [epsilon] failures when, for every set of at
    most [epsilon] crashed processors, the replay still completes every
    task.  Completion is monotone in the crash set (crashing one more
    processor can only remove supplies), so checking all subsets of size
    exactly [epsilon] is sufficient; this module enumerates them
    exhaustively when the count is reasonable and falls back to random
    sampling otherwise.

    The exhaustive enumeration walks an in-place index array and fills a
    reused crash-time scratch straight from it (no per-subset allocation),
    evaluating against a compiled replay simulator ({!Replay.compile});
    {!combinations} remains as a list-producing wrapper for tests.  With
    [?domains > 1] the rank space of the enumeration is sharded into
    contiguous ranges, one per domain, and the {e lowest-rank}
    counterexample wins — so the report is byte-identical for every
    domain count (the scenarios completed below the winning rank are
    exactly those the sequential enumeration would have completed).

    For an {e exact} verdict without enumeration, see
    [Ftsched_analysis.Resilience]; pass its report as [?static] to
    {!check} to cross-validate the two. *)

type report = {
  resists : bool;
  scenarios_checked : int;
  exhaustive : bool;  (** whether all size-[epsilon] subsets were tried *)
  counterexample : (Platform.proc list * Dag.task list) option;
      (** a crash set that starves tasks, with the starved tasks *)
  worst_latency : float;
      (** largest real execution time over the completed scenarios
          checked; [nan] if none completed *)
  static_agrees : bool option;
      (** [None] when no [?static] report was given; otherwise whether
          the static certificate and the replay verdict agree.  In
          sampled mode a static counterexample is replayed first and
          adopted when the replay confirms it. *)
}

val check :
  ?max_exhaustive:int ->
  ?samples:int ->
  ?seed:int ->
  ?domains:int ->
  ?pool:Parallel.pool ->
  ?cancel:Cancel.token ->
  ?static:Resilience.report ->
  epsilon:int ->
  Schedule.t ->
  report
(** [check ~epsilon sched] verifies [epsilon]-fault tolerance.  If the
    number of size-[epsilon] crash sets is at most [max_exhaustive]
    (default 20000), enumeration is exhaustive; otherwise [samples]
    (default 1000) random subsets are drawn with [seed] (default 7).
    [epsilon] may differ from the schedule's replication degree — e.g. to
    show that an [epsilon]-replicated schedule does {e not} in general
    resist [epsilon + 1] failures.

    [domains] (default [1]) shards the exhaustive enumeration across
    OCaml domains (lowest-rank counterexample wins; the report is
    byte-identical for any value).  Passing [pool] runs the shards on a
    persistent {!Parallel.pool} instead (and ignores [domains]) — same
    byte-identical report, domains spawned once per campaign.  Sampling
    mode is sequential — its RNG draw order must not depend on the
    domain count.

    [cancel] (default [Cancel.never]) is polled once per crash set on
    every enumeration or sampling path; when it trips, [check] raises
    [Cancel.Cancelled] — the serve daemon's request-deadline hook.  A
    check that returns normally never depends on the token.

    [static] cross-validates against a static ε-resistance report from
    [Ftsched_analysis.Resilience.certify]: the result's [static_agrees]
    records the comparison, and in sampled mode a refuting crash set from
    the certificate is replayed and adopted as [counterexample] when
    confirmed, making the sampled verdict exact whenever the static
    analysis found a refutation. *)

val combinations : int -> int -> int list Seq.t
(** [combinations n k] enumerates all increasing [k]-subsets of
    [\[0, n-1\]] in lexicographic order (thin wrapper over the Bitset
    enumeration, exposed for tests). *)

val count_combinations : int -> int -> int
(** Binomial coefficient, saturating at [max_int]. *)

val subset_at_rank : n:int -> k:int -> int -> int array
(** [subset_at_rank ~n ~k rank] is the [rank]-th (from 0) increasing
    [k]-subset of [\[0, n-1\]] in lexicographic order — the entry point
    of an enumeration shard.  Requires
    [0 <= rank < count_combinations n k] with the count far from
    saturation.  Exposed for tests. *)
