let now = Unix.gettimeofday
let now_us () = now () *. 1e6
