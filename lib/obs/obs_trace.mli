(** Span/instant event tracing in Chrome trace-event JSON.

    When enabled, spans wrap the interesting phases of a run — priority
    computation, per-task placement, validation, replay, each campaign
    granularity point — and the resulting file loads directly in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].  Events carry the
    recording domain's id as their track ([tid]), so parallel campaign
    runs render as one lane per domain.

    Disabled (the default), {!with_span} runs its thunk with one atomic
    load of overhead; argument thunks are never evaluated. *)

val start : unit -> unit
(** Clear the buffer, re-zero the clock origin and start recording. *)

val stop : unit -> unit
(** Stop recording.  Returns only after any span already past its enabled
    check has finished appending, so a flush that follows [stop] sees
    every event that was mid-emission — nothing is dropped at the
    stop/flush boundary. *)

val enabled : unit -> bool

val set_output : string -> unit
(** Arm an exit-time flush: if the process exits (normally or via [exit]
    anywhere) before {!write} was called on this path, an [at_exit] hook
    writes the buffer there, so a CLI run that never reaches its explicit
    write still leaves a loadable trace instead of a truncated one.  An
    explicit {!write} to the same path disarms the hook for that run. *)

val with_span :
  ?cat:string ->
  ?args:(unit -> (string * Json.t) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] and, if recording, emits a complete
    ("ph":"X") event covering its execution, even when [f] raises.
    [cat] defaults to ["ftsched"]; [args] is evaluated only when
    recording. *)

val instant : ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string -> unit
(** A zero-duration marker event. *)

val event_count : unit -> int
(** Number of buffered events (metadata excluded). *)

val to_json : unit -> Json.t
(** The whole buffer as [{"traceEvents": [...], "displayTimeUnit":"ms"}],
    chronological, with one [thread_name] metadata record per domain
    seen.  Parseable by [Util.Json] and loadable in Perfetto. *)

val write : string -> unit
(** [to_json] to a file. *)

val clear : unit -> unit
