(* Phase-attribution profiler.

   [phase "replay.eval" f] charges f's wall time and GC activity to the
   (phase, domain) pair that ran it.  Storage follows the same sharding
   discipline as Obs_metrics: each domain owns a DLS-local table of
   phase cells plus a stack of open frames, so recording never touches
   shared state; shards of terminated domains are folded into a global
   retired table (keyed by phase name x domain id) before Domain.join
   returns, and [report] merges retired + live state under one mutex.

   Wall time is inclusive; [self] subtracts the time spent in nested
   phases, so for any domain the self times of its phases partition the
   profiled wall (plus unattributed gaps).  GC deltas come from
   [Gc.quick_stat], whose allocation counters are per-domain in OCaml 5
   — exactly the attribution we want.

   Work-stealing telemetry comes from [Parallel.set_monitor]: enabling
   the profiler installs a monitor that accumulates per-worker-slot
   busy/steal-idle/items across every [Parallel.map] while enabled.
   Worker slot 0 is always the calling domain. *)

type cell = {
  mutable p_count : int;
  mutable p_wall : float;
  mutable p_self : float;
  mutable p_minor_words : float;
  mutable p_major_words : float;
  mutable p_minor_cols : int;
  mutable p_major_cols : int;
}

type frame = {
  fr_cell : cell;
  fr_t0 : float;
  fr_minor0 : float;
  fr_major0 : float;
  fr_mincol0 : int;
  fr_majcol0 : int;
  mutable fr_child : float;  (* wall spent in nested phases *)
}

type shard = {
  ps_domain : int;
  ps_cells : (string, cell) Hashtbl.t;
  mutable ps_stack : frame list;
}

let mk_cell () =
  {
    p_count = 0;
    p_wall = 0.;
    p_self = 0.;
    p_minor_words = 0.;
    p_major_words = 0.;
    p_minor_cols = 0;
    p_major_cols = 0;
  }

let mutex = Mutex.create ()
let enabled_flag = Atomic.make false
let live_shards : shard list ref = ref []

(* (phase, domain) -> cell, for shards whose domain terminated *)
let retired : (string * int, cell) Hashtbl.t = Hashtbl.create 32

(* worker slot -> accumulated Parallel.map telemetry *)
type wcell = {
  mutable w_maps : int;
  mutable w_items : int;
  mutable w_busy : float;
  mutable w_idle : float;
  mutable w_attempts : int;
}

let workers : (int, wcell) Hashtbl.t = Hashtbl.create 8
let t_origin = ref (Obs_clock.now ())

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let fold_cell_into tbl name domain (c : cell) =
  let base =
    match Hashtbl.find_opt tbl (name, domain) with
    | Some b -> b
    | None ->
        let b = mk_cell () in
        Hashtbl.replace tbl (name, domain) b;
        b
  in
  base.p_count <- base.p_count + c.p_count;
  base.p_wall <- base.p_wall +. c.p_wall;
  base.p_self <- base.p_self +. c.p_self;
  base.p_minor_words <- base.p_minor_words +. c.p_minor_words;
  base.p_major_words <- base.p_major_words +. c.p_major_words;
  base.p_minor_cols <- base.p_minor_cols + c.p_minor_cols;
  base.p_major_cols <- base.p_major_cols + c.p_major_cols

let fold_cell name domain c = fold_cell_into retired name domain c

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          ps_domain = (Domain.self () :> int);
          ps_cells = Hashtbl.create 16;
          ps_stack = [];
        }
      in
      with_lock (fun () -> live_shards := s :: !live_shards);
      Domain.at_exit (fun () ->
          with_lock (fun () ->
              Hashtbl.iter (fun name c -> fold_cell name s.ps_domain c) s.ps_cells;
              live_shards := List.filter (fun s' -> s' != s) !live_shards));
      s)

(* -- enable / disable --------------------------------------------------- *)

let record_map_stats (st : Parallel.map_stats) =
  with_lock (fun () ->
      List.iter
        (fun (w : Parallel.worker_stats) ->
          let c =
            match Hashtbl.find_opt workers w.Parallel.ws_worker with
            | Some c -> c
            | None ->
                let c =
                  { w_maps = 0; w_items = 0; w_busy = 0.; w_idle = 0.; w_attempts = 0 }
                in
                Hashtbl.replace workers w.Parallel.ws_worker c;
                c
          in
          c.w_maps <- c.w_maps + 1;
          c.w_items <- c.w_items + w.Parallel.ws_items;
          c.w_busy <- c.w_busy +. w.Parallel.ws_busy_s;
          c.w_idle <- c.w_idle +. w.Parallel.ws_idle_s;
          c.w_attempts <- c.w_attempts + w.Parallel.ws_steal_attempts)
        st.Parallel.ms_workers)

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  Atomic.set enabled_flag b;
  Parallel.set_monitor (if b then Some record_map_stats else None)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset retired;
      Hashtbl.reset workers;
      List.iter
        (fun s ->
          Hashtbl.reset s.ps_cells;
          s.ps_stack <- [])
        !live_shards;
      t_origin := Obs_clock.now ())

(* -- recording ---------------------------------------------------------- *)

let really_phase name f =
  let s = Domain.DLS.get shard_key in
  let cell =
    match Hashtbl.find_opt s.ps_cells name with
    | Some c -> c
    | None ->
        let c = mk_cell () in
        Hashtbl.replace s.ps_cells name c;
        c
  in
  (* [Gc.minor_words] reads this domain's allocation pointer, so minor
     words are attributed exactly per domain.  [quick_stat] word counters
     aggregate across ALL domains in OCaml 5 — using them here would
     charge every concurrent domain's allocation to every open phase (we
     measured exactly that: 4 domains each reporting the global total).
     Major words and collection counts only exist process-globally, so
     those columns read as "GC activity observed during the phase". *)
  let g0 = Gc.quick_stat () in
  let fr =
    {
      fr_cell = cell;
      fr_t0 = Obs_clock.now ();
      fr_minor0 = Gc.minor_words ();
      fr_major0 = g0.Gc.major_words;
      fr_mincol0 = g0.Gc.minor_collections;
      fr_majcol0 = g0.Gc.major_collections;
      fr_child = 0.;
    }
  in
  s.ps_stack <- fr :: s.ps_stack;
  Fun.protect f
    ~finally:(fun () ->
      let t1 = Obs_clock.now () in
      let g1 = Gc.quick_stat () in
      let dt = Float.max 0. (t1 -. fr.fr_t0) in
      (match s.ps_stack with
      | top :: rest when top == fr -> s.ps_stack <- rest
      | _ ->
          (* unbalanced unwind (an exception tore through several frames):
             drop every frame up to ours *)
          let rec pop = function
            | top :: rest -> if top == fr then rest else pop rest
            | [] -> []
          in
          s.ps_stack <- pop s.ps_stack);
      cell.p_count <- cell.p_count + 1;
      cell.p_wall <- cell.p_wall +. dt;
      cell.p_self <- cell.p_self +. Float.max 0. (dt -. fr.fr_child);
      cell.p_minor_words <-
        cell.p_minor_words +. Float.max 0. (Gc.minor_words () -. fr.fr_minor0);
      cell.p_major_words <-
        cell.p_major_words +. Float.max 0. (g1.Gc.major_words -. fr.fr_major0);
      cell.p_minor_cols <-
        cell.p_minor_cols + max 0 (g1.Gc.minor_collections - fr.fr_mincol0);
      cell.p_major_cols <-
        cell.p_major_cols + max 0 (g1.Gc.major_collections - fr.fr_majcol0);
      match s.ps_stack with
      | parent :: _ -> parent.fr_child <- parent.fr_child +. dt
      | [] -> ())

(* [phase] doubles as a trace-span site: when tracing is on the phase
   emits a span under [cat] whether or not profiling is, so instrumented
   code can use [Obs_prof.phase] as its only annotation and traces stay
   identical to the pre-profiler ones.  [~trace:false] keeps a phase out
   of traces entirely — for per-scenario hot paths whose thousands of
   spans would drown a timeline that the profile table summarizes. *)
let phase ?(trace = true) ?(cat = "prof") name f =
  let g = if Atomic.get enabled_flag then fun () -> really_phase name f else f in
  if trace && Obs_trace.enabled () then Obs_trace.with_span ~cat name g
  else g ()

(* -- reporting ---------------------------------------------------------- *)

type phase_stat = {
  ph_name : string;
  ph_domain : int;
  ph_count : int;
  ph_wall_s : float;
  ph_self_s : float;
  ph_minor_words : float;
  ph_major_words : float;
  ph_minor_collections : int;
  ph_major_collections : int;
}

type worker_stat = {
  wk_worker : int;
  wk_maps : int;
  wk_items : int;
  wk_busy_s : float;
  wk_idle_s : float;
  wk_steal_attempts : int;
}

type report = {
  r_wall_s : float;
  r_phases : phase_stat list;
  r_workers : worker_stat list;
}

let stat_of_cell name domain (c : cell) =
  {
    ph_name = name;
    ph_domain = domain;
    ph_count = c.p_count;
    ph_wall_s = c.p_wall;
    ph_self_s = c.p_self;
    ph_minor_words = c.p_minor_words;
    ph_major_words = c.p_major_words;
    ph_minor_collections = c.p_minor_cols;
    ph_major_collections = c.p_major_cols;
  }

let report () =
  with_lock (fun () ->
      (* merge retired and live cells per (phase, domain); a domain id is
         never reused, so a live shard can only collide with retired
         state from its own earlier life — impossible — but merging keeps
         the invariant trivially true either way *)
      let acc : (string * int, cell) Hashtbl.t = Hashtbl.create 32 in
      let add name domain c = fold_cell_into acc name domain c in
      Hashtbl.iter (fun (name, domain) c -> add name domain c) retired;
      List.iter
        (fun s -> Hashtbl.iter (fun name c -> add name s.ps_domain c) s.ps_cells)
        !live_shards;
      let phases =
        Hashtbl.fold
          (fun (name, domain) c l -> stat_of_cell name domain c :: l)
          acc []
        |> List.sort (fun a b ->
               compare (a.ph_name, a.ph_domain) (b.ph_name, b.ph_domain))
      in
      let workers =
        Hashtbl.fold
          (fun slot c l ->
            {
              wk_worker = slot;
              wk_maps = c.w_maps;
              wk_items = c.w_items;
              wk_busy_s = c.w_busy;
              wk_idle_s = c.w_idle;
              wk_steal_attempts = c.w_attempts;
            }
            :: l)
          workers []
        |> List.sort (fun a b -> compare a.wk_worker b.wk_worker)
      in
      {
        r_wall_s = Obs_clock.now () -. !t_origin;
        r_phases = phases;
        r_workers = workers;
      })

(* -- rendering ---------------------------------------------------------- *)

let fmt_s x = Printf.sprintf "%.3f" x

let fmt_words w =
  if w >= 1e6 then Printf.sprintf "%.1fM" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fk" (w /. 1e3)
  else Printf.sprintf "%.0f" w

let to_table r =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Left ]
      [
        "phase"; "domain"; "calls"; "wall s"; "self s"; "minor w"; "major w";
        "gc min/maj";
      ]
  in
  List.iter
    (fun p ->
      Text_table.add_row t
        [
          p.ph_name;
          string_of_int p.ph_domain;
          string_of_int p.ph_count;
          fmt_s p.ph_wall_s;
          fmt_s p.ph_self_s;
          fmt_words p.ph_minor_words;
          fmt_words p.ph_major_words;
          Printf.sprintf "%d/%d" p.ph_minor_collections p.ph_major_collections;
        ])
    r.r_phases;
  List.iter
    (fun w ->
      Text_table.add_row t
        [
          "(parallel worker)";
          string_of_int w.wk_worker;
          string_of_int w.wk_items;
          fmt_s (w.wk_busy_s +. w.wk_idle_s);
          fmt_s w.wk_busy_s;
          "-";
          "-";
          Printf.sprintf "idle %.3f" w.wk_idle_s;
        ])
    r.r_workers;
  t

let to_json r =
  let phase p =
    Json.Obj
      [
        ("name", Json.String p.ph_name);
        ("domain", Json.Int p.ph_domain);
        ("count", Json.Int p.ph_count);
        ("wall_s", Json.Float p.ph_wall_s);
        ("self_s", Json.Float p.ph_self_s);
        ("minor_words", Json.Float p.ph_minor_words);
        ("major_words", Json.Float p.ph_major_words);
        ("minor_collections", Json.Int p.ph_minor_collections);
        ("major_collections", Json.Int p.ph_major_collections);
      ]
  in
  let worker w =
    Json.Obj
      [
        ("worker", Json.Int w.wk_worker);
        ("maps", Json.Int w.wk_maps);
        ("items", Json.Int w.wk_items);
        ("busy_s", Json.Float w.wk_busy_s);
        ("idle_s", Json.Float w.wk_idle_s);
        ("steal_attempts", Json.Int w.wk_steal_attempts);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "ftsched/profile/v1");
      ("wall_s", Json.Float r.r_wall_s);
      ("phases", Json.List (List.map phase r.r_phases));
      ("workers", Json.List (List.map worker r.r_workers));
    ]

let of_json j =
  let get_f k o = Option.value ~default:0. (Option.bind (Json.member k o) Json.to_float) in
  let get_i k o = Option.value ~default:0 (Option.bind (Json.member k o) Json.to_int) in
  let get_s k o = Option.value ~default:"" (Option.bind (Json.member k o) Json.to_str) in
  match Option.bind (Json.member "schema" j) Json.to_str with
  | Some "ftsched/profile/v1" ->
      let phases =
        Json.member "phases" j
        |> Option.fold ~none:[] ~some:Json.to_list
        |> List.map (fun o ->
               {
                 ph_name = get_s "name" o;
                 ph_domain = get_i "domain" o;
                 ph_count = get_i "count" o;
                 ph_wall_s = get_f "wall_s" o;
                 ph_self_s = get_f "self_s" o;
                 ph_minor_words = get_f "minor_words" o;
                 ph_major_words = get_f "major_words" o;
                 ph_minor_collections = get_i "minor_collections" o;
                 ph_major_collections = get_i "major_collections" o;
               })
      in
      let workers =
        Json.member "workers" j
        |> Option.fold ~none:[] ~some:Json.to_list
        |> List.map (fun o ->
               {
                 wk_worker = get_i "worker" o;
                 wk_maps = get_i "maps" o;
                 wk_items = get_i "items" o;
                 wk_busy_s = get_f "busy_s" o;
                 wk_idle_s = get_f "idle_s" o;
                 wk_steal_attempts = get_i "steal_attempts" o;
               })
      in
      Some { r_wall_s = get_f "wall_s" j; r_phases = phases; r_workers = workers }
  | _ -> None
