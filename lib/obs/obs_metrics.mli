(** Global, domain-safe metrics registry: counters, gauges, histograms.

    The scheduler's claims are about decisions — one-to-one heads vs.
    full-replication fallbacks, one-port serialization, message traffic —
    so the hot layers register named metrics once (at module
    initialization) and record into them from wherever the decision is
    made, including worker domains spawned by [Parallel.map].

    Recording is disabled by default and costs one atomic load per call
    when off, so instrumentation can stay in the hot paths permanently.
    Enable with {!set_enabled} (the CLI's [--metrics]) or by setting the
    [FTSCHED_METRICS] environment variable to anything but [0] or
    [false].

    Domain safety: the registry is sharded per domain.  A handle is a
    stable slot id; every domain records into plain (non-atomic) cells of
    its own DLS-local shard, so hot-path increments perform no shared-
    memory synchronization at all — no mutex, no CAS, no shared cache
    line.  Readers ({!dump}, {!find}, {!to_json}) aggregate across shards
    on demand; shards of terminated domains are folded into a retained
    base before [Domain.join] returns, so post-join reads are exact (see
    DESIGN.md, "Sharded metrics").  Registration is idempotent —
    re-registering a name returns the existing metric — and raises
    [Invalid_argument] only if the name is reused with a different kind.

    Gauge semantics under sharding: {!add} accumulates shard-locally and
    aggregates as the sum over domains; {!set} records a global
    last-write-wins value.  A gauge should use one or the other (every
    gauge in the tree does); mixing them reads as last [set] plus all
    [add]s. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val suppressed : (unit -> 'a) -> 'a
(** Run a thunk with recording muted on the {e current domain} — used
    around speculative work (e.g. trial bookings that are snapshot-
    restored) so counters only reflect committed decisions.  Nests. *)

(** {1 Registration and recording} *)

val counter : ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit

val gauge : ?help:string -> string -> gauge

val set : gauge -> float -> unit
val add : gauge -> float -> unit
(** Gauges double as float accumulators (e.g. total link-busy time):
    [set] overwrites, [add] is an atomic increment. *)

val default_buckets : float array
(** Geometric decades [1e-3 .. 1e4] — a sensible default for durations
    expressed in schedule time units. *)

val histogram : ?buckets:float array -> ?help:string -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit overflow
    bucket catches the rest.  Raises [Invalid_argument] if unsorted. *)

val observe : histogram -> float -> unit

(** {1 Reading the registry} *)

type histogram_summary = {
  hs_count : int;
  hs_mean : float;  (** [nan] when empty *)
  hs_stddev : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
      (** (upper bound, count) per bucket, overflow last as [(infinity, n)] *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

val dump : unit -> (string * string * value) list
(** Every registered metric as [(name, help, value)], sorted by name. *)

val find : string -> value option
(** Current value of one metric by name. *)

val reset : unit -> unit
(** Zero every value across every shard; the registry itself (names,
    buckets, slot ids) survives. *)

val shard_count : unit -> int
(** Number of live per-domain shards (terminated domains' shards have
    been folded away).  Diagnostic; used by the sharding tests. *)

val to_table : unit -> Text_table.t
(** [metric | kind | value] rows, histogram values summarized inline. *)

val to_json : unit -> Json.t
(** Machine-readable dump ([ftsched/metrics/v1]): round-trips through
    [Util.Json] and is appended to campaign/bench reports. *)
