(** Leveled structured logging to stderr.

    Replaces the scattered [Printf.eprintf] progress callbacks: the level
    is read from the [FTSCHED_LOG] environment variable
    ([debug], [info], [warn] or [quiet]; default [info]), so
    [FTSCHED_LOG=quiet] silences every progress line — cram tests and
    batch jobs get clean stderr — while the default output stays
    byte-identical to the historical [eprintf] format. *)

type level = Quiet | Warn | Info | Debug

val level : unit -> level
val set_level : level -> unit
val enabled : level -> bool
(** [enabled l] — would a message at level [l] print? *)

val progress : string -> unit
(** The campaign/bench progress format, verbatim:
    [Printf.eprintf "  %s\n%!"] at [Info] level. *)

val debug : ('a, out_channel, unit) format -> 'a
val info : ('a, out_channel, unit) format -> 'a
val warn : ('a, out_channel, unit) format -> 'a
(** Printf-style, prefixed with [ftsched: [level] ] and newline-
    terminated.  Arguments are still consumed when the level is off
    (via [ifprintf]) but nothing is formatted or written. *)
