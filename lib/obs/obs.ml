module Clock = Obs_clock
module Metrics = Obs_metrics
module Trace = Obs_trace
module Log = Obs_log
module Prof = Obs_prof
