(** Observability layer: metrics registry, trace emitter, leveled logger.

    One alias module so instrumented code and user programs read as
    [Obs.Metrics.incr], [Obs.Trace.with_span], [Obs.Log.progress].  See
    the submodule interfaces for the full contracts. *)

module Clock = Obs_clock
module Metrics = Obs_metrics
module Trace = Obs_trace
module Log = Obs_log
module Prof = Obs_prof
