type level = Quiet | Warn | Info | Debug

let severity = function Quiet -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let of_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "FTSCHED_LOG") with
  | Some "quiet" -> Quiet
  | Some "warn" -> Warn
  | Some "debug" -> Debug
  | Some "info" | Some _ | None -> Info

let current = Atomic.make (of_env ())
let level () = Atomic.get current
let set_level l = Atomic.set current l
let enabled l = severity l <= severity (Atomic.get current)

let progress s = if enabled Info then Printf.eprintf "  %s\n%!" s

let logf lvl tag fmt =
  if enabled lvl then
    Printf.eprintf ("ftsched: [" ^^ tag ^^ "] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let debug fmt = logf Debug "debug" fmt
let info fmt = logf Info "info" fmt
let warn fmt = logf Warn "warn" fmt
