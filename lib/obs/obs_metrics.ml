(* Per-domain sharded registry.  Metric handles are stable slot ids; every
   domain owns a DLS-local shard holding plain (non-atomic) cells indexed
   by those ids, so a hot-path increment touches only memory written by
   its own domain — no shared cache line, no CAS, no mutex.  The global
   side (name -> slot table, the list of live shards, the fold-in base
   for shards of terminated domains) is touched only at registration,
   domain birth/death and read time, all under one mutex.

   Memory model: a shard cell is written by exactly one domain.  Readers
   ([dump]/[find]/[to_json]) aggregate across shards without
   synchronizing with the owners, so a dump raced with live recording
   may observe slightly stale cells (plain loads of asynchronously
   written words — never torn, ints and floats are word-sized).  Every
   actual read site runs after [Parallel.map] joined its workers, and
   [Domain.join] publishes the workers' writes, so reports are exact.
   Shards of terminated domains are folded into [retired] by a
   [Domain.at_exit] hook, which runs before [Domain.join] returns —
   shard count is bounded by the number of *live* domains, not by how
   many a campaign ever spawned.

   The [enabled] flag is the only cost on the disabled path: one atomic
   load and a branch. *)

type counter = { c_id : int }
type gauge = { g_id : int }
type histogram = { h_id : int; h_spec : float array }

type kind_tag = T_counter | T_gauge | T_histogram

type meta = {
  m_help : string;
  m_kind : kind_tag;
  m_id : int;  (* slot within its kind *)
  m_buckets : float array;  (* histogram bucket upper bounds, else [||] *)
}

(* one histogram's domain-local buffer: bucket counts + moment accumulator *)
type hcell = { hc_counts : int array; mutable hc_acc : Stats.Acc.t }

type shard = {
  sh_seq : int;  (* creation order: stable aggregation order *)
  mutable sh_suppressed : bool;
  mutable sh_counters : int array;
  mutable sh_gauges : float array;  (* [add] accumulators *)
  mutable sh_hists : hcell option array;
}

let registry : (string, meta) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()
let n_counters = ref 0
let n_gauges = ref 0
let n_hists = ref 0

(* last [set] per gauge slot, stamped so the latest write wins across
   domains; [set] is orders of magnitude rarer than [add] (it records
   end-of-campaign summaries), so it can afford the registry mutex. *)
let gauge_sets : (int * float) option array ref = ref [||]
let set_stamp = ref 0

let mk_shard seq =
  {
    sh_seq = seq;
    sh_suppressed = false;
    sh_counters = [||];
    sh_gauges = [||];
    sh_hists = [||];
  }

(* fold-in base for shards whose domain has terminated *)
let retired = mk_shard (-1)
let live_shards : shard list ref = ref []
let shard_seq = ref 0

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "FTSCHED_METRICS" with
    | Some ("" | "0" | "false" | "no") | None -> false
    | Some _ -> true)

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* -- shard lifecycle ---------------------------------------------------- *)

let grown_int a n =
  let b = Array.make (max 8 (max n (2 * Array.length a))) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grown_float a n =
  let b = Array.make (max 8 (max n (2 * Array.length a))) 0. in
  Array.blit a 0 b 0 (Array.length a);
  b

let grown_hist a n =
  let b = Array.make (max 8 (max n (2 * Array.length a))) None in
  Array.blit a 0 b 0 (Array.length a);
  b

let hcell_of_counts counts acc =
  { hc_counts = Array.copy counts; hc_acc = acc }

(* Fold every cell of [s] into [retired]; caller holds the mutex. *)
let fold_into_retired s =
  let nc = Array.length s.sh_counters in
  if Array.length retired.sh_counters < nc then
    retired.sh_counters <- grown_int retired.sh_counters nc;
  for i = 0 to nc - 1 do
    retired.sh_counters.(i) <- retired.sh_counters.(i) + s.sh_counters.(i)
  done;
  let ng = Array.length s.sh_gauges in
  if Array.length retired.sh_gauges < ng then
    retired.sh_gauges <- grown_float retired.sh_gauges ng;
  for i = 0 to ng - 1 do
    retired.sh_gauges.(i) <- retired.sh_gauges.(i) +. s.sh_gauges.(i)
  done;
  let nh = Array.length s.sh_hists in
  if Array.length retired.sh_hists < nh then
    retired.sh_hists <- grown_hist retired.sh_hists nh;
  for i = 0 to nh - 1 do
    match s.sh_hists.(i) with
    | None -> ()
    | Some hc -> (
        match retired.sh_hists.(i) with
        | None ->
            retired.sh_hists.(i) <- Some (hcell_of_counts hc.hc_counts hc.hc_acc)
        | Some base ->
            Array.iteri
              (fun j n -> base.hc_counts.(j) <- base.hc_counts.(j) + n)
              hc.hc_counts;
            base.hc_acc <- Stats.Acc.merge base.hc_acc hc.hc_acc)
  done

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        with_registry (fun () ->
            incr shard_seq;
            let s = mk_shard !shard_seq in
            live_shards := s :: !live_shards;
            s)
      in
      (* runs on the owning domain before [Domain.join] unblocks, so a
         post-join dump always sees the folded totals *)
      Domain.at_exit (fun () ->
          with_registry (fun () ->
              fold_into_retired s;
              live_shards := List.filter (fun s' -> s' != s) !live_shards));
      s)

let my_shard () = Domain.DLS.get shard_key

let shard_count () = with_registry (fun () -> List.length !live_shards)

(* Per-domain mute flag: speculative bookings (snapshot/restore trials)
   run under [suppressed] so only committed work is counted. *)
let suppressed f =
  let s = my_shard () in
  let prev = s.sh_suppressed in
  s.sh_suppressed <- true;
  Fun.protect ~finally:(fun () -> s.sh_suppressed <- prev) f

(* -- registration ------------------------------------------------------ *)

let register ~help ~kind ~buckets name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m when m.m_kind = kind -> m
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another kind" name)
      | None ->
          let id =
            match kind with
            | T_counter ->
                incr n_counters;
                !n_counters - 1
            | T_gauge ->
                incr n_gauges;
                if !n_gauges > Array.length !gauge_sets then
                  gauge_sets :=
                    (let a =
                       Array.make (max 8 (2 * Array.length !gauge_sets)) None
                     in
                     Array.blit !gauge_sets 0 a 0 (Array.length !gauge_sets);
                     a);
                !n_gauges - 1
            | T_histogram ->
                incr n_hists;
                !n_hists - 1
          in
          let m = { m_help = help; m_kind = kind; m_id = id; m_buckets = buckets } in
          Hashtbl.replace registry name m;
          m)

let counter ?(help = "") name =
  let m = register ~help ~kind:T_counter ~buckets:[||] name in
  { c_id = m.m_id }

let gauge ?(help = "") name =
  let m = register ~help ~kind:T_gauge ~buckets:[||] name in
  { g_id = m.m_id }

let default_buckets = [| 0.001; 0.01; 0.1; 1.; 10.; 100.; 1000.; 10000. |]

let histogram ?(buckets = default_buckets) ?(help = "") name =
  let n = Array.length buckets in
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing"
  done;
  let m = register ~help ~kind:T_histogram ~buckets:(Array.copy buckets) name in
  (* idempotent re-registration keeps the original bucket spec *)
  { h_id = m.m_id; h_spec = m.m_buckets }

(* -- recording (the hot path: one atomic load, then domain-local) ------- *)

let incr ?(by = 1) c =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    if not s.sh_suppressed then begin
      if c.c_id >= Array.length s.sh_counters then
        s.sh_counters <- grown_int s.sh_counters (c.c_id + 1);
      s.sh_counters.(c.c_id) <- s.sh_counters.(c.c_id) + by
    end
  end

let add g x =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    if not s.sh_suppressed then begin
      if g.g_id >= Array.length s.sh_gauges then
        s.sh_gauges <- grown_float s.sh_gauges (g.g_id + 1);
      s.sh_gauges.(g.g_id) <- s.sh_gauges.(g.g_id) +. x
    end
  end

let set g x =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    if not s.sh_suppressed then
      with_registry (fun () ->
          Stdlib.incr set_stamp;
          !gauge_sets.(g.g_id) <- Some (!set_stamp, x))
  end

let bucket_index buckets x =
  (* first bucket whose upper bound admits x; length buckets = overflow *)
  let n = Array.length buckets in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x <= buckets.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h x =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    if not s.sh_suppressed then begin
      if h.h_id >= Array.length s.sh_hists then
        s.sh_hists <- grown_hist s.sh_hists (h.h_id + 1);
      let hc =
        match s.sh_hists.(h.h_id) with
        | Some hc -> hc
        | None ->
            let hc =
              {
                hc_counts = Array.make (Array.length h.h_spec + 1) 0;
                hc_acc = Stats.Acc.create ();
              }
            in
            s.sh_hists.(h.h_id) <- Some hc;
            hc
      in
      let i = bucket_index h.h_spec x in
      hc.hc_counts.(i) <- hc.hc_counts.(i) + 1;
      Stats.Acc.add hc.hc_acc x
    end
  end

(* -- reading ----------------------------------------------------------- *)

type histogram_summary = {
  hs_count : int;
  hs_mean : float;
  hs_stddev : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

(* Aggregate one metric over [retired] then the live shards in creation
   order; caller holds the mutex.  Integer sums are order-independent;
   the fixed order keeps float merges reproducible for a given shard
   population. *)
let shards_in_order () =
  retired :: List.sort (fun a b -> compare a.sh_seq b.sh_seq) !live_shards

let value_of meta =
  match meta.m_kind with
  | T_counter ->
      let total = ref 0 in
      List.iter
        (fun s ->
          if meta.m_id < Array.length s.sh_counters then
            total := !total + s.sh_counters.(meta.m_id))
        (shards_in_order ());
      Counter !total
  | T_gauge ->
      let base =
        match !gauge_sets.(meta.m_id) with None -> 0. | Some (_, x) -> x
      in
      let total = ref base in
      List.iter
        (fun s ->
          if meta.m_id < Array.length s.sh_gauges then
            total := !total +. s.sh_gauges.(meta.m_id))
        (shards_in_order ());
      Gauge !total
  | T_histogram ->
      let n = Array.length meta.m_buckets in
      let counts = Array.make (n + 1) 0 in
      let acc = ref (Stats.Acc.create ()) in
      List.iter
        (fun s ->
          if meta.m_id < Array.length s.sh_hists then
            match s.sh_hists.(meta.m_id) with
            | None -> ()
            | Some hc ->
                Array.iteri
                  (fun i c -> counts.(i) <- counts.(i) + c)
                  hc.hc_counts;
                acc := Stats.Acc.merge !acc hc.hc_acc)
        (shards_in_order ());
      Histogram
        {
          hs_count = Stats.Acc.count !acc;
          hs_mean = Stats.Acc.mean !acc;
          hs_stddev = Stats.Acc.stddev !acc;
          hs_min = Stats.Acc.min !acc;
          hs_max = Stats.Acc.max !acc;
          hs_buckets =
            List.init (n + 1) (fun i ->
                ((if i = n then infinity else meta.m_buckets.(i)), counts.(i)));
        }

let dump () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun name meta acc -> (name, meta.m_help, value_of meta) :: acc)
        registry [])
  (* deterministic output: Hashtbl order must never leak into reports *)
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let find name =
  with_registry (fun () ->
      Option.map (fun meta -> value_of meta) (Hashtbl.find_opt registry name))

let reset () =
  with_registry (fun () ->
      let zero s =
        Array.fill s.sh_counters 0 (Array.length s.sh_counters) 0;
        Array.fill s.sh_gauges 0 (Array.length s.sh_gauges) 0.;
        Array.iter
          (function
            | None -> ()
            | Some hc ->
                Array.fill hc.hc_counts 0 (Array.length hc.hc_counts) 0;
                hc.hc_acc <- Stats.Acc.create ())
          s.sh_hists
      in
      zero retired;
      List.iter zero !live_shards;
      Array.fill !gauge_sets 0 (Array.length !gauge_sets) None)

(* -- rendering --------------------------------------------------------- *)

let float_str x = if Float.is_nan x then "-" else Printf.sprintf "%.3f" x

let to_table () =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Left; Text_table.Left ]
      [ "metric"; "kind"; "value" ]
  in
  List.iter
    (fun (name, _, v) ->
      let kind, value =
        match v with
        | Counter n -> ("counter", string_of_int n)
        | Gauge x -> ("gauge", float_str x)
        | Histogram s ->
            ( "histogram",
              if s.hs_count = 0 then "n=0"
              else
                Printf.sprintf "n=%d mean=%s min=%s max=%s" s.hs_count
                  (float_str s.hs_mean) (float_str s.hs_min)
                  (float_str s.hs_max) )
      in
      Text_table.add_row t [ name; kind; value ])
    (dump ());
  t

let to_json () =
  let metric (name, help, v) =
    let base = [ ("name", Json.String name) ] in
    let help = if help = "" then [] else [ ("help", Json.String help) ] in
    let rest =
      match v with
      | Counter n -> [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
      | Gauge x -> [ ("kind", Json.String "gauge"); ("value", Json.Float x) ]
      | Histogram s ->
          [
            ("kind", Json.String "histogram");
            ("count", Json.Int s.hs_count);
            ("mean", Json.Float s.hs_mean);
            ("stddev", Json.Float s.hs_stddev);
            ("min", Json.Float s.hs_min);
            ("max", Json.Float s.hs_max);
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, n) ->
                     Json.Obj [ ("le", Json.Float le); ("count", Json.Int n) ])
                   s.hs_buckets) );
          ]
    in
    Json.Obj (base @ help @ rest)
  in
  Json.Obj
    [
      ("schema", Json.String "ftsched/metrics/v1");
      ("metrics", Json.List (List.map metric (dump ())));
    ]
