(* A global registry keyed by name.  Counters and gauges are atomics so
   worker domains (Parallel.map) can record without coordination;
   histograms serialize on a per-histogram mutex (observations are orders
   of magnitude rarer than counter bumps).  The [enabled] flag is the
   only cost on the disabled path: one atomic load and a branch. *)

type counter = { c_cell : int Atomic.t }
type gauge = { g_cell : float Atomic.t }

type histogram = {
  h_mutex : Mutex.t;
  h_buckets : float array;  (* strictly increasing upper bounds *)
  h_counts : int array;  (* length = buckets + 1, last is overflow *)
  mutable h_acc : Stats.Acc.t;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type meta = { m_help : string; m_metric : metric }

let registry : (string, meta) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "FTSCHED_METRICS" with
    | Some ("" | "0" | "false" | "no") | None -> false
    | Some _ -> true)

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Per-domain mute flag: speculative bookings (snapshot/restore trials)
   run under [suppressed] so only committed work is counted. *)
let suppress_key = Domain.DLS.new_key (fun () -> ref false)

let suppressed f =
  let cell = Domain.DLS.get suppress_key in
  let prev = !cell in
  cell := true;
  Fun.protect ~finally:(fun () -> cell := prev) f

let recording () =
  Atomic.get enabled_flag && not !(Domain.DLS.get suppress_key)

(* -- registration ------------------------------------------------------ *)

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some { m_metric = M_counter c; _ } -> c
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another kind" name)
      | None ->
          let c = { c_cell = Atomic.make 0 } in
          Hashtbl.replace registry name { m_help = help; m_metric = M_counter c };
          c)

let incr ?(by = 1) c =
  if recording () then ignore (Atomic.fetch_and_add c.c_cell by)

let gauge ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some { m_metric = M_gauge g; _ } -> g
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another kind" name)
      | None ->
          let g = { g_cell = Atomic.make 0. } in
          Hashtbl.replace registry name { m_help = help; m_metric = M_gauge g };
          g)

let set g x = if recording () then Atomic.set g.g_cell x

let rec cas_add cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then cas_add cell x

let add g x = if recording () then cas_add g.g_cell x

let default_buckets =
  [| 0.001; 0.01; 0.1; 1.; 10.; 100.; 1000.; 10000. |]

let histogram ?(buckets = default_buckets) ?(help = "") name =
  let n = Array.length buckets in
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing"
  done;
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some { m_metric = M_histogram h; _ } -> h
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another kind" name)
      | None ->
          let h =
            {
              h_mutex = Mutex.create ();
              h_buckets = Array.copy buckets;
              h_counts = Array.make (n + 1) 0;
              h_acc = Stats.Acc.create ();
            }
          in
          Hashtbl.replace registry name
            { m_help = help; m_metric = M_histogram h };
          h)

let bucket_index buckets x =
  (* first bucket whose upper bound admits x; length buckets = overflow *)
  let n = Array.length buckets in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x <= buckets.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h x =
  if recording () then begin
    Mutex.lock h.h_mutex;
    let i = bucket_index h.h_buckets x in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    Stats.Acc.add h.h_acc x;
    Mutex.unlock h.h_mutex
  end

(* -- reading ----------------------------------------------------------- *)

type histogram_summary = {
  hs_count : int;
  hs_mean : float;
  hs_stddev : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

let summarize_histogram h =
  Mutex.lock h.h_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock h.h_mutex)
    (fun () ->
      let n = Array.length h.h_buckets in
      {
        hs_count = Stats.Acc.count h.h_acc;
        hs_mean = Stats.Acc.mean h.h_acc;
        hs_stddev = Stats.Acc.stddev h.h_acc;
        hs_min = Stats.Acc.min h.h_acc;
        hs_max = Stats.Acc.max h.h_acc;
        hs_buckets =
          List.init (n + 1) (fun i ->
              ((if i = n then infinity else h.h_buckets.(i)), h.h_counts.(i)));
      })

let value_of = function
  | M_counter c -> Counter (Atomic.get c.c_cell)
  | M_gauge g -> Gauge (Atomic.get g.g_cell)
  | M_histogram h -> Histogram (summarize_histogram h)

let dump () =
  let rows =
    with_registry (fun () ->
        Hashtbl.fold (fun name meta acc -> (name, meta) :: acc) registry [])
  in
  rows
  |> List.map (fun (name, meta) -> (name, meta.m_help, value_of meta.m_metric))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let find name =
  match with_registry (fun () -> Hashtbl.find_opt registry name) with
  | None -> None
  | Some meta -> Some (value_of meta.m_metric)

let reset () =
  let metrics =
    with_registry (fun () ->
        Hashtbl.fold (fun _ meta acc -> meta.m_metric :: acc) registry [])
  in
  List.iter
    (function
      | M_counter c -> Atomic.set c.c_cell 0
      | M_gauge g -> Atomic.set g.g_cell 0.
      | M_histogram h ->
          Mutex.lock h.h_mutex;
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_acc <- Stats.Acc.create ();
          Mutex.unlock h.h_mutex)
    metrics

(* -- rendering --------------------------------------------------------- *)

let float_str x =
  if Float.is_nan x then "-" else Printf.sprintf "%.3f" x

let to_table () =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Left; Text_table.Left ]
      [ "metric"; "kind"; "value" ]
  in
  List.iter
    (fun (name, _, v) ->
      let kind, value =
        match v with
        | Counter n -> ("counter", string_of_int n)
        | Gauge x -> ("gauge", float_str x)
        | Histogram s ->
            ( "histogram",
              if s.hs_count = 0 then "n=0"
              else
                Printf.sprintf "n=%d mean=%s min=%s max=%s" s.hs_count
                  (float_str s.hs_mean) (float_str s.hs_min)
                  (float_str s.hs_max) )
      in
      Text_table.add_row t [ name; kind; value ])
    (dump ());
  t

let to_json () =
  let metric (name, help, v) =
    let base = [ ("name", Json.String name) ] in
    let help = if help = "" then [] else [ ("help", Json.String help) ] in
    let rest =
      match v with
      | Counter n -> [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
      | Gauge x -> [ ("kind", Json.String "gauge"); ("value", Json.Float x) ]
      | Histogram s ->
          [
            ("kind", Json.String "histogram");
            ("count", Json.Int s.hs_count);
            ("mean", Json.Float s.hs_mean);
            ("stddev", Json.Float s.hs_stddev);
            ("min", Json.Float s.hs_min);
            ("max", Json.Float s.hs_max);
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, n) ->
                     Json.Obj [ ("le", Json.Float le); ("count", Json.Int n) ])
                   s.hs_buckets) );
          ]
    in
    Json.Obj (base @ help @ rest)
  in
  Json.Obj
    [
      ("schema", Json.String "ftsched/metrics/v1");
      ("metrics", Json.List (List.map metric (dump ())));
    ]
