(* Chrome trace-event buffer.  Events are appended under a global mutex
   (tracing is coarse: one event per task placement / replay / campaign
   point, not per instruction), rendered lazily by [to_json].  Timestamps
   are microseconds since [start] so traces start at t=0 in Perfetto. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (* microseconds since trace start *)
  ev_dur : float option;  (* Some d = complete event, None = instant *)
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

let mutex = Mutex.create ()
let enabled_flag = Atomic.make false
let origin_us = ref 0.
let events : event list ref = ref []  (* reverse chronological *)

(* Exit-time flush: a CLI run that exits (or dies) without reaching its
   explicit [write] would otherwise lose the whole buffer.  [set_output]
   arms a process [at_exit] hook once; an explicit [write] to the armed
   path disarms it so the trace is not written twice. *)
let output_path = ref None
let output_written = ref false
let at_exit_armed = ref false

let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock mutex;
  events := [];
  Mutex.unlock mutex

let start () =
  Mutex.lock mutex;
  events := [];
  origin_us := Obs_clock.now_us ();
  Mutex.unlock mutex;
  Atomic.set enabled_flag true

(* Take the buffer mutex before returning: any [record] already past its
   enabled check finishes appending first, so a flush that follows [stop]
   on this domain cannot lose an event that was mid-emission. *)
let stop () =
  Atomic.set enabled_flag false;
  Mutex.lock mutex;
  Mutex.unlock mutex

let record ev =
  Mutex.lock mutex;
  events := ev :: !events;
  Mutex.unlock mutex

let tid () = (Domain.self () :> int)

let eval_args = function None -> [] | Some f -> f ()

let with_span ?(cat = "ftsched") ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Obs_clock.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Obs_clock.now_us () in
        record
          {
            ev_name = name;
            ev_cat = cat;
            ev_ts = t0 -. !origin_us;
            ev_dur = Some (Float.max 0. (t1 -. t0));
            ev_tid = tid ();
            ev_args = eval_args args;
          })
      f
  end

let instant ?(cat = "ftsched") ?args name =
  if Atomic.get enabled_flag then
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts = Obs_clock.now_us () -. !origin_us;
        ev_dur = None;
        ev_tid = tid ();
        ev_args = eval_args args;
      }

let event_count () =
  Mutex.lock mutex;
  let n = List.length !events in
  Mutex.unlock mutex;
  n

let to_json () =
  Mutex.lock mutex;
  let evs = List.rev !events in
  Mutex.unlock mutex;
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs)
  in
  let thread_meta t =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int t);
        ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain %d" t)) ]);
      ]
  in
  let render e =
    let common =
      [
        ("name", Json.String e.ev_name);
        ("cat", Json.String e.ev_cat);
        ("pid", Json.Int 1);
        ("tid", Json.Int e.ev_tid);
        ("ts", Json.Float e.ev_ts);
      ]
    in
    let shape =
      match e.ev_dur with
      | Some d -> [ ("ph", Json.String "X"); ("dur", Json.Float d) ]
      | None -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
    in
    let args =
      match e.ev_args with [] -> [] | kvs -> [ ("args", Json.Obj kvs) ]
    in
    Json.Obj (common @ shape @ args)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map thread_meta tids @ List.map render evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n');
  Mutex.lock mutex;
  if !output_path = Some path then output_written := true;
  Mutex.unlock mutex

let set_output path =
  Mutex.lock mutex;
  output_path := Some path;
  output_written := false;
  let arm = not !at_exit_armed in
  at_exit_armed := true;
  Mutex.unlock mutex;
  if arm then
    at_exit (fun () ->
        let pending =
          Mutex.lock mutex;
          let p =
            match (!output_path, !output_written) with
            | Some p, false -> Some p
            | _ -> None
          in
          Mutex.unlock mutex;
          p
        in
        match pending with
        | Some p -> ( try write p with Sys_error _ -> ())
        | None -> ())
