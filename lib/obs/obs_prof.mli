(** Phase-attribution profiler for parallel replay.

    [phase "replay.eval" f] charges [f]'s wall time, call count and GC
    activity to the (phase, domain) pair that executed it.  Minor words
    come from [Gc.minor_words], which reads the executing domain's own
    allocation pointer, so that column is exact per domain.  Major words
    and collection counts come from [Gc.quick_stat], which aggregates
    across all domains in OCaml 5 — in a multi-domain run those columns
    measure process-global GC activity observed during the phase, not
    work done by the phase's own domain.  Phases nest:
    wall time is inclusive, self time excludes nested phases, so per
    domain the self times partition the profiled interval.

    Recording is sharded exactly like {!Obs_metrics}: each domain owns a
    DLS-local table of cells, a terminated domain's shard is folded into
    a retired table before [Domain.join] returns, and {!report} merges
    everything under one mutex — so profiling a [Parallel.map] campaign
    costs the workers no shared-memory writes per phase.

    Enabling the profiler also installs a [Parallel.set_monitor]
    callback, so every [Parallel.map] while enabled contributes
    per-worker-slot items, busy time, steal-idle time and steal
    attempts (worker slot 0 is the calling domain).

    Disabled (the default), {!phase} is one atomic load.  When tracing
    is also on, each phase additionally emits an {!Obs_trace} span
    (category ["prof"]), so the same run can be read as a table and as a
    Perfetto timeline. *)

val set_enabled : bool -> unit
(** Also installs (or removes) the [Parallel] telemetry monitor. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all accumulated phases and worker telemetry; re-zero the report
    wall clock. *)

val phase : ?trace:bool -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f], attributing its execution to [name] on the
    current domain.  Re-raises exceptions; the frame is closed and
    charged either way.  When tracing is on, also emits an
    {!Obs_trace} span named [name] under [cat] (default ["prof"]) —
    whether or not profiling is — so a call site can carry both
    annotations with this one wrapper.  Pass [~trace:false] for
    per-item hot paths that would flood a timeline: the phase is then
    profiled but never traced. *)

(** {1 Reports} *)

type phase_stat = {
  ph_name : string;
  ph_domain : int;
  ph_count : int;
  ph_wall_s : float;  (** inclusive *)
  ph_self_s : float;  (** exclusive of nested phases *)
  ph_minor_words : float;  (** exact for this domain *)
  ph_major_words : float;  (** process-global during the phase *)
  ph_minor_collections : int;  (** process-global during the phase *)
  ph_major_collections : int;  (** process-global during the phase *)
}

type worker_stat = {
  wk_worker : int;  (** worker slot; 0 = the domain that called [map] *)
  wk_maps : int;  (** number of [Parallel.map] calls it took part in *)
  wk_items : int;
  wk_busy_s : float;
  wk_idle_s : float;  (** time spent in the steal loop without an item *)
  wk_steal_attempts : int;
}

type report = {
  r_wall_s : float;  (** wall time since {!reset} (or first enable) *)
  r_phases : phase_stat list;  (** sorted by (name, domain) *)
  r_workers : worker_stat list;  (** sorted by worker slot *)
}

val report : unit -> report
(** Aggregate live + retired shards.  Exact for domains already joined;
    a still-running domain's open frame is not yet counted. *)

val to_table : report -> Text_table.t

val to_json : report -> Json.t
(** Schema [ftsched/profile/v1]. *)

val of_json : Json.t -> report option
(** Inverse of {!to_json}; [None] if the schema tag is missing or
    unknown. *)
