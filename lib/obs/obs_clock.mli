(** Wall-clock time for the observability layer.

    A single indirection so the instrumented libraries do not depend on
    [Unix] directly and tests can reason about the one clock every span
    and duration metric shares. *)

val now : unit -> float
(** Wall-clock seconds (epoch-based, sub-microsecond resolution). *)

val now_us : unit -> float
(** [now () *. 1e6] — the microsecond scale of Chrome trace events. *)
