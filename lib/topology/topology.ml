type t = {
  m : int;
  link_ids : (int * int, int) Hashtbl.t;  (* directed (src, dst) -> phys id *)
  link_count : int;
  delays : float array;  (* per phys id *)
  paths : int list array array;  (* paths.(src).(dst): processor path *)
  dist : float array array;  (* end-to-end delay *)
  diameter_hops : int;
}

(* Deterministic Dijkstra from [src]: minimise (total delay, hops, path
   lexicographically) by always settling the smallest-keyed node. *)
let shortest_paths m adj src =
  let dist = Array.make m infinity in
  let hops = Array.make m max_int in
  let prev = Array.make m (-1) in
  dist.(src) <- 0.;
  hops.(src) <- 0;
  let settled = Array.make m false in
  let better (d1, h1, p1) (d2, h2, p2) =
    d1 < d2 || (d1 = d2 && (h1 < h2 || (h1 = h2 && p1 < p2)))
  in
  for _ = 1 to m do
    (* pick the unsettled node with the smallest key *)
    let u = ref (-1) in
    for v = 0 to m - 1 do
      if
        (not settled.(v))
        && Float.is_finite dist.(v)
        && (!u = -1 || better (dist.(v), hops.(v), v) (dist.(!u), hops.(!u), !u))
      then u := v
    done;
    if !u >= 0 then begin
      settled.(!u) <- true;
      List.iter
        (fun (v, d) ->
          let cand = (dist.(!u) +. d, hops.(!u) + 1, !u) in
          if
            (not settled.(v))
            && better cand (dist.(v), hops.(v), prev.(v))
          then begin
            let nd, nh, np = cand in
            dist.(v) <- nd;
            hops.(v) <- nh;
            prev.(v) <- np
          end)
        adj.(!u)
    end
  done;
  (dist, hops, prev)

let custom ~m ~links =
  if m < 1 then invalid_arg "Topology.custom: m < 1";
  let link_ids = Hashtbl.create 64 in
  let delays = ref [] in
  let next_id = ref 0 in
  let add_directed src dst delay =
    if Hashtbl.mem link_ids (src, dst) then
      invalid_arg "Topology.custom: duplicate cable";
    Hashtbl.add link_ids (src, dst) !next_id;
    delays := delay :: !delays;
    incr next_id
  in
  List.iter
    (fun (a, b, delay) ->
      if a < 0 || a >= m || b < 0 || b >= m then
        invalid_arg "Topology.custom: bad endpoint";
      if a = b then invalid_arg "Topology.custom: self cable";
      if delay <= 0. || Float.is_nan delay then
        invalid_arg "Topology.custom: non-positive delay";
      add_directed a b delay;
      add_directed b a delay)
    links;
  let delays = Array.of_list (List.rev !delays) in
  (* adjacency for routing *)
  let adj = Array.make m [] in
  Hashtbl.iter
    (fun (src, dst) id -> adj.(src) <- (dst, delays.(id)) :: adj.(src))
    link_ids;
  (* deterministic neighbour order *)
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  let paths = Array.init m (fun _ -> Array.make m []) in
  let dist = Array.make_matrix m m 0. in
  let diameter = ref 0 in
  for src = 0 to m - 1 do
    let d, hops, prev = shortest_paths m adj src in
    for dst = 0 to m - 1 do
      if not (Float.is_finite d.(dst)) then
        invalid_arg "Topology.custom: disconnected topology";
      dist.(src).(dst) <- d.(dst);
      if hops.(dst) > !diameter then diameter := hops.(dst);
      let rec walk v acc = if v = src then src :: acc else walk prev.(v) (v :: acc) in
      paths.(src).(dst) <- walk dst []
    done
  done;
  {
    m;
    link_ids;
    link_count = Array.length delays;
    delays;
    paths;
    dist;
    diameter_hops = !diameter;
  }

let clique ?(delay = 1.) m =
  if m < 1 then invalid_arg "Topology.clique";
  let links = ref [] in
  for a = 0 to m - 1 do
    for b = a + 1 to m - 1 do
      links := (a, b, delay) :: !links
    done
  done;
  custom ~m ~links:!links

let ring ?(delay = 1.) m =
  if m < 2 then invalid_arg "Topology.ring";
  if m = 2 then custom ~m ~links:[ (0, 1, delay) ]
  else custom ~m ~links:(List.init m (fun i -> (i, (i + 1) mod m, delay)))

let star ?(delay = 1.) m =
  if m < 2 then invalid_arg "Topology.star";
  custom ~m ~links:(List.init (m - 1) (fun i -> (0, i + 1, delay)))

let mesh_links ?(wrap = false) ~rows ~cols ~delay () =
  if rows < 1 || cols < 1 then invalid_arg "Topology.mesh2d";
  let id r c = (r * cols) + c in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then links := (id r c, id r (c + 1), delay) :: !links
      else if wrap && cols > 2 then links := (id r c, id r 0, delay) :: !links;
      if r + 1 < rows then links := (id r c, id (r + 1) c, delay) :: !links
      else if wrap && rows > 2 then links := (id r c, id 0 c, delay) :: !links
    done
  done;
  !links

let mesh2d ?(delay = 1.) ~rows ~cols () =
  custom ~m:(rows * cols) ~links:(mesh_links ~rows ~cols ~delay ())

let torus2d ?(delay = 1.) ~rows ~cols () =
  custom ~m:(rows * cols) ~links:(mesh_links ~wrap:true ~rows ~cols ~delay ())

let hypercube ?(delay = 1.) d =
  if d < 1 then invalid_arg "Topology.hypercube";
  let m = 1 lsl d in
  let links = ref [] in
  for v = 0 to m - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then links := (v, w, delay) :: !links
    done
  done;
  custom ~m ~links:!links

let proc_count t = t.m
let link_count t = t.link_count
let delay_between t src dst = t.dist.(src).(dst)
let route t src dst = t.paths.(src).(dst)
let diameter_hops t = t.diameter_hops

let platform t =
  Platform.create ~delays:t.dist

let fabric t =
  let route_links = Array.make_matrix t.m t.m [] in
  for src = 0 to t.m - 1 do
    for dst = 0 to t.m - 1 do
      if src <> dst then begin
        let rec pairs = function
          | a :: (b :: _ as rest) ->
              Hashtbl.find t.link_ids (a, b) :: pairs rest
          | [ _ ] | [] -> []
        in
        route_links.(src).(dst) <- pairs t.paths.(src).(dst)
      end
    done
  done;
  {
    Netstate.phys_count = t.link_count;
    route = (fun src dst -> route_links.(src).(dst));
  }
