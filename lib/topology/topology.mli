(** Sparse interconnection topologies (the paper's Section 7 extension).

    The paper's conclusion sketches the extension of CAFT from the clique
    to sparse interconnects: "each processor is provided with a routing
    table which indicates the route to be used to communicate with another
    processor.  To achieve contention awareness, at most one message can
    circulate on a given link at a given time-step."

    This module builds classic interconnects, computes deterministic
    shortest-path routing tables, and derives the two artefacts the rest
    of the library needs:

    - a {!Platform.t} whose end-to-end unit delay between two processors
      is the sum of the physical-link delays along the route, and
    - a {!Netstate.fabric} mapping each processor pair to the physical
      links of its route, so the booking engine, the validator and the
      replay simulator serialize messages on shared links.

    Every physical link is directed; the constructors below create both
    directions of each cable.  A message reserves all links of its route
    for its whole duration (circuit-style reservation — the conservative
    reading of "at most one message per link at a time"). *)

type t

val custom : m:int -> links:(Platform.proc * Platform.proc * float) list -> t
(** [custom ~m ~links] builds a topology over processors [0..m-1] with
    one bidirectional cable (two directed links) of the given unit delay
    per triple.  Raises [Invalid_argument] on bad endpoints, non-positive
    delays, duplicate cables, or a disconnected topology. *)

val clique : ?delay:float -> int -> t
(** Fully connected, every cable with unit delay [delay] (default 1). *)

val ring : ?delay:float -> int -> t
(** Processors in a cycle; [m >= 2]. *)

val star : ?delay:float -> int -> t
(** Processor 0 is the hub; every other processor hangs off it.
    [m >= 2]. *)

val mesh2d : ?delay:float -> rows:int -> cols:int -> unit -> t
(** [rows x cols] grid, row-major processor numbering. *)

val torus2d : ?delay:float -> rows:int -> cols:int -> unit -> t
(** Grid with wrap-around cables. *)

val hypercube : ?delay:float -> int -> t
(** [hypercube d] over [2^d] processors; cables along each dimension. *)

(** {1 Queries} *)

val proc_count : t -> int

val link_count : t -> int
(** Number of directed physical links. *)

val delay_between : t -> Platform.proc -> Platform.proc -> float
(** End-to-end delay (sum along the route); [0.] for [src = dst]. *)

val route : t -> Platform.proc -> Platform.proc -> Platform.proc list
(** The processor path from [src] to [dst], both included.  Routes are
    deterministic: shortest total delay, ties broken by hop count then by
    smallest next processor id. *)

val diameter_hops : t -> int
(** Longest route length in hops. *)

(** {1 Integration} *)

val platform : t -> Platform.t
(** Platform with routed end-to-end delays. *)

val fabric : t -> Netstate.fabric
(** The physical-link fabric for {!Netstate.create},
    [Validate.run ?fabric] and the replay simulator. *)
