(** The serve daemon: admission control, deadlines, warm restart.

    The core is a {e synchronous state machine} — {!admit} classifies
    one incoming frame (reply now, or queue it) and {!step} evaluates
    one queued request — with the I/O event loops ({!run_stdio},
    {!run_socket}) layered on top.  The split is what makes the daemon's
    robustness claims testable: the fault-injection harness drives
    [admit]/[step] directly, in-process and deterministically, and
    asserts the one-frame-in/one-frame-out invariant without a kernel in
    the loop.

    Lifecycle of a frame:
    + {!admit}: size check → JSON parse → protocol validation → op
      dispatch.  [ping]/[stats]/[shutdown] are answered inline; anything
      malformed gets a structured error reply.  Evaluable ops are
      validated ({!Serve_ops.prepare}), checked against the cache
      (hits are answered inline, byte-identical to the original
      computation), and finally queued — unless the queue is full
      ([overloaded], load shed) or the daemon is draining
      ([shutting_down]).
    + {!step}: dequeue one request.  If its deadline expired while
      queued, reply [deadline_exceeded] without evaluating; otherwise
      evaluate under a {!Cancel} token carrying the absolute deadline —
      the replay/Monte-Carlo loops poll it per scenario, so a
      mid-evaluation expiry also yields [deadline_exceeded].  Successful
      results are journaled into the cache before the reply is built.

    A [deadline_ms] of [0] is {e already expired} — the request is
    answered [deadline_exceeded] deterministically at admission (the
    protocol tests rely on this; a real budget race would be timing
    dependent). *)

type config = {
  queue_capacity : int;  (** admission queue bound (default 64) *)
  max_frame : int;  (** request frame byte limit (default 1 MiB) *)
  default_deadline_ms : float option;
      (** budget for requests that carry none (default: none) *)
  max_requests : int option;
      (** begin draining after admitting this many frames — a
          deterministic shutdown trigger for tests (default: none) *)
}

val default_config : config

type 'a t
(** A daemon instance; ['a] tags each queued request with its client
    (the socket loop routes replies by it; stdio uses [unit]). *)

val create : ?ops_ctx:Serve_ops.ctx -> config -> cache:Serve_cache.t -> 'a t

(** What {!admit} decided about one frame. *)
type 'a admitted =
  | Reply of string  (** answer now (error, inline op, cache hit, shed) *)
  | Queued  (** accepted; a later {!step} will produce the reply *)
  | Reply_shutdown of string
      (** answer now, then drain and exit (the [shutdown] op) *)

val admit : 'a t -> client:'a -> string -> 'a admitted
(** Classify one frame.  Total: every input string — malformed,
    oversized, hostile — yields [Reply]/[Queued]/[Reply_shutdown]; the
    function never raises. *)

val step : 'a t -> ('a * string) option
(** Evaluate the oldest queued request; [None] when idle.  Never
    raises: evaluation failures become [internal] error replies. *)

val queue_depth : 'a t -> int

val begin_shutdown : 'a t -> unit
(** Stop admitting evaluable work ([shutting_down] replies); queued
    requests still drain through {!step}. *)

val draining : 'a t -> bool

val finish : 'a t -> unit
(** Compact and close the cache journal — the last act before exit. *)

val stats_response : 'a t -> string
(** The [stats] result document (also produced by the [stats] op):
    queue depth and capacity, request/shed/deadline/error counters,
    cache entries + hit rate, uptime. *)

(** {1 Event loops}

    Both loops implement the same discipline: buffered line framing with
    oversized-line recovery (an over-limit line is answered [oversized]
    once and discarded up to the next newline, so one hostile client
    cannot wedge the framer), [SIGTERM]/[SIGINT] triggering a graceful
    drain ({!begin_shutdown} → {!step} to empty → {!finish}), and
    [SIGPIPE] ignored (a client vanishing mid-reply is the client's
    problem, not the daemon's). *)

val run_stdio : unit t -> unit
(** Serve JSON-lines over stdin/stdout until EOF or shutdown.
    Responses keep request order. *)

type conn
(** The socket loop's client tag (one per accepted connection). *)

val run_socket : conn t -> path:string -> unit
(** Serve on a Unix domain socket at [path] (created; removed on
    graceful exit).  Multiple concurrent clients; replies are routed to
    the requesting client; a client disconnecting mid-request discards
    its replies without disturbing the others. *)
