type report = {
  fr_frames : int;
  fr_ok : int;
  fr_errors : int;
  fr_cache_hits : int;
  fr_shed : int;
  fr_violations : string list;
}

let trunc s = if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

(* -- adversarial frame generator ----------------------------------------
   Valid frames draw from a small grid of instance parameters so the
   stream revisits instances (exercising the cache and the schedule
   memo); hostile frames cover every parse stage. *)

let valid_frame rng =
  let op = Rng.pick rng [| "schedule"; "replay"; "montecarlo"; "analyze" |] in
  let tasks = Rng.pick rng [| 6; 9; 12; 15 |] in
  let m = Rng.pick rng [| 2; 3; 4 |] in
  let epsilon = Rng.int rng (min 2 m) in
  let seed = 1 + Rng.int rng 2 in
  let algo = Rng.pick rng [| "caft"; "ftsa"; "heft" |] in
  let base =
    [
      ("seed", Json.Int seed);
      ("tasks", Json.Int tasks);
      ("m", Json.Int m);
      ("epsilon", Json.Int epsilon);
      ("algo", Json.String algo);
    ]
  in
  let params =
    match op with
    | "replay" when Rng.bool rng -> base @ [ ("crashed", Json.List [ Json.Int 0 ]) ]
    | "montecarlo" -> base @ [ ("runs", Json.Int (10 + Rng.int rng 30)) ]
    | _ -> base
  in
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int Serve_protocol.version);
         ("id", Json.Int (Rng.int rng 1000));
         ("op", Json.String op);
         ("params", Json.Obj params);
       ])

let hostile_frame rng max_frame =
  match Rng.int rng 8 with
  | 0 -> "!!! not json at all %%%"
  | 1 ->
      (* truncated JSON: chop a valid frame mid-object *)
      let f = valid_frame rng in
      String.sub f 0 (String.length f / 2)
  | 2 -> {|{"op":7}|}
  | 3 -> {|{"op":"schedule","params":[1,2,3]}|}
  | 4 -> {|{"v":99,"op":"ping"}|}
  | 5 -> {|{"op":"frobnicate"}|}
  | 6 -> {|{"op":"schedule","params":{"task":40}}|} (* typo'd field *)
  | _ ->
      (* oversized: blow past the frame limit *)
      {|{"op":"schedule","params":{"family":"|}
      ^ String.make (max_frame + 16) 'a'
      ^ {|"}}|}

let run ?(frames = 200) ~seed () =
  let rng = Rng.create seed in
  let cache = Serve_cache.in_memory () in
  let max_frame = 4096 in
  let cfg =
    {
      Serve_server.default_config with
      Serve_server.queue_capacity = 4;
      max_frame;
    }
  in
  let srv = Serve_server.create cfg ~cache in
  let violations = ref [] in
  let viol fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let n_frames = ref 0
  and n_resp = ref 0
  and n_ok = ref 0
  and n_err = ref 0
  and n_hits = ref 0
  and n_shed = ref 0 in
  (* first rendered [result] per request line: later servings of the
     same frame must match byte-for-byte *)
  let results : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let sent_valid = ref [] in
  (* [track]: whether the result must be byte-stable across servings —
     true for the deterministic ops, false for [stats] (uptime and
     counters move by design) *)
  let classify ?(track = true) line resp =
    incr n_resp;
    match Serve_protocol.parse_response resp with
    | Error e -> viol "non-protocol response to %S: %s" (trunc line) e
    | Ok rs ->
        if rs.Serve_protocol.rs_ok then begin
          incr n_ok;
          if rs.Serve_protocol.rs_cached then incr n_hits;
          match rs.Serve_protocol.rs_result with
          | None -> viol "ok response without result for %S" (trunc line)
          | Some r -> (
              if track then
                let rendered = Json.to_string r in
                match Hashtbl.find_opt results line with
                | None -> Hashtbl.add results line rendered
                | Some prev ->
                    if prev <> rendered then
                      viol "result for %S changed between servings" (trunc line))
        end
        else begin
          incr n_err;
          match rs.Serve_protocol.rs_error with
          | None -> viol "error response without class for %S" (trunc line)
          | Some (Serve_protocol.Overloaded, _) -> incr n_shed
          | Some _ -> ()
        end
  in
  let inject ?track line =
    incr n_frames;
    match Serve_server.admit srv ~client:() line with
    | exception e ->
        viol "admit raised %s on %S" (Printexc.to_string e) (trunc line)
    | Serve_server.Reply resp | Serve_server.Reply_shutdown resp ->
        classify ?track line resp
    | Serve_server.Queued -> (
        match Serve_server.step srv with
        | exception e ->
            viol "step raised %s on %S" (Printexc.to_string e) (trunc line)
        | Some ((), resp) -> classify ?track line resp
        | None -> viol "frame %S queued but the queue was empty" (trunc line))
  in
  (* burst: distinct fresh requests, no stepping in between — the tail
     must shed with [overloaded], then the queue drains normally *)
  let burst counter =
    let fresh = ref [] in
    for k = 0 to (2 * cfg.Serve_server.queue_capacity) - 1 do
      let line =
        Json.to_string
          (Json.Obj
             [
               ("op", Json.String "schedule");
               ( "params",
                 Json.Obj
                   [
                     ("seed", Json.Int (1000 + (counter * 100) + k));
                     ("tasks", Json.Int 6);
                     ("m", Json.Int 2);
                   ] );
             ])
      in
      incr n_frames;
      match Serve_server.admit srv ~client:() line with
      | exception e ->
          viol "admit raised %s during burst" (Printexc.to_string e)
      | Serve_server.Reply resp | Serve_server.Reply_shutdown resp ->
          classify line resp
      | Serve_server.Queued -> fresh := line :: !fresh
    done;
    let queued = List.rev !fresh in
    if List.length queued > cfg.Serve_server.queue_capacity then
      viol "queue accepted %d requests over its capacity %d"
        (List.length queued) cfg.Serve_server.queue_capacity;
    (* the queue is FIFO, so drained responses pair with [queued] in order *)
    let rec drain = function
      | [] -> (
          match Serve_server.step srv with
          | Some _ -> viol "burst drain found more responses than requests"
          | None -> ())
      | line :: rest -> (
          match Serve_server.step srv with
          | exception e ->
              viol "step raised %s draining the burst" (Printexc.to_string e)
          | Some ((), resp) ->
              classify line resp;
              drain rest
          | None ->
              viol "burst queued %d requests but the queue drained early"
                (List.length queued))
    in
    drain queued
  in
  for i = 0 to frames - 1 do
    if i > 0 && i mod 40 = 39 then burst i
    else
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          let f = valid_frame rng in
          sent_valid := f :: !sent_valid;
          inject f
      | 4 | 5 ->
          (* re-send an earlier valid frame verbatim: must come back
             byte-identical, usually from cache *)
          inject
            (match !sent_valid with
            | [] -> valid_frame rng
            | sent -> Rng.pick_list rng sent)
      | 6 -> inject {|{"op":"ping"}|}
      | 7 -> inject ~track:false {|{"op":"stats"}|}
      | 8 ->
          (* expired before it starts: always deadline_exceeded *)
          inject {|{"op":"schedule","deadline_ms":0,"params":{"tasks":6,"m":2}}|}
      | _ -> inject (hostile_frame rng max_frame)
  done;
  if !n_resp <> !n_frames then
    viol "%d frames injected but %d responses observed" !n_frames !n_resp;
  (* the daemon must still be alive and coherent *)
  (match Serve_server.admit srv ~client:() {|{"op":"ping"}|} with
  | Serve_server.Reply resp -> (
      match Serve_protocol.parse_response resp with
      | Ok rs when rs.Serve_protocol.rs_ok -> ()
      | _ -> viol "daemon stopped answering ping after the fault run")
  | _ -> viol "ping was not answered inline after the fault run");
  {
    fr_frames = !n_frames;
    fr_ok = !n_ok;
    fr_errors = !n_err;
    fr_cache_hits = !n_hits;
    fr_shed = !n_shed;
    fr_violations = List.rev !violations;
  }

let pp ppf r =
  Format.fprintf ppf
    "fault injection: %d frames, %d ok (%d cached), %d errors (%d shed), %d \
     violations"
    r.fr_frames r.fr_ok r.fr_cache_hits r.fr_errors r.fr_shed
    (List.length r.fr_violations);
  List.iter (fun v -> Format.fprintf ppf "@.  violation: %s" v) r.fr_violations
