type config = {
  queue_capacity : int;
  max_frame : int;
  default_deadline_ms : float option;
  max_requests : int option;
}

let default_config =
  {
    queue_capacity = 64;
    max_frame = 1 lsl 20;
    default_deadline_ms = None;
    max_requests = None;
  }

(* Registered once at module init; recording is a no-op unless the
   process enabled metrics (FTSCHED_METRICS / --metrics).  The [stats]
   op reads the server's own always-on counters instead, so protocol
   introspection does not depend on the observability switch. *)
let m_requests = Obs.Metrics.counter ~help:"frames admitted" "serve.requests"
let m_ok = Obs.Metrics.counter ~help:"ok responses" "serve.ok"
let m_errors = Obs.Metrics.counter ~help:"error responses" "serve.errors"
let m_shed = Obs.Metrics.counter ~help:"requests shed (queue full)" "serve.shed"

let m_deadline =
  Obs.Metrics.counter ~help:"requests past their budget"
    "serve.deadline_expired"

let m_cache_hits =
  Obs.Metrics.counter ~help:"results served from cache" "serve.cache_hits"

let m_cache_misses =
  Obs.Metrics.counter ~help:"results computed fresh" "serve.cache_misses"

let m_latency =
  Obs.Metrics.histogram ~help:"request latency (ms), fresh evaluations"
    "serve.latency_ms"

let m_queue =
  Obs.Metrics.gauge ~help:"admission queue depth" "serve.queue_depth"

type 'a item = {
  it_client : 'a;
  it_id : Json.t;
  it_prepared : Serve_ops.prepared;
  it_deadline : float; (* absolute epoch seconds; [infinity] = none *)
  it_admitted : float;
}

type 'a t = {
  cfg : config;
  cache : Serve_cache.t;
  ops : Serve_ops.ctx;
  queue : 'a item Queue.t;
  started : float;
  mutable n_frames : int;
  mutable n_ok : int;
  mutable n_err : int;
  mutable n_shed : int;
  mutable n_deadline : int;
  mutable s_draining : bool;
}

let create ?ops_ctx cfg ~cache =
  {
    cfg;
    cache;
    ops =
      (match ops_ctx with Some c -> c | None -> Serve_ops.create ());
    queue = Queue.create ();
    started = Unix.gettimeofday ();
    n_frames = 0;
    n_ok = 0;
    n_err = 0;
    n_shed = 0;
    n_deadline = 0;
    s_draining = false;
  }

let queue_depth t = Queue.length t.queue
let begin_shutdown t = t.s_draining <- true
let draining t = t.s_draining
let finish t = Serve_cache.close t.cache

type 'a admitted =
  | Reply of string
  | Queued
  | Reply_shutdown of string

let error_reply t ~id cls msg =
  t.n_err <- t.n_err + 1;
  Obs.Metrics.incr m_errors;
  (match cls with
  | Serve_protocol.Overloaded ->
      t.n_shed <- t.n_shed + 1;
      Obs.Metrics.incr m_shed
  | Serve_protocol.Deadline_exceeded ->
      t.n_deadline <- t.n_deadline + 1;
      Obs.Metrics.incr m_deadline
  | _ -> ());
  Serve_protocol.error_response ~id cls msg

let ok_reply t ~id ~op ~cached ~elapsed_ms result =
  t.n_ok <- t.n_ok + 1;
  Obs.Metrics.incr m_ok;
  Serve_protocol.ok_response ~id ~op ~cached ~elapsed_ms result

let stats_response t =
  let hits = Serve_cache.hits t.cache and misses = Serve_cache.misses t.cache in
  let looked = hits + misses in
  Json.to_string
    (Json.Obj
       [
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
         ("queue_depth", Json.Int (Queue.length t.queue));
         ("queue_capacity", Json.Int t.cfg.queue_capacity);
         ("draining", Json.Bool t.s_draining);
         ("requests", Json.Int t.n_frames);
         ("ok", Json.Int t.n_ok);
         ("errors", Json.Int t.n_err);
         ("shed", Json.Int t.n_shed);
         ("deadline_expired", Json.Int t.n_deadline);
         ( "cache",
           Json.Obj
             [
               ("entries", Json.Int (Serve_cache.entries t.cache));
               ("hits", Json.Int hits);
               ("misses", Json.Int misses);
               ( "hit_rate",
                 if looked = 0 then Json.Null
                 else Json.Float (float_of_int hits /. float_of_int looked) );
             ] );
       ])

let ping_response () =
  Json.to_string
    (Json.Obj
       [
         ("pong", Json.Bool true);
         ("version", Json.Int Serve_protocol.version);
         ( "ops",
           Json.List
             (List.map
                (fun o -> Json.String o)
                (Serve_ops.ops @ [ "ping"; "stats"; "shutdown" ])) );
       ])

let admit t ~client line =
  t.n_frames <- t.n_frames + 1;
  Obs.Metrics.incr m_requests;
  let t0 = Unix.gettimeofday () in
  let result =
    match Serve_protocol.parse_request ~max_frame:t.cfg.max_frame line with
    | Error (cls, msg) -> Reply (error_reply t ~id:Json.Null cls msg)
    | Ok rq -> (
        let id = rq.Serve_protocol.rq_id in
        match rq.Serve_protocol.rq_op with
        (* introspection stays available while draining *)
        | "ping" ->
            Reply
              (ok_reply t ~id ~op:"ping" ~cached:false ~elapsed_ms:0.
                 (ping_response ()))
        | "stats" ->
            Reply
              (ok_reply t ~id ~op:"stats" ~cached:false ~elapsed_ms:0.
                 (stats_response t))
        | "shutdown" ->
            t.s_draining <- true;
            Reply_shutdown
              (ok_reply t ~id ~op:"shutdown" ~cached:false ~elapsed_ms:0.
                 "{\"draining\":true}")
        | op ->
            if t.s_draining then
              Reply
                (error_reply t ~id Serve_protocol.Shutting_down
                   "daemon is draining; no new work accepted")
            else (
              match
                Serve_ops.prepare t.ops ~op ~params:rq.Serve_protocol.rq_params
              with
              | Error (cls, msg) -> Reply (error_reply t ~id cls msg)
              | Ok p -> (
                  let deadline_ms =
                    match rq.Serve_protocol.rq_deadline_ms with
                    | Some _ as d -> d
                    | None -> t.cfg.default_deadline_ms
                  in
                  if deadline_ms = Some 0. then
                    (* a zero budget is already expired — deterministic,
                       checked before the cache so tests see the same
                       answer warm or cold *)
                    Reply
                      (error_reply t ~id Serve_protocol.Deadline_exceeded
                         "budget of 0 ms is already expired")
                  else
                    match Serve_cache.find t.cache ~key:p.Serve_ops.p_key with
                    | Some result ->
                        Obs.Metrics.incr m_cache_hits;
                        let elapsed =
                          (Unix.gettimeofday () -. t0) *. 1000.
                        in
                        Reply
                          (ok_reply t ~id ~op ~cached:true ~elapsed_ms:elapsed
                             result)
                    | None ->
                        Obs.Metrics.incr m_cache_misses;
                        if Queue.length t.queue >= t.cfg.queue_capacity then
                          Reply
                            (error_reply t ~id Serve_protocol.Overloaded
                               (Printf.sprintf
                                  "admission queue full (%d requests pending)"
                                  t.cfg.queue_capacity))
                        else begin
                          let it_deadline =
                            match deadline_ms with
                            | None -> infinity
                            | Some d -> t0 +. (d /. 1000.)
                          in
                          Queue.add
                            {
                              it_client = client;
                              it_id = id;
                              it_prepared = p;
                              it_deadline;
                              it_admitted = t0;
                            }
                            t.queue;
                          Obs.Metrics.set m_queue
                            (float_of_int (Queue.length t.queue));
                          Queued
                        end)))
  in
  (match t.cfg.max_requests with
  | Some n when t.n_frames >= n -> t.s_draining <- true
  | _ -> ());
  result

let step t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some it ->
      Obs.Metrics.set m_queue (float_of_int (Queue.length t.queue));
      let id = it.it_id in
      let resp =
        let token =
          if it.it_deadline < infinity then Cancel.with_deadline it.it_deadline
          else Cancel.never
        in
        if Cancel.cancelled token then
          error_reply t ~id Serve_protocol.Deadline_exceeded
            "deadline expired while queued"
        else
          match it.it_prepared.Serve_ops.p_run ~cancel:token with
          | Ok result ->
              (* journal before replying: a crash after the reply must
                 not lose an entry the client believes exists *)
              Serve_cache.add t.cache ~key:it.it_prepared.Serve_ops.p_key
                ~op:it.it_prepared.Serve_ops.p_op result;
              let elapsed = (Unix.gettimeofday () -. it.it_admitted) *. 1000. in
              Obs.Metrics.observe m_latency elapsed;
              ok_reply t ~id ~op:it.it_prepared.Serve_ops.p_op ~cached:false
                ~elapsed_ms:elapsed result
          | Error (cls, msg) -> error_reply t ~id cls msg
      in
      Some (it.it_client, resp)

(* -- line framing --------------------------------------------------------
   Incremental newline framing over raw reads, with flood recovery: once
   the unterminated prefix exceeds the frame limit (plus slack) the
   framer reports it oversized and discards bytes up to the next
   newline, so a hostile client cannot grow the buffer without bound or
   wedge the daemon. *)

type framer = {
  f_buf : Buffer.t;
  f_limit : int;
  mutable f_skipping : bool;
}

let framer limit = { f_buf = Buffer.create 4096; f_limit = limit; f_skipping = false }

(* [feed fr chunk] returns the complete frames plus the number of
   unterminated floods detected (each deserves one [oversized] reply). *)
let feed fr chunk =
  Buffer.add_string fr.f_buf chunk;
  let s = Buffer.contents fr.f_buf in
  Buffer.clear fr.f_buf;
  let n = String.length s in
  let lines = ref [] and floods = ref 0 in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from s !start '\n' in
       let line = String.sub s !start (nl - !start) in
       if fr.f_skipping then fr.f_skipping <- false
         (* tail of a flooded frame already answered: discard *)
       else lines := line :: !lines;
       start := nl + 1
     done
   with Not_found -> ());
  let rest = n - !start in
  if fr.f_skipping then () (* still inside the flood: keep discarding *)
  else if rest > fr.f_limit + 4096 then begin
    incr floods;
    fr.f_skipping <- true
  end
  else Buffer.add_substring fr.f_buf s !start rest;
  (List.rev !lines, !floods)

(* -- signals -------------------------------------------------------------- *)

let stop_requested = Atomic.make false

let install_signals () =
  Atomic.set stop_requested false;
  let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  (try Sys.set_signal Sys.sigterm request_stop with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint request_stop with Invalid_argument _ -> ());
  (* a client vanishing mid-reply surfaces as EPIPE on the write, which
     the loops handle; the default fatal signal must not *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let flood_reply t =
  error_reply t ~id:Json.Null Serve_protocol.Oversized
    (Printf.sprintf "unterminated frame exceeded %d bytes; discarded up to \
                     the next newline"
       t.cfg.max_frame)

(* -- stdio loop ----------------------------------------------------------- *)

let run_stdio t =
  install_signals ();
  let fr = framer t.cfg.max_frame in
  let buf = Bytes.create 65536 in
  let out resp =
    output_string stdout resp;
    output_char stdout '\n';
    flush stdout
  in
  let drain () =
    let rec go () =
      match step t with
      | Some ((), resp) ->
          out resp;
          go ()
      | None -> ()
    in
    go ()
  in
  let quit = ref false in
  while not !quit do
    if Atomic.get stop_requested || (draining t && queue_depth t = 0) then
      quit := true
    else
      match Unix.select [ Unix.stdin ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.read Unix.stdin buf 0 (Bytes.length buf) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | 0 -> quit := true (* EOF: drain and leave *)
          | n ->
              let lines, floods = feed fr (Bytes.sub_string buf 0 n) in
              for _ = 1 to floods do
                out (flood_reply t)
              done;
              List.iter
                (fun line ->
                  if line <> "" then (
                    (match admit t ~client:() line with
                    | Reply resp -> out resp
                    | Reply_shutdown resp -> out resp
                    | Queued -> ());
                    (* stdio is strictly in order: evaluate immediately
                       so responses pair with requests positionally as
                       well as by id *)
                    drain ()))
                lines)
  done;
  begin_shutdown t;
  drain ();
  finish t

(* -- unix socket loop ------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_fr : framer;
  mutable c_alive : bool;
}

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let w = Unix.write_substring fd s !pos (n - !pos) in
    pos := !pos + w
  done

let run_socket t ~path =
  install_signals ();
  if Sys.file_exists path then Sys.remove path (* stale socket: a kill -9 *);
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  Obs.Log.info "serve: listening on %s" path;
  let conns = ref [] in
  let close_conn c =
    if c.c_alive then begin
      c.c_alive <- false;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ()
    end
  in
  let send c resp =
    if c.c_alive then
      try write_all c.c_fd (resp ^ "\n")
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* the client went away mid-request: its replies are discarded,
           everyone else is unaffected *)
        close_conn c
  in
  let buf = Bytes.create 65536 in
  let handle_read c =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn c
    | 0 -> close_conn c
    | n ->
        let lines, floods = feed c.c_fr (Bytes.sub_string buf 0 n) in
        for _ = 1 to floods do
          send c (flood_reply t)
        done;
        List.iter
          (fun line ->
            if line <> "" then
              match admit t ~client:c line with
              | Reply resp -> send c resp
              | Reply_shutdown resp -> send c resp
              | Queued -> ())
          lines
  in
  let quit = ref false in
  while not !quit do
    if Atomic.get stop_requested then begin_shutdown t;
    if draining t && queue_depth t = 0 then quit := true
    else begin
      conns := List.filter (fun c -> c.c_alive) !conns;
      let fds = List.map (fun c -> c.c_fd) !conns in
      let watch = if draining t then fds else srv :: fds in
      let timeout = if queue_depth t > 0 then 0. else 0.2 in
      match Unix.select watch [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          if List.mem srv readable then begin
            match Unix.accept srv with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | fd, _ ->
                conns :=
                  { c_fd = fd; c_fr = framer t.cfg.max_frame; c_alive = true }
                  :: !conns
          end;
          List.iter
            (fun c -> if c.c_alive && List.mem c.c_fd readable then handle_read c)
            !conns;
          (* one evaluation per round keeps accepts and reads flowing
             between long requests *)
          (match step t with
          | Some (c, resp) -> send c resp
          | None -> ())
    end
  done;
  (* drain whatever is still queued, then leave *)
  let rec drain () =
    match step t with
    | Some (c, resp) ->
        send c resp;
        drain ()
    | None -> ()
  in
  drain ();
  finish t;
  List.iter close_conn !conns;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  Obs.Log.info "serve: shut down cleanly"
