let version = 1

type error_class =
  | Bad_request
  | Oversized
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

let class_name = function
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let class_of_name = function
  | "bad_request" -> Some Bad_request
  | "oversized" -> Some Oversized
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

let retryable = function
  | Overloaded | Shutting_down -> true
  | Bad_request | Oversized | Deadline_exceeded | Internal -> false

type request = {
  rq_id : Json.t;
  rq_op : string;
  rq_params : Json.t;
  rq_deadline_ms : float option;
}

let scalar = function
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _ ->
      true
  | Json.List _ | Json.Obj _ -> false

let parse_request ~max_frame line =
  if String.length line > max_frame then
    Error
      ( Oversized,
        Printf.sprintf "frame is %d bytes, limit %d" (String.length line)
          max_frame )
  else
    match Json.parse line with
    | Error e -> Error (Bad_request, "malformed JSON: " ^ e)
    | Ok (Json.Obj _ as doc) -> (
        (match Json.member "v" doc with
        | None -> Ok ()
        | Some (Json.Int v) when v = version -> Ok ()
        | Some (Json.Int v) ->
            Error
              ( Bad_request,
                Printf.sprintf "unsupported protocol version %d (this daemon speaks %d)"
                  v version )
        | Some _ -> Error (Bad_request, "field 'v' must be an integer"))
        |> function
        | Error _ as e -> e
        | Ok () -> (
            let rq_id = Option.value (Json.member "id" doc) ~default:Json.Null in
            if not (scalar rq_id) then
              Error (Bad_request, "field 'id' must be a JSON scalar")
            else
              match Json.member "op" doc with
              | None -> Error (Bad_request, "missing field 'op'")
              | Some (Json.String rq_op) -> (
                  let rq_params =
                    Option.value (Json.member "params" doc)
                      ~default:(Json.Obj [])
                  in
                  match rq_params with
                  | Json.Obj _ -> (
                      match Json.member "deadline_ms" doc with
                      | None ->
                          Ok { rq_id; rq_op; rq_params; rq_deadline_ms = None }
                      | Some j -> (
                          match Json.to_float j with
                          | Some d when Float.is_finite d && d >= 0. ->
                              Ok
                                {
                                  rq_id;
                                  rq_op;
                                  rq_params;
                                  rq_deadline_ms = Some d;
                                }
                          | _ ->
                              Error
                                ( Bad_request,
                                  "field 'deadline_ms' must be a non-negative \
                                   number" )))
                  | _ -> Error (Bad_request, "field 'params' must be an object"))
              | Some _ -> Error (Bad_request, "field 'op' must be a string")))
    | Ok _ -> Error (Bad_request, "request must be a JSON object")

let request_to_string rq =
  Json.to_string
    (Json.Obj
       (("v", Json.Int version)
       :: ("id", rq.rq_id)
       :: ("op", Json.String rq.rq_op)
       :: ("params", rq.rq_params)
       ::
       (match rq.rq_deadline_ms with
       | None -> []
       | Some d -> [ ("deadline_ms", Json.Float d) ])))

(* [result] is spliced in pre-rendered: a cache hit must re-serve the
   exact bytes of the original computation, and re-parsing would only
   risk perturbing them. *)
let ok_response ~id ~op ~cached ~elapsed_ms result =
  let prefix =
    Json.to_string
      (Json.Obj
         [
           ("v", Json.Int version);
           ("id", id);
           ("ok", Json.Bool true);
           ("op", Json.String op);
           ("cached", Json.Bool cached);
           ("elapsed_ms", Json.Float elapsed_ms);
         ])
  in
  (* drop the closing brace, splice the result member *)
  String.sub prefix 0 (String.length prefix - 1)
  ^ ",\"result\":" ^ result ^ "}"

let error_response ~id cls message =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int version);
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("class", Json.String (class_name cls));
               ("message", Json.String message);
             ] );
       ])

type response = {
  rs_id : Json.t;
  rs_ok : bool;
  rs_op : string option;
  rs_cached : bool;
  rs_elapsed_ms : float option;
  rs_result : Json.t option;
  rs_error : (error_class * string) option;
}

let parse_response line =
  match Json.parse line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok doc -> (
      match (Json.member "v" doc, Json.member "ok" doc) with
      | Some (Json.Int v), Some (Json.Bool ok) when v = version ->
          let rs_id = Option.value (Json.member "id" doc) ~default:Json.Null in
          let rs_op = Option.bind (Json.member "op" doc) Json.to_str in
          let rs_cached =
            Option.bind (Json.member "cached" doc) Json.to_bool
            |> Option.value ~default:false
          in
          let rs_elapsed_ms =
            Option.bind (Json.member "elapsed_ms" doc) Json.to_float
          in
          if ok then
            match Json.member "result" doc with
            | Some r ->
                Ok
                  {
                    rs_id;
                    rs_ok = true;
                    rs_op;
                    rs_cached;
                    rs_elapsed_ms;
                    rs_result = Some r;
                    rs_error = None;
                  }
            | None -> Error "ok response without 'result'"
          else
            let err = Json.member "error" doc in
            let cls =
              Option.bind err (Json.member "class")
              |> Fun.flip Option.bind Json.to_str
              |> Fun.flip Option.bind class_of_name
            in
            let msg =
              Option.bind err (Json.member "message")
              |> Fun.flip Option.bind Json.to_str
            in
            (match (cls, msg) with
            | Some c, Some m ->
                Ok
                  {
                    rs_id;
                    rs_ok = false;
                    rs_op;
                    rs_cached;
                    rs_elapsed_ms;
                    rs_result = None;
                    rs_error = Some (c, m);
                  }
            | _ -> Error "error response without a recognized 'error' member")
      | _ -> Error "not a protocol response (missing 'v'/'ok')")
