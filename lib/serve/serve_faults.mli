(** Self-fault-injection harness for the serve daemon.

    Drives the {!Serve_server} admit/step state machine {e in process}
    with a seeded stream of hostile and well-formed frames — malformed
    JSON, wrong field types, unknown ops and parameters, oversized
    payloads, zero deadlines, shedding bursts, duplicate requests — and
    checks the daemon's contract after every one:

    - [admit] and [step] never raise;
    - every frame yields exactly one response, and that response parses
      as a protocol frame (never raw text, never silence);
    - error responses carry a recognized error class;
    - a repeated request is served from cache ([cached = true]) with a
      [result] member byte-identical to the first answer;
    - a queue burst past capacity sheds with [overloaded], and the
      daemon keeps answering afterwards.

    Deterministic in [seed]: the same seed replays the same attack.
    Used by the test suite (several seeds) and by
    [ftsched serve --self-test]. *)

type report = {
  fr_frames : int;  (** frames injected *)
  fr_ok : int;  (** ok responses *)
  fr_errors : int;  (** structured error responses *)
  fr_cache_hits : int;  (** responses served with [cached = true] *)
  fr_shed : int;  (** [overloaded] responses from the burst phase *)
  fr_violations : string list;  (** contract breaches; empty = pass *)
}

val run : ?frames:int -> seed:int -> unit -> report
(** Inject [frames] (default 200) adversarial frames against a fresh
    in-memory daemon. *)

val pp : Format.formatter -> report -> unit
