(** Request evaluation: the daemon's op table.

    Four deterministic operations — [schedule], [replay], [montecarlo],
    [analyze] — share one parameter vocabulary (seed, family, tasks, m,
    epsilon, granularity, algo, model: exactly the CLI flags) and are
    evaluated through the same library entry points as the CLI, so a
    serve response agrees byte-for-byte with a direct library call (the
    differential test pins this).

    {!prepare} validates the parameters {e up front} (strictly: unknown
    fields are rejected, catching typos before they silently select a
    default) and returns the request's canonical cache key plus a
    closure that performs the work later, under the admission queue's
    cancellation token.  The key fingerprints everything that determines
    the result — op and all effective parameters, which pin the DAG,
    platform, ε and fabric through the deterministic generators.

    A [ctx] memoizes built schedules and compiled replay engines across
    requests (bounded, FIFO eviction): a [replay] after a [montecarlo]
    on the same instance pays neither scheduling nor {!Replay.compile}
    again even when the result itself is not cached. *)

type ctx

val create : ?memo_capacity:int -> unit -> ctx
(** [memo_capacity] (default 32) bounds the schedule/engine memo. *)

val ops : string list
(** The evaluable op names (excludes the server-level [ping], [stats]
    and [shutdown]). *)

type prepared = {
  p_key : string;  (** canonical fingerprint — the cache key *)
  p_op : string;
  p_run :
    cancel:Cancel.token ->
    (string, Serve_protocol.error_class * string) result;
      (** compute the rendered result bytes; [Cancel.Cancelled] from the
          evaluation loops is mapped to [Deadline_exceeded], any other
          exception to [Internal] — nothing escapes *)
}

val prepare :
  ctx ->
  op:string ->
  params:Json.t ->
  (prepared, Serve_protocol.error_class * string) result
(** Validate and canonicalize one request.  [Error (Bad_request, _)] on
    unknown op, unknown or ill-typed fields, or out-of-range sizes (the
    daemon enforces resource ceilings a CLI run does not need). *)
