(** The serve daemon's wire protocol: versioned JSON-lines.

    One request per line, one response per line, both complete JSON
    objects.  Requests:

    {v
    {"v":1, "id":42, "op":"schedule",
     "params":{"seed":7,"tasks":40,"m":10,"epsilon":1},
     "deadline_ms":5000}
    v}

    [v] defaults to 1 when absent and must equal {!version} when
    present.  [id] is any JSON scalar, echoed verbatim in the response
    so clients can multiplex ([null] when absent).  [op] is required.
    [params] defaults to the empty object.  [deadline_ms] is the
    request's total latency budget, queueing included.

    Responses:

    {v
    {"v":1,"id":42,"ok":true,"op":"schedule","cached":false,
     "elapsed_ms":12.5,"result":{...}}
    {"v":1,"id":42,"ok":false,
     "error":{"class":"deadline_exceeded","message":"..."}}
    v}

    Every frame the daemon reads yields {e exactly one} response frame —
    malformed JSON, wrong types, unknown ops, oversized frames and
    expired deadlines are all answered with structured errors, never
    with a crash or silence (the fault-injection harness pins this).
    The [result] member of an [ok] response is rendered once and cached
    byte-for-byte: a cache hit re-serves the identical bytes. *)

val version : int
(** Current protocol version: 1. *)

(** Every way a request can fail, as a closed enum — clients switch on
    the class, not the message.  [Overloaded] and [Shutting_down] are
    the retryable classes ({!Serve_client} backs off on them). *)
type error_class =
  | Bad_request  (** malformed JSON, wrong field types, unknown op,
                     invalid or out-of-range parameters *)
  | Oversized  (** frame longer than the daemon's [max_frame] *)
  | Overloaded  (** admission queue full — shed, retry with backoff *)
  | Deadline_exceeded
      (** budget expired while queued or mid-evaluation (the evaluation
          was cooperatively cancelled) *)
  | Shutting_down  (** daemon is draining; no new work accepted *)
  | Internal  (** evaluation raised — the daemon survives and reports *)

val class_name : error_class -> string
(** Wire name: [bad_request], [oversized], [overloaded],
    [deadline_exceeded], [shutting_down], [internal]. *)

val class_of_name : string -> error_class option

val retryable : error_class -> bool
(** [true] for [Overloaded] and [Shutting_down]. *)

type request = {
  rq_id : Json.t;  (** echoed; [Null] when the client sent none *)
  rq_op : string;
  rq_params : Json.t;  (** always an [Obj] *)
  rq_deadline_ms : float option;  (** total budget, queueing included *)
}

val parse_request :
  max_frame:int -> string -> (request, error_class * string) result
(** Parse one frame.  Checks, in order: size against [max_frame], JSON
    well-formedness, object shape, version, [op] presence and types.
    Never raises. *)

val request_to_string : request -> string
(** Render a request frame (no trailing newline) — the client side. *)

val ok_response :
  id:Json.t -> op:string -> cached:bool -> elapsed_ms:float -> string -> string
(** [ok_response ~id ~op ~cached ~elapsed_ms result] where [result] is
    the already-rendered result object — spliced in verbatim so cached
    results stay byte-identical. *)

val error_response : id:Json.t -> error_class -> string -> string

(** Parsed view of a response frame — the client side. *)
type response = {
  rs_id : Json.t;
  rs_ok : bool;
  rs_op : string option;
  rs_cached : bool;
  rs_elapsed_ms : float option;
  rs_result : Json.t option;  (** [Some] iff [rs_ok] *)
  rs_error : (error_class * string) option;  (** [Some] iff [not rs_ok] *)
}

val parse_response : string -> (response, string) result
(** Parse a response frame; [Error] describes the malformation (a
    non-protocol frame — the fault harness treats any occurrence as a
    daemon bug). *)
