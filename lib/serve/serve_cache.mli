(** Content-addressed result cache with a crash-safe journal.

    The daemon's redundancy story mirrors the schedules it serves:
    results live in memory (fast path) {e and} in an append-only journal
    on disk (durable path), so a [kill -9] costs re-execution time for
    at most the entry being written — never correctness.

    Keys are {!Fingerprint} hex digests of the canonical request
    parameters (which pin the DAG, platform, ε and fabric — the
    generators are deterministic in the seed).  Values are the
    {e rendered} result-JSON bytes: a hit re-serves the exact bytes the
    original computation produced, which is what makes the
    cached-vs-fresh differential test byte-exact.

    Durability protocol:
    - {!add} appends one complete JSON line to the journal and flushes
      it.  A crash mid-append leaves a torn final line;
    - loading ({!journaled} with [~resume:true]) replays the journal and
      {e stops} at the first undecodable line, counting the remainder as
      skipped — a torn tail is expected damage, not corruption worth
      dying over;
    - {!compact} rewrites the journal as a deduplicated snapshot via the
      atomic temp-file + rename dance (the campaign-checkpoint idiom),
      run at graceful shutdown. *)

type t

type recovery = {
  rc_entries : int;  (** entries replayed into memory *)
  rc_skipped : int;  (** journal lines dropped (torn tail) *)
}

val in_memory : ?max_entries:int -> unit -> t
(** Cache without a journal (no [--cache] directory given).  Warm
    restart is then impossible, everything else works. *)

val journaled :
  ?max_entries:int -> resume:bool -> string -> (t * recovery, string) result
(** [journaled ~resume path] opens the journal at [path].  With
    [resume = true] an existing journal is replayed first; with
    [resume = false] the file must not exist ([Error] tells the caller
    to pass [--resume] or remove it — silently clobbering a previous
    daemon's state would be a data-loss footgun).  [max_entries]
    (default 4096) bounds memory: once full, new results are served but
    no longer cached. *)

val find : t -> key:string -> string option
(** The rendered result bytes for [key]; counts a hit or a miss. *)

val add : t -> key:string -> op:string -> string -> unit
(** Record a freshly computed result: in memory, then one flushed
    journal line.  Re-adding an existing key is a no-op (first write
    wins — results are deterministic, so the bytes are equal anyway). *)

val entries : t -> int
val hits : t -> int
val misses : t -> int

val compact : t -> unit
(** Snapshot the in-memory table over the journal atomically
    (temp + rename) and reopen it for appending.  No-op in memory-only
    mode. *)

val close : t -> unit
(** Compact and close the journal.  The cache must not be used after. *)
