type prepared = {
  p_key : string;
  p_op : string;
  p_run :
    cancel:Cancel.token ->
    (string, Serve_protocol.error_class * string) result;
}

let ops = [ "schedule"; "replay"; "montecarlo"; "analyze" ]

(* -- memo of built schedules + compiled replay engines ----------------- *)

type memo_entry = { me_sched : Schedule.t; me_compiled : Replay.compiled Lazy.t }

type ctx = {
  memo : (string, memo_entry) Hashtbl.t;
  memo_order : string Queue.t;
  memo_capacity : int;
}

let create ?(memo_capacity = 32) () =
  {
    memo = Hashtbl.create 16;
    memo_order = Queue.create ();
    memo_capacity = max 1 memo_capacity;
  }

(* -- strict parameter extraction ---------------------------------------
   Daemon requests come from the wire, so unlike the CLI there is no
   option parser rejecting typos first: an unknown field is answered
   with [bad_request] naming it, instead of silently evaluating with a
   default the client did not ask for. *)

type 'a parse = ('a, string) result

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let fields_of params =
  match params with Json.Obj kvs -> kvs | _ -> []

let check_known ~allowed fields : unit parse =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
  | Some (k, _) ->
      Error
        (Printf.sprintf "unknown parameter %S (accepted: %s)" k
           (String.concat ", " allowed))
  | None -> Ok ()

let get_int fields name ~default ~min:lo ~max:hi : int parse =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some j -> (
      match j with
      | Json.Int v when v >= lo && v <= hi -> Ok v
      | Json.Int v ->
          Error
            (Printf.sprintf "parameter %S = %d out of range [%d, %d]" name v
               lo hi)
      | _ -> Error (Printf.sprintf "parameter %S must be an integer" name))

let get_float fields name ~default ~min:lo ~max:hi : float parse =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some j -> (
      match Json.to_float j with
      | Some v when Float.is_finite v && v >= lo && v <= hi -> Ok v
      | Some v ->
          Error
            (Printf.sprintf "parameter %S = %g out of range [%g, %g]" name v
               lo hi)
      | None -> Error (Printf.sprintf "parameter %S must be a number" name))

let get_bool fields name ~default : bool parse =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "parameter %S must be a boolean" name)

let get_enum fields name ~default ~values : string parse =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.String s) when List.mem s values -> Ok s
  | Some (Json.String s) ->
      Error
        (Printf.sprintf "parameter %S: unknown value %S (accepted: %s)" name s
           (String.concat ", " values))
  | Some _ -> Error (Printf.sprintf "parameter %S must be a string" name)

let get_int_list fields name ~min:lo ~max:hi : int list parse =
  match List.assoc_opt name fields with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int v :: rest when v >= lo && v <= hi -> go (v :: acc) rest
        | Json.Int v :: _ ->
            Error
              (Printf.sprintf "parameter %S: %d out of range [%d, %d]" name v
                 lo hi)
        | _ ->
            Error (Printf.sprintf "parameter %S must be a list of integers" name)
      in
      go [] items
  | Some _ ->
      Error (Printf.sprintf "parameter %S must be a list of integers" name)

(* -- shared instance parameters ----------------------------------------
   Identical vocabulary and defaults to the CLI flags, so a request
   without parameters evaluates the CLI's default instance. *)

type base = {
  b_seed : int;
  b_family : string;
  b_tasks : int;
  b_m : int;
  b_epsilon : int;
  b_granularity : float;
  b_algo : string;
  b_model : string;
}

(* Ceilings a shared daemon enforces that a local CLI run does not: the
   evaluation loops are cancellable, but building a 10^6-task schedule
   is not, so admission is where size is bounded. *)
let max_tasks = 20_000
let max_m = 256
let max_epsilon = 8
let max_runs = 1_000_000

let algo_names = [ "caft"; "ftsa"; "ftbar"; "heft" ]
let model_names = [ "one-port"; "macro"; "multiport-2"; "multiport-4" ]

let base_params =
  [ "seed"; "family"; "tasks"; "m"; "epsilon"; "granularity"; "algo"; "model" ]

let parse_base fields : base parse =
  let* b_seed = get_int fields "seed" ~default:1 ~min:min_int ~max:max_int in
  let* b_family =
    get_enum fields "family" ~default:"random" ~values:Instance.families
  in
  let* b_tasks = get_int fields "tasks" ~default:40 ~min:1 ~max:max_tasks in
  let* b_m = get_int fields "m" ~default:10 ~min:1 ~max:max_m in
  let* b_epsilon =
    get_int fields "epsilon" ~default:1 ~min:0 ~max:(min max_epsilon (b_m - 1))
  in
  let* b_granularity =
    get_float fields "granularity" ~default:1.0 ~min:1e-6 ~max:1e6
  in
  let* b_algo = get_enum fields "algo" ~default:"caft" ~values:algo_names in
  let* b_model =
    get_enum fields "model" ~default:"one-port" ~values:model_names
  in
  Ok { b_seed; b_family; b_tasks; b_m; b_epsilon; b_granularity; b_algo; b_model }

let model_of_name = function
  | "macro" -> Netstate.Macro_dataflow
  | "multiport-2" -> Netstate.Multiport 2
  | "multiport-4" -> Netstate.Multiport 4
  | _ -> Netstate.One_port

(* The canonical field sequence behind every cache key: op, then the
   effective (post-default) instance parameters in a fixed order. *)
let base_fp ~op b =
  Fingerprint.(
    empty |> Fun.flip add_string op
    |> Fun.flip add_int b.b_seed
    |> Fun.flip add_string b.b_family
    |> Fun.flip add_int b.b_tasks
    |> Fun.flip add_int b.b_m
    |> Fun.flip add_int b.b_epsilon
    |> Fun.flip add_float b.b_granularity
    |> Fun.flip add_string b.b_algo
    |> Fun.flip add_string b.b_model)

(* -- schedule construction, memoized ----------------------------------- *)

let build_schedule b =
  match
    Instance.make ~seed:b.b_seed ~family:b.b_family ~tasks:b.b_tasks ~m:b.b_m
      ~granularity:b.b_granularity ()
  with
  | Error e -> failwith e (* unreachable: parse_base validated the family *)
  | Ok (_dag, costs) -> (
      let model = model_of_name b.b_model in
      match b.b_algo with
      | "ftsa" -> Ftsa.run ~model ~seed:b.b_seed ~epsilon:b.b_epsilon costs
      | "ftbar" -> Ftbar.run ~model ~seed:b.b_seed ~epsilon:b.b_epsilon costs
      | "heft" -> Heft.run ~model ~seed:b.b_seed costs
      | _ -> Caft.run ~model ~seed:b.b_seed ~epsilon:b.b_epsilon costs)

(* The memo key deliberately excludes the op: a [montecarlo] and a
   [replay] on the same instance share one schedule and one compiled
   engine. *)
let memo_key b = Fingerprint.to_hex (base_fp ~op:"instance" b)

let schedule_of ctx b =
  let key = memo_key b in
  match Hashtbl.find_opt ctx.memo key with
  | Some e -> e
  | None ->
      let me_sched = build_schedule b in
      let e = { me_sched; me_compiled = lazy (Replay.compile me_sched) } in
      if Hashtbl.length ctx.memo >= ctx.memo_capacity then begin
        match Queue.take_opt ctx.memo_order with
        | Some oldest -> Hashtbl.remove ctx.memo oldest
        | None -> ()
      end;
      Hashtbl.replace ctx.memo key e;
      Queue.add key ctx.memo_order;
      e

(* -- result renderers --------------------------------------------------- *)

let float_or_null f = if Float.is_finite f then Json.Float f else Json.Null

let summary_json (s : Stats.summary) =
  Json.Obj
    [
      ("n", Json.Int s.Stats.n);
      ("mean", float_or_null s.Stats.mean);
      ("stddev", float_or_null s.Stats.stddev);
      ("min", float_or_null s.Stats.min);
      ("max", float_or_null s.Stats.max);
      ("median", float_or_null s.Stats.median);
    ]

let schedule_result ~include_text b sched =
  let violations = Validate.run sched in
  Json.Obj
    (("algorithm", Json.String (Schedule.algorithm sched))
    :: ("tasks", Json.Int (Dag.task_count (Schedule.dag sched)))
    :: ("procs", Json.Int b.b_m)
    :: ("epsilon", Json.Int (Schedule.epsilon sched))
    :: ("latency_zero_crash", float_or_null (Schedule.latency_zero_crash sched))
    :: ("latency_upper_bound", float_or_null (Schedule.latency_upper_bound sched))
    :: ("messages", Json.Int (Schedule.message_count sched))
    :: ("replicas", Json.Int (List.length (Schedule.all_replicas sched)))
    :: ("valid", Json.Bool (violations = []))
    ::
    (if include_text then
       [ ("schedule", Json.String (Schedule_io.to_string sched)) ]
     else []))

let replay_result ~crashed (o : Replay.outcome) =
  Json.Obj
    [
      ("crashed", Json.List (List.map (fun p -> Json.Int p) crashed));
      ("completed", Json.Bool o.Replay.completed);
      ("latency", float_or_null o.Replay.latency);
      ( "failed_tasks",
        Json.List (List.map (fun t -> Json.Int t) o.Replay.failed_tasks) );
    ]

let montecarlo_result (r : Monte_carlo.report) =
  Json.Obj
    [
      ("runs", Json.Int r.Monte_carlo.runs);
      ("completed", Json.Int r.Monte_carlo.completed);
      ("failure_rate", float_or_null r.Monte_carlo.failure_rate);
      ("worst_slowdown", float_or_null r.Monte_carlo.worst_slowdown);
      ( "latency",
        match r.Monte_carlo.latency with
        | None -> Json.Null
        | Some s -> summary_json s );
    ]

(* -- op table ----------------------------------------------------------- *)

let bad msg = Error (Serve_protocol.Bad_request, msg)

let guard f =
  try f () with
  | Cancel.Cancelled ->
      Error
        ( Serve_protocol.Deadline_exceeded,
          "deadline expired during evaluation" )
  | e -> Error (Serve_protocol.Internal, Printexc.to_string e)

let render j = Json.to_string j

let prepare_schedule ctx fields =
  let* () = check_known ~allowed:(base_params @ [ "include_text" ]) fields in
  let* b = parse_base fields in
  let* include_text = get_bool fields "include_text" ~default:false in
  let key =
    Fingerprint.(to_hex (add_bool (base_fp ~op:"schedule" b) include_text))
  in
  Ok
    {
      p_key = key;
      p_op = "schedule";
      p_run =
        (fun ~cancel ->
          guard (fun () ->
              Cancel.check cancel;
              let e = schedule_of ctx b in
              Ok (render (schedule_result ~include_text b e.me_sched))));
    }

let prepare_replay ctx fields =
  let* () = check_known ~allowed:(base_params @ [ "crashed" ]) fields in
  let* b = parse_base fields in
  let* crashed = get_int_list fields "crashed" ~min:0 ~max:(b.b_m - 1) in
  let crashed = List.sort_uniq compare crashed in
  let key =
    Fingerprint.(
      to_hex
        (List.fold_left add_int (base_fp ~op:"replay" b) crashed))
  in
  Ok
    {
      p_key = key;
      p_op = "replay";
      p_run =
        (fun ~cancel ->
          guard (fun () ->
              Cancel.check cancel;
              let e = schedule_of ctx b in
              let o = Replay.eval_crashed (Lazy.force e.me_compiled) ~crashed in
              Ok (render (replay_result ~crashed o))));
    }

let prepare_montecarlo ctx fields =
  let* () =
    check_known ~allowed:(base_params @ [ "runs"; "crashes"; "timed" ]) fields
  in
  let* b = parse_base fields in
  let* runs = get_int fields "runs" ~default:1000 ~min:1 ~max:max_runs in
  let* crashes = get_int fields "crashes" ~default:1 ~min:0 ~max:b.b_m in
  let* timed = get_bool fields "timed" ~default:false in
  let key =
    Fingerprint.(
      to_hex
        (add_bool
           (add_int (add_int (base_fp ~op:"montecarlo" b) runs) crashes)
           timed))
  in
  Ok
    {
      p_key = key;
      p_op = "montecarlo";
      p_run =
        (fun ~cancel ->
          guard (fun () ->
              Cancel.check cancel;
              let e = schedule_of ctx b in
              let mode =
                if timed then Monte_carlo.Timed (Schedule.makespan e.me_sched)
                else Monte_carlo.From_start
              in
              (* seed + 1, exactly as the CLI's montecarlo subcommand *)
              let r =
                Monte_carlo.run ~seed:(b.b_seed + 1) ~runs ~cancel ~crashes
                  ~mode e.me_sched
              in
              Ok (render (montecarlo_result r))));
    }

(* analyze has no cancellation hook inside [Resilience.certify], so the
   daemon caps its instance size harder: the deadline can only fire
   before evaluation starts. *)
let analyze_max_tasks = 2_000
let analyze_max_m = 64

let prepare_analyze ctx fields =
  let* () = check_known ~allowed:base_params fields in
  let* b = parse_base fields in
  let* () =
    if b.b_tasks > analyze_max_tasks then
      Error
        (Printf.sprintf "analyze caps 'tasks' at %d (got %d)"
           analyze_max_tasks b.b_tasks)
    else if b.b_m > analyze_max_m then
      Error
        (Printf.sprintf "analyze caps 'm' at %d (got %d)" analyze_max_m b.b_m)
    else Ok ()
  in
  let key = Fingerprint.to_hex (base_fp ~op:"analyze" b) in
  Ok
    {
      p_key = key;
      p_op = "analyze";
      p_run =
        (fun ~cancel ->
          guard (fun () ->
              Cancel.check cancel;
              let e = schedule_of ctx b in
              let report =
                Analysis_report.analyze ~epsilon:b.b_epsilon e.me_sched
              in
              Ok (render (Analysis_report.to_json report))));
    }

let prepare ctx ~op ~params =
  let fields = fields_of params in
  let lift = function
    | Ok p -> Ok p
    | Error msg -> bad msg
  in
  match op with
  | "schedule" -> lift (prepare_schedule ctx fields)
  | "replay" -> lift (prepare_replay ctx fields)
  | "montecarlo" -> lift (prepare_montecarlo ctx fields)
  | "analyze" -> lift (prepare_analyze ctx fields)
  | other ->
      bad
        (Printf.sprintf "unknown op %S (accepted: %s)" other
           (String.concat ", " (ops @ [ "ping"; "stats"; "shutdown" ])))
