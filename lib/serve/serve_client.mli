(** Test-driver client for the serve daemon.

    Speaks the JSON-lines protocol over a Unix domain socket with the
    retry discipline the protocol's error classes call for: [overloaded]
    and [shutting_down] replies — and connection-level failures (refused,
    reset, daemon restarting) — are retried under capped exponential
    backoff with seeded jitter; every other error class is final and
    returned to the caller.  The jitter draws from an {!Rng} the caller
    seeds, so a client run is reproducible delay-for-delay. *)

type t
(** One connected session. *)

val connect : path:string -> (t, string) result
val close : t -> unit

val request : t -> Serve_protocol.request -> (Serve_protocol.response, string) result
(** Send one frame, read one response line.  [Error] is a transport or
    framing failure (daemon gone, non-protocol bytes) — protocol-level
    errors arrive as [Ok] responses with [rs_ok = false]. *)

type policy = {
  max_attempts : int;  (** total tries, first included (default 5) *)
  base_delay_s : float;  (** first backoff step (default 0.05) *)
  max_delay_s : float;  (** backoff cap (default 1.0) *)
}

val default_policy : policy

val request_with_retry :
  ?policy:policy ->
  rng:Rng.t ->
  path:string ->
  Serve_protocol.request ->
  (Serve_protocol.response, string) result
(** Connect, send, read — reconnecting and backing off on retryable
    failures.  Attempt [k] sleeps
    [min max_delay_s (base_delay_s * 2^k) * (0.5 + uniform(0,0.5))]
    first: full-jitter-style randomization so a herd of restarting
    clients does not stampede a recovering daemon in lockstep.
    [Error] only after [max_attempts] retryable failures in a row (the
    message says how many were made) or on a non-retryable transport
    error. *)
