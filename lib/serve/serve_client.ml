type t = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* bytes read past the last complete line *)
}

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; buf = Buffer.create 4096 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let w = Unix.write_substring fd s !pos (n - !pos) in
    pos := !pos + w
  done

(* Read until the pending buffer holds one newline; return the line and
   keep the rest for the next call. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec take () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | Some nl ->
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s (nl + 1) (String.length s - nl - 1);
        Ok (String.sub s 0 nl)
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
        | exception Unix.Unix_error (e, _, _) ->
            Error ("read: " ^ Unix.error_message e)
        | 0 -> Error "connection closed by daemon"
        | n ->
            Buffer.add_subbytes t.buf chunk 0 n;
            take ())
  in
  take ()

let request t rq =
  match write_all t.fd (Serve_protocol.request_to_string rq ^ "\n") with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)
  | () -> (
      match read_line t with
      | Error _ as e -> e
      | Ok line -> Serve_protocol.parse_response line)

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
}

let default_policy = { max_attempts = 5; base_delay_s = 0.05; max_delay_s = 1.0 }

let request_with_retry ?(policy = default_policy) ~rng ~path rq =
  let backoff attempt =
    let step =
      Float.min policy.max_delay_s
        (policy.base_delay_s *. Float.pow 2. (float_of_int attempt))
    in
    (* full jitter on the upper half: deterministic given the seed *)
    let delay = step *. (0.5 +. Rng.float rng 0.5) in
    if delay > 0. then Unix.sleepf delay
  in
  let attempt_once () =
    match connect ~path with
    | Error e -> Error (`Retry e)
    | Ok conn ->
        Fun.protect
          ~finally:(fun () -> close conn)
          (fun () ->
            match request conn rq with
            | Error e ->
                (* daemon vanished mid-exchange: retryable *)
                Error (`Retry e)
            | Ok rs -> (
                match rs.Serve_protocol.rs_error with
                | Some (cls, msg) when Serve_protocol.retryable cls ->
                    Error
                      (`Retry
                         (Serve_protocol.class_name cls ^ ": " ^ msg))
                | _ -> Ok rs))
  in
  let rec go attempt last_err =
    if attempt >= policy.max_attempts then
      Error
        (Printf.sprintf "gave up after %d attempts (last: %s)"
           policy.max_attempts last_err)
    else begin
      if attempt > 0 then backoff (attempt - 1);
      match attempt_once () with
      | Ok rs -> Ok rs
      | Error (`Retry e) -> go (attempt + 1) e
    end
  in
  go 0 "never attempted"
