type entry = { e_key : string; e_op : string; e_result : string }

type t = {
  table : (string, entry) Hashtbl.t;
  mutable order : entry list; (* insertion order, newest first *)
  max_entries : int;
  path : string option;
  mutable journal : out_channel option;
  mutable c_hits : int;
  mutable c_misses : int;
}

type recovery = { rc_entries : int; rc_skipped : int }

let in_memory ?(max_entries = 4096) () =
  {
    table = Hashtbl.create 64;
    order = [];
    max_entries;
    path = None;
    journal = None;
    c_hits = 0;
    c_misses = 0;
  }

let entry_line e =
  Json.to_string
    (Json.Obj
       [
         ("key", Json.String e.e_key);
         ("op", Json.String e.e_op);
         ("result", Json.parse_exn e.e_result);
       ])
  ^ "\n"

let decode_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok doc -> (
      match
        ( Option.bind (Json.member "key" doc) Json.to_str,
          Option.bind (Json.member "op" doc) Json.to_str,
          Json.member "result" doc )
      with
      | Some e_key, Some e_op, Some result ->
          (* re-render: [to_string] of a parsed value is a fixed point, so
             these are the exact bytes [add] wrote *)
          Some { e_key; e_op; e_result = Json.to_string result }
      | _ -> None)

let insert t e =
  if
    (not (Hashtbl.mem t.table e.e_key))
    && Hashtbl.length t.table < t.max_entries
  then begin
    Hashtbl.replace t.table e.e_key e;
    t.order <- e :: t.order
  end

let journaled ?(max_entries = 4096) ~resume path =
  let t = in_memory ~max_entries () in
  if not resume then
    if Sys.file_exists path then
      Error
        (Printf.sprintf
           "cache journal %s already exists: pass --resume to warm-restart \
            from it, or remove it to start fresh"
           path)
    else begin
      let journal = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Ok
        ( { t with path = Some path; journal = Some journal },
          { rc_entries = 0; rc_skipped = 0 } )
    end
  else begin
    (* Replay whatever survives on disk.  Decoding stops at the first
       undecodable line: everything before it is intact (appends are
       sequential), everything after is the torn tail of a kill -9. *)
    let entries = ref 0 and skipped = ref 0 in
    (if Sys.file_exists path then
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let stop = ref false in
           try
             while not !stop do
               let line = input_line ic in
               if line <> "" then
                 match decode_line line with
                 | Some e ->
                     insert t e;
                     incr entries
                 | None ->
                     (* count the rest of the file as skipped *)
                     incr skipped;
                     (try
                        while true do
                          ignore (input_line ic);
                          incr skipped
                        done
                      with End_of_file -> ());
                     stop := true
             done
           with End_of_file -> ()));
    let journal = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Ok
      ( { t with path = Some path; journal = Some journal },
        { rc_entries = !entries; rc_skipped = !skipped } )
  end

let find t ~key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.c_hits <- t.c_hits + 1;
      Some e.e_result
  | None ->
      t.c_misses <- t.c_misses + 1;
      None

let add t ~key ~op result =
  if not (Hashtbl.mem t.table key) then begin
    let e = { e_key = key; e_op = op; e_result = result } in
    insert t e;
    (* only journal what memory kept: the journal is a snapshot source,
       not an unbounded log *)
    if Hashtbl.mem t.table key then
      match t.journal with
      | None -> ()
      | Some oc ->
          output_string oc (entry_line e);
          (* flush per entry: a kill -9 then loses at most the torn tail
             of this line, and the OS owns the bytes from here *)
          flush oc
  end

let entries t = Hashtbl.length t.table
let hits t = t.c_hits
let misses t = t.c_misses

let compact t =
  match t.path with
  | None -> ()
  | Some path ->
      Option.iter close_out_noerr t.journal;
      t.journal <- None;
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          List.iter (fun e -> output_string oc (entry_line e)) (List.rev t.order));
      Sys.rename tmp path;
      t.journal <- Some (open_out_gen [ Open_append ] 0o644 path)

let close t =
  compact t;
  Option.iter close_out_noerr t.journal;
  t.journal <- None
