type token = {
  flag : bool Atomic.t option; (* None: the never token *)
  t_deadline : float; (* infinity: none *)
}

exception Cancelled

let never = { flag = None; t_deadline = infinity }
let create () = { flag = Some (Atomic.make false); t_deadline = infinity }

let with_deadline t =
  { flag = Some (Atomic.make false); t_deadline = t }

let cancel t = match t.flag with None -> () | Some f -> Atomic.set f true

let cancelled t =
  match t.flag with
  | None -> false
  | Some f ->
      Atomic.get f
      || (t.t_deadline < infinity
          &&
          if Unix.gettimeofday () > t.t_deadline then begin
            (* latch, so later polls skip the clock read *)
            Atomic.set f true;
            true
          end
          else false)

let check t = if cancelled t then raise Cancelled

let deadline t =
  if t.t_deadline < infinity then Some t.t_deadline else None
