(** Minimal JSON values, printer and parser.

    The analysis subsystem emits machine-readable reports (certificates,
    lint findings) and must be able to read them back — without adding an
    external dependency.  This module implements just enough of RFC 8259
    for that: objects, arrays, strings with the standard escapes, numbers
    (kept as [Int] when they carry no fractional part in the source),
    booleans and [null].

    Printing is deterministic: object member order is preserved, floats
    are rendered with [%.12g] (non-finite floats degrade to [null], which
    keeps the output standard-compliant).  [to_string] of a parsed value
    is a fixed point after one round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render a value.  With [indent] (e.g. [2]) the output is pretty-printed
    over multiple lines; the default is a compact single line. *)

val pp : Format.formatter -> t -> unit
(** [to_string ~indent:2]. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; the error string carries the byte
    offset of the failure. *)

val parse_exn : string -> t
(** Raises [Failure] with the parse error. *)

(** {1 Accessors}

    All return [None] (or the empty list) on a type mismatch rather than
    raising; readers of externally supplied certificates are expected to
    validate shape explicitly. *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] for any other constructor. *)

val to_int : t -> int option
val to_float : t -> float option
(** [Int] values coerce to float. *)

val to_bool : t -> bool option
val to_str : t -> string option
