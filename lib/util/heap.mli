(** Imperative binary heap with a user-supplied ordering.

    Used for the free-task priority lists of the list schedulers (the
    paper's sorted list [alpha] with head function [H]) and for the event
    queue of the fail-stop replay simulator.  Operations are O(log n);
    [peek] is O(1). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap whose minimum is taken w.r.t. [cmp].
    For a max-heap, negate the comparison. *)

val with_capacity : cmp:('a -> 'a -> int) -> dummy:'a -> int -> 'a t
(** [with_capacity ~cmp ~dummy n] is an empty heap with backing storage
    for [n] elements already allocated (filled with [dummy]), so the
    first [n] [add]s never resize.  Raises [Invalid_argument] on
    negative [n]. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Heapify in O(n). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Empty the heap in O(1), keeping its backing storage for reuse. *)

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. Raises [Invalid_argument] on an empty heap. *)

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is left untouched. *)

val iter_unordered : ('a -> unit) -> 'a t -> unit
(** Iterate over all elements in unspecified order. *)
