type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q1 : float;
  q3 : float;
}

let kahan_sum_array a =
  let sum = ref 0. and comp = ref 0. in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let kahan_sum xs = kahan_sum_array (Array.of_list xs)

let mean_array a =
  let n = Array.length a in
  if n = 0 then nan else kahan_sum_array a /. float_of_int n

let mean xs = mean_array (Array.of_list xs)

let variance xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean_array a in
    let dev = Array.map (fun x -> (x -. m) *. (x -. m)) a in
    kahan_sum_array dev /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile_sorted p a =
  let n = Array.length a in
  if n = 0 then nan
  else if n = 1 then a.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  percentile_sorted p a

let median xs = percentile 0.5 xs

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      {
        n = Array.length a;
        mean = mean_array a;
        stddev = stddev xs;
        min = a.(0);
        max = a.(Array.length a - 1);
        median = percentile_sorted 0.5 a;
        q1 = percentile_sorted 0.25 a;
        q3 = percentile_sorted 0.75 a;
      }

let confidence_95 xs =
  let n = List.length xs in
  if n < 2 then 0. else 1.96 *. stddev xs /. sqrt (float_of_int n)

module Acc = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean

  (* Chan et al. parallel variance combination.  Exact when one side is
     empty, so folding a single shard into a fresh accumulator preserves
     the sequential result bit for bit. *)
  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let na = float_of_int a.count and nb = float_of_int b.count in
      let n = na +. nb in
      let delta = b.mean -. a.mean in
      {
        count = a.count + b.count;
        mean = a.mean +. (delta *. (nb /. n));
        m2 = a.m2 +. b.m2 +. (delta *. delta *. (na *. nb /. n));
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
      }
    end

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = t.min
  let max t = t.max
end
