(* 32 bits per array cell: [lsr 5]/[land 31] index math stays shift-based
   (an OCaml [int] cannot hold a full 64-bit mask), and every set
   operation is a short word loop instead of the byte-wise folds the
   first version used — the placement inner loop of the CAFT engine calls
   [disjoint]/[cardinal_union] once per candidate processor, so constant
   factors here are schedule-throughput critical. *)
type t = { n : int; words : int array }

let bits = 32
let nwords n = (n + bits - 1) / bits

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative universe";
  { n; words = Array.make (nwords n) 0 }

let universe_size t = t.n
let copy t = { n = t.n; words = Array.copy t.words }

let check t i fn =
  if i < 0 || i >= t.n then invalid_arg ("Bitset." ^ fn ^ ": out of universe")

let add t i =
  check t i "add";
  let w = i lsr 5 in
  t.words.(w) <- t.words.(w) lor (1 lsl (i land 31))

let remove t i =
  check t i "remove";
  let w = i lsr 5 in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i land 31))

let mem t i =
  check t i "mem";
  t.words.(i lsr 5) land (1 lsl (i land 31)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Unbounds-checked variants for the replay inner loop, where indices come
   from compile-time CSR arrays that are in range by construction. *)

let unsafe_mem t i =
  Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

let unsafe_add t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i land 31)))

let singleton n i =
  let t = create n in
  add t i;
  t

let same_universe a b fn =
  if a.n <> b.n then invalid_arg ("Bitset." ^ fn ^ ": universe mismatch")

let union_into ~into s =
  same_universe into s "union_into";
  let iw = into.words and sw = s.words in
  for i = 0 to Array.length iw - 1 do
    Array.unsafe_set iw i (Array.unsafe_get iw i lor Array.unsafe_get sw i)
  done

let union a b =
  same_universe a b "union";
  let r = copy a in
  union_into ~into:r b;
  r

let inter a b =
  same_universe a b "inter";
  let r = create a.n in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- a.words.(i) land b.words.(i)
  done;
  r

let disjoint a b =
  same_universe a b "disjoint";
  let aw = a.words and bw = b.words in
  let rec go i =
    i >= Array.length aw
    || (Array.unsafe_get aw i land Array.unsafe_get bw i = 0 && go (i + 1))
  in
  go 0

let subset a b =
  same_universe a b "subset";
  let aw = a.words and bw = b.words in
  let rec go i =
    i >= Array.length aw
    || (Array.unsafe_get aw i land lnot (Array.unsafe_get bw i) = 0
       && go (i + 1))
  in
  go 0

let equal a b =
  same_universe a b "equal";
  let aw = a.words and bw = b.words in
  let rec go i =
    i >= Array.length aw
    || (Array.unsafe_get aw i = Array.unsafe_get bw i && go (i + 1))
  in
  go 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(* 16-bit popcount table: two lookups per 32-bit word *)
let pop16 =
  let tbl = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.unsafe_set tbl i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get tbl (i lsr 1)) + (i land 1)))
  done;
  tbl

let popcount_word w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xffff))

let cardinal t =
  let acc = ref 0 in
  Array.iter (fun w -> acc := !acc + popcount_word w) t.words;
  !acc

let cardinal_union a b =
  same_universe a b "cardinal_union";
  let aw = a.words and bw = b.words in
  let acc = ref 0 in
  for i = 0 to Array.length aw - 1 do
    acc :=
      !acc + popcount_word (Array.unsafe_get aw i lor Array.unsafe_get bw i)
  done;
  !acc

let equal_singleton t i =
  check t i "equal_singleton";
  let w = i lsr 5 and bit = 1 lsl (i land 31) in
  let rec go k =
    k >= Array.length t.words
    || (t.words.(k) = (if k = w then bit else 0) && go (k + 1))
  in
  go 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let complement_elements t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if not (mem t i) then acc := i :: !acc
  done;
  !acc

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
