type t = { n : int; words : Bytes.t } (* 8 bits per byte, little-endian *)

(* Bytes rather than int arrays keeps copy/blit trivial and fast for the
   small universes we use (m <= 64 processors). *)

let nbytes n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative universe";
  { n; words = Bytes.make (nbytes n) '\000' }

let universe_size t = t.n
let copy t = { n = t.n; words = Bytes.copy t.words }

let check t i fn =
  if i < 0 || i >= t.n then invalid_arg ("Bitset." ^ fn ^ ": out of universe")

let add t i =
  check t i "add";
  let b = i / 8 and bit = i mod 8 in
  Bytes.set t.words b
    (Char.chr (Char.code (Bytes.get t.words b) lor (1 lsl bit)))

let remove t i =
  check t i "remove";
  let b = i / 8 and bit = i mod 8 in
  Bytes.set t.words b
    (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl bit) land 0xff))

let mem t i =
  check t i "mem";
  let b = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get t.words b) land (1 lsl bit) <> 0

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

(* Unbounds-checked variants for the replay inner loop, where indices come
   from compile-time CSR arrays that are in range by construction. *)

let unsafe_mem t i =
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let unsafe_add t i =
  let b = i lsr 3 in
  Bytes.unsafe_set t.words b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.words b) lor (1 lsl (i land 7))))

let singleton n i =
  let t = create n in
  add t i;
  t

let fold_bytes2 f acc a b =
  let len = Bytes.length a.words in
  let acc = ref acc in
  for i = 0 to len - 1 do
    acc := f !acc (Char.code (Bytes.get a.words i)) (Char.code (Bytes.get b.words i))
  done;
  !acc

let same_universe a b fn =
  if a.n <> b.n then invalid_arg ("Bitset." ^ fn ^ ": universe mismatch")

let union_into ~into s =
  same_universe into s "union_into";
  for i = 0 to Bytes.length into.words - 1 do
    Bytes.set into.words i
      (Char.chr
         (Char.code (Bytes.get into.words i)
         lor Char.code (Bytes.get s.words i)))
  done

let union a b =
  same_universe a b "union";
  let r = copy a in
  union_into ~into:r b;
  r

let inter a b =
  same_universe a b "inter";
  let r = create a.n in
  for i = 0 to Bytes.length r.words - 1 do
    Bytes.set r.words i
      (Char.chr (Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i)))
  done;
  r

let disjoint a b =
  same_universe a b "disjoint";
  fold_bytes2 (fun acc x y -> acc && x land y = 0) true a b

let subset a b =
  same_universe a b "subset";
  fold_bytes2 (fun acc x y -> acc && x land lnot y land 0xff = 0) true a b

let equal a b =
  same_universe a b "equal";
  Bytes.equal a.words b.words

let is_empty t =
  let ok = ref true in
  Bytes.iter (fun c -> if c <> '\000' then ok := false) t.words;
  !ok

let popcount_byte c =
  let rec go n c = if c = 0 then n else go (n + (c land 1)) (c lsr 1) in
  go 0 c

let cardinal t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte (Char.code c)) t.words;
  !acc

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let complement_elements t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if not (mem t i) then acc := i :: !acc
  done;
  !acc

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
