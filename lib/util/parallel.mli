(** Minimal deterministic fork-join parallelism over OCaml 5 domains.

    The experiment campaigns evaluate dozens of independent instances per
    point; {!map} spreads them over domains while keeping the result order
    (hence all downstream aggregation) identical to the sequential run.
    Items are claimed one at a time through an atomic work-stealing index,
    so one slow instance delays only itself — a straggler no longer stalls
    the whole contiguous chunk a domain was pre-assigned. *)

val available_domains : unit -> int
(** Recommended domain count for this machine
    ([Domain.recommended_domain_count]). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs], computed with up to [domains]
    domains (default {!available_domains}; [1] degenerates to the
    sequential map).  Result order is that of [xs] regardless of which
    domain computed which item.  [f] must not rely on shared mutable
    state.  If some application of [f] raises, one such exception is
    re-raised after all domains joined (items not yet claimed when a
    worker dies are still computed by the surviving workers). *)
