(** Minimal deterministic fork-join parallelism over OCaml 5 domains.

    The experiment campaigns evaluate dozens of independent instances per
    point; {!map} spreads them over domains while keeping the result order
    (hence all downstream aggregation) identical to the sequential run.
    Items are claimed one at a time through an atomic work-stealing index,
    so one slow instance delays only itself — a straggler no longer stalls
    the whole contiguous chunk a domain was pre-assigned. *)

val available_domains : unit -> int
(** Recommended domain count for this machine
    ([Domain.recommended_domain_count]). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs], computed with up to [domains]
    domains (default {!available_domains}; [1] degenerates to the
    sequential map).  Result order is that of [xs] regardless of which
    domain computed which item.  [f] must not rely on shared mutable
    state.  If some application of [f] raises, one such exception is
    re-raised after all domains joined (items not yet claimed when a
    worker dies are still computed by the surviving workers). *)

(** {1 Work-stealing telemetry}

    Per-worker accounting of one [map] call, reported to the installed
    {!set_monitor} callback.  Worker [0] is the calling domain; workers
    [1..] are the spawned ones.  [ws_busy_s] is wall time spent inside
    [f]; [ws_idle_s] is the rest of the worker's loop (claim contention,
    spawn skew, scheduler preemption); [ws_steal_attempts] counts claims
    on the shared index including the final failed one. *)

type worker_stats = {
  ws_worker : int;
  ws_items : int;
  ws_busy_s : float;
  ws_idle_s : float;
  ws_steal_attempts : int;
}

type map_stats = {
  ms_items : int;
  ms_domains : int;  (** workers actually used, after clamping *)
  ms_wall_s : float;
  ms_workers : worker_stats list;
}

(** {1 Persistent worker pool}

    [map] spawns and joins its domains on every call, which is fine for a
    handful of big items but dominates the wall clock when a campaign
    issues thousands of small blocks.  A {!pool} spawns its domains once;
    {!map_pool} then reuses them for any number of maps, with the same
    ordering, exception, and telemetry semantics as {!map}. *)

type pool

val pool : ?domains:int -> unit -> pool
(** [pool ~domains ()] spawns [domains - 1] worker domains (default
    {!available_domains}; clamped to at least [1]).  The calling domain is
    always worker slot [0] of every subsequent {!map_pool}, so a pool of
    size [1] spawns nothing and runs maps sequentially on the caller. *)

val pool_size : pool -> int
(** Total workers, including the calling domain. *)

val map_pool : pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map_pool p f xs] is [map ~domains:(pool_size p) f xs] computed on the
    pool's persistent domains: result order follows [xs]; if some
    application of [f] raises, one such exception is re-raised after all
    participants finished (items not yet claimed when a worker dies are
    still computed by the surviving workers); the installed {!set_monitor}
    callback receives the same per-worker accounting as [map].  One job
    runs at a time — calling [map_pool] on a pool that is already running
    a job (from [f] itself, or from another domain) raises
    [Invalid_argument].  Not serialized externally: dedicate a pool to one
    orchestrating thread. *)

val shutdown : pool -> unit
(** Terminate and join the pool's domains.  Subsequent {!map_pool} calls
    raise [Invalid_argument]; [shutdown] itself is idempotent.

    Leak safety: a pool that is never shut down does not wedge process
    exit — every live pool is registered at creation and an [at_exit]
    hook (armed by the first [pool] call) stops and joins the forgotten
    workers.  Relying on the hook is still poor hygiene (the domains are
    held until exit); it exists so a crashed or careless caller cannot
    hang the daemon's shutdown path. *)

val live_pools : unit -> int
(** Pools created and not yet shut down — what the exit hook would have
    to clean.  Diagnostic, used by the teardown tests. *)

val set_monitor : (map_stats -> unit) option -> unit
(** Install (or clear) the telemetry callback.  With no monitor installed
    — the default — [map] runs an uninstrumented loop with no clock reads
    per item.  The callback runs on the calling domain after all workers
    joined, before [map] returns or re-raises.  The obs layer's profiler
    is the intended installer; last install wins. *)
