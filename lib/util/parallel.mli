(** Minimal deterministic fork-join parallelism over OCaml 5 domains.

    The experiment campaigns evaluate dozens of independent instances per
    point; {!map} spreads them over domains while keeping the result order
    (hence all downstream aggregation) identical to the sequential run.
    No work stealing, no shared state: the input list is split into
    contiguous chunks, one domain per chunk. *)

val available_domains : unit -> int
(** Recommended domain count for this machine
    ([Domain.recommended_domain_count]). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs], computed with up to [domains]
    domains (default {!available_domains}; [1] degenerates to the
    sequential map).  [f] must not rely on shared mutable state.  The
    first exception raised by any chunk is re-raised after all domains
    joined. *)
