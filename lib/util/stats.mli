(** Descriptive statistics over float samples.

    Used by the experiment harness to aggregate each campaign point (the
    paper averages every plotted point over 60 random DAGs) and by the
    benchmark reports. *)

type summary = {
  n : int;  (** sample count *)
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  q1 : float;  (** first quartile *)
  q3 : float;  (** third quartile *)
}

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val mean_array : float array -> float

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); [0.] for fewer than two
    samples. *)

val stddev : float list -> float

val median : float list -> float
(** [nan] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,1\]], linear interpolation between
    order statistics.  [nan] on the empty list. *)

val summarize : float list -> summary
(** Full summary.  Raises [Invalid_argument] on the empty list. *)

val confidence_95 : float list -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt n]); [0.] for fewer than two samples. *)

val kahan_sum : float list -> float
(** Compensated summation. *)

val kahan_sum_array : float array -> float

(** Streaming accumulator (Welford), for aggregation without retaining
    samples. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  val merge : t -> t -> t
  (** Combine two accumulators as if every sample had been [add]ed to one
      (Chan et al. pairwise update).  Exact when either side is empty;
      used to aggregate per-domain histogram shards. *)

  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end
