(** Plain-text and CSV rendering of result tables.

    The benchmark harness prints every reproduced figure/table as rows of
    labelled columns; this module owns the formatting so that all outputs
    line up and the CSV export matches the pretty print. *)

type align = Left | Right

type t
(** A table under construction: a header plus rows of cells. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Right] for
    every column; if shorter than the header list the default fills in. *)

val add_row : t -> string list -> unit
(** Appends a row.  Raises [Invalid_argument] if the arity differs from the
    header. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> unit
(** [add_float_row t label xs] appends [label] followed by formatted
    floats.  [fmt] defaults to two-decimal fixed point. *)

val to_string : t -> string
(** Pretty print with aligned columns separated by two spaces. *)

val to_csv : t -> string
(** Comma-separated rendering (cells containing commas or quotes are
    quoted). *)

val print : t -> unit
(** [to_string] to stdout, followed by a newline. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting with [decimals] (default 2) digits; renders
    [nan] as ["-"]. *)
