(** Fixed-universe bit sets.

    Used for the processor {e support sets} of the CAFT scheduler: the set
    of processors a replica's completion transitively depends on.  The
    universe (number of processors) is fixed at creation; operations never
    allocate beyond one machine word per 63 universe elements. *)

type t

val create : int -> t
(** [create n] is the empty subset of [\[0, n-1\]].  Raises
    [Invalid_argument] on negative [n]. *)

val singleton : int -> int -> t
(** [singleton n i] is [{i}] in universe [n]. *)

val universe_size : t -> int
val copy : t -> t
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int

val cardinal_union : t -> t -> int
(** [cardinal_union a b] is [cardinal (union a b)] without materializing
    the union — the admissibility test of the placement inner loop. *)

val equal_singleton : t -> int -> bool
(** [equal_singleton t i] iff [t] is exactly [{i}]; the allocation-free
    form of [equal t (singleton n i)]. *)

val clear : t -> unit
(** Remove every element, in place.  One [Bytes.fill]; lets a scratch set
    be reused across scenarios without reallocating. *)

val unsafe_mem : t -> int -> bool
(** [mem] without the bounds check.  Undefined behaviour outside
    [\[0, universe_size t - 1\]]; reserved for inner loops whose indices
    are in range by construction (the replay engine's crash masks). *)

val unsafe_add : t -> int -> unit
(** [add] without the bounds check; same caveat as {!unsafe_mem}. *)

val union_into : into:t -> t -> unit
(** [union_into ~into s] adds every element of [s] to [into].  The two
    sets must share the universe size. *)

val union : t -> t -> t

val inter : t -> t -> t

val disjoint : t -> t -> bool
(** No common element. *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val equal : t -> t -> bool
val elements : t -> int list
val iter : (int -> unit) -> t -> unit
val of_list : int -> int list -> t
val complement_elements : t -> int list
(** Elements of the universe {e not} in the set. *)

val pp : Format.formatter -> t -> unit
