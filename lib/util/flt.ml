let eps = 1e-9
let approx_eq ?(tol = eps) a b = Float.abs (a -. b) <= tol
let leq ?(tol = eps) a b = a <= b +. tol
let geq ?(tol = eps) a b = a >= b -. tol
let max_list = List.fold_left Float.max neg_infinity
let min_list = List.fold_left Float.min infinity

let clamp ~lo ~hi x =
  if x < lo then lo else if x > hi then hi else x
