type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ---------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep a fractional marker so the parser reads a float back *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?indent v =
  let buf = Buffer.create 256 in
  let nl level =
    match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * level) ' ')
  in
  let sep () = match indent with None -> () | Some _ -> Buffer.add_char buf ' ' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (float_repr f)
        else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            go (level + 1) item)
          items;
        nl level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            sep ();
            go (level + 1) item)
          fields;
        nl level;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string ~indent:2 v)

(* -- parsing ----------------------------------------------------------- *)

exception Error of int * string

let parse_exn_raw s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* encode the code point as UTF-8 (BMP only) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let digits () =
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "expected number"
    else if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integer wider than 63 bits: degrade to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn_raw s with
  | v -> Ok v
  | exception Error (pos, msg) ->
      Result.Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Result.Error msg -> failwith msg

(* -- accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function List items -> items | _ -> []
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
