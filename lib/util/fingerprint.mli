(** Content fingerprints for cache keys.

    The serve daemon's content-addressed cache keys compiled replay
    engines and finished results by a fingerprint of everything that
    determines them — generation parameters, algorithm, model, epsilon —
    so two requests for the same work share one cache entry.  A
    fingerprint is a 64-bit FNV-1a hash accumulated over a canonical
    field sequence: cheap, allocation-light, stable across runs and
    platforms (no dependence on [Hashtbl.hash]'s unspecified mixing).

    This is a cache key, not a cryptographic digest: collisions are
    astronomically unlikely for the handful of live keys a daemon holds,
    and a collision costs a wrong cache hit on adversarially crafted
    input only — callers that need integrity must also compare the
    canonical string they hashed. *)

type t
(** Accumulating hash state (immutable: every [add_*] returns a new
    state, so prefixes can be shared). *)

val empty : t
(** The FNV-1a offset basis. *)

val add_string : t -> string -> t
(** Hash the bytes of the string, then a terminator — [add_string t "ab"]
    followed by ["c"] differs from [add_string t "a"] followed by
    ["bc"]. *)

val add_int : t -> int -> t
(** Hash the 8 little-endian bytes of the integer. *)

val add_float : t -> float -> t
(** Hash the IEEE-754 bits ([-0.] and [0.] therefore differ; [nan]s with
    equal bit patterns collide, which is what a cache wants). *)

val add_bool : t -> bool -> t

val to_hex : t -> string
(** 16 lowercase hex digits — the canonical rendering used in journal
    files and the [stats] response. *)

val string : string -> string
(** [string s] is [to_hex (add_string empty s)] — the one-shot helper. *)
