type 'a overlap = {
  ov_running : 'a;
  ov_running_until : float;
  ov_starter : 'a;
  ov_starts : float;
}

let overlaps ?(tol = Flt.eps) ~bounds intervals =
  let sorted =
    List.sort
      (fun a b -> compare (fst (bounds a)) (fst (bounds b)))
      intervals
  in
  (* Sweep with the furthest finish seen so far, so containment of several
     later intervals is also caught. *)
  let rec go acc frontier = function
    | [] -> List.rev acc
    | x :: rest ->
        let s, f = bounds x in
        let acc =
          match frontier with
          | Some (fmax, running) when fmax > s +. tol && f > s +. tol ->
              {
                ov_running = running;
                ov_running_until = fmax;
                ov_starter = x;
                ov_starts = s;
              }
              :: acc
          | _ -> acc
        in
        let frontier =
          match frontier with
          | Some (fmax, _) when fmax >= f -> frontier
          | _ -> Some (f, x)
        in
        go acc frontier rest
  in
  go [] None sorted

let exceeding ?(tol = Flt.eps) ~capacity ~bounds intervals =
  let events =
    List.concat_map
      (fun x ->
        let s, f = bounds x in
        if f -. s <= tol then []
        else [ (s +. tol, 1, x); (f -. tol, -1, x) ])
      intervals
  in
  let events =
    List.sort (fun (t1, d1, _) (t2, d2, _) -> compare (t1, d1) (t2, d2)) events
  in
  let depth = ref 0 in
  let bad = ref [] in
  List.iter
    (fun (_, d, x) ->
      depth := !depth + d;
      if d > 0 && !depth > capacity then
        let s, f = bounds x in
        bad := (x, s, f) :: !bad)
    events;
  List.rev !bad

let gaps ?(tol = Flt.eps) ~bounds intervals =
  let sorted =
    List.filter_map
      (fun x ->
        let s, f = bounds x in
        if f -. s <= tol then None else Some (s, f))
      intervals
    |> List.sort compare
  in
  let rec go acc frontier = function
    | [] -> List.rev acc
    | (s, f) :: rest ->
        let acc = if s > frontier +. tol then (frontier, s) :: acc else acc in
        go acc (Float.max frontier f) rest
  in
  match sorted with [] -> [] | (s, f) :: rest -> go [] (Float.max s f) rest
