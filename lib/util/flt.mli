(** Small helpers for floating-point schedule arithmetic.

    Schedule times are sums and maxima of products of uniform random draws;
    validation must compare them robustly.  [eps] is the tolerance shared by
    the whole code base so that the schedule validator and the replay
    simulator agree on what "simultaneous" means. *)

val eps : float
(** Absolute tolerance used throughout ([1e-9]). *)

val approx_eq : ?tol:float -> float -> float -> bool
(** [approx_eq a b] iff [|a - b| <= tol] (default {!eps}). *)

val leq : ?tol:float -> float -> float -> bool
(** [leq a b] iff [a <= b + tol]: less-or-approximately-equal. *)

val geq : ?tol:float -> float -> float -> bool

val max_list : float list -> float
(** Maximum; [neg_infinity] on the empty list. *)

val min_list : float list -> float
(** Minimum; [infinity] on the empty list. *)

val clamp : lo:float -> hi:float -> float -> float
