(** Interval-sweep primitives shared by the schedule validator and the
    static analyzer.

    All functions take intervals as arbitrary payloads paired with a
    [bounds] projection to [(start, finish)].  Zero-length intervals
    (within [tol], default the repository-wide {!Flt.eps}) never conflict:
    an instantaneous event at the boundary of a busy period is not an
    overlap. *)

type 'a overlap = {
  ov_running : 'a;  (** the earlier interval, still open *)
  ov_running_until : float;  (** its finish (the furthest seen so far) *)
  ov_starter : 'a;  (** the interval that starts inside it *)
  ov_starts : float;
}

val overlaps :
  ?tol:float -> bounds:('a -> float * float) -> 'a list -> 'a overlap list
(** Pairs of conflicting intervals, in sweep (chronological) order.  Each
    reported conflict pits the interval with the furthest finish seen so
    far against the next one starting strictly inside it, so containment
    of several later intervals is also caught. *)

val exceeding :
  ?tol:float ->
  capacity:int ->
  bounds:('a -> float * float) ->
  'a list ->
  ('a * float * float) list
(** Intervals whose start pushes the number of concurrently open
    intervals strictly beyond [capacity], with their bounds, in event
    order.  [capacity = 1] is the overlap condition of {!overlaps} (but
    reports only the offending interval, not the pair). *)

val gaps :
  ?tol:float -> bounds:('a -> float * float) -> 'a list -> (float * float) list
(** Maximal idle periods strictly between the merged busy spans of the
    intervals, in chronological order.  The open-ended periods before the
    first interval and after the last are not reported. *)
