(** Polled cooperative cancellation.

    A long-running evaluation (a Monte-Carlo campaign, an exhaustive
    fault check) admitted by the serve daemon must be abandonable when
    its request deadline expires — without wedging the worker, and
    without preemption: the batch loops poll a token at scenario
    granularity and raise {!Cancelled} when it trips.

    Two trip conditions compose in one token: an explicit {!cancel}
    (client disconnected, daemon shutting down) and an absolute
    wall-clock deadline ({!with_deadline}).  Polling an untripped token
    costs one atomic load plus, when a deadline is set, one clock read —
    cheap enough for per-scenario polling, and {!never} short-circuits
    to a constant so instrumented loops pay nothing when cancellation is
    not in play.

    Determinism: cancellation only ever {e aborts} an evaluation — a
    computation that runs to completion is byte-identical whether or not
    a token was being polled. *)

type token

exception Cancelled
(** Raised by {!check}; also the exception evaluation loops let escape
    to their caller (the daemon maps it to a [deadline_exceeded] or
    [cancelled] protocol error). *)

val never : token
(** The token that never trips — the default threaded through evaluation
    entry points; polling it is a single immutable load. *)

val create : unit -> token
(** A fresh untripped token. *)

val cancel : token -> unit
(** Trip the token (idempotent; safe from any domain or from a signal
    handler — it is one atomic store). *)

val with_deadline : float -> token
(** [with_deadline t] trips once the wall clock ([Unix.gettimeofday])
    passes [t] (absolute seconds), or when explicitly cancelled. *)

val cancelled : token -> bool
(** Has the token tripped?  This is the poll. *)

val check : token -> unit
(** [check t] raises {!Cancelled} iff [cancelled t]. *)

val deadline : token -> float option
(** The token's absolute deadline, if any — lets a layer derive a
    remaining-budget estimate for its own sub-calls. *)
