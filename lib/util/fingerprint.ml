(* 64-bit FNV-1a.  The state is just the running hash; immutability makes
   prefix sharing (one instance key extended per-op) free. *)

type t = int64

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L
let empty = offset_basis

let add_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  (* field terminator: keeps the field boundaries in the hash *)
  add_byte !h 0xff

let add_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := add_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let add_int h i = add_int64 h (Int64.of_int i)
let add_float h f = add_int64 h (Int64.bits_of_float f)
let add_bool h b = add_int h (if b then 1 else 0)
let to_hex h = Printf.sprintf "%016Lx" h
let string s = to_hex (add_string empty s)
