type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list;  (* reversed *)
}

let create ?(aligns = []) headers =
  let headers = Array.of_list headers in
  let n = Array.length headers in
  let aligns_arr = Array.make n Right in
  List.iteri (fun i a -> if i < n then aligns_arr.(i) <- a) aligns;
  { headers; aligns = aligns_arr; rows = [] }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Text_table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let float_cell ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let add_float_row ?(fmt = fun x -> float_cell x) t label xs =
  add_row t (label :: List.map fmt xs)

let to_string t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let width = Array.make ncols 0 in
  let measure row =
    Array.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)) row
  in
  measure t.headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let render_row row =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let pad = width.(i) - String.length c in
        match t.aligns.(i) with
        | Left ->
            Buffer.add_string buf c;
            if i < ncols - 1 then Buffer.add_string buf (String.make pad ' ')
        | Right ->
            Buffer.add_string buf (String.make pad ' ');
            Buffer.add_string buf c)
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  let rule = Array.map (fun w -> String.make w '-') width in
  render_row rule;
  List.iter render_row rows;
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then begin
    let b = Buffer.create (String.length c + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b ch)
      c;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else c

let to_csv t =
  let buf = Buffer.create 1024 in
  let render_row row =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (csv_cell c))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  List.iter render_row (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (to_string t)
