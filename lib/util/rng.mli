(** Deterministic, splittable pseudo-random number generator.

    All experiments in this repository must be exactly reproducible from a
    single integer seed, independently of iteration order elsewhere in the
    program.  This module therefore provides an explicit-state generator
    (xoshiro256** seeded through splitmix64) instead of the ambient
    [Stdlib.Random] state.

    The generator is {e splittable}: [split t] derives an independent child
    stream, so that, e.g., every random DAG of a campaign gets its own
    stream and adding one more sample never perturbs the previous ones. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent clone of [t] in its current state: drawing
    from the clone does not affect [t]. *)

val split : t -> t
(** [split t] draws from [t] and returns a fresh generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n-1\]].  Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).  Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)].  Raises
    [Invalid_argument] if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].  Raises
    [Invalid_argument] on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] is a uniformly chosen element of [l].  Raises
    [Invalid_argument] on an empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle of the array, in place. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t l] is a uniformly random permutation of [l]. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n-1\]], in increasing order.  Raises [Invalid_argument] if
    [k > n] or [k < 0]. *)

val sample_into : t -> Bitset.t -> int -> unit
(** [sample_into t chosen k] clears [chosen] and fills it with [k] distinct
    integers drawn from [\[0, universe_size chosen - 1\]].  Consumes the
    exact same generator stream as {!sample_without_replacement} with the
    same [k] and universe, but allocates nothing: scenario pre-draw loops
    reuse one scratch set.  Raises [Invalid_argument] if [k > n] or
    [k < 0]. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from the exponential distribution with
    rate [lambda] (mean [1/lambda]). *)
