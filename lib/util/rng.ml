(* xoshiro256** 1.0 (Blackman & Vigna), state initialised with splitmix64.
   Explicit state so that every consumer owns its stream. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* All-zero state is invalid for xoshiro; splitmix64 cannot produce four
     zero outputs in a row, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let r = v mod n in
    if v - r > mask - n + 1 then draw () else r
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0, 1), then scaled. *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992.0 *. x

let float_in t lo hi =
  if hi < lo then invalid_arg "Rng.float_in: empty range";
  lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  (* One traversal (Array.of_list) instead of List.length + List.nth;
     still exactly one [int] draw, so seeded sequences are unchanged. *)
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ ->
      let a = Array.of_list l in
      a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: k draws, O(k) expected set operations. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if IS.mem r !chosen then chosen := IS.add j !chosen
    else chosen := IS.add r !chosen
  done;
  IS.elements !chosen

let sample_into t chosen k =
  let n = Bitset.universe_size chosen in
  if k < 0 || k > n then invalid_arg "Rng.sample_into";
  Bitset.clear chosen;
  (* Floyd's algorithm with the exact same [int] draw sequence as
     [sample_without_replacement], so pre-drawn scenario streams stay
     byte-identical whichever sampler a caller uses. *)
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Bitset.mem chosen r then Bitset.add chosen j else Bitset.add chosen r
  done

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda
