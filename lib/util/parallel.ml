let available_domains () = Domain.recommended_domain_count ()

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let n = List.length xs in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let results = Array.make n None in
    (* Work stealing over an atomic index: every worker claims the next
       unprocessed item, so a slow item delays only itself instead of
       stalling the rest of a pre-assigned contiguous chunk.  Each index
       is claimed exactly once; the join synchronizes the writes. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      try
        loop ();
        None
      with exn -> Some exn
    in
    (* run one worker on the current domain, the rest on spawned ones *)
    let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    let first = worker () in
    let rest = List.map Domain.join spawned in
    (match List.find_opt Option.is_some (first :: rest) with
    | Some (Some exn) -> raise exn
    | _ -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end
