let available_domains () = Domain.recommended_domain_count ()

(* -- work-stealing telemetry -------------------------------------------- *)

type worker_stats = {
  ws_worker : int;
  ws_items : int;
  ws_busy_s : float;
  ws_idle_s : float;
  ws_steal_attempts : int;
}

type map_stats = {
  ms_items : int;
  ms_domains : int;
  ms_wall_s : float;
  ms_workers : worker_stats list;
}

(* The monitor is observability's window into the work-stealing loop: the
   obs layer installs a callback here (util cannot depend on obs).  When
   unset, [map] runs the uninstrumented loop — no clock reads per item. *)
let monitor : (map_stats -> unit) option Atomic.t = Atomic.make None
let set_monitor cb = Atomic.set monitor cb
let now = Unix.gettimeofday

let plain_map domains f xs n =
  let arr = Array.of_list xs in
  let results = Array.make n None in
  (* Work stealing over an atomic index: every worker claims the next
     unprocessed item, so a slow item delays only itself instead of
     stalling the rest of a pre-assigned contiguous chunk.  Each index
     is claimed exactly once; the join synchronizes the writes. *)
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f arr.(i));
        loop ()
      end
    in
    try
      loop ();
      None
    with exn -> Some exn
  in
  (* run one worker on the current domain, the rest on spawned ones *)
  let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
  let first = worker () in
  let rest = List.map Domain.join spawned in
  (match List.find_opt Option.is_some (first :: rest) with
  | Some (Some exn) -> raise exn
  | _ -> ());
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

(* Same claim loop with two clock reads per item; only runs when a
   monitor is installed, so the common path stays clock-free. *)
let monitored_map report domains f xs n =
  let arr = Array.of_list xs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let workers = min domains n in
  let stats = Array.make workers None in
  let worker slot () =
    let t_start = now () in
    let busy = ref 0. and items = ref 0 and attempts = ref 0 in
    let outcome =
      let rec loop () =
        incr attempts;
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = now () in
          results.(i) <- Some (f arr.(i));
          busy := !busy +. (now () -. t0);
          incr items;
          loop ()
        end
      in
      try
        loop ();
        None
      with exn -> Some exn
    in
    let wall = now () -. t_start in
    stats.(slot) <-
      Some
        {
          ws_worker = slot;
          ws_items = !items;
          ws_busy_s = !busy;
          ws_idle_s = Float.max 0. (wall -. !busy);
          ws_steal_attempts = !attempts;
        };
    outcome
  in
  let t_begin = now () in
  let spawned =
    List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  let first = worker 0 () in
  let rest = List.map Domain.join spawned in
  report
    {
      ms_items = n;
      ms_domains = workers;
      ms_wall_s = now () -. t_begin;
      ms_workers = List.filter_map Fun.id (Array.to_list stats);
    };
  (match List.find_opt Option.is_some (first :: rest) with
  | Some (Some exn) -> raise exn
  | _ -> ());
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

let monitored_sequential report f xs n =
  let t_begin = now () in
  let busy = ref 0. in
  let results =
    List.map
      (fun x ->
        let t0 = now () in
        let y = f x in
        busy := !busy +. (now () -. t0);
        y)
      xs
  in
  let wall = now () -. t_begin in
  report
    {
      ms_items = n;
      ms_domains = 1;
      ms_wall_s = wall;
      ms_workers =
        [
          {
            ws_worker = 0;
            ws_items = n;
            ws_busy_s = !busy;
            ws_idle_s = Float.max 0. (wall -. !busy);
            ws_steal_attempts = n;
          };
        ];
    };
  results

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let n = List.length xs in
  match Atomic.get monitor with
  | None ->
      if domains <= 1 || n <= 1 then List.map f xs else plain_map domains f xs n
  | Some report ->
      if domains <= 1 || n <= 1 then monitored_sequential report f xs n
      else monitored_map report domains f xs n

(* -- persistent worker pool --------------------------------------------- *)

(* A pool keeps its spawned domains alive across map calls, so a campaign
   of thousands of small blocks pays the domain spawn/teardown cost once
   instead of once per call.  One job runs at a time; idle workers park on
   a condition variable between jobs.  Each job is the same work-stealing
   claim loop as [map], type-erased behind a closure so one pool serves
   maps of any element type. *)

type job = {
  j_epoch : int;
  j_run : int -> unit; (* claim loop, given the worker's slot *)
}

type pool = {
  p_size : int; (* workers including the calling domain (slot 0) *)
  p_lock : Mutex.t;
  p_wake : Condition.t; (* workers: a new job or shutdown is available *)
  p_done : Condition.t; (* caller: a participant left the current job *)
  mutable p_epoch : int; (* bumped once per job *)
  mutable p_job : job option;
  mutable p_active : int; (* participants currently inside the job *)
  mutable p_slot : int; (* next worker slot for the current job *)
  mutable p_stop : bool;
  mutable p_busy : bool; (* a map_pool call is in flight *)
  mutable p_workers : unit Domain.t list;
}

let pool_worker pool =
  (* [seen] is the last epoch this worker participated in.  Every worker
     joins every job exactly once: the caller holds the job open until
     all [p_size] slots have joined and left, so a late waker still finds
     [p_job] set.  That guarantee is what lets survivors drain the items
     left unclaimed when another participant stopped on an exception. *)
  let rec wait_for_job seen =
    Mutex.lock pool.p_lock;
    while (not pool.p_stop) && (pool.p_epoch = seen || Option.is_none pool.p_job) do
      Condition.wait pool.p_wake pool.p_lock
    done;
    if pool.p_stop then Mutex.unlock pool.p_lock
    else begin
      let job = Option.get pool.p_job in
      let slot = pool.p_slot in
      pool.p_slot <- pool.p_slot + 1;
      pool.p_active <- pool.p_active + 1;
      Mutex.unlock pool.p_lock;
      (* [j_run] never lets an exception escape (user exceptions are
         captured inside the claim loop); one escaping here would wedge
         the pool. *)
      job.j_run slot;
      Mutex.lock pool.p_lock;
      pool.p_active <- pool.p_active - 1;
      if pool.p_active = 0 then Condition.broadcast pool.p_done;
      Mutex.unlock pool.p_lock;
      wait_for_job job.j_epoch
    end
  in
  wait_for_job 0

(* Live-pool registry: a pool leaked without [shutdown] must not leave
   domains parked on a condition variable at process exit, so every pool
   registers here and [shutdown_all] — armed once via [at_exit] — joins
   whatever the program forgot.  Guarded by its own mutex: registration
   and teardown are rare (pool lifetime, not job) events. *)
let live_lock = Mutex.create ()
let live : pool list ref = ref []
let exit_hook_armed = ref false

let unregister p =
  Mutex.lock live_lock;
  live := List.filter (fun q -> q != p) !live;
  Mutex.unlock live_lock

let pool ?domains () =
  let size =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let p =
    {
      p_size = size;
      p_lock = Mutex.create ();
      p_wake = Condition.create ();
      p_done = Condition.create ();
      p_epoch = 0;
      p_job = None;
      p_active = 0;
      p_slot = 0;
      p_stop = false;
      p_busy = false;
      p_workers = [];
    }
  in
  p.p_workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> pool_worker p));
  Mutex.lock live_lock;
  live := p :: !live;
  if not !exit_hook_armed then begin
    exit_hook_armed := true;
    (* registered lazily so programs that never build a pool get no hook *)
    at_exit (fun () ->
        let ps = Mutex.protect live_lock (fun () -> !live) in
        List.iter
          (fun p ->
            Mutex.lock p.p_lock;
            p.p_stop <- true;
            Condition.broadcast p.p_wake;
            Mutex.unlock p.p_lock;
            List.iter Domain.join p.p_workers;
            p.p_workers <- [])
          ps;
        Mutex.protect live_lock (fun () -> live := []))
  end;
  Mutex.unlock live_lock;
  p

let pool_size p = p.p_size

let shutdown p =
  Mutex.lock p.p_lock;
  p.p_stop <- true;
  Condition.broadcast p.p_wake;
  Mutex.unlock p.p_lock;
  List.iter Domain.join p.p_workers;
  p.p_workers <- [];
  unregister p

let live_pools () = Mutex.protect live_lock (fun () -> List.length !live)

let map_pool p f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let report = Atomic.get monitor in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let first_exn : exn option Atomic.t = Atomic.make None in
    let stats = Array.make p.p_size None in
    (* Claim loops mirror [plain_map] / [monitored_map]: same stealing
       index, same stop-on-own-exception behaviour (survivors finish the
       unclaimed items), same per-item clock accounting when monitored. *)
    let plain_run _slot =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception exn ->
              ignore (Atomic.compare_and_set first_exn None (Some exn));
              raise_notrace Exit);
          loop ()
        end
      in
      try loop () with Exit -> ()
    in
    let monitored_run slot =
      let t_start = now () in
      let busy = ref 0. and items = ref 0 and attempts = ref 0 in
      let rec loop () =
        incr attempts;
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = now () in
          (match f arr.(i) with
          | v ->
              results.(i) <- Some v;
              busy := !busy +. (now () -. t0);
              incr items;
              loop ()
          | exception exn ->
              ignore (Atomic.compare_and_set first_exn None (Some exn));
              busy := !busy +. (now () -. t0);
              raise_notrace Exit)
        end
      in
      (try loop () with Exit -> ());
      let wall = now () -. t_start in
      stats.(slot) <-
        Some
          {
            ws_worker = slot;
            ws_items = !items;
            ws_busy_s = !busy;
            ws_idle_s = Float.max 0. (wall -. !busy);
            ws_steal_attempts = !attempts;
          }
    in
    let run = match report with None -> plain_run | Some _ -> monitored_run in
    let t_begin = now () in
    Mutex.lock p.p_lock;
    if p.p_stop then begin
      Mutex.unlock p.p_lock;
      invalid_arg "Parallel.map_pool: pool is shut down"
    end;
    if p.p_busy then begin
      Mutex.unlock p.p_lock;
      invalid_arg "Parallel.map_pool: pool is already running a job"
    end;
    p.p_busy <- true;
    p.p_epoch <- p.p_epoch + 1;
    p.p_job <- Some { j_epoch = p.p_epoch; j_run = run };
    p.p_slot <- 1;
    p.p_active <- p.p_active + 1 (* the caller itself *);
    Condition.broadcast p.p_wake;
    Mutex.unlock p.p_lock;
    (* The caller is worker slot 0: it participates instead of blocking. *)
    run 0;
    Mutex.lock p.p_lock;
    p.p_active <- p.p_active - 1;
    (* Hold the job open until every pool worker has joined ([p_slot]
       counts joins, the caller included) AND left the claim loop.  The
       join half matters for the exception contract: if the only active
       participant dies on [f] while a parked worker has not woken yet,
       that worker must still enter the job and drain the unclaimed
       items — matching [map], where every domain always runs the loop. *)
    while p.p_slot < p.p_size || p.p_active > 0 do
      Condition.wait p.p_done p.p_lock
    done;
    p.p_job <- None;
    p.p_busy <- false;
    Mutex.unlock p.p_lock;
    (match report with
    | Some report ->
        report
          {
            ms_items = n;
            ms_domains = p.p_size;
            ms_wall_s = now () -. t_begin;
            ms_workers = List.filter_map Fun.id (Array.to_list stats);
          }
    | None -> ());
    match Atomic.get first_exn with
    | Some exn -> raise exn
    | None ->
        Array.to_list
          (Array.map (function Some v -> v | None -> assert false) results)
  end
