let available_domains () = Domain.recommended_domain_count ()

(* -- work-stealing telemetry -------------------------------------------- *)

type worker_stats = {
  ws_worker : int;
  ws_items : int;
  ws_busy_s : float;
  ws_idle_s : float;
  ws_steal_attempts : int;
}

type map_stats = {
  ms_items : int;
  ms_domains : int;
  ms_wall_s : float;
  ms_workers : worker_stats list;
}

(* The monitor is observability's window into the work-stealing loop: the
   obs layer installs a callback here (util cannot depend on obs).  When
   unset, [map] runs the uninstrumented loop — no clock reads per item. *)
let monitor : (map_stats -> unit) option Atomic.t = Atomic.make None
let set_monitor cb = Atomic.set monitor cb
let now = Unix.gettimeofday

let plain_map domains f xs n =
  let arr = Array.of_list xs in
  let results = Array.make n None in
  (* Work stealing over an atomic index: every worker claims the next
     unprocessed item, so a slow item delays only itself instead of
     stalling the rest of a pre-assigned contiguous chunk.  Each index
     is claimed exactly once; the join synchronizes the writes. *)
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f arr.(i));
        loop ()
      end
    in
    try
      loop ();
      None
    with exn -> Some exn
  in
  (* run one worker on the current domain, the rest on spawned ones *)
  let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
  let first = worker () in
  let rest = List.map Domain.join spawned in
  (match List.find_opt Option.is_some (first :: rest) with
  | Some (Some exn) -> raise exn
  | _ -> ());
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

(* Same claim loop with two clock reads per item; only runs when a
   monitor is installed, so the common path stays clock-free. *)
let monitored_map report domains f xs n =
  let arr = Array.of_list xs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let workers = min domains n in
  let stats = Array.make workers None in
  let worker slot () =
    let t_start = now () in
    let busy = ref 0. and items = ref 0 and attempts = ref 0 in
    let outcome =
      let rec loop () =
        incr attempts;
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = now () in
          results.(i) <- Some (f arr.(i));
          busy := !busy +. (now () -. t0);
          incr items;
          loop ()
        end
      in
      try
        loop ();
        None
      with exn -> Some exn
    in
    let wall = now () -. t_start in
    stats.(slot) <-
      Some
        {
          ws_worker = slot;
          ws_items = !items;
          ws_busy_s = !busy;
          ws_idle_s = Float.max 0. (wall -. !busy);
          ws_steal_attempts = !attempts;
        };
    outcome
  in
  let t_begin = now () in
  let spawned =
    List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  let first = worker 0 () in
  let rest = List.map Domain.join spawned in
  report
    {
      ms_items = n;
      ms_domains = workers;
      ms_wall_s = now () -. t_begin;
      ms_workers = List.filter_map Fun.id (Array.to_list stats);
    };
  (match List.find_opt Option.is_some (first :: rest) with
  | Some (Some exn) -> raise exn
  | _ -> ());
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

let monitored_sequential report f xs n =
  let t_begin = now () in
  let busy = ref 0. in
  let results =
    List.map
      (fun x ->
        let t0 = now () in
        let y = f x in
        busy := !busy +. (now () -. t0);
        y)
      xs
  in
  let wall = now () -. t_begin in
  report
    {
      ms_items = n;
      ms_domains = 1;
      ms_wall_s = wall;
      ms_workers =
        [
          {
            ws_worker = 0;
            ws_items = n;
            ws_busy_s = !busy;
            ws_idle_s = Float.max 0. (wall -. !busy);
            ws_steal_attempts = n;
          };
        ];
    };
  results

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let n = List.length xs in
  match Atomic.get monitor with
  | None ->
      if domains <= 1 || n <= 1 then List.map f xs else plain_map domains f xs n
  | Some report ->
      if domains <= 1 || n <= 1 then monitored_sequential report f xs n
      else monitored_map report domains f xs n
