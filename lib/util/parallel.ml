let available_domains () = Domain.recommended_domain_count ()

type 'b chunk_result = Done of 'b list | Failed of exn

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> available_domains ()
  in
  let n = List.length xs in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let chunk_count = min domains n in
    (* contiguous chunks of near-equal size, preserving order *)
    let arr = Array.of_list xs in
    let chunk i =
      let lo = i * n / chunk_count and hi = (i + 1) * n / chunk_count in
      Array.to_list (Array.sub arr lo (hi - lo))
    in
    let worker items () =
      try Done (List.map f items) with exn -> Failed exn
    in
    (* run the first chunk on the current domain, the rest on spawned ones *)
    let spawned =
      List.init (chunk_count - 1) (fun i ->
          Domain.spawn (worker (chunk (i + 1))))
    in
    let first = worker (chunk 0) () in
    let rest = List.map Domain.join spawned in
    let all = first :: rest in
    (match
       List.find_opt (function Failed _ -> true | Done _ -> false) all
     with
    | Some (Failed exn) -> raise exn
    | _ -> ());
    List.concat_map (function Done l -> l | Failed _ -> assert false) all
  end
