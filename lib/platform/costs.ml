type t = {
  dag : Dag.t;
  platform : Platform.t;
  matrix : float array array;  (* task -> proc -> cost *)
  mean_by_task : float array;
  max_by_task : float array;
  min_by_task : float array;
  mean_all : float;
}

let validate matrix =
  Array.iter
    (Array.iter (fun c ->
         if Float.is_nan c || c < 0. then
           invalid_arg "Costs.create: invalid execution cost"))
    matrix

let derive dag platform matrix =
  validate matrix;
  let mean_by_task = Array.map (fun row -> Stats.mean_array row) matrix in
  let max_by_task = Array.map (fun row -> Array.fold_left Float.max 0. row) matrix in
  let min_by_task =
    Array.map (fun row -> Array.fold_left Float.min infinity row) matrix
  in
  let mean_all =
    if Array.length matrix = 0 then 0.
    else Stats.mean_array mean_by_task
  in
  { dag; platform; matrix; mean_by_task; max_by_task; min_by_task; mean_all }

let create dag platform f =
  let v = Dag.task_count dag and m = Platform.proc_count platform in
  let matrix = Array.init v (fun t -> Array.init m (fun p -> f t p)) in
  derive dag platform matrix

let of_matrix dag platform m =
  let v = Dag.task_count dag and procs = Platform.proc_count platform in
  if Array.length m <> v then invalid_arg "Costs.of_matrix: task arity";
  Array.iter
    (fun row ->
      if Array.length row <> procs then invalid_arg "Costs.of_matrix: proc arity")
    m;
  derive dag platform (Array.map Array.copy m)

let exec t task proc = t.matrix.(task).(proc)
let mean_exec t task = t.mean_by_task.(task)
let max_exec t task = t.max_by_task.(task)
let min_exec t task = t.min_by_task.(task)
let mean_exec_all t = t.mean_all

let scale t s =
  if s <= 0. || Float.is_nan s then invalid_arg "Costs.scale: non-positive factor";
  derive t.dag t.platform (Array.map (Array.map (fun c -> c *. s)) t.matrix)

let dag t = t.dag
let platform t = t.platform
