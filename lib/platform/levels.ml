type t = {
  dag : Dag.t;
  mean_delay : float;
  costs : Costs.t;
  tl : float array;
  bl : float array;
}

let compute costs =
  let dag = Costs.dag costs in
  let platform = Costs.platform costs in
  let mean_delay = Platform.mean_delay platform in
  let n = Dag.task_count dag in
  let tl = Array.make n 0. and bl = Array.make n 0. in
  let w t = Costs.mean_exec costs t in
  let c vol = vol *. mean_delay in
  (* Top levels: forward traversal. *)
  Array.iter
    (fun u ->
      Array.iter
        (fun (v, vol) ->
          let cand = tl.(u) +. w u +. c vol in
          if cand > tl.(v) then tl.(v) <- cand)
        (Dag.succs dag u))
    (Dag.topological_order dag);
  (* Bottom levels: backward traversal. *)
  Array.iter
    (fun u ->
      let best = ref 0. in
      Array.iter
        (fun (v, vol) ->
          let cand = c vol +. bl.(v) in
          if cand > !best then best := cand)
        (Dag.succs dag u);
      bl.(u) <- w u +. !best)
    (Dag.reverse_topological_order dag);
  { dag; mean_delay; costs; tl; bl }

let top_level t task = t.tl.(task)
let bottom_level t task = t.bl.(task)
let priority t task = t.tl.(task) +. t.bl.(task)
let node_weight t task = Costs.mean_exec t.costs task

let edge_weight t ~src ~dst =
  match Dag.volume t.dag ~src ~dst with
  | Some vol -> vol *. t.mean_delay
  | None -> invalid_arg "Levels.edge_weight: no such edge"

let critical_path t =
  let best = ref 0. in
  Array.iteri (fun i tli -> best := Float.max !best (tli +. t.bl.(i))) t.tl;
  !best

let dynamic_top_levels t = Array.copy t.tl
