(** Top levels, bottom levels and list-scheduling priorities.

    The paper (Section 5) prioritises free tasks by [tl(t) + bl(t)] where
    the top level [tl(t)] is the length of a longest path from an entry
    node to [t] (excluding [t]'s execution time) and the bottom level
    [bl(t)] the length of a longest path from [t] to an exit node
    (including [t]'s execution time).  Path lengths use {e average} node
    and edge weights: the node weight of [t] is the mean of [E(t, .)] over
    processors, the edge weight of [(u, v)] is the volume times the mean
    unit delay over distinct processor pairs (as in HEFT and FTSA). *)

type t

val compute : Costs.t -> t
(** Static levels of every task of the DAG attached to the costs. *)

val top_level : t -> Dag.task -> float
(** [tl(t)]; zero for entry tasks. *)

val bottom_level : t -> Dag.task -> float
(** [bl(t)]; equals the average execution time for exit tasks. *)

val priority : t -> Dag.task -> float
(** [tl(t) + bl(t)]. *)

val node_weight : t -> Dag.task -> float
(** Average execution time of the task. *)

val edge_weight : t -> src:Dag.task -> dst:Dag.task -> float
(** Average communication time of the edge; raises [Invalid_argument] if
    the edge does not exist. *)

val critical_path : t -> float
(** Length of a longest path through the average-weighted DAG,
    [max_t (tl(t) + bl(t))]; [0.] for the empty DAG. *)

val dynamic_top_levels : t -> float array
(** A fresh mutable copy of the top levels, for schedulers that update
    priorities as tasks get placed (Algorithm 5.1, line 21). *)
