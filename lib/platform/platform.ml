type proc = int

type t = { delays : float array array; mean_delay : float; max_delay : float }

let off_diagonal_stats delays =
  let m = Array.length delays in
  if m < 2 then (0., 0.)
  else begin
    let sum = ref 0. and maxd = ref 0. in
    for k = 0 to m - 1 do
      for h = 0 to m - 1 do
        if k <> h then begin
          sum := !sum +. delays.(k).(h);
          if delays.(k).(h) > !maxd then maxd := delays.(k).(h)
        end
      done
    done;
    (!sum /. float_of_int (m * (m - 1)), !maxd)
  end

let create ~delays =
  let m = Array.length delays in
  if m = 0 then invalid_arg "Platform.create: no processors";
  Array.iteri
    (fun k row ->
      if Array.length row <> m then invalid_arg "Platform.create: ragged matrix";
      Array.iteri
        (fun h d ->
          if Float.is_nan d || d < 0. then
            invalid_arg "Platform.create: invalid delay";
          if k = h && d <> 0. then
            invalid_arg "Platform.create: non-zero diagonal delay")
        row)
    delays;
  let delays = Array.map Array.copy delays in
  let mean_delay, max_delay = off_diagonal_stats delays in
  { delays; mean_delay; max_delay }

let uniform ~m ~delay =
  if delay < 0. then invalid_arg "Platform.uniform: negative delay";
  let delays =
    Array.init m (fun k -> Array.init m (fun h -> if k = h then 0. else delay))
  in
  create ~delays

let proc_count t = Array.length t.delays

let delay t k h =
  if k < 0 || h < 0 || k >= proc_count t || h >= proc_count t then
    invalid_arg "Platform.delay: bad processor id";
  t.delays.(k).(h)

let comm_time t ~src ~dst ~volume = volume *. delay t src dst
let procs t = List.init (proc_count t) (fun i -> i)
let mean_delay t = t.mean_delay
let max_delay t = t.max_delay
