(** Heterogeneous target platforms.

    Section 2 of the paper: a finite set of processors
    [P = {P1, ..., Pm}], fully connected by a dedicated network.  Link
    heterogeneity is captured by the unit delay [d(Pk, Ph)] — the time to
    ship one unit of data from [Pk] to [Ph] — with [d(Pk, Pk) = 0] so that
    co-located tasks communicate for free.

    A platform is purely about communication; per-task execution times
    live in {!Costs} because they are indexed by the tasks of a specific
    DAG. *)

type proc = int
(** Processor identifier in [\[0, proc_count - 1\]]. *)

type t

val create : delays:float array array -> t
(** [create ~delays] builds a platform over [m = Array.length delays]
    processors where [delays.(k).(h)] is [d(Pk, Ph)].  Raises
    [Invalid_argument] if the matrix is not square, a delay is negative or
    NaN, or a diagonal entry is non-zero. *)

val uniform : m:int -> delay:float -> t
(** Homogeneous network: every distinct pair has unit delay [delay]. *)

val proc_count : t -> int
(** [m], the number of processors. *)

val delay : t -> proc -> proc -> float
(** [delay p k h] is [d(Pk, Ph)]; zero when [k = h]. *)

val comm_time : t -> src:proc -> dst:proc -> volume:float -> float
(** [W = volume * d(src, dst)], the paper's communication weight. *)

val procs : t -> proc list
(** [\[0; ...; m-1\]]. *)

val mean_delay : t -> float
(** Mean unit delay over ordered pairs of distinct processors; [0.] when
    [m < 2].  Used for the average edge weights in task priorities. *)

val max_delay : t -> float
(** Slowest unit delay over ordered pairs of distinct processors; [0.]
    when [m < 2].  Used by the paper's granularity definition. *)
