let sums costs =
  let dag = Costs.dag costs in
  let platform = Costs.platform costs in
  let comp =
    Dag.fold_tasks (fun t acc -> acc +. Costs.max_exec costs t) dag 0.
  in
  let max_delay = Platform.max_delay platform in
  let comm = Dag.fold_edges (fun _ _ vol acc -> acc +. (vol *. max_delay)) dag 0. in
  (comp, comm)

let compute costs =
  let comp, comm = sums costs in
  if comp = 0. then 0. else if comm = 0. then infinity else comp /. comm

let is_coarse_grain costs = compute costs >= 1.

let rescale_to costs g =
  if g <= 0. || Float.is_nan g then invalid_arg "Granularity.rescale_to: target";
  let current = compute costs in
  if current = 0. || not (Float.is_finite current) then
    invalid_arg "Granularity.rescale_to: degenerate current granularity";
  Costs.scale costs (g /. current)
