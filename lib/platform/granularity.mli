(** Task-graph granularity, Section 2 of the paper.

    For a DAG [G] and platform [P], the granularity [g(G, P)] is the ratio
    of the sum over tasks of the {e slowest} computation time of each task
    to the sum over edges of the {e slowest} communication time along each
    edge.  A graph with [g >= 1] is coarse grain, otherwise fine grain. *)

val compute : Costs.t -> float
(** [g(G, P)].  [infinity] when the DAG has no edges (or the network has a
    single processor), [0.] when it has no tasks. *)

val is_coarse_grain : Costs.t -> bool
(** [g(G, P) >= 1]. *)

val rescale_to : Costs.t -> float -> Costs.t
(** [rescale_to costs g] multiplies all execution costs by the unique
    positive factor that makes the granularity exactly [g].  Raises
    [Invalid_argument] if [g <= 0] or if the current granularity is zero
    or not finite (no edges / zero computations). *)
