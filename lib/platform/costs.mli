(** Task execution costs on a heterogeneous platform.

    The paper's computational-heterogeneity function
    [E : V x P -> R+]: [E(t, Pk)] is the execution time of task [t] on
    processor [Pk].  A {!t} is always relative to one DAG and one
    platform and is immutable. *)

type t

val create : Dag.t -> Platform.t -> (Dag.task -> Platform.proc -> float) -> t
(** [create dag platform f] tabulates [f task proc] for every pair.
    Raises [Invalid_argument] if any cost is negative or NaN. *)

val of_matrix : Dag.t -> Platform.t -> float array array -> t
(** [of_matrix dag platform m] where [m.(task).(proc)] is the cost.
    The matrix is copied. *)

val exec : t -> Dag.task -> Platform.proc -> float
(** [E(t, Pk)]. *)

val mean_exec : t -> Dag.task -> float
(** Mean of [E(t, .)] over processors — the average node weight used by
    the top/bottom-level priorities. *)

val max_exec : t -> Dag.task -> float
(** Slowest execution of the task over processors, as used by the paper's
    granularity. *)

val min_exec : t -> Dag.task -> float

val mean_exec_all : t -> float
(** Mean execution cost over all tasks and processors; the normalization
    constant for "normalized latency" in the experiment harness. *)

val scale : t -> float -> t
(** [scale t s] multiplies every execution cost by [s > 0] (used to reach
    a target granularity). *)

val dag : t -> Dag.t
val platform : t -> Platform.t
