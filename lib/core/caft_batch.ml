(* Windowed CAFT (Section 7): among the [window] highest-priority free
   tasks, schedule the one whose best first-replica placement finishes
   earliest under the current network state. *)

let run ?(model = Netstate.One_port) ?fabric ?(seed = 42) ?(window = 10)
    ~epsilon costs =
  if window < 1 then invalid_arg "Caft_batch.run: window < 1";
  let engine = Caft_engine.create ~model ?fabric ~epsilon costs in
  let rng = Rng.create seed in
  let prio = Prio.create ~rng costs in
  (* The window is maintained outside Prio: tasks popped from the
     priority list wait here until actually scheduled. *)
  let pending = ref [] in
  let refill () =
    while List.length !pending < window && Prio.free_count prio > 0 do
      match Prio.pop prio with
      | Some task -> pending := task :: !pending
      | None -> ()
    done
  in
  let rec loop () =
    refill ();
    match !pending with
    | [] ->
        if not (Prio.is_done prio) then
          failwith "Caft_batch.run: no free task but tasks remain"
    | candidates ->
        (* pick the window task that best fits the current state *)
        let best =
          List.fold_left
            (fun best task ->
              let finish = Caft_engine.estimate_finish engine task in
              match best with
              | Some (bf, _) when bf <= finish -> best
              | _ -> Some (finish, task))
            None candidates
        in
        let task = match best with Some (_, t) -> t | None -> assert false in
        Caft_engine.schedule_task engine task;
        pending := List.filter (fun t -> t <> task) !pending;
        Prio.mark_scheduled prio task
          ~completion:(Caft_engine.completion_lower engine task);
        loop ()
  in
  loop ();
  let name =
    match model with
    | Netstate.One_port -> Printf.sprintf "CAFT-batch%d" window
    | Netstate.Macro_dataflow -> Printf.sprintf "CAFT-batch%d-macro" window
    | Netstate.Multiport k -> Printf.sprintf "CAFT-batch%d-mp%d" window k
  in
  Caft_engine.to_schedule ~algorithm:name engine
