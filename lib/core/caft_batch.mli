(** Batched CAFT — the paper's Section 7 "further work" variant.

    "Instead of considering a single task (the one with highest priority)
    and assigning all its replicas to the currently best available
    resources, why not consider say, 10 ready tasks, and assign all their
    replicas in the same decision making procedure?  The idea would be
    \[...\] to better load balance processor and link usage."

    This scheduler keeps a window of the [window] highest-priority free
    tasks.  At each step it simulates, for every task of the window, the
    best first-replica placement under the {e current} network state, and
    schedules the task that can finish earliest — i.e. the one that best
    exploits the processors and links that are free right now — instead
    of blindly following priority order.  Placement itself is the same
    support-set one-to-one engine as {!Caft}, so fault tolerance is
    unchanged.

    With [window = 1] the algorithm degenerates to exactly {!Caft}. *)

val run :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?seed:int ->
  ?window:int ->
  epsilon:int ->
  Costs.t ->
  Schedule.t
(** [run ~epsilon costs] with [window] defaulting to 10 (the paper's
    suggestion).  Raises [Invalid_argument] on [window < 1] or fewer than
    [epsilon + 1] processors. *)
