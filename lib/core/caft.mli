(** CAFT — the Contention-Aware Fault Tolerant scheduling algorithm, the
    primary contribution of the paper (Section 5, Algorithms 5.1 and 5.2).

    CAFT is a list scheduler under the bidirectional one-port model that
    places [epsilon + 1] replicas of every task on distinct processors
    while {e drastically} reducing the replication communication overhead:
    instead of every replica of a predecessor sending to every replica of
    a successor (the [e(epsilon+1)^2] message blow-up of FTSA and FTBAR),
    CAFT pairs predecessor replicas with successor replicas one-to-one
    whenever fault tolerance allows it.

    For the current task [t]:

    + a processor is a {e singleton} if it hosts exactly one replica of
      one predecessor of [t]; [Bbar(tj)] is the set of replicas of
      predecessor [tj] on singleton processors, and
      [theta = min_j |Bbar(tj)|] ([epsilon + 1] for entry tasks);
    + [theta] replicas of [t] are placed by the {e one-to-one mapping}
      procedure: for every candidate processor, each predecessor
      contributes its replica with the earliest estimated communication
      finish on the link (the head of the sorted [Bbar] list), the mapping
      is simulated, and the (processor, heads) pair with the earliest
      finish wins.  The winning processor and the head processors are then
      {e locked} (equation (7)) so later replicas of [t] use disjoint
      resources — this is what makes one-to-one replication resist
      failures (Proposition 5.2);
    + the remaining [epsilon + 1 - theta] replicas fall back to FTSA-style
      full replication of incoming messages, which is always safe.

    When locking exhausts the platform (small [m], large [epsilon] and
    fan-in — a case the paper leaves implicit), the lock is relaxed to
    space exclusion only: processors already hosting a replica of [t]
    remain forbidden, mere message sources become eligible again
    (DESIGN.md, "Locked-set exhaustion").

    On fork and out-forest graphs the schedule carries at most
    [e(epsilon+1)] inter-processor messages (Proposition 5.1) — see the
    property tests and the message-count benchmarks. *)

val run :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?one_to_one:bool ->
  ?seed:int ->
  epsilon:int ->
  Costs.t ->
  Schedule.t
(** [run ~epsilon costs] builds the CAFT schedule.  [model] defaults to
    {!Netstate.One_port} (the model CAFT is designed for;
    [Macro_dataflow] is accepted for ablation studies).
    [one_to_one:false] disables the one-to-one mapping (every input falls
    back to full replication; algorithm name "CAFT-full") — the ablation
    that isolates the contribution of the paper's core mechanism.  [seed]
    (default 42) drives random tie-breaking only.  Raises
    [Invalid_argument] if the platform has fewer than [epsilon + 1]
    processors. *)

val run_stream :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?one_to_one:bool ->
  ?seed:int ->
  epsilon:int ->
  path:string ->
  Costs.t ->
  unit
(** [run_stream ~epsilon ~path costs] builds the same CAFT schedule as
    {!run} — identical placements, identical random tie-breaking — but
    streams it to [path] in the {!Schedule_io} format instead of
    materializing a {!Schedule.t}: each replica's communication record is
    written as soon as the replica is placed and then dropped from
    memory, so peak heap stays O(n + frontier) instead of O(edges).  The
    file parses back with {!Schedule_io.of_file} to a schedule equal to
    [run]'s (replica lines appear in placement order; parsing
    renormalizes).  The million-task entry point. *)

val fault_free :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?seed:int ->
  Costs.t ->
  Schedule.t
(** CAFT with [epsilon = 0], the paper's "FaultFree-CAFT" reference curve
    (which reduces to HEFT); algorithm name "CAFT-ff". *)
