(** The CAFT placement engine, shared by {!Caft} (strict priority order,
    Algorithm 5.1) and {!Caft_batch} (windowed task selection, the
    Section 7 "further work" variant).

    The engine owns the network state, the placed replicas and the
    per-replica processor {e support sets} (see {!Caft} and DESIGN.md).
    Callers decide the task order; {!schedule_task} places the
    [epsilon + 1] replicas of one free task — every predecessor must have
    been scheduled already. *)

type t

val create :
  ?model:Netstate.model ->
  ?fabric:Netstate.fabric ->
  ?insertion:bool ->
  ?one_to_one:bool ->
  ?on_place:(Schedule.replica -> unit) ->
  epsilon:int ->
  Costs.t ->
  t
(** Fresh engine.  [one_to_one] (default [true]) enables the one-to-one
    mapping; with [false] every input uses full replication — the
    ablation that isolates the paper's core mechanism.  Raises
    [Invalid_argument] if the platform has fewer than [epsilon + 1]
    processors.

    [on_place] is called once per committed replica, immediately after
    its support set is recorded — the streaming hook.  After the callback
    returns, the engine drops the replica's stored communication record
    ([r_inputs]): later placements only read a replica's task, index,
    processor and finish time, so the placement decisions (and any
    schedule streamed from the callback) are byte-identical while the
    O(edges) supply lists stop accumulating.  {!to_schedule} must not be
    used on an engine created with [on_place]. *)

val epsilon : t -> int
val dag : t -> Dag.t

val schedule_task : t -> Dag.task -> unit
(** Place all replicas of a free task: per predecessor, a one-to-one head
    when a support-disjoint replica exists and the combined support is
    admissible, full replication otherwise.  Raises if a predecessor is
    unscheduled. *)

val estimate_finish : t -> Dag.task -> float
(** Earliest finish the {e first} replica of the task could achieve right
    now (simulated, nothing committed).  Used by the batch variant to
    pick, inside a window of ready tasks, the task that best fits the
    current processor/link availability. *)

val completion_lower : t -> Dag.task -> float
(** Earliest finish among the placed replicas of a scheduled task. *)

val support : t -> Dag.task -> int -> Bitset.t
(** The support set of a placed replica: the processors whose joint
    survival guarantees the replica completes (its own processor plus,
    transitively, the supports of its one-to-one sources).  Exposed for
    white-box tests of the disjointness invariant; a fresh copy is
    returned.  Raises [Invalid_argument] on an unplaced replica. *)

val to_schedule : algorithm:string -> t -> Schedule.t
(** Freeze the engine's placements into a schedule (all tasks must have
    been scheduled). *)
