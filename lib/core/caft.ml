(* CAFT, Algorithm 5.1: list scheduling in dynamic [tl + bl] priority
   order, each task placed by the one-to-one/full-replication engine
   (Algorithm 5.2 with the support-set strengthening — see Caft_engine). *)

let algorithm_name ~one_to_one ~model =
  let base = if one_to_one then "CAFT" else "CAFT-full" in
  match model with
  | Netstate.One_port -> base
  | Netstate.Macro_dataflow -> base ^ "-macro"
  | Netstate.Multiport k -> Printf.sprintf "%s-mp%d" base k

(* The Algorithm 5.1 list-scheduling loop, shared by the in-memory and
   streaming entry points (which differ only in engine construction and
   in how the placements leave the engine). *)
let place_all engine ~rng costs =
  let prio =
    Obs_prof.phase ~trace:false ~cat:"sched" "caft.priorities" (fun () ->
        Obs_trace.with_span ~cat:"sched" "priorities" (fun () ->
            Prio.create ~rng costs))
  in
  let rec loop () =
    match Prio.pop prio with
    | None ->
        if not (Prio.is_done prio) then
          failwith "Caft.run: no free task but tasks remain (DAG inconsistency)"
    | Some task ->
        Obs_trace.with_span ~cat:"sched" "place"
          ~args:(fun () -> [ ("task", Json.Int task) ])
          (fun () -> Caft_engine.schedule_task engine task);
        Prio.mark_scheduled prio task
          ~completion:(Caft_engine.completion_lower engine task);
        loop ()
  in
  Obs_prof.phase ~trace:false ~cat:"sched" "caft.place" loop

let run ?(model = Netstate.One_port) ?fabric ?insertion ?(one_to_one = true)
    ?(seed = 42) ~epsilon costs =
  let engine =
    Caft_engine.create ~model ?fabric ?insertion ~one_to_one ~epsilon costs
  in
  place_all engine ~rng:(Rng.create seed) costs;
  let name = algorithm_name ~one_to_one ~model in
  Obs_prof.phase ~trace:false ~cat:"sched" "caft.freeze" (fun () ->
      Caft_engine.to_schedule ~algorithm:name engine)

let run_stream ?(model = Netstate.One_port) ?fabric
    ?(insertion = false) ?(one_to_one = true) ?(seed = 42) ~epsilon ~path costs
    =
  let name = algorithm_name ~one_to_one ~model in
  let writer =
    Schedule_io.stream_writer ~insertion ~algorithm:name ~epsilon ~model ~path
      costs
  in
  Fun.protect
    ~finally:(fun () -> Schedule_io.stream_close writer)
    (fun () ->
      let engine =
        Caft_engine.create ~model ?fabric ~insertion ~one_to_one
          ~on_place:(Schedule_io.stream_replica writer)
          ~epsilon costs
      in
      place_all engine ~rng:(Rng.create seed) costs)

let fault_free ?model ?fabric ?insertion ?seed costs =
  let sched = run ?model ?fabric ?insertion ?seed ~epsilon:0 costs in
  Schedule.create
    ~insertion:(Schedule.insertion sched)
    ~algorithm:"CAFT-ff" ~epsilon:0 ~model:(Schedule.model sched)
    ~costs:(Schedule.costs sched)
    (Schedule.all_replicas sched)
