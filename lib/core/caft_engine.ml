(* Placement engine implementing Algorithms 5.1/5.2 of the paper with the
   support-set strengthening.  See Caft's interface and DESIGN.md for the
   full rationale; in brief:

   Support sets.  For a placed replica [r], [support(r)] is a set of
   processors such that, whenever no processor of [support(r)] crashes
   (and at most [epsilon] processors crash in total), [r] completes:

   - a replica input that receives from *every* replica of a predecessor
     survives as long as the replica's own processor does, because by
     induction the predecessor task completes on some surviving processor
     which then feeds it — contribution to the support: nothing;
   - a one-to-one input depends on its single chosen source, so it
     contributes the source's whole support.

   A task resists [epsilon] arbitrary failures if the supports of its
   [epsilon + 1] replicas are pairwise disjoint: any [epsilon] crashes
   miss at least one support entirely (and the induction closes because
   this holds for every task).  The paper locks only the head processors
   of the current step (equation (7)), which leaves chains of one-to-one
   mappings vulnerable; locking the whole support restores
   Proposition 5.2.

   The placement loop generalises Algorithm 5.2 in three ways, each of
   which only *increases* the opportunities for one-to-one communication
   while preserving the guarantee:

   - the head pool of a predecessor is every placed replica whose support
     is disjoint from the locked set, not just the replicas on singleton
     processors (singletons are the depth-1 approximation of "lockable
     without collateral", which the support test answers exactly);
   - the one-to-one/full-replication decision is made per predecessor
     rather than per replica, so a task keeps cheap one-to-one inputs for
     the predecessors that allow it even when another predecessor has run
     out of disjoint replicas;
   - a candidate placement is admissible only if its support leaves at
     least one unlocked processor per sibling replica still to place,
     which keeps the invariant "unlocked >= replicas remaining" and rules
     out the locked-set exhaustion the paper leaves implicit.

   Explicit head popping is subsumed: once a head feeds one sibling, its
   support is locked and the disjointness filter removes it from every
   later pool. *)

(* Observability: every committed placement decision is counted — one
   increment per (replica, predecessor) input, so over a whole run
   [caft.one_to_one + caft.full_replication] equals the number of
   scheduled inputs, (epsilon+1) * edge_count.  Trial bookings are muted
   with [Obs_metrics.suppressed] so Netstate's counters only see
   committed reservations; only [caft.candidates_evaluated] counts the
   trials themselves. *)
let m_one_to_one =
  Obs_metrics.counter ~help:"inputs mapped one-to-one (single head)"
    "caft.one_to_one"

let m_full_replication =
  Obs_metrics.counter ~help:"inputs demoted to full replication"
    "caft.full_replication"

let m_candidates =
  Obs_metrics.counter ~help:"candidate placements evaluated (trial bookings)"
    "caft.candidates_evaluated"

let m_pruned =
  Obs_metrics.counter
    ~help:
      "candidate placements skipped because their finish-time lower bound \
       could not beat the incumbent"
    "caft.candidates_pruned"

let m_support_size =
  Obs_metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
    ~help:"locked support-set size of each committed replica"
    "caft.support_size"

(* The input plan of one candidate placement: per predecessor, either a
   single one-to-one source or full replication. *)
type input_mode = One_to_one of Schedule.replica | Full

type t = {
  ws : Workspace.t;
  net : Netstate.t;
  dag : Dag.t;
  m : int;
  epsilon : int;
  costs : Costs.t;
  one_to_one : bool;
  (* supports.(task * (epsilon + 1) + idx): flattened rather than an array
     of rows so a million-task run allocates one array, not n tiny ones *)
  supports : Bitset.t option array;
  (* Scratch state reused across every candidate evaluation — the inner
     loop runs once per (task, replica, candidate processor) and used to
     allocate a support bitset, a mode array and O(preds) closures per
     call.  All of it lives on the engine now:

     - [scratch_modes]: the input plan under construction (one slot per
       predecessor, sized to the DAG's max in-degree); copied with
       [Array.sub] only when a candidate becomes the incumbent;
     - [scratch_support]: the combined support of the plan;
     - [est_val]/[est_w]/[est_stamp]: memo table for the leg finish
       estimate and leg duration, keyed by (predecessor slot, replica
       index), valid while [stamp] matches — [plan_for] fills it and the
       lower bounds reuse it, which is exact because the network state
       does not change between the two (the trial booking happens
       afterwards, and undoes itself). *)
  scratch_modes : input_mode array;
  scratch_support : Bitset.t;
  (* [plan_for] settling state: per-processor coverage counts of the
     one-to-one head supports, per-slot head cardinalities and the
     demotion order under construction (see the settle loop) *)
  scratch_cover : int array;
  scratch_cards : int array;
  scratch_order : int array;
  est_val : float array;
  est_w : float array;
  est_stamp : int array;
  mutable stamp : int;
  platform : Platform.t;
  (* streaming hook: called once per committed replica; when set, the
     stored supply list is dropped right after the callback (placement
     never reads it back — see the interface) *)
  on_place : (Schedule.replica -> unit) option;
  (* one-port receive serialization holds: the per-candidate lower bounds
     may add the recv-port chaining term (see [ser_term]) *)
  one_port : bool;
}

let max_in_degree dag =
  let worst = ref 0 in
  for task = 0 to Dag.task_count dag - 1 do
    worst := max !worst (Array.length (Dag.preds dag task))
  done;
  !worst

let create ?model ?fabric ?insertion ?(one_to_one = true) ?on_place ~epsilon
    costs =
  let ws = Workspace.create ?model ?fabric ?insertion ~epsilon costs in
  let dag = Workspace.dag ws in
  let max_preds = max_in_degree dag in
  let est_cells = max 1 (max_preds * (epsilon + 1)) in
  let m = Platform.proc_count (Workspace.platform ws) in
  {
    ws;
    net = Workspace.net ws;
    dag;
    m;
    epsilon;
    costs;
    one_to_one;
    supports = Array.make (Dag.task_count dag * (epsilon + 1)) None;
    scratch_modes = Array.make (max 1 max_preds) Full;
    scratch_support = Bitset.create m;
    scratch_cover = Array.make m 0;
    scratch_cards = Array.make (max 1 max_preds) 0;
    scratch_order = Array.make (max 1 max_preds) 0;
    est_val = Array.make est_cells 0.;
    est_w = Array.make est_cells 0.;
    est_stamp = Array.make est_cells 0;
    stamp = 0;
    platform = Workspace.platform ws;
    on_place;
    one_port = Netstate.model (Workspace.net ws) = Netstate.One_port;
  }

let epsilon t = t.epsilon
let dag t = t.dag

let support_of t task idx =
  match t.supports.((task * (t.epsilon + 1)) + idx) with
  | Some s -> s
  | None -> invalid_arg "Caft_engine: support of unplaced replica"

let exec t task p = Costs.exec t.costs task p

(* Estimated finish time of the communication shipping [volume] units from
   replica [r] to processor [dst] under the current network state — the
   sort key of Algorithm 5.2 line 3.  Co-located replicas "finish" when
   the replica itself does.  Cached per (predecessor slot, replica index)
   for the candidate processor stamped on the engine; the cache is exact,
   not approximate: between [plan_for] and the lower bounds for one
   candidate nothing touches the network state, so recomputing would
   produce the identical float.  [est_w] keeps the leg duration alongside
   ([-1.] for a co-located replica) so the one-port serialization bounds
   never recompute [comm_time]. *)
let est_cached t ~slot ~volume ~dst (r : Schedule.replica) =
  let cell = (slot * (t.epsilon + 1)) + r.Schedule.r_index in
  if t.est_stamp.(cell) = t.stamp then t.est_val.(cell)
  else begin
    let src = r.Schedule.r_proc in
    let v =
      if src = dst then begin
        t.est_w.(cell) <- -1.;
        r.Schedule.r_finish
      end
      else begin
        let w = Platform.comm_time t.platform ~src ~dst ~volume in
        let start =
          Float.max (Netstate.send_free t.net src)
            (Float.max r.Schedule.r_finish
               (Netstate.link_ready t.net ~src ~dst))
        in
        t.est_w.(cell) <- w;
        start +. w
      end
    in
    t.est_val.(cell) <- v;
    t.est_stamp.(cell) <- t.stamp;
    v
  end

(* Leg duration of the replica whose estimate was just computed with
   [est_cached] under the current stamp ([-1.] if co-located). *)
let cached_w t ~slot (r : Schedule.replica) =
  t.est_w.((slot * (t.epsilon + 1)) + r.Schedule.r_index)

(* Build the input plan for candidate processor [p] given the supports
   locked by the sibling replicas: greedily give every predecessor its
   cheapest support-disjoint head, then demote the largest-support heads
   to full replication until the combined support is admissible.  The plan
   is written into [t.scratch_modes] (first [Array.length preds] slots)
   and the combined support into [t.scratch_support]; both are only valid
   until the next call. *)
let plan_for t ~preds ~locked ~remaining_after task p =
  ignore task;
  let np = Array.length preds in
  for slot = 0 to np - 1 do
    let pred, volume = preds.(slot) in
    let mode =
      if not t.one_to_one then Full
      else begin
        let best = ref None in
        for i = 0 to Workspace.placed_count t.ws pred - 1 do
          let r = Workspace.get_placed t.ws pred i in
          if Bitset.disjoint (support_of t pred r.Schedule.r_index) locked
          then begin
            let key = est_cached t ~slot ~volume ~dst:p r in
            match !best with
            | Some (bkey, _) when bkey <= key -> ()
            | _ -> best := Some (key, r)
          end
        done;
        match !best with Some (_, r) -> One_to_one r | None -> Full
      end
    in
    t.scratch_modes.(slot) <- mode
  done;
  (* Settle admissibility. *)
  let support () =
    let s = t.scratch_support in
    Bitset.clear s;
    Bitset.add s p;
    for slot = 0 to np - 1 do
      match t.scratch_modes.(slot) with
      | One_to_one r ->
          Bitset.union_into ~into:s
            (support_of t r.Schedule.r_task r.Schedule.r_index)
      | Full -> ()
    done;
    s
  in
  let admissible s = t.m - Bitset.cardinal_union locked s >= remaining_after in
  let s = support () in
  if admissible s then Some s
  else begin
    (* Demotion path: turn heads into full replication until the combined
       support leaves one unlocked processor per sibling still to place.
       Head support cardinalities are static while settling (demotion
       never changes a placed replica's support), so the demotion
       sequence the old one-at-a-time largest-head rescan produced —
       largest cardinality first, earliest slot on ties — is fixed up
       front; the admissibility test is maintained through per-processor
       coverage counts, O(support) per demotion instead of an O(np)
       support rebuild.  Pure set/integer arithmetic: the demoted slot
       set, hence the returned plan and support, is identical to the old
       O(np^2) loop — which made the wide fan-in joins of the staged
       family quadratic in their in-degree.  The no-demotion common case
       above never pays for the counts. *)
    let cover = t.scratch_cover in
    Array.fill cover 0 t.m 0;
    (* covered = |locked ∪ {p} ∪ (union of one-to-one head supports)| *)
    let covered = ref (Bitset.cardinal_union locked s) in
    let n_o2o = ref 0 in
    for slot = 0 to np - 1 do
      match t.scratch_modes.(slot) with
      | One_to_one r ->
          let hs = support_of t r.Schedule.r_task r.Schedule.r_index in
          t.scratch_cards.(slot) <- Bitset.cardinal hs;
          t.scratch_order.(!n_o2o) <- slot;
          incr n_o2o;
          Bitset.iter (fun q -> cover.(q) <- cover.(q) + 1) hs
      | Full -> ()
    done;
    let admissible () = t.m - !covered >= remaining_after in
    if !n_o2o > 0 then begin
      let order = Array.sub t.scratch_order 0 !n_o2o in
      Array.sort
        (fun a b ->
          let c = compare t.scratch_cards.(b) t.scratch_cards.(a) in
          if c <> 0 then c else compare a b)
        order;
      let i = ref 0 in
      while (not (admissible ())) && !i < !n_o2o do
        let slot = order.(!i) in
        (match t.scratch_modes.(slot) with
        | One_to_one r ->
            t.scratch_modes.(slot) <- Full;
            Bitset.iter
              (fun q ->
                cover.(q) <- cover.(q) - 1;
                if cover.(q) = 0 && (not (Bitset.mem locked q)) && q <> p then
                  decr covered)
              (support_of t r.Schedule.r_task r.Schedule.r_index)
        | Full -> assert false (* order holds one-to-one slots only *));
        incr i
      done
    end;
    if not (admissible ()) then None
      (* even {p} inadmissible: p cannot host this replica *)
    else Some (support ())
  end

let inputs_of_plan t ~preds modes =
  List.init (Array.length preds) (fun slot ->
      let pred, volume = preds.(slot) in
      match modes.(slot) with
      | One_to_one r -> (pred, [ Workspace.source_of_replica t.ws r ~volume ])
      | Full ->
          ( pred,
            List.map
              (fun r -> Workspace.source_of_replica t.ws r ~volume)
              (Workspace.placed t.ws pred) ))

(* The intra-processor suppression rule (a co-located supplier mutes the
   remote copies) is only safe for full-replication inputs when the
   co-located supplier cannot starve while [p] is alive, i.e. its support
   is exactly {p}. *)
let colocate_exclusive_ok t ~preds modes p =
  let np = Array.length preds in
  let rec slots_ok slot =
    slot >= np
    ||
    match modes.(slot) with
    | One_to_one _ -> slots_ok (slot + 1)
    | Full ->
        let pred, _ = preds.(slot) in
        let count = Workspace.placed_count t.ws pred in
        let rec find i =
          if i >= count then true
          else begin
            let r = Workspace.get_placed t.ws pred i in
            if r.Schedule.r_proc = p then
              Bitset.equal_singleton (support_of t pred r.Schedule.r_index) p
            else find (i + 1)
          end
        in
        find 0 && slots_ok (slot + 1)
  in
  slots_ok 0

let book t task p ~preds modes =
  if Array.length preds = 0 then
    Netstate.book_exec_only t.net ~proc:p ~exec:(exec t task p)
  else
    Netstate.book_replica t.net ~proc:p ~exec:(exec t task p)
      ~inputs:(inputs_of_plan t ~preds modes)
      ~colocate_exclusive:(colocate_exclusive_ok t ~preds modes p)

(* Admissible lower bound on the finish time the trial booking of
   candidate [p] could achieve under the plan [modes].  Every term is a
   lower bound on the corresponding term of the real booking (see
   DESIGN.md, "Candidate pruning"):

   - the execution cannot start before the processor is ready (append
     mode only — insertion may gap-fill earlier, so the term is dropped);
   - each predecessor's data cannot be ready before its cheapest leg
     estimate: a one-to-one input before the estimate of its chosen head
     (bookings within the trial only push SF/R/RF forward), a
     full-replication input before the cheapest estimate over all placed
     replicas (actual readiness is a min over arrivals, each at least its
     replica's estimate);
   - one-port receive serialization: a predecessor with no replica
     co-located with [p] needs at least one whole leg across [p]'s single
     receive port, contributing at least its cheapest leg duration.
     Summed over such predecessors these legs are distinct and chain on
     the same port starting no earlier than [recv_free p], so

       b_finish >= recv_free p + sum_i w_min_i + exec

     is a true lower bound of the booking (arrival chaining in
     [Netstate.book_replica]); it is what prunes far-away candidates of
     the wide fan-in gathers without a trial.  The chain anchored at
     [recv_free] only exists if at least one predecessor actually crosses
     the port, and only under the one-port model — multiport splits the
     chain over k slots and macro-dataflow has no receive port at all.

   The bound uses the same float operations as the booking (max, +.),
   which are monotone, so [finish_lower_bound <= booked.b_finish] holds
   exactly, not just approximately — pruning on it can never skip a
   candidate that would have beaten the incumbent, and the argmin (ties
   kept on the incumbent) is byte-identical to exhaustive evaluation. *)
let finish_lower_bound t p ~preds ~e modes =
  let data_lb = ref 0. in
  let ser_sum = ref 0. in
  let any_remote = ref false in
  for slot = 0 to Array.length preds - 1 do
    let pred, volume = preds.(slot) in
    let lb =
      match modes.(slot) with
      | One_to_one r ->
          let est = est_cached t ~slot ~volume ~dst:p r in
          if t.one_port then begin
            (* the chosen head is that predecessor's only source *)
            let w = cached_w t ~slot r in
            if w >= 0. then begin
              any_remote := true;
              ser_sum := !ser_sum +. w
            end
          end;
          est
      | Full ->
          let best = ref infinity in
          let local = ref false in
          let w_min = ref infinity in
          for i = 0 to Workspace.placed_count t.ws pred - 1 do
            let r = Workspace.get_placed t.ws pred i in
            best := Float.min !best (est_cached t ~slot ~volume ~dst:p r);
            if t.one_port then begin
              let w = cached_w t ~slot r in
              if w < 0. then local := true
              else w_min := Float.min !w_min w
            end
          done;
          if t.one_port && not !local then begin
            (* a co-located replica may feed the input through the local
               supply without ever crossing the port *)
            any_remote := true;
            ser_sum := !ser_sum +. !w_min
          end;
          !best
    in
    data_lb := Float.max !data_lb lb
  done;
  let data_lb =
    if !any_remote then
      Float.max !data_lb (Netstate.recv_free t.net p +. !ser_sum)
    else !data_lb
  in
  let ready_lb =
    if Netstate.insertion t.net then 0. else Netstate.proc_ready t.net p
  in
  Float.max ready_lb data_lb +. e

(* Evaluate every unlocked processor and return the placement with the
   earliest finish, without committing anything.  Candidates whose lower
   bound cannot beat the incumbent are skipped without a trial booking. *)
(* Weakening of {!finish_lower_bound} that needs no input plan: for every
   predecessor, the data cannot be ready before the cheapest leg estimate
   over *all* its placed replicas — a lower bound on both the one-to-one
   estimate (whose head is drawn from a subset) and the full-replication
   minimum (which it equals).  Combined with the {!ser_term} chain under
   one-port.  Monotone accumulation, so the check can bail out per
   predecessor: once the partial bound reaches the incumbent no later
   predecessor can lower it. *)
let weak_prune t p ~preds ~e ~bound =
  let ready_lb =
    if Netstate.insertion t.net then 0. else Netstate.proc_ready t.net p
  in
  if Float.max ready_lb 0. +. e >= bound then true
  else begin
    let lb = ref ready_lb in
    let rf0 = if t.one_port then Netstate.recv_free t.net p else 0. in
    let ser_sum = ref 0. in
    let any_remote = ref false in
    let np = Array.length preds in
    let slot = ref 0 in
    let dead = ref false in
    while (not !dead) && !slot < np do
      let pred, volume = preds.(!slot) in
      let best = ref infinity in
      let local = ref false in
      let w_min = ref infinity in
      for i = 0 to Workspace.placed_count t.ws pred - 1 do
        let r = Workspace.get_placed t.ws pred i in
        best := Float.min !best (est_cached t ~slot:!slot ~volume ~dst:p r);
        if t.one_port then begin
          let w = cached_w t ~slot:!slot r in
          if w < 0. then local := true else w_min := Float.min !w_min w
        end
      done;
      lb := Float.max !lb !best;
      if t.one_port && not !local then begin
        any_remote := true;
        ser_sum := !ser_sum +. !w_min
      end;
      let ser = if !any_remote then rf0 +. !ser_sum else 0. in
      if Float.max !lb ser +. e >= bound then dead := true;
      incr slot
    done;
    !dead
  end

let best_placement t ~preds ~locked ~remaining_after task =
  let evaluated = ref 0 and pruned = ref 0 in
  let np = Array.length preds in
  let best = ref None in
  Obs_metrics.suppressed (fun () ->
      (* unlocked processors in ascending order (the fold order of the
         previous list-based walk — the argmin tie-break depends on it) *)
      for p = 0 to t.m - 1 do
        if not (Bitset.mem locked p) then begin
          t.stamp <- t.stamp + 1;
          let e = exec t task p in
          (* staged pruning: each stage's bound under-approximates the
             next, so a candidate pruned here is exactly one the
             exhaustive fold would have rejected — argmin unchanged *)
          match !best with
          | Some (bf, _, _, _) when weak_prune t p ~preds ~e ~bound:bf ->
              incr pruned
          | _ -> (
              match plan_for t ~preds ~locked ~remaining_after task p with
              | None -> ()
              | Some s -> (
                  let modes = t.scratch_modes in
                  match !best with
                  | Some (bf, _, _, _)
                    when finish_lower_bound t p ~preds ~e modes >= bf ->
                      incr pruned
                  | _ -> (
                      incr evaluated;
                      let booked =
                        Netstate.with_trial t.net (fun () ->
                            book t task p ~preds modes)
                      in
                      match !best with
                      | Some (bf, _, _, _) when bf <= booked.Netstate.b_finish
                        ->
                          ()
                      | _ ->
                          (* the incumbent must survive the next
                             candidate's plan_for, so snapshot the
                             scratch plan/support *)
                          best :=
                            Some
                              ( booked.Netstate.b_finish,
                                p,
                                Array.sub modes 0 np,
                                Bitset.copy s ))))
        end
      done);
  (* recorded outside [suppressed], which mutes the current domain *)
  Obs_metrics.incr ~by:!evaluated m_candidates;
  Obs_metrics.incr ~by:!pruned m_pruned;
  !best

let schedule_task t task =
  let preds = Dag.preds t.dag task in
  (* union of the supports of the replicas of [task] placed so far *)
  let locked = Bitset.create t.m in
  let place_one ~remaining_after =
    match best_placement t ~preds ~locked ~remaining_after task with
    | None ->
        (* unreachable: the admissibility invariant keeps at least one
           unlocked processor per remaining replica, and the all-Full plan
           on such a processor is always admissible *)
        failwith "Caft_engine: no candidate processor (invariant broken)"
    | Some (_, p, modes, s) ->
        let booked = book t task p ~preds modes in
        let r = Workspace.place t.ws ~task ~proc:p booked in
        Array.iter
          (fun mode ->
            match mode with
            | One_to_one _ -> Obs_metrics.incr m_one_to_one
            | Full -> Obs_metrics.incr m_full_replication)
          modes;
        Obs_metrics.observe m_support_size
          (float_of_int (Bitset.cardinal s));
        t.supports.((task * (t.epsilon + 1)) + r.Schedule.r_index) <- Some s;
        Bitset.union_into ~into:locked s;
        match t.on_place with
        | None -> ()
        | Some f ->
            f r;
            Workspace.strip_inputs t.ws ~task ~index:r.Schedule.r_index
  in
  for i = 1 to t.epsilon + 1 do
    place_one ~remaining_after:(t.epsilon + 1 - i)
  done

let estimate_finish t task =
  let preds = Dag.preds t.dag task in
  let locked = Bitset.create t.m in
  match best_placement t ~preds ~locked ~remaining_after:t.epsilon task with
  | Some (finish, _, _, _) -> finish
  | None -> infinity

let completion_lower t task = Workspace.completion_lower t.ws task
let support t task idx = Bitset.copy (support_of t task idx)
let to_schedule ~algorithm t = Workspace.to_schedule ~algorithm t.ws
