(* Placement engine implementing Algorithms 5.1/5.2 of the paper with the
   support-set strengthening.  See Caft's interface and DESIGN.md for the
   full rationale; in brief:

   Support sets.  For a placed replica [r], [support(r)] is a set of
   processors such that, whenever no processor of [support(r)] crashes
   (and at most [epsilon] processors crash in total), [r] completes:

   - a replica input that receives from *every* replica of a predecessor
     survives as long as the replica's own processor does, because by
     induction the predecessor task completes on some surviving processor
     which then feeds it — contribution to the support: nothing;
   - a one-to-one input depends on its single chosen source, so it
     contributes the source's whole support.

   A task resists [epsilon] arbitrary failures if the supports of its
   [epsilon + 1] replicas are pairwise disjoint: any [epsilon] crashes
   miss at least one support entirely (and the induction closes because
   this holds for every task).  The paper locks only the head processors
   of the current step (equation (7)), which leaves chains of one-to-one
   mappings vulnerable; locking the whole support restores
   Proposition 5.2.

   The placement loop generalises Algorithm 5.2 in three ways, each of
   which only *increases* the opportunities for one-to-one communication
   while preserving the guarantee:

   - the head pool of a predecessor is every placed replica whose support
     is disjoint from the locked set, not just the replicas on singleton
     processors (singletons are the depth-1 approximation of "lockable
     without collateral", which the support test answers exactly);
   - the one-to-one/full-replication decision is made per predecessor
     rather than per replica, so a task keeps cheap one-to-one inputs for
     the predecessors that allow it even when another predecessor has run
     out of disjoint replicas;
   - a candidate placement is admissible only if its support leaves at
     least one unlocked processor per sibling replica still to place,
     which keeps the invariant "unlocked >= replicas remaining" and rules
     out the locked-set exhaustion the paper leaves implicit.

   Explicit head popping is subsumed: once a head feeds one sibling, its
   support is locked and the disjointness filter removes it from every
   later pool. *)

(* Observability: every committed placement decision is counted — one
   increment per (replica, predecessor) input, so over a whole run
   [caft.one_to_one + caft.full_replication] equals the number of
   scheduled inputs, (epsilon+1) * edge_count.  Trial bookings are muted
   with [Obs_metrics.suppressed] so Netstate's counters only see
   committed reservations; only [caft.candidates_evaluated] counts the
   trials themselves. *)
let m_one_to_one =
  Obs_metrics.counter ~help:"inputs mapped one-to-one (single head)"
    "caft.one_to_one"

let m_full_replication =
  Obs_metrics.counter ~help:"inputs demoted to full replication"
    "caft.full_replication"

let m_candidates =
  Obs_metrics.counter ~help:"candidate placements evaluated (trial bookings)"
    "caft.candidates_evaluated"

let m_pruned =
  Obs_metrics.counter
    ~help:
      "candidate placements skipped because their finish-time lower bound \
       could not beat the incumbent"
    "caft.candidates_pruned"

let m_support_size =
  Obs_metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
    ~help:"locked support-set size of each committed replica"
    "caft.support_size"

(* Estimated finish time of the communication shipping [volume] units from
   replica [r] to processor [p] under the current network state — the sort
   key of Algorithm 5.2 line 3.  Co-located replicas "finish" when the
   replica itself does. *)
let leg_finish_estimate net (r : Schedule.replica) ~volume ~dst =
  let src = r.Schedule.r_proc in
  if src = dst then r.Schedule.r_finish
  else begin
    let platform = Netstate.platform net in
    let w = Platform.comm_time platform ~src ~dst ~volume in
    let start =
      Float.max (Netstate.send_free net src)
        (Float.max r.Schedule.r_finish (Netstate.link_ready net ~src ~dst))
    in
    start +. w
  end

(* The input plan of one candidate placement: per predecessor, either a
   single one-to-one source or full replication. *)
type input_mode = One_to_one of Schedule.replica | Full

type t = {
  ws : Workspace.t;
  net : Netstate.t;
  dag : Dag.t;
  m : int;
  epsilon : int;
  costs : Costs.t;
  one_to_one : bool;
  supports : Bitset.t option array array;
}

let create ?model ?fabric ?insertion ?(one_to_one = true) ~epsilon costs =
  let ws = Workspace.create ?model ?fabric ?insertion ~epsilon costs in
  {
    ws;
    net = Workspace.net ws;
    dag = Workspace.dag ws;
    m = Platform.proc_count (Workspace.platform ws);
    epsilon;
    costs;
    one_to_one;
    supports =
      Array.init
        (Dag.task_count (Workspace.dag ws))
        (fun _ -> Array.make (epsilon + 1) None);
  }

let epsilon t = t.epsilon
let dag t = t.dag

let support_of t task idx =
  match t.supports.(task).(idx) with
  | Some s -> s
  | None -> invalid_arg "Caft_engine: support of unplaced replica"

let exec t task p = Costs.exec t.costs task p

(* Build the input plan for candidate processor [p] given the supports
   locked by the sibling replicas: greedily give every predecessor its
   cheapest support-disjoint head, then demote the largest-support heads
   to full replication until the combined support is admissible. *)
let plan_for t ~preds ~locked ~remaining_after task p =
  ignore task;
  let head_for (pred, volume) =
    if not t.one_to_one then None
    else
    List.fold_left
      (fun best r ->
        if Bitset.disjoint (support_of t pred r.Schedule.r_index) locked then begin
          let key = leg_finish_estimate t.net r ~volume ~dst:p in
          match best with
          | Some (bkey, _) when bkey <= key -> best
          | _ -> Some (key, r)
        end
        else best)
      None
      (Workspace.placed t.ws pred)
  in
  let modes =
    Array.map
      (fun (pred, volume) ->
        match head_for (pred, volume) with
        | Some (_, r) -> (pred, volume, ref (One_to_one r))
        | None -> (pred, volume, ref Full))
      preds
  in
  let support () =
    let s = Bitset.singleton t.m p in
    Array.iter
      (fun (pred, _, mode) ->
        match !mode with
        | One_to_one r ->
            Bitset.union_into ~into:s (support_of t pred r.Schedule.r_index)
        | Full -> ())
      modes;
    s
  in
  let admissible s =
    t.m - Bitset.cardinal (Bitset.union locked s) >= remaining_after
  in
  let demote_largest () =
    let worst = ref None in
    Array.iter
      (fun (_, _, mode) ->
        match !mode with
        | One_to_one r ->
            let card =
              Bitset.cardinal
                (support_of t r.Schedule.r_task r.Schedule.r_index)
            in
            (match !worst with
            | Some (wcard, _) when wcard >= card -> ()
            | _ -> worst := Some (card, mode))
        | Full -> ())
      modes;
    match !worst with
    | Some (_, mode) ->
        mode := Full;
        true
    | None -> false
  in
  let rec settle () =
    let s = support () in
    if admissible s then Some (modes, s)
    else if demote_largest () then settle ()
    else None (* even {p} inadmissible: p cannot host this replica *)
  in
  settle ()

let inputs_of_plan t modes =
  Array.to_list
    (Array.map
       (fun (pred, volume, mode) ->
         match !mode with
         | One_to_one r -> (pred, [ Workspace.source_of_replica t.ws r ~volume ])
         | Full ->
             ( pred,
               List.map
                 (fun r -> Workspace.source_of_replica t.ws r ~volume)
                 (Workspace.placed t.ws pred) ))
       modes)

(* The intra-processor suppression rule (a co-located supplier mutes the
   remote copies) is only safe for full-replication inputs when the
   co-located supplier cannot starve while [p] is alive, i.e. its support
   is exactly {p}. *)
let colocate_exclusive_ok t modes p =
  Array.for_all
    (fun (pred, _, mode) ->
      match !mode with
      | One_to_one _ -> true
      | Full -> (
          match
            List.find_opt
              (fun r -> r.Schedule.r_proc = p)
              (Workspace.placed t.ws pred)
          with
          | None -> true
          | Some r ->
              Bitset.equal
                (support_of t pred r.Schedule.r_index)
                (Bitset.singleton t.m p)))
    modes

let book t task p modes =
  if Array.length modes = 0 then
    Netstate.book_exec_only t.net ~proc:p ~exec:(exec t task p)
  else
    Netstate.book_replica t.net ~proc:p ~exec:(exec t task p)
      ~inputs:(inputs_of_plan t modes)
      ~colocate_exclusive:(colocate_exclusive_ok t modes p)

(* Admissible lower bound on the finish time the trial booking of
   candidate [p] could achieve under the plan [modes].  Every term is a
   lower bound on the corresponding term of the real booking (see
   DESIGN.md, "Candidate pruning"):

   - the execution cannot start before the processor is ready (append
     mode only — insertion may gap-fill earlier, so the term is dropped);
   - each predecessor's data cannot be ready before its cheapest leg
     estimate: a one-to-one input before the estimate of its chosen head
     (bookings within the trial only push SF/R/RF forward), a
     full-replication input before the cheapest estimate over all placed
     replicas (actual readiness is a min over arrivals, each at least its
     replica's estimate).

   The bound uses the same float operations as the booking (max, +.),
   which are monotone, so [finish_lower_bound <= booked.b_finish] holds
   exactly, not just approximately — pruning on it can never skip a
   candidate that would have beaten the incumbent, and the argmin (ties
   kept on the incumbent) is byte-identical to exhaustive evaluation. *)
let finish_lower_bound t task p modes =
  let data_lb =
    Array.fold_left
      (fun acc (pred, volume, mode) ->
        let est r = leg_finish_estimate t.net r ~volume ~dst:p in
        let lb =
          match !mode with
          | One_to_one r -> est r
          | Full ->
              List.fold_left
                (fun best r -> Float.min best (est r))
                infinity
                (Workspace.placed t.ws pred)
        in
        Float.max acc lb)
      0. modes
  in
  let ready_lb =
    if Netstate.insertion t.net then 0. else Netstate.proc_ready t.net p
  in
  Float.max ready_lb data_lb +. exec t task p

(* Evaluate every unlocked processor and return the placement with the
   earliest finish, without committing anything.  Candidates whose lower
   bound cannot beat the incumbent are skipped without a trial booking. *)
let best_placement t ~preds ~locked ~remaining_after task =
  let candidates = Bitset.complement_elements locked in
  let evaluated = ref 0 and pruned = ref 0 in
  let result =
    Obs_metrics.suppressed (fun () ->
        List.fold_left
          (fun best p ->
            match plan_for t ~preds ~locked ~remaining_after task p with
            | None -> best
            | Some (modes, s) -> (
                match best with
                | Some (bf, _, _, _)
                  when finish_lower_bound t task p modes >= bf ->
                    incr pruned;
                    best
                | _ -> (
                    incr evaluated;
                    let booked =
                      Netstate.with_trial t.net (fun () -> book t task p modes)
                    in
                    match best with
                    | Some (bf, _, _, _) when bf <= booked.Netstate.b_finish ->
                        best
                    | _ -> Some (booked.Netstate.b_finish, p, modes, s))))
          None candidates)
  in
  (* recorded outside [suppressed], which mutes the current domain *)
  Obs_metrics.incr ~by:!evaluated m_candidates;
  Obs_metrics.incr ~by:!pruned m_pruned;
  result

let schedule_task t task =
  let preds = Dag.preds t.dag task in
  (* union of the supports of the replicas of [task] placed so far *)
  let locked = Bitset.create t.m in
  let place_one ~remaining_after =
    match best_placement t ~preds ~locked ~remaining_after task with
    | None ->
        (* unreachable: the admissibility invariant keeps at least one
           unlocked processor per remaining replica, and the all-Full plan
           on such a processor is always admissible *)
        failwith "Caft_engine: no candidate processor (invariant broken)"
    | Some (_, p, modes, s) ->
        let booked = book t task p modes in
        let r = Workspace.place t.ws ~task ~proc:p booked in
        Array.iter
          (fun (_, _, mode) ->
            match !mode with
            | One_to_one _ -> Obs_metrics.incr m_one_to_one
            | Full -> Obs_metrics.incr m_full_replication)
          modes;
        Obs_metrics.observe m_support_size
          (float_of_int (Bitset.cardinal s));
        t.supports.(task).(r.Schedule.r_index) <- Some s;
        Bitset.union_into ~into:locked s
  in
  for i = 1 to t.epsilon + 1 do
    place_one ~remaining_after:(t.epsilon + 1 - i)
  done

let estimate_finish t task =
  let preds = Dag.preds t.dag task in
  let locked = Bitset.create t.m in
  match best_placement t ~preds ~locked ~remaining_after:t.epsilon task with
  | Some (finish, _, _, _) -> finish
  | None -> infinity

let completion_lower t task = Workspace.completion_lower t.ws task
let support t task idx = Bitset.copy (support_of t task idx)
let to_schedule ~algorithm t = Workspace.to_schedule ~algorithm t.ws
