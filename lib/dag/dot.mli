(** Graphviz export of task graphs, for inspecting generated workloads and
    documenting examples. *)

val to_string :
  ?graph_name:string ->
  ?task_label:(Dag.task -> string) ->
  ?edge_label:(Dag.task -> Dag.task -> float -> string) ->
  Dag.t ->
  string
(** Renders the DAG in DOT syntax.  [task_label] defaults to the task
    name; [edge_label] defaults to the data volume with one decimal. *)

val to_file :
  ?graph_name:string ->
  ?task_label:(Dag.task -> string) ->
  ?edge_label:(Dag.task -> Dag.task -> float -> string) ->
  string ->
  Dag.t ->
  unit
(** [to_file path g] writes {!to_string} to [path]. *)

exception Parse_error of { line : int; message : string }

val parse : ?default_volume:float -> string -> Dag.t
(** [parse text] reads a task graph from a common subset of the DOT
    language: a [digraph] whose statements are node declarations
    ([id \[label="name"\]]) and edges ([a -> b \[label="12.5"\]]).  Node
    identifiers are mapped to dense task ids in order of first appearance;
    a numeric edge label becomes the data volume (otherwise
    [default_volume], default [0.]); graph-level attributes, [node]/[edge]
    defaults, comments and chained edges ([a -> b -> c]) are accepted.
    Round-trips with {!to_string}.  Raises {!Parse_error} on malformed
    input, {!Dag.Cycle} if the edges form a cycle, and [Invalid_argument]
    on duplicate edges. *)

val parse_file : ?default_volume:float -> string -> Dag.t
