let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string b "\\\"" else Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string ?(graph_name = "dag") ?task_label ?edge_label g =
  let task_label = match task_label with Some f -> f | None -> Dag.name g in
  let edge_label =
    match edge_label with
    | Some f -> f
    | None -> fun _ _ vol -> Printf.sprintf "%.1f" vol
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n" (escape graph_name));
  Buffer.add_string b "  rankdir=TB;\n  node [shape=box];\n";
  for t = 0 to Dag.task_count g - 1 do
    Buffer.add_string b
      (Printf.sprintf "  n%d [label=\"%s\"];\n" t (escape (task_label t)))
  done;
  Dag.iter_edges
    (fun u v vol ->
      Buffer.add_string b
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" u v
           (escape (edge_label u v vol))))
    g;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_file ?graph_name ?task_label ?edge_label path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?graph_name ?task_label ?edge_label g))

(* -- parsing ------------------------------------------------------------ *)

exception Parse_error of { line : int; message : string }

type token =
  | Ident of string
  | Arrow
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Equals
  | Semi
  | Comma

(* Tokenizer for the DOT subset: identifiers, quoted strings (returned as
   Ident with their content), punctuation.  Tracks line numbers for
   errors; skips //, # and /* */ comments. *)
let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let fail message = raise (Parse_error { line = !line; message }) in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    let c = text.[!i] in
    (match c with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '{' -> push Lbrace; incr i
    | '}' -> push Rbrace; incr i
    | '[' -> push Lbracket; incr i
    | ']' -> push Rbracket; incr i
    | '=' -> push Equals; incr i
    | ';' -> push Semi; incr i
    | ',' -> push Comma; incr i
    | '-' when !i + 1 < n && text.[!i + 1] = '>' ->
        push Arrow;
        i := !i + 2
    | '"' ->
        let b = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match text.[!i] with
          | '"' -> closed := true
          | '\\' when !i + 1 < n ->
              incr i;
              Buffer.add_char b text.[!i]
          | '\n' ->
              incr line;
              Buffer.add_char b '\n'
          | ch -> Buffer.add_char b ch);
          incr i
        done;
        if not !closed then fail "unterminated string";
        push (Ident (Buffer.contents b))
    | '/' when !i + 1 < n && text.[!i + 1] = '/' ->
        while !i < n && text.[!i] <> '\n' do incr i done
    | '#' -> while !i < n && text.[!i] <> '\n' do incr i done
    | '/' when !i + 1 < n && text.[!i + 1] = '*' ->
        i := !i + 2;
        let closed = ref false in
        while (not !closed) && !i < n do
          if text.[!i] = '\n' then incr line;
          if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
            closed := true;
            i := !i + 1
          end;
          incr i
        done;
        if not !closed then fail "unterminated comment"
    | c
      when (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = '.' ->
        let start = !i in
        while
          !i < n
          &&
          let c = text.[!i] in
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9')
          || c = '_' || c = '.'
        do
          incr i
        done;
        push (Ident (String.sub text start (!i - start)))
    | c -> fail (Printf.sprintf "unexpected character %C" c));
    ()
  done;
  List.rev !tokens

let parse ?(default_volume = 0.) text =
  let tokens = ref (tokenize text) in
  let fail_at line message = raise (Parse_error { line; message }) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let next () =
    match !tokens with
    | [] -> raise (Parse_error { line = 0; message = "unexpected end of input" })
    | t :: rest ->
        tokens := rest;
        t
  in
  let expect what pred =
    let t, line = next () in
    if not (pred t) then fail_at line ("expected " ^ what)
  in
  (* header: [strict] digraph [name] { *)
  (match next () with
  | Ident "strict", _ ->
      expect "digraph" (function Ident "digraph" -> true | _ -> false)
  | Ident "digraph", _ -> ()
  | _, line -> fail_at line "expected 'digraph'");
  (match next () with
  | Lbrace, _ -> ()
  | Ident _, _ ->
      expect "'{'" (function Lbrace -> true | _ -> false)
  | _, line -> fail_at line "expected graph name or '{'");
  let b = Dag.Builder.create () in
  let ids = Hashtbl.create 64 in
  let node_of name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
        let id = Dag.Builder.add_task ~name b in
        Hashtbl.add ids name id;
        id
  in
  (* attribute block: [ key = value (, | ;)? ... ] ; returns the label *)
  let parse_attrs () =
    match peek () with
    | Some (Lbracket, _) ->
        ignore (next ());
        let label = ref None in
        let rec go () =
          match next () with
          | Rbracket, _ -> ()
          | Ident key, line -> (
              expect "'='" (function Equals -> true | _ -> false);
              match next () with
              | Ident value, _ ->
                  if key = "label" then label := Some value;
                  (match peek () with
                  | Some ((Comma | Semi), _) -> ignore (next ())
                  | _ -> ());
                  go ()
              | _, _ -> fail_at line "expected attribute value")
          | _, line -> fail_at line "expected attribute or ']'"
        in
        go ();
        !label
    | _ -> None
  in
  let volume_of_label = function
    | Some l -> (
        match float_of_string_opt l with Some v -> v | None -> default_volume)
    | None -> default_volume
  in
  let rec statements () =
    match next () with
    | Rbrace, _ -> ()
    | Semi, _ -> statements ()
    | Ident ("graph" | "node" | "edge"), _ ->
        (* default-attribute statement: skip its block *)
        ignore (parse_attrs ());
        statements ()
    | Ident name, line -> (
        (* either a node statement or an edge chain *)
        match peek () with
        | Some (Arrow, _) ->
            (* edge chain: a -> b [-> c ...] [attrs] *)
            let rec chain src =
              ignore (next ());
              let dst, _ =
                match next () with
                | Ident d, l -> (d, l)
                | _, l -> fail_at l "expected edge target"
              in
              let continue_chain =
                match peek () with Some (Arrow, _) -> true | _ -> false
              in
              if continue_chain then begin
                let more = chain dst in
                (src, dst) :: more
              end
              else [ (src, dst) ]
            in
            let pairs = chain name in
            let label = parse_attrs () in
            let volume = volume_of_label label in
            List.iter
              (fun (s, d) ->
                (* bind in source order: argument evaluation order must
                   not decide task numbering *)
                let src = node_of s in
                let dst = node_of d in
                Dag.Builder.add_edge b ~src ~dst ~volume)
              pairs;
            statements ()
        | Some (Equals, _) ->
            (* top-level graph attribute: key = value *)
            ignore (next ());
            (match next () with
            | Ident _, _ -> ()
            | _, l -> fail_at l "expected attribute value");
            statements ()
        | _ ->
            let label = parse_attrs () in
            (* a node declaration: if this is the first sighting, the
               label (when present) becomes the task name; tasks stay
               keyed by their dot identifier *)
            (if not (Hashtbl.mem ids name) then begin
               let task_name = Option.value label ~default:name in
               let id = Dag.Builder.add_task ~name:task_name b in
               Hashtbl.add ids name id
             end);
            ignore line;
            statements ())
    | _, line -> fail_at line "expected statement or '}'"
  in
  statements ();
  Dag.Builder.build b

let parse_file ?default_volume path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ?default_volume text
