(** Structural classification of task graphs.

    Proposition 5.1 of the paper bounds CAFT's message count by
    [e(epsilon+1)] for fork and out-forest graphs; these predicates let the
    benchmarks and property tests select the graph families the
    proposition applies to. *)

val is_out_forest : Dag.t -> bool
(** Every task has in-degree at most one (the paper's "outforest"). *)

val is_in_forest : Dag.t -> bool
(** Every task has out-degree at most one. *)

val is_fork : Dag.t -> bool
(** A single entry task, every other task an immediate successor of it and
    an exit (a one-level out-star).  A fork graph is an out-forest. *)

val is_join : Dag.t -> bool
(** Mirror image of {!is_fork}: a single exit task fed directly by all
    others. *)

val is_chain : Dag.t -> bool
(** Tasks form a single path. *)

val is_connected : Dag.t -> bool
(** Weakly connected (ignoring edge direction).  The empty DAG counts as
    connected. *)

val has_single_entry : Dag.t -> bool
val has_single_exit : Dag.t -> bool
