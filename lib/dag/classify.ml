let for_all_tasks p g =
  let n = Dag.task_count g in
  let rec go i = i >= n || (p i && go (i + 1)) in
  go 0

let is_out_forest g = for_all_tasks (fun t -> Dag.in_degree g t <= 1) g
let is_in_forest g = for_all_tasks (fun t -> Dag.out_degree g t <= 1) g

let has_single_entry g = match Dag.entries g with [ _ ] -> true | _ -> false
let has_single_exit g = match Dag.exits g with [ _ ] -> true | _ -> false

let is_fork g =
  match Dag.entries g with
  | [ root ] ->
      Dag.out_degree g root = Dag.task_count g - 1
      && for_all_tasks
           (fun t -> t = root || (Dag.in_degree g t = 1 && Dag.out_degree g t = 0))
           g
  | _ -> Dag.task_count g <= 1

let is_join g =
  match Dag.exits g with
  | [ sink ] ->
      Dag.in_degree g sink = Dag.task_count g - 1
      && for_all_tasks
           (fun t -> t = sink || (Dag.out_degree g t = 1 && Dag.in_degree g t = 0))
           g
  | _ -> Dag.task_count g <= 1

let is_chain g =
  let n = Dag.task_count g in
  Dag.edge_count g = max 0 (n - 1)
  && for_all_tasks (fun t -> Dag.in_degree g t <= 1 && Dag.out_degree g t <= 1) g
  && Dag.longest_path_length g = n

let is_connected g =
  let n = Dag.task_count g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        List.iter visit (Dag.succ_tasks g u);
        List.iter visit (Dag.pred_tasks g u)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end
