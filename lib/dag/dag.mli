(** Weighted directed acyclic task graphs.

    This is the execution model of the paper (Section 2): a DAG
    [G = (V, E)] whose nodes are tasks and whose edges carry the data
    volume [V(ti, tj)] that task [ti] must send to task [tj].  Tasks are
    dense integer identifiers in [\[0, task_count - 1\]], which lets every
    downstream structure (cost matrices, schedules) use flat arrays.

    Values of type {!t} are immutable once built; construction goes
    through {!Builder} (or the {!make} convenience), which checks
    well-formedness — no duplicate or self edges, no cycles — and
    precomputes a topological order. *)

type task = int
(** Task identifier, dense in [\[0, task_count - 1\]]. *)

type t

exception Cycle of task list
(** Raised at build time when the edge set contains a cycle; the payload is
    one offending cycle, in order. *)

(** Incremental construction of a DAG. *)
module Builder : sig
  type dag := t
  type t

  val create : unit -> t

  val add_task : ?name:string -> t -> task
  (** Returns the fresh task's identifier (allocated densely from 0).
      [name] defaults to ["t<id>"]. *)

  val add_edge : t -> src:task -> dst:task -> volume:float -> unit
  (** Declares the precedence [src -> dst] with data volume [volume].
      Raises [Invalid_argument] on unknown endpoints, self edges, negative
      volumes, or a duplicate edge. *)

  val build : t -> dag
  (** Validates acyclicity (raising {!Cycle}) and freezes the graph. *)
end

val make :
  ?names:string array -> n:int -> edges:(task * task * float) list -> unit -> t
(** [make ~n ~edges ()] builds a DAG with tasks [0 .. n-1] and the given
    [(src, dst, volume)] edges.  Same validation as {!Builder}. *)

(** {1 Size} *)

val task_count : t -> int
(** [v = |V|]. *)

val edge_count : t -> int
(** [e = |E|]. *)

val name : t -> task -> string

(** {1 Adjacency} *)

val succs : t -> task -> (task * float) array
(** Immediate successors with edge volumes ({i do not mutate}). *)

val preds : t -> task -> (task * float) array
(** Immediate predecessors with edge volumes ({i do not mutate}). *)

val succ_tasks : t -> task -> task list
val pred_tasks : t -> task -> task list
val out_degree : t -> task -> int
val in_degree : t -> task -> int

val volume : t -> src:task -> dst:task -> float option
(** Edge volume if the edge exists. *)

val mem_edge : t -> src:task -> dst:task -> bool

val entries : t -> task list
(** Tasks without predecessors, in increasing id order. *)

val exits : t -> task list
(** Tasks without successors, in increasing id order. *)

(** {1 Orders and traversals} *)

val topological_order : t -> task array
(** A fixed topological order ({i do not mutate}); deterministic for a
    given construction sequence. *)

val reverse_topological_order : t -> task array

val fold_edges : (task -> task -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over all edges [(src, dst, volume)] in topological order of
    sources. *)

val iter_edges : (task -> task -> float -> unit) -> t -> unit

val fold_tasks : (task -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over task ids in increasing order. *)

(** {1 Structure queries} *)

val longest_path_length : t -> int
(** Number of {e nodes} on a longest (hop-count) path. *)

val transitive_closure_cap : int
(** Largest task count {!transitive_closure} accepts (10_000).  The
    reachability matrix is O(n²) words — a million-task DAG would need
    terabytes — so the quadratic analyses fail fast instead of OOMing.
    Large-n safe analyses: {!topological_order}, {!longest_path_length},
    {!entries}/{!exits}, degree queries, and every scheduler; not large-n
    safe: {!transitive_closure}, {!width}, {!transitive_reduction}. *)

val transitive_closure : t -> bool array array
(** [reach.(i).(j)] iff there is a (possibly empty) path from [i] to [j];
    the diagonal is [true].  O(v·e) bitset-free computation, fine for the
    graph sizes of the paper.  Raises [Invalid_argument] (naming
    {!transitive_closure_cap}) beyond the cap. *)

val width : t -> int
(** The width [omega] of the DAG: the maximum number of pairwise
    independent tasks (maximum antichain of the precedence partial order).
    Computed exactly via Mirsky/Dilworth using a minimum path cover of the
    transitive closure (Hopcroft–Karp matching).  Inherits the
    {!transitive_closure_cap} task-count cap. *)

val transitive_reduction : t -> t
(** The minimum sub-DAG with the same reachability relation: every edge
    [u -> v] such that [v] is reachable from [u] through a longer path is
    removed (volumes of kept edges are preserved).  Unique for DAGs.
    Inherits the {!transitive_closure_cap} task-count cap. *)

val induced_subgraph : t -> task list -> t * task array
(** [induced_subgraph g keep] is the sub-DAG induced by [keep] (must
    contain no duplicates) together with the map from new ids to original
    ids. *)
