type task = int

type t = {
  names : string array;
  succs : (task * float) array array;
  preds : (task * float) array array;
  edge_count : int;
  topo : task array;
}

exception Cycle of task list

(* Depth-first topological sort; raises [Cycle] with a witness.  The DFS
   runs on an explicit stack — recursion depth equals the longest path,
   which overflows the OCaml stack on the 10^5-deep chains the workflow
   families can produce.  The frame stack replays the recursive version
   exactly (same visit order, same witness), so the [topo] array — and
   everything downstream that iterates it, schedules included — is
   byte-identical to the recursive implementation's. *)
let topo_sort n succs =
  let state = Array.make n `White in
  let order = ref [] in
  (* a frame is (task, index of the next successor to visit) *)
  let stack = ref [] in
  let cycle_witness u =
    (* the gray frames top-to-bottom are the recursive call path *)
    let path = List.map fst !stack in
    let rec cut acc = function
      | [] -> acc
      | x :: _ when x = u -> u :: acc
      | x :: rest -> cut (x :: acc) rest
    in
    raise (Cycle (cut [] path))
  in
  let rec drain () =
    match !stack with
    | [] -> ()
    | (u, i) :: rest ->
        if i >= Array.length succs.(u) then begin
          state.(u) <- `Black;
          order := u :: !order;
          stack := rest;
          drain ()
        end
        else begin
          stack := (u, i + 1) :: rest;
          let v, _ = succs.(u).(i) in
          (match state.(v) with
          | `Black -> ()
          | `Gray -> cycle_witness v
          | `White ->
              state.(v) <- `Gray;
              stack := (v, 0) :: !stack);
          drain ()
        end
  in
  for u = 0 to n - 1 do
    if state.(u) = `White then begin
      state.(u) <- `Gray;
      stack := [ (u, 0) ];
      drain ()
    end
  done;
  Array.of_list !order

module Builder = struct
  type t = {
    mutable n : int;
    mutable names_rev : string list;
    mutable edges_rev : (task * task * float) list;
    mutable edge_set : (task * task, unit) Hashtbl.t;
  }

  let create () =
    { n = 0; names_rev = []; edges_rev = []; edge_set = Hashtbl.create 64 }

  let add_task ?name b =
    let id = b.n in
    b.n <- id + 1;
    let name = match name with Some s -> s | None -> Printf.sprintf "t%d" id in
    b.names_rev <- name :: b.names_rev;
    id

  let add_edge b ~src ~dst ~volume =
    if src < 0 || src >= b.n then invalid_arg "Dag.Builder.add_edge: unknown src";
    if dst < 0 || dst >= b.n then invalid_arg "Dag.Builder.add_edge: unknown dst";
    if src = dst then invalid_arg "Dag.Builder.add_edge: self edge";
    if volume < 0. || Float.is_nan volume then
      invalid_arg "Dag.Builder.add_edge: negative volume";
    if Hashtbl.mem b.edge_set (src, dst) then
      invalid_arg "Dag.Builder.add_edge: duplicate edge";
    Hashtbl.add b.edge_set (src, dst) ();
    b.edges_rev <- (src, dst, volume) :: b.edges_rev

  let build b =
    let n = b.n in
    let names = Array.of_list (List.rev b.names_rev) in
    let succs_l = Array.make n [] and preds_l = Array.make n [] in
    let edge_count = List.length b.edges_rev in
    List.iter
      (fun (src, dst, vol) ->
        succs_l.(src) <- (dst, vol) :: succs_l.(src);
        preds_l.(dst) <- (src, vol) :: preds_l.(dst))
      b.edges_rev;
    (* Construction pushed edges in reverse, so the lists are now in
       insertion order. *)
    let succs = Array.map Array.of_list succs_l in
    let preds = Array.map Array.of_list preds_l in
    let topo = topo_sort n succs in
    { names; succs; preds; edge_count; topo }
end

let make ?names ~n ~edges () =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    let name =
      match names with
      | Some arr when i < Array.length arr -> Some arr.(i)
      | _ -> None
    in
    ignore (Builder.add_task ?name b)
  done;
  List.iter (fun (src, dst, volume) -> Builder.add_edge b ~src ~dst ~volume) edges;
  Builder.build b

let task_count t = Array.length t.names
let edge_count t = t.edge_count

let check_task t i fn =
  if i < 0 || i >= task_count t then invalid_arg ("Dag." ^ fn ^ ": bad task id")

let name t i =
  check_task t i "name";
  t.names.(i)

let succs t i =
  check_task t i "succs";
  t.succs.(i)

let preds t i =
  check_task t i "preds";
  t.preds.(i)

let succ_tasks t i = Array.to_list (Array.map fst (succs t i))
let pred_tasks t i = Array.to_list (Array.map fst (preds t i))
let out_degree t i = Array.length (succs t i)
let in_degree t i = Array.length (preds t i)

let volume t ~src ~dst =
  check_task t src "volume";
  let found = ref None in
  Array.iter (fun (d, v) -> if d = dst then found := Some v) t.succs.(src);
  !found

let mem_edge t ~src ~dst = volume t ~src ~dst <> None

let entries t =
  List.filter (fun i -> in_degree t i = 0)
    (List.init (task_count t) (fun i -> i))

let exits t =
  List.filter (fun i -> out_degree t i = 0)
    (List.init (task_count t) (fun i -> i))

let topological_order t = t.topo

let reverse_topological_order t =
  let n = Array.length t.topo in
  Array.init n (fun i -> t.topo.(n - 1 - i))

let fold_edges f t acc =
  Array.fold_left
    (fun acc u ->
      Array.fold_left (fun acc (v, vol) -> f u v vol acc) acc t.succs.(u))
    acc t.topo

let iter_edges f t = fold_edges (fun u v vol () -> f u v vol) t ()

let fold_tasks f t acc =
  let acc = ref acc in
  for i = 0 to task_count t - 1 do
    acc := f i !acc
  done;
  !acc

let longest_path_length t =
  let n = task_count t in
  if n = 0 then 0
  else begin
    let depth = Array.make n 1 in
    Array.iter
      (fun u ->
        Array.iter
          (fun (v, _) -> if depth.(u) + 1 > depth.(v) then depth.(v) <- depth.(u) + 1)
          t.succs.(u))
      t.topo;
    Array.fold_left max 1 depth
  end

let transitive_closure_cap = 10_000

let transitive_closure t =
  let n = task_count t in
  if n > transitive_closure_cap then
    invalid_arg
      (Printf.sprintf
         "Dag.transitive_closure: %d tasks exceed the %d-task cap (the \
          reachability matrix is O(n^2) words); width/transitive_reduction \
          are not large-n safe"
         n transitive_closure_cap);
  let reach = Array.init n (fun _ -> Array.make n false) in
  for i = 0 to n - 1 do
    reach.(i).(i) <- true
  done;
  (* Process in reverse topological order so each successor row is final. *)
  Array.iter
    (fun u ->
      Array.iter
        (fun (v, _) ->
          for j = 0 to n - 1 do
            if reach.(v).(j) then reach.(u).(j) <- true
          done)
        t.succs.(u))
    (reverse_topological_order t);
  reach

(* Maximum bipartite matching (Hopcroft–Karp).  [adj.(u)] lists the right
   vertices reachable from left vertex [u]. *)
let hopcroft_karp ~left ~right adj =
  let inf = max_int in
  let match_l = Array.make left (-1) in
  let match_r = Array.make right (-1) in
  let dist = Array.make left inf in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    for u = 0 to left - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- inf
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          match match_r.(v) with
          | -1 -> found := true
          | u' ->
              if dist.(u') = inf then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' queue
              end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_edges = function
      | [] ->
          dist.(u) <- inf;
          false
      | v :: rest ->
          let ok =
            match match_r.(v) with
            | -1 -> true
            | u' -> dist.(u') = dist.(u) + 1 && dfs u'
          in
          if ok then begin
            match_l.(u) <- v;
            match_r.(v) <- u;
            true
          end
          else try_edges rest
    in
    try_edges adj.(u)
  in
  let matching = ref 0 in
  while bfs () do
    for u = 0 to left - 1 do
      if match_l.(u) = -1 && dfs u then incr matching
    done
  done;
  !matching

let width t =
  let n = task_count t in
  if n = 0 then 0
  else begin
    (* Dilworth: maximum antichain = n - maximum matching in the bipartite
       comparability graph of the strict reachability relation. *)
    let reach = transitive_closure t in
    let adj =
      Array.init n (fun u ->
          let acc = ref [] in
          for v = n - 1 downto 0 do
            if v <> u && reach.(u).(v) then acc := v :: !acc
          done;
          !acc)
    in
    n - hopcroft_karp ~left:n ~right:n adj
  end

let transitive_reduction t =
  let n = task_count t in
  let reach = transitive_closure t in
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore (Builder.add_task ~name:t.names.(i) b)
  done;
  iter_edges
    (fun u v vol ->
      (* u -> v is redundant iff some other successor of u reaches v *)
      let redundant =
        Array.exists (fun (w, _) -> w <> v && reach.(w).(v)) t.succs.(u)
      in
      if not redundant then Builder.add_edge b ~src:u ~dst:v ~volume:vol)
    t;
  Builder.build b

let induced_subgraph t keep =
  let n = task_count t in
  let new_id = Array.make n (-1) in
  List.iteri
    (fun fresh orig ->
      check_task t orig "induced_subgraph";
      if new_id.(orig) <> -1 then
        invalid_arg "Dag.induced_subgraph: duplicate task";
      new_id.(orig) <- fresh)
    keep;
  let back = Array.of_list keep in
  let b = Builder.create () in
  Array.iter (fun orig -> ignore (Builder.add_task ~name:t.names.(orig) b)) back;
  iter_edges
    (fun u v vol ->
      if new_id.(u) >= 0 && new_id.(v) >= 0 then
        Builder.add_edge b ~src:new_id.(u) ~dst:new_id.(v) ~volume:vol)
    t;
  (Builder.build b, back)
