type t = {
  a_schedule : Schedule.t;
  a_epsilon : int;
  a_resilience : Resilience.report option;
  a_certificate : Certificate.t option;
  a_mapping : Mapping.report;
  a_findings : Lint.finding list;
}

let analyze ?epsilon ?domains ?fabric ?rules sched =
  let epsilon =
    match epsilon with Some e -> e | None -> Schedule.epsilon sched
  in
  let resilience =
    match Resilience.certify ~epsilon ?domains sched with
    | report -> Some report
    | exception Resilience.Family_overflow _ -> None
  in
  let certificate =
    Option.map (fun r -> Certificate.of_report sched r) resilience
  in
  {
    a_schedule = sched;
    a_epsilon = epsilon;
    a_resilience = resilience;
    a_certificate = certificate;
    a_mapping = Mapping.verify sched;
    a_findings = Lint.run ?fabric ?rules sched;
  }

let ok t =
  (match t.a_resilience with
  | Some r -> r.Resilience.rs_resists
  | None -> true)
  && Lint.errors t.a_findings = 0

(* -- JSON -------------------------------------------------------------- *)

let model_to_string = function
  | Netstate.One_port -> "one-port"
  | Netstate.Macro_dataflow -> "macro-dataflow"
  | Netstate.Multiport k -> Printf.sprintf "multiport-%d" k

let location_to_json (l : Lint.location) =
  let open Json in
  Obj
    [
      ("task", match l.Lint.l_task with Some t -> Int t | None -> Null);
      ("replica", match l.Lint.l_replica with Some i -> Int i | None -> Null);
      ("proc", match l.Lint.l_proc with Some p -> Int p | None -> Null);
      ( "span",
        match l.Lint.l_span with
        | Some (s, f) -> List [ Float s; Float f ]
        | None -> Null );
    ]

let finding_to_json (f : Lint.finding) =
  Json.Obj
    [
      ("rule", Json.String f.Lint.f_rule);
      ("level", Json.String (Lint.severity_to_string f.Lint.f_severity));
      ("message", Json.String f.Lint.f_msg);
      ("location", location_to_json f.Lint.f_loc);
    ]

let mapping_to_json (m : Mapping.report) =
  let open Json in
  Obj
    [
      ("epsilon", Int m.Mapping.mp_epsilon);
      ("out_forest", Bool m.Mapping.mp_out_forest);
      ("total_messages", Int m.Mapping.mp_total_messages);
      ("linear_bound", Int m.Mapping.mp_linear_bound);
      ("quadratic_bound", Int m.Mapping.mp_quadratic_bound);
      ("all_one_to_one", Bool m.Mapping.mp_all_one_to_one);
      ("within_linear", Bool m.Mapping.mp_within_linear);
      ("within_quadratic", Bool m.Mapping.mp_within_quadratic);
      ( "joins",
        List
          (Array.to_list m.Mapping.mp_joins
          |> List.map (fun (j : Mapping.join) ->
                 Obj
                   [
                     ("pred", Int j.Mapping.jn_pred);
                     ("succ", Int j.Mapping.jn_succ);
                     ( "class",
                       String (Mapping.class_to_string j.Mapping.jn_class) );
                     ("messages", Int j.Mapping.jn_messages);
                   ])) );
    ]

let to_json t =
  let open Json in
  let sched = t.a_schedule in
  Obj
    [
      ( "schedule",
        Obj
          [
            ("algorithm", String (Schedule.algorithm sched));
            ("tasks", Int (Dag.task_count (Schedule.dag sched)));
            ( "processors",
              Int (Platform.proc_count (Schedule.platform sched)) );
            ("epsilon", Int (Schedule.epsilon sched));
            ("model", String (model_to_string (Schedule.model sched)));
            ("messages", Int (Schedule.message_count sched));
            ("latency_zero_crash", Float (Schedule.latency_zero_crash sched));
            ("latency_upper_bound", Float (Schedule.latency_upper_bound sched));
          ] );
      ("epsilon", Int t.a_epsilon);
      ( "certificate",
        match t.a_certificate with
        | Some c -> Certificate.to_json c
        | None -> Null );
      ( "counterexample",
        match t.a_resilience with
        | Some { Resilience.rs_counterexample = Some (crashed, starved); _ } ->
            Obj
              [
                ("crash", List (List.map (fun p -> Int p) crashed));
                ("starves", List (List.map (fun task -> Int task) starved));
              ]
        | _ -> Null );
      ("mapping", mapping_to_json t.a_mapping);
      ("findings", List (List.map finding_to_json t.a_findings));
    ]

(* -- text -------------------------------------------------------------- *)

let pp ppf t =
  let sched = t.a_schedule in
  Format.fprintf ppf "analysis of %s schedule: %d tasks x %d replicas on %d processors (%s model)@,"
    (Schedule.algorithm sched)
    (Dag.task_count (Schedule.dag sched))
    (Schedule.epsilon sched + 1)
    (Platform.proc_count (Schedule.platform sched))
    (model_to_string (Schedule.model sched));
  (match t.a_resilience with
  | None ->
      Format.fprintf ppf
        "resistance: inconclusive (kill-set families overflowed) — fall back \
         to `ftsched check`@,"
  | Some r -> (
      match r.Resilience.rs_counterexample with
      | None ->
          let disjoint =
            Array.fold_left
              (fun acc v ->
                match v with
                | Resilience.Certified (Resilience.Disjoint_supports _) ->
                    acc + 1
                | _ -> acc)
              0 r.Resilience.rs_tasks
          in
          let total = Array.length r.Resilience.rs_tasks in
          Format.fprintf ppf
            "resistance: certified for epsilon=%d with zero replays (%d/%d \
             tasks by disjoint supports, %d by min-cut)@,"
            r.Resilience.rs_epsilon disjoint total (total - disjoint)
      | Some (crashed, starved) ->
          Format.fprintf ppf
            "resistance: REFUTED for epsilon=%d — crash {%s} starves tasks \
             {%s}@,"
            r.Resilience.rs_epsilon
            (String.concat "," (List.map string_of_int crashed))
            (String.concat "," (List.map string_of_int starved))));
  let m = t.a_mapping in
  Format.fprintf ppf
    "mapping: %d/%d joins one-to-one (%d fallback, %d mixed, %d invalid), %d \
     messages, bounds: e(eps+1)=%d %s, e(eps+1)^2=%d %s@,"
    (Mapping.count m Mapping.One_to_one)
    (Array.length m.Mapping.mp_joins)
    (Mapping.count m Mapping.Fallback)
    (Mapping.count m Mapping.Mixed)
    (Mapping.count m Mapping.Invalid)
    m.Mapping.mp_total_messages m.Mapping.mp_linear_bound
    (if m.Mapping.mp_within_linear then "ok" else "exceeded")
    m.Mapping.mp_quadratic_bound
    (if m.Mapping.mp_within_quadratic then "ok" else "EXCEEDED");
  let count sev =
    List.length (List.filter (fun f -> f.Lint.f_severity = sev) t.a_findings)
  in
  Format.fprintf ppf "lint: %d errors, %d warnings, %d info@,"
    (count Lint.Error) (count Lint.Warning) (count Lint.Info);
  List.iter
    (fun f -> Format.fprintf ppf "  %a@," Lint.pp_finding f)
    t.a_findings
