(** The combined static analysis of one schedule, with text and JSON
    reporters — the engine behind [ftsched analyze].

    One call to {!analyze} runs the three analyses over a schedule:

    + {!Resilience.certify} — the static ε-resistance certificate (or a
      minimal counterexample crash set);
    + {!Mapping.verify} — Proposition 5.1 join classification and message
      bounds;
    + {!Lint.run} — the rule registry.

    The JSON rendering is a single self-contained document (certificate
    included) whose [findings] array mirrors SARIF's result shape: rule
    id, severity ([level]), message and a structured location. *)

type t = {
  a_schedule : Schedule.t;
  a_epsilon : int;  (** ε the resistance analysis ran against *)
  a_resilience : Resilience.report option;
      (** [None] if the kill-family computation overflowed
          ({!Resilience.Family_overflow}) — fall back to replay *)
  a_certificate : Certificate.t option;  (** same condition *)
  a_mapping : Mapping.report;
  a_findings : Lint.finding list;
}

val analyze :
  ?epsilon:int ->
  ?domains:int ->
  ?fabric:Netstate.fabric ->
  ?rules:Lint.rule list ->
  Schedule.t ->
  t
(** Run all three analyses.  [epsilon] defaults to the schedule's
    replication degree; [fabric] to the clique; [rules] to the full lint
    registry. *)

val ok : t -> bool
(** The schedule is certified resistant (when the certificate could be
    computed) and lint found no error-level finding. *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
