(** Machine-checkable ε-resistance certificates.

    A certificate packages the per-task verdicts of {!Resilience.certify}
    with enough schedule metadata to be stored next to the schedule,
    shipped to another process, and {e re-verified} against the schedule
    without re-running the analysis:

    - a {!Resilience.Disjoint_supports} witness is checked directly — for
      each support set [A], crash the {e complement} of [A] and confirm
      the replica still completes (survival is monotone, so surviving the
      worst crash set disjoint from [A] proves survival of all of them),
      then check pairwise disjointness and the pigeonhole count;
    - a {!Resilience.Refuted} crash set is checked by confirming it
      starves the task (and has at most [epsilon] processors);
    - {!Resilience.Min_cut} verdicts carry no independent witness — they
      assert the emptiness of a minimal-kill-set family — so {!check}
      re-certifies those tasks (documented, and reported distinctly by
      {!check}'s error messages). *)

type t = {
  c_algorithm : string;
  c_epsilon : int;  (** the ε the certificate claims resistance against *)
  c_procs : int;
  c_tasks : int;
  c_resists : bool;
  c_verdicts : Resilience.task_verdict array;
}

val of_report : Schedule.t -> Resilience.report -> t

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; rejects documents with missing or ill-typed
    fields. *)

val check : Schedule.t -> t -> (unit, string) result
(** Re-verify a certificate against a schedule, as described above.
    Returns [Error] with a human-readable reason on the first mismatch:
    metadata not matching the schedule, a support set that fails its
    complement-crash test or overlaps another, a refutation the schedule
    survives, or a re-certification disagreeing with a [Min_cut]
    verdict. *)
