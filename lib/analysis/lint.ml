type severity = Error | Warning | Info

type location = {
  l_task : Dag.task option;
  l_replica : int option;
  l_proc : Platform.proc option;
  l_span : (float * float) option;
}

let no_loc = { l_task = None; l_replica = None; l_proc = None; l_span = None }

type finding = {
  f_rule : string;
  f_severity : severity;
  f_loc : location;
  f_msg : string;
}

type rule = {
  rule_id : string;
  rule_severity : severity;
  rule_doc : string;
  rule_check : fabric:Netstate.fabric -> Schedule.t -> finding list;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* -- shared helpers ---------------------------------------------------- *)

let describe_message (m : Netstate.message) =
  Printf.sprintf "msg t%d[%d] P%d->P%d" m.Netstate.m_source.Netstate.s_task
    m.Netstate.m_source.Netstate.s_replica m.Netstate.m_source.Netstate.s_proc
    m.Netstate.m_dst_proc

let message_loc (m : Netstate.message) =
  {
    l_task = Some m.Netstate.m_source.Netstate.s_task;
    l_replica = Some m.Netstate.m_source.Netstate.s_replica;
    l_proc = Some m.Netstate.m_source.Netstate.s_proc;
    l_span = Some (m.Netstate.m_leg_start, m.Netstate.m_leg_finish);
  }

let replica_loc (r : Schedule.replica) =
  {
    l_task = Some r.Schedule.r_task;
    l_replica = Some r.Schedule.r_index;
    l_proc = Some r.Schedule.r_proc;
    l_span = Some (r.Schedule.r_start, r.Schedule.r_finish);
  }

let capacity_of = function
  | Netstate.One_port -> Some 1
  | Netstate.Multiport k -> Some (max 1 k)
  | Netstate.Macro_dataflow -> None

(* -- built-in rules ---------------------------------------------------- *)

let port_rule id ~doc legs_of =
  let check ~fabric:_ sched =
    match capacity_of (Schedule.model sched) with
    | None -> []
    | Some capacity ->
        let m = Platform.proc_count (Schedule.platform sched) in
        let msgs = Schedule.messages sched in
        List.concat_map
          (fun p ->
            let legs = legs_of p msgs in
            Intervals.exceeding ~capacity ~bounds:snd legs
            |> List.map (fun ((msg, _), s, f) ->
                   {
                     f_rule = id;
                     f_severity = Error;
                     f_loc = { (message_loc msg) with l_span = Some (s, f) };
                     f_msg =
                       Printf.sprintf
                         "%s exceeds port capacity %d on P%d over [%.6f, %.6f]"
                         (describe_message msg) capacity p s f;
                   }))
          (List.init m Fun.id)
  in
  { rule_id = id; rule_severity = Error; rule_doc = doc; rule_check = check }

let send_rule =
  port_rule "one-port/send"
    ~doc:"messages leaving a processor exceed its send-port capacity"
    (fun p msgs ->
      List.filter_map
        (fun (msg : Netstate.message) ->
          if msg.Netstate.m_source.Netstate.s_proc = p then
            Some (msg, (msg.Netstate.m_leg_start, msg.Netstate.m_leg_finish))
          else None)
        msgs)

let recv_rule =
  port_rule "one-port/recv"
    ~doc:"messages entering a processor exceed its receive-port capacity"
    (fun p msgs ->
      List.filter_map
        (fun (msg : Netstate.message) ->
          if msg.Netstate.m_dst_proc = p then
            Some
              ( msg,
                ( msg.Netstate.m_arrival -. msg.Netstate.m_duration,
                  msg.Netstate.m_arrival ) )
          else None)
        msgs)

let link_rule =
  let check ~fabric sched =
    match capacity_of (Schedule.model sched) with
    | None -> []
    | Some _ ->
        let msgs = Schedule.messages sched in
        let per_phys = Array.make fabric.Netstate.phys_count [] in
        List.iter
          (fun (msg : Netstate.message) ->
            let src = msg.Netstate.m_source.Netstate.s_proc in
            let dst = msg.Netstate.m_dst_proc in
            List.iter
              (fun l -> per_phys.(l) <- msg :: per_phys.(l))
              (fabric.Netstate.route src dst))
          msgs;
        Array.to_list per_phys
        |> List.concat_map (fun legs ->
               Intervals.overlaps
                 ~bounds:(fun (m : Netstate.message) ->
                   (m.Netstate.m_leg_start, m.Netstate.m_leg_finish))
                 legs
               |> List.map (fun ov ->
                      {
                        f_rule = "one-port/link";
                        f_severity = Error;
                        f_loc = message_loc ov.Intervals.ov_starter;
                        f_msg =
                          Printf.sprintf
                            "%s overlaps %s on a shared link (running until \
                             %.6f, next starts %.6f)"
                            (describe_message ov.Intervals.ov_running)
                            (describe_message ov.Intervals.ov_starter)
                            ov.Intervals.ov_running_until ov.Intervals.ov_starts;
                      }))
  in
  {
    rule_id = "one-port/link";
    rule_severity = Error;
    rule_doc = "two message legs overlap on one physical link";
    rule_check = check;
  }

let causality_rule =
  let check ~fabric:_ sched =
    let findings = ref [] in
    let add f = findings := f :: !findings in
    List.iter
      (fun (r : Schedule.replica) ->
        let preds = Dag.pred_tasks (Schedule.dag sched) r.Schedule.r_task in
        (* message-level causality *)
        List.iter
          (function
            | Schedule.Local _ -> ()
            | Schedule.Message m ->
                let s = m.Netstate.m_source in
                let src_replicas = Schedule.replicas sched s.Netstate.s_task in
                (if
                   s.Netstate.s_replica >= 0
                   && s.Netstate.s_replica < Array.length src_replicas
                 then
                   let src = src_replicas.(s.Netstate.s_replica) in
                   if
                     not
                       (Flt.leq ~tol:1e-6 src.Schedule.r_finish
                          m.Netstate.m_leg_start)
                   then
                     add
                       {
                         f_rule = "causality/message";
                         f_severity = Error;
                         f_loc = message_loc m;
                         f_msg =
                           Printf.sprintf
                             "%s departs at %.6f before its producer finishes \
                              at %.6f"
                             (describe_message m) m.Netstate.m_leg_start
                             src.Schedule.r_finish;
                       });
                if
                  not
                    (Flt.leq ~tol:1e-6 m.Netstate.m_leg_finish
                       m.Netstate.m_arrival)
                then
                  add
                    {
                      f_rule = "causality/message";
                      f_severity = Error;
                      f_loc = message_loc m;
                      f_msg =
                        Printf.sprintf
                          "%s arrives at %.6f before its link leg completes at \
                           %.6f"
                          (describe_message m) m.Netstate.m_arrival
                          m.Netstate.m_leg_finish;
                    })
          r.Schedule.r_inputs;
        (* per-predecessor readiness *)
        List.iter
          (fun pred ->
            let readies =
              List.filter_map
                (function
                  | Schedule.Local { l_pred; l_finish; _ } when l_pred = pred ->
                      Some l_finish
                  | Schedule.Message m
                    when m.Netstate.m_source.Netstate.s_task = pred ->
                      Some m.Netstate.m_arrival
                  | Schedule.Local _ | Schedule.Message _ -> None)
                r.Schedule.r_inputs
            in
            match readies with
            | [] -> ()
            | _ ->
                let earliest = Flt.min_list readies in
                if not (Flt.leq ~tol:1e-6 earliest r.Schedule.r_start) then
                  add
                    {
                      f_rule = "causality/message";
                      f_severity = Error;
                      f_loc = replica_loc r;
                      f_msg =
                        Printf.sprintf
                          "task %d replica %d starts at %.6f before data from \
                           %d is ready at %.6f"
                          r.Schedule.r_task r.Schedule.r_index
                          r.Schedule.r_start pred earliest;
                    })
          preds)
      (Schedule.all_replicas sched);
    List.rev !findings
  in
  {
    rule_id = "causality/message";
    rule_severity = Error;
    rule_doc =
      "a message departs before its producer finishes, arrives before its leg \
       completes, or a replica starts before its data";
    rule_check = check;
  }

let colocated_rule =
  let check ~fabric:_ sched =
    let dag = Schedule.dag sched in
    Dag.fold_tasks
      (fun task acc ->
        let rs = Schedule.replicas sched task in
        let acc = ref acc in
        Array.iteri
          (fun i ri ->
            Array.iteri
              (fun j rj ->
                if j > i && ri.Schedule.r_proc = rj.Schedule.r_proc then
                  acc :=
                    {
                      f_rule = "replication/colocated";
                      f_severity = Error;
                      f_loc = replica_loc rj;
                      f_msg =
                        Printf.sprintf
                          "replicas %d and %d of task %d share processor P%d"
                          i j task ri.Schedule.r_proc;
                    }
                    :: !acc)
              rs)
          rs;
        !acc)
      dag []
    |> List.rev
  in
  {
    rule_id = "replication/colocated";
    rule_severity = Error;
    rule_doc = "two replicas of one task placed on the same processor";
    rule_check = check;
  }

let duplicate_supply_rule =
  let check ~fabric:_ sched =
    let sg = Supply_graph.build sched in
    let dag = Schedule.dag sched in
    List.concat_map
      (fun (r : Schedule.replica) ->
        List.concat_map
          (fun pred ->
            let sups =
              Supply_graph.suppliers sg ~task:r.Schedule.r_task
                ~replica:r.Schedule.r_index ~pred
              |> List.map (fun s -> s.Supply_graph.sp_replica)
            in
            let dup =
              List.filter
                (fun j ->
                  List.length (List.filter (Int.equal j) sups) > 1)
                (List.sort_uniq compare sups)
            in
            List.map
              (fun j ->
                {
                  f_rule = "redundancy/duplicate-supply";
                  f_severity = Warning;
                  f_loc = replica_loc r;
                  f_msg =
                    Printf.sprintf
                      "task %d replica %d books replica %d of predecessor %d \
                       more than once"
                      r.Schedule.r_task r.Schedule.r_index j pred;
                })
              dup)
          (Dag.pred_tasks dag r.Schedule.r_task))
      (Schedule.all_replicas sched)
  in
  {
    rule_id = "redundancy/duplicate-supply";
    rule_severity = Warning;
    rule_doc = "the same supplier replica booked twice for one input";
    rule_check = check;
  }

let self_message_rule =
  let check ~fabric:_ sched =
    List.concat_map
      (fun (r : Schedule.replica) ->
        List.filter_map
          (function
            | Schedule.Local _ -> None
            | Schedule.Message m ->
                if m.Netstate.m_source.Netstate.s_proc = r.Schedule.r_proc then
                  Some
                    {
                      f_rule = "redundancy/self-message";
                      f_severity = Warning;
                      f_loc = replica_loc r;
                      f_msg =
                        Printf.sprintf
                          "%s sent to its own processor: a co-located hand-off \
                           would be free"
                          (describe_message m);
                    }
                else None)
          r.Schedule.r_inputs)
      (Schedule.all_replicas sched)
  in
  {
    rule_id = "redundancy/self-message";
    rule_severity = Warning;
    rule_doc = "a message booked from the consumer's own processor";
    rule_check = check;
  }

let granularity_rule =
  let check ~fabric:_ sched =
    let g = Granularity.compute (Schedule.costs sched) in
    if Float.is_finite g && g < 0.1 then
      [
        {
          f_rule = "smell/granularity";
          f_severity = Warning;
          f_loc = no_loc;
          f_msg =
            Printf.sprintf
              "fine-grain instance (granularity %.3f < 0.1): communication \
               dominates computation, replication overhead will be high"
              g;
        };
      ]
    else []
  in
  {
    rule_id = "smell/granularity";
    rule_severity = Warning;
    rule_doc = "fine-grain instance: granularity below 0.1";
    rule_check = check;
  }

let idle_gap_rule =
  let check ~fabric:_ sched =
    let makespan = Schedule.makespan sched in
    if makespan <= 0. then []
    else
      let threshold = 0.25 *. makespan in
      let m = Platform.proc_count (Schedule.platform sched) in
      List.concat_map
        (fun p ->
          Intervals.gaps
            ~bounds:(fun (r : Schedule.replica) ->
              (r.Schedule.r_start, r.Schedule.r_finish))
            (Schedule.on_proc sched p)
          |> List.filter_map (fun (s, f) ->
                 if f -. s > threshold then
                   Some
                     {
                       f_rule = "smell/idle-gap";
                       f_severity = Info;
                       f_loc =
                         {
                           no_loc with
                           l_proc = Some p;
                           l_span = Some (s, f);
                         };
                       f_msg =
                         Printf.sprintf
                           "P%d idles for %.6f (%.0f%% of the makespan) \
                            between [%.6f, %.6f]"
                           p (f -. s)
                           (100. *. (f -. s) /. makespan)
                           s f;
                     }
                 else None))
        (List.init m Fun.id)
  in
  {
    rule_id = "smell/idle-gap";
    rule_severity = Info;
    rule_doc = "a processor idles more than 25% of the makespan";
    rule_check = check;
  }

let builtins =
  [
    send_rule;
    recv_rule;
    link_rule;
    causality_rule;
    colocated_rule;
    duplicate_supply_rule;
    self_message_rule;
    granularity_rule;
    idle_gap_rule;
  ]

(* -- registry ---------------------------------------------------------- *)

let registered : rule list ref = ref builtins

let register rule =
  registered :=
    List.filter (fun r -> r.rule_id <> rule.rule_id) !registered @ [ rule ]

let rules () = !registered

let run ?fabric ?rules:selected sched =
  let fabric =
    match fabric with
    | Some f -> f
    | None ->
        Netstate.clique_fabric (Platform.proc_count (Schedule.platform sched))
  in
  let selected = match selected with Some rs -> rs | None -> rules () in
  List.concat_map (fun r -> r.rule_check ~fabric sched) selected
  |> List.stable_sort
       (fun a b -> compare (severity_rank a.f_severity) (severity_rank b.f_severity))

let errors findings =
  List.length (List.filter (fun f -> f.f_severity = Error) findings)

let pp_finding ppf f =
  let loc =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "task %d") f.f_loc.l_task;
        Option.map (Printf.sprintf "replica %d") f.f_loc.l_replica;
        Option.map (Printf.sprintf "P%d") f.f_loc.l_proc;
        Option.map
          (fun (s, e) -> Printf.sprintf "[%.3f, %.3f]" s e)
          f.f_loc.l_span;
      ]
  in
  Format.fprintf ppf "%-7s %s: %s"
    (severity_to_string f.f_severity)
    f.f_rule f.f_msg;
  if loc <> [] then Format.fprintf ppf " (%s)" (String.concat ", " loc)
