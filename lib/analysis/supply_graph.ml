type kind = Colocated | Remote

type supplier = { sp_replica : int; sp_kind : kind }

type t = {
  sched : Schedule.t;
  (* per task, per replica index, assoc list pred -> suppliers in input
     order *)
  by_replica : (Dag.task * supplier list) list array array;
}

let build sched =
  let dag = Schedule.dag sched in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in
  let by_replica = Array.init v (fun _ -> Array.make eps1 []) in
  List.iter
    (fun (r : Schedule.replica) ->
      let entry (supply : Schedule.supply) =
        match supply with
        | Schedule.Local { l_pred; l_pred_replica; _ } ->
            (l_pred, { sp_replica = l_pred_replica; sp_kind = Colocated })
        | Schedule.Message m ->
            ( m.Netstate.m_source.Netstate.s_task,
              {
                sp_replica = m.Netstate.m_source.Netstate.s_replica;
                sp_kind = Remote;
              } )
      in
      let supplies =
        List.filter_map
          (fun s ->
            let pred, sup = entry s in
            if sup.sp_replica < 0 || sup.sp_replica >= eps1 then None
            else Some (pred, sup))
          r.Schedule.r_inputs
      in
      let preds = List.sort_uniq compare (List.map fst supplies) in
      by_replica.(r.Schedule.r_task).(r.Schedule.r_index) <-
        List.map
          (fun pred ->
            ( pred,
              List.filter_map
                (fun (p, sup) -> if p = pred then Some sup else None)
                supplies ))
          preds)
    (Schedule.all_replicas sched);
  { sched; by_replica }

let schedule t = t.sched

let suppliers t ~task ~replica ~pred =
  match List.assoc_opt pred t.by_replica.(task).(replica) with
  | Some sups -> sups
  | None -> []

let supplier_indices t ~task ~replica ~pred =
  suppliers t ~task ~replica ~pred
  |> List.map (fun s -> s.sp_replica)
  |> List.sort_uniq compare

let join_message_count t ~pred ~succ =
  let eps1 = Schedule.epsilon t.sched + 1 in
  let count = ref 0 in
  for i = 0 to eps1 - 1 do
    List.iter
      (fun s -> if s.sp_kind = Remote then incr count)
      (suppliers t ~task:succ ~replica:i ~pred)
  done;
  !count
