type t = {
  c_algorithm : string;
  c_epsilon : int;
  c_procs : int;
  c_tasks : int;
  c_resists : bool;
  c_verdicts : Resilience.task_verdict array;
}

let of_report sched (report : Resilience.report) =
  {
    c_algorithm = Schedule.algorithm sched;
    c_epsilon = report.Resilience.rs_epsilon;
    c_procs = Platform.proc_count (Schedule.platform sched);
    c_tasks = Dag.task_count (Schedule.dag sched);
    c_resists = report.Resilience.rs_resists;
    c_verdicts = report.Resilience.rs_tasks;
  }

(* -- JSON -------------------------------------------------------------- *)

let verdict_to_json task verdict =
  let open Json in
  let base = [ ("task", Int task) ] in
  match verdict with
  | Resilience.Certified (Resilience.Disjoint_supports supports) ->
      Obj
        (base
        @ [
            ("verdict", String "certified");
            ("witness", String "disjoint-supports");
            ( "supports",
              List
                (Array.to_list supports
                |> List.map (fun s ->
                       List (List.map (fun p -> Int p) (Bitset.elements s)))) );
          ])
  | Resilience.Certified Resilience.Min_cut ->
      Obj
        (base
        @ [ ("verdict", String "certified"); ("witness", String "min-cut") ])
  | Resilience.Refuted crashed ->
      Obj
        (base
        @ [
            ("verdict", String "refuted");
            ("crash", List (List.map (fun p -> Json.Int p) crashed));
          ])

let to_json c =
  let open Json in
  Obj
    [
      ("certificate", String "ftsched/epsilon-resistance");
      ("version", Int 1);
      ("algorithm", String c.c_algorithm);
      ("epsilon", Int c.c_epsilon);
      ("processors", Int c.c_procs);
      ("tasks", Int c.c_tasks);
      ("resists", Bool c.c_resists);
      ( "verdicts",
        List (Array.to_list (Array.mapi verdict_to_json c.c_verdicts)) );
    ]

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "certificate: missing or ill-typed %S" name)

let int_list name json =
  match Json.member name json with
  | Some (Json.List items) ->
      let ints = List.filter_map Json.to_int items in
      if List.length ints = List.length items then Ok ints
      else Error (Printf.sprintf "certificate: non-integer entry in %S" name)
  | _ -> Error (Printf.sprintf "certificate: missing list %S" name)

let verdict_of_json ~procs json =
  let* verdict = field "verdict" Json.to_str json in
  match verdict with
  | "refuted" ->
      let* crashed = int_list "crash" json in
      Ok (Resilience.Refuted crashed)
  | "certified" -> (
      let* witness = field "witness" Json.to_str json in
      match witness with
      | "min-cut" -> Ok (Resilience.Certified Resilience.Min_cut)
      | "disjoint-supports" -> (
          match Json.member "supports" json with
          | Some (Json.List sets) ->
              let supports =
                List.map
                  (fun set ->
                    let elems = List.filter_map Json.to_int (Json.to_list set) in
                    Bitset.of_list procs elems)
                  sets
              in
              Ok
                (Resilience.Certified
                   (Resilience.Disjoint_supports (Array.of_list supports)))
          | _ -> Error "certificate: missing supports")
      | other -> Error (Printf.sprintf "certificate: unknown witness %S" other))
  | other -> Error (Printf.sprintf "certificate: unknown verdict %S" other)

let of_json json =
  let* kind = field "certificate" Json.to_str json in
  let* () =
    if kind = "ftsched/epsilon-resistance" then Ok ()
    else Error "certificate: not an epsilon-resistance certificate"
  in
  let* algorithm = field "algorithm" Json.to_str json in
  let* epsilon = field "epsilon" Json.to_int json in
  let* procs = field "processors" Json.to_int json in
  let* tasks = field "tasks" Json.to_int json in
  let* resists = field "resists" Json.to_bool json in
  match Json.member "verdicts" json with
  | Some (Json.List items) ->
      let* () =
        if List.length items = tasks then Ok ()
        else Error "certificate: verdict count does not match task count"
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* v = verdict_of_json ~procs item in
            go (v :: acc) rest
      in
      let* verdicts = go [] items in
      Ok
        {
          c_algorithm = algorithm;
          c_epsilon = epsilon;
          c_procs = procs;
          c_tasks = tasks;
          c_resists = resists;
          c_verdicts = Array.of_list verdicts;
        }
  | _ -> Error "certificate: missing verdicts"

(* -- re-verification --------------------------------------------------- *)

let check sched c =
  let dag = Schedule.dag sched in
  let m = Platform.proc_count (Schedule.platform sched) in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in
  let* () =
    if c.c_procs = m && c.c_tasks = v then Ok ()
    else Error "certificate was issued for a different schedule shape"
  in
  let* () =
    if Array.length c.c_verdicts = v then Ok ()
    else Error "certificate verdict count does not match the task count"
  in
  let refuted_somewhere =
    Array.exists (function Resilience.Refuted _ -> true | _ -> false)
      c.c_verdicts
  in
  let* () =
    if c.c_resists = not refuted_somewhere then Ok ()
    else Error "certificate verdicts contradict its resists flag"
  in
  (* lazily re-certify once if any Min_cut verdict needs confirmation *)
  let recert = lazy (Resilience.certify ~epsilon:c.c_epsilon sched) in
  let check_task task verdict =
    match verdict with
    | Resilience.Refuted crashed ->
        if List.length crashed > c.c_epsilon then
          Error
            (Printf.sprintf "task %d: refuting crash set larger than epsilon"
               task)
        else if
          List.mem task (Resilience.starved_tasks sched ~crashed)
        then Ok ()
        else
          Error
            (Printf.sprintf
               "task %d: claimed refutation does not starve the task" task)
    | Resilience.Certified (Resilience.Disjoint_supports supports) ->
        let n = Array.length supports in
        if n < c.c_epsilon + 1 then
          Error
            (Printf.sprintf "task %d: only %d supports for epsilon %d" task n
               c.c_epsilon)
        else if n > eps1 then
          Error
            (Printf.sprintf "task %d: more supports than replicas" task)
        else begin
          let disjoint = ref true in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if not (Bitset.disjoint supports.(i) supports.(j)) then
                disjoint := false
            done
          done;
          if not !disjoint then
            Error (Printf.sprintf "task %d: supports are not disjoint" task)
          else begin
            (* survival is monotone: surviving the crash of the whole
               complement proves survival of every crash set avoiding the
               support *)
            let bad = ref None in
            Array.iteri
              (fun i s ->
                if !bad = None then begin
                  let crashed = Bitset.complement_elements s in
                  let alive = Resilience.survivors sched ~crashed in
                  if not alive.(task).(i) then bad := Some i
                end)
              supports;
            match !bad with
            | None -> Ok ()
            | Some i ->
                Error
                  (Printf.sprintf
                     "task %d: replica %d dies under the complement of its \
                      claimed support"
                     task i)
          end
        end
    | Resilience.Certified Resilience.Min_cut -> (
        match (Lazy.force recert).Resilience.rs_tasks.(task) with
        | Resilience.Certified _ -> Ok ()
        | Resilience.Refuted _ ->
            Error
              (Printf.sprintf
                 "task %d: re-certification refutes the min-cut verdict" task))
  in
  let rec go task =
    if task >= v then Ok ()
    else
      let* () = check_task task c.c_verdicts.(task) in
      go (task + 1)
  in
  go 0
