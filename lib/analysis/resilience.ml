type witness =
  | Disjoint_supports of Bitset.t array
  | Min_cut

type task_verdict =
  | Certified of witness
  | Refuted of Platform.proc list

type report = {
  rs_epsilon : int;
  rs_resists : bool;
  rs_tasks : task_verdict array;
  rs_counterexample : (Platform.proc list * Dag.task list) option;
}

exception Family_overflow of Dag.task

(* -- kill-set families ------------------------------------------------- *)

(* A family is an antichain of processor sets, all of cardinal <= epsilon:
   the minimal crash sets (of interesting size) starving one replica. *)

let add_minimal fam s =
  if List.exists (fun t -> Bitset.subset t s) fam then fam
  else s :: List.filter (fun t -> not (Bitset.subset s t)) fam

(* Minimal unions of one element per family: the crash sets killing both
   of two (conjunctions of) replicas.  Truncated to [epsilon]. *)
let cross ~epsilon ~max_family task acc fam =
  List.fold_left
    (fun out a ->
      List.fold_left
        (fun out b ->
          let u = Bitset.union a b in
          if Bitset.cardinal u > epsilon then out
          else begin
            let out = add_minimal out u in
            if List.compare_length_with out max_family > 0 then
              raise (Family_overflow task);
            out
          end)
        out fam)
    [] acc

let smallest_of = function
  | [] -> None
  | s :: rest ->
      Some
        (List.fold_left
           (fun best t ->
             if Bitset.cardinal t < Bitset.cardinal best then t else best)
           s rest)

(* -- survival relation ------------------------------------------------- *)

let survivors_of_graph sg ~crashed =
  let sched = Supply_graph.schedule sg in
  let dag = Schedule.dag sched in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in
  let m = Platform.proc_count (Schedule.platform sched) in
  let dead = Array.make m false in
  List.iter (fun p -> if p >= 0 && p < m then dead.(p) <- true) crashed;
  let alive = Array.init v (fun _ -> Array.make eps1 false) in
  Array.iter
    (fun task ->
      let preds = Dag.pred_tasks dag task in
      Array.iteri
        (fun i (r : Schedule.replica) ->
          alive.(task).(i) <-
            (not dead.(r.Schedule.r_proc))
            && List.for_all
                 (fun pred ->
                   List.exists
                     (fun j -> alive.(pred).(j))
                     (Supply_graph.supplier_indices sg ~task ~replica:i ~pred))
                 preds)
        (Schedule.replicas sched task))
    (Dag.topological_order dag);
  alive

let survivors sched ~crashed =
  survivors_of_graph (Supply_graph.build sched) ~crashed

let starved_of alive =
  let starved = ref [] in
  Array.iteri
    (fun task rs ->
      if not (Array.exists Fun.id rs) then starved := task :: !starved)
    alive;
  List.rev !starved

let starved_tasks sched ~crashed = starved_of (survivors sched ~crashed)

(* -- certification ----------------------------------------------------- *)

type per_task = {
  pt_fams : Bitset.t list array;  (** per replica, its minimal kill sets *)
  pt_supports : Bitset.t array option;  (** per replica, a closed support *)
  pt_verdict : task_verdict;
}

let certify ?epsilon ?domains ?(max_family = 65536) sched =
  let dag = Schedule.dag sched in
  let platform = Schedule.platform sched in
  let m = Platform.proc_count platform in
  let v = Dag.task_count dag in
  let eps1 = Schedule.epsilon sched + 1 in
  let epsilon =
    match epsilon with
    | Some e -> min (max e 0) m
    | None -> min (Schedule.epsilon sched) m
  in
  let sg = Supply_graph.build sched in
  let fams = Array.init v (fun _ -> [||]) in
  let supports = Array.make v None in
  let verdicts = Array.make v (Certified Min_cut) in

  let pairwise_disjoint sets =
    let n = Array.length sets in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if not (Bitset.disjoint sets.(i) sets.(j)) then ok := false
      done
    done;
    !ok
  in

  (* Certify one task, reading only strictly earlier levels. *)
  let process task =
    let cross = cross ~epsilon ~max_family task in
    let preds = Dag.pred_tasks dag task in
    let rs = Schedule.replicas sched task in
    let fam_r = Array.make eps1 [] in
    let supp_r = Array.make eps1 (Bitset.create m) in
    let supp_ok = ref true in
    Array.iteri
      (fun i (r : Schedule.replica) ->
        let proc = r.Schedule.r_proc in
        let fam =
          ref (if epsilon >= 1 then [ Bitset.singleton m proc ] else [])
        in
        let supp = Bitset.singleton m proc in
        List.iter
          (fun pred ->
            match Supply_graph.supplier_indices sg ~task ~replica:i ~pred with
            | [] ->
                (* no supply at all: the replica starves unconditionally *)
                fam := [ Bitset.create m ];
                supp_ok := false
            | sups ->
                (* crash sets starving this input: kill every supplier *)
                let via =
                  List.fold_left
                    (fun acc j -> cross acc fams.(pred).(j))
                    [ Bitset.create m ] sups
                in
                List.iter (fun s -> fam := add_minimal !fam s) via;
                (* support witness: follow the supplier with the smallest
                   support, preferring co-located hand-offs on ties *)
                let best =
                  List.fold_left
                    (fun best j ->
                      match best with
                      | None -> Some j
                      | Some b ->
                          let cb =
                            match supports.(pred) with
                            | Some sp -> Bitset.cardinal sp.(b)
                            | None -> max_int
                          and cj =
                            match supports.(pred) with
                            | Some sp -> Bitset.cardinal sp.(j)
                            | None -> max_int
                          in
                          if cj < cb then Some j else best)
                    None sups
                in
                (match (best, supports.(pred)) with
                | Some b, Some sp -> Bitset.union_into ~into:supp sp.(b)
                | _ -> supp_ok := false))
          preds;
        fam_r.(i) <- !fam;
        supp_r.(i) <- supp)
      rs;
    (* killing the task = killing every replica *)
    let task_fam =
      Array.fold_left (fun acc f -> cross acc f) [ Bitset.create m ] fam_r
    in
    let verdict =
      match smallest_of task_fam with
      | Some s -> Refuted (Bitset.elements s)
      | None ->
          if !supp_ok && eps1 >= epsilon + 1 && pairwise_disjoint supp_r then
            Certified (Disjoint_supports (Array.map Bitset.copy supp_r))
          else Certified Min_cut
    in
    {
      pt_fams = fam_r;
      pt_supports = (if !supp_ok then Some supp_r else None);
      pt_verdict = verdict;
    }
  in

  (* Level-synchronous bottom-up sweep: tasks of one precedence level are
     independent given the levels below, so wide levels fan out over
     domains. *)
  let level = Array.make v 0 in
  Array.iter
    (fun task ->
      List.iter
        (fun pred -> level.(task) <- max level.(task) (level.(pred) + 1))
        (Dag.pred_tasks dag task))
    (Dag.topological_order dag);
  let max_level = Array.fold_left max 0 level in
  let by_level = Array.make (max_level + 1) [] in
  (* reverse topological iteration keeps each level list in increasing
     topological position *)
  Array.iter
    (fun task -> by_level.(level.(task)) <- task :: by_level.(level.(task)))
    (Dag.reverse_topological_order dag);
  Array.iter
    (fun tasks ->
      let results =
        if List.compare_length_with tasks 8 >= 0 then
          Parallel.map ?domains process tasks
        else List.map process tasks
      in
      List.iter2
        (fun task pt ->
          fams.(task) <- pt.pt_fams;
          supports.(task) <- pt.pt_supports;
          verdicts.(task) <- pt.pt_verdict)
        tasks results)
    by_level;

  (* smallest refuting crash set over all tasks *)
  let counterexample =
    Array.fold_left
      (fun best verdict ->
        match (verdict, best) with
        | Refuted s, None -> Some s
        | Refuted s, Some b when List.length s < List.length b -> Some s
        | _ -> best)
      None verdicts
    |> Option.map (fun crashed ->
           (crashed, starved_of (survivors_of_graph sg ~crashed)))
  in
  {
    rs_epsilon = epsilon;
    rs_resists = counterexample = None;
    rs_tasks = verdicts;
    rs_counterexample = counterexample;
  }

let pp_verdict ppf = function
  | Certified (Disjoint_supports supports) ->
      Format.fprintf ppf "certified (disjoint supports:";
      Array.iter (fun s -> Format.fprintf ppf " %a" Bitset.pp s) supports;
      Format.fprintf ppf ")"
  | Certified Min_cut -> Format.fprintf ppf "certified (min-cut)"
  | Refuted crashed ->
      Format.fprintf ppf "REFUTED by crash {%s}"
        (String.concat "," (List.map string_of_int crashed))
