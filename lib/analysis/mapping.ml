type join_class = One_to_one | Fallback | Mixed | Invalid

type join = {
  jn_pred : Dag.task;
  jn_succ : Dag.task;
  jn_class : join_class;
  jn_messages : int;
}

type report = {
  mp_epsilon : int;
  mp_joins : join array;
  mp_total_messages : int;
  mp_linear_bound : int;
  mp_quadratic_bound : int;
  mp_all_one_to_one : bool;
  mp_within_linear : bool;
  mp_within_quadratic : bool;
  mp_out_forest : bool;
}

let classify_join sg ~eps1 ~pred ~succ =
  let per_replica =
    Array.init eps1 (fun i ->
        Supply_graph.supplier_indices sg ~task:succ ~replica:i ~pred)
  in
  if Array.exists (fun sups -> sups = []) per_replica then Invalid
  else if
    Array.for_all (fun sups -> List.compare_length_with sups 1 = 0) per_replica
  then begin
    let chosen = Array.map List.hd per_replica in
    let distinct =
      List.length (List.sort_uniq compare (Array.to_list chosen)) = eps1
    in
    if distinct then One_to_one else Mixed
  end
  else if
    Array.for_all
      (fun sups -> List.compare_length_with sups eps1 = 0)
      per_replica
  then Fallback
  else Mixed

let verify sched =
  let dag = Schedule.dag sched in
  let epsilon = Schedule.epsilon sched in
  let eps1 = epsilon + 1 in
  let e = Dag.edge_count dag in
  let sg = Supply_graph.build sched in
  let joins =
    Dag.fold_edges
      (fun pred succ _volume acc ->
        {
          jn_pred = pred;
          jn_succ = succ;
          jn_class = classify_join sg ~eps1 ~pred ~succ;
          jn_messages = Supply_graph.join_message_count sg ~pred ~succ;
        }
        :: acc)
      dag []
    |> List.rev |> Array.of_list
  in
  let total = Schedule.message_count sched in
  let linear = e * eps1 in
  let quadratic = e * eps1 * eps1 in
  let all_one_to_one =
    Array.for_all (fun j -> j.jn_class = One_to_one) joins
  in
  {
    mp_epsilon = epsilon;
    mp_joins = joins;
    mp_total_messages = total;
    mp_linear_bound = linear;
    mp_quadratic_bound = quadratic;
    mp_all_one_to_one = all_one_to_one;
    mp_within_linear = total <= linear;
    mp_within_quadratic = total <= quadratic;
    mp_out_forest = Classify.is_out_forest dag;
  }

let class_to_string = function
  | One_to_one -> "one-to-one"
  | Fallback -> "fallback"
  | Mixed -> "mixed"
  | Invalid -> "invalid"

let count report cls =
  Array.fold_left
    (fun acc j -> if j.jn_class = cls then acc + 1 else acc)
    0 report.mp_joins
