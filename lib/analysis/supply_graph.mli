(** The replica supply graph of a schedule.

    Static analysis views a schedule as a bipartite structure per DAG
    edge (a {e join}): which replicas of the predecessor supply data to
    which replicas of the successor, and whether each supply is a
    co-located hand-off or an inter-processor message.  This module
    extracts that structure once from the [Schedule.t] supply records so
    that the certifier ({!Resilience}), the Proposition 5.1 verifier
    ({!Mapping}) and the lint rules all read the same normalized view
    instead of re-walking [r_inputs] lists. *)

type kind =
  | Colocated  (** a [Schedule.Local] supply — same processor, no message *)
  | Remote  (** a [Schedule.Message] supply — a booked link leg *)

type supplier = {
  sp_replica : int;  (** replica index of the predecessor task *)
  sp_kind : kind;
}

type t

val build : Schedule.t -> t
(** One pass over all replicas.  Supplies referencing replica indices
    outside [0 .. epsilon] are dropped here (the validator reports them);
    duplicates are preserved so lint can flag them. *)

val schedule : t -> Schedule.t

val suppliers : t -> task:Dag.task -> replica:int -> pred:Dag.task -> supplier list
(** Every supply of [pred]'s data booked for replica [replica] of [task],
    in the order the supplies appear in [r_inputs].  Empty when the
    schedule books no supply for that predecessor (a validation error). *)

val supplier_indices : t -> task:Dag.task -> replica:int -> pred:Dag.task -> int list
(** Deduplicated, sorted replica indices of the suppliers. *)

val join_message_count : t -> pred:Dag.task -> succ:Dag.task -> int
(** Number of {!Remote} supplies booked across all replicas of [succ] for
    predecessor [pred] — the join's contribution to the schedule's
    communication count. *)
