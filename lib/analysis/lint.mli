(** Schedule lint: a rule registry over static schedules.

    Where [Ftsched_sched.Validate] is the strict checker (a non-empty
    result means the schedule is wrong), lint is the advisory layer: each
    {e rule} inspects a schedule and reports {e findings} with a rule id,
    a severity and a location, suitable for text or SARIF-like JSON
    reporting.  The error-level built-ins (one-port conformance,
    causality, replica co-location) overlap with the validator by design —
    they share the {!Intervals} sweep primitives — so that [ftsched
    analyze] produces a single uniform findings stream; warning- and
    info-level rules (redundant supplies, idle gaps, granularity) flag
    smells a valid schedule can still exhibit. *)

type severity = Error | Warning | Info

type location = {
  l_task : Dag.task option;
  l_replica : int option;
  l_proc : Platform.proc option;
  l_span : (float * float) option;  (** time window the finding refers to *)
}

val no_loc : location

type finding = {
  f_rule : string;
  f_severity : severity;
  f_loc : location;
  f_msg : string;
}

type rule = {
  rule_id : string;  (** e.g. ["one-port/send"]; unique in the registry *)
  rule_severity : severity;
  rule_doc : string;  (** one-line description for [--list-rules] *)
  rule_check : fabric:Netstate.fabric -> Schedule.t -> finding list;
}

val builtins : rule list
(** The built-in rules, in reporting order:
    ["one-port/send"], ["one-port/recv"], ["one-port/link"] (errors —
    port and link occupancy under the schedule's communication model),
    ["causality/message"] (error — a message leg departing before its
    producer finishes, arriving before the leg completes, or a replica
    starting before its data),
    ["replication/colocated"] (error — two replicas of a task on one
    processor),
    ["redundancy/duplicate-supply"], ["redundancy/self-message"]
    (warnings — the same supplier booked twice for one input; a message
    from the consumer's own processor),
    ["smell/granularity"] (warning — fine-grain instance, [g < 0.1]:
    communication dominates computation),
    ["smell/idle-gap"] (info — a processor idling more than a quarter of
    the makespan between two consecutive replicas). *)

val register : rule -> unit
(** Add a rule to the registry, replacing any previous rule with the same
    id (built-ins can be overridden). *)

val rules : unit -> rule list
(** Built-ins plus registered rules, registration order. *)

val run : ?fabric:Netstate.fabric -> ?rules:rule list -> Schedule.t -> finding list
(** Run the rules (default: the full registry) and return the findings
    sorted by decreasing severity, registry order within one severity.
    [fabric] defaults to the clique, as in {!Validate.run}. *)

val errors : finding list -> int
(** Number of error-level findings. *)

val severity_to_string : severity -> string
val pp_finding : Format.formatter -> finding -> unit
