(** Static certification of [epsilon]-fault tolerance (Proposition 5.2
    without replay).

    Under fail-stop crashes from time zero, whether a replica completes is
    purely combinatorial: replica [r] survives a crash set [S] iff its
    processor is alive and, for every predecessor of its task, at least
    one recorded supplier replica survives [S].  A schedule resists
    [epsilon] failures iff no crash set of size at most [epsilon] starves
    every replica of some task.

    Instead of enumerating the [C(m, epsilon)] crash sets (what
    [Ftsched_sim.Fault_check] replays, sampling beyond 20k subsets), this
    module computes, bottom-up in topological order, the family of
    {e minimal kill sets} of every replica — the antichain of minimal
    processor sets whose joint crash starves it — truncated to sets of at
    most [epsilon] processors.  Truncation is lossless for the decision:
    any kill set of size [<= epsilon] contains a minimal one of size
    [<= epsilon] whose per-supplier components are themselves of size
    [<= epsilon].  A task is vulnerable iff combining one kill set per
    replica stays within [epsilon] processors; the smallest such union is
    a {e minimal counterexample} crash set, directly checkable by replay.
    The result is exact — the same verdict as exhaustive enumeration — at
    a cost polynomial in the schedule for fixed [epsilon].

    As a human-readable (and independently checkable) witness the
    certifier also reports, when one exists, a family of pairwise
    {e disjoint support sets}: one processor set per replica such that the
    replica survives whenever its set is untouched.  With [epsilon + 1]
    pairwise disjoint sets, any [epsilon] crashes miss one of them
    entirely — the Hall/pigeonhole argument the paper uses for the
    one-to-one mapping.  When the greedy support construction does not
    yield disjoint sets the task is still certified by the (exhaustive)
    kill-family computation, reported as {!Min_cut}. *)

type witness =
  | Disjoint_supports of Bitset.t array
      (** per replica index, a processor set [A] with: if no processor of
          [A] crashes, the replica completes.  Pairwise disjoint. *)
  | Min_cut
      (** no small disjoint-support witness found; certified because the
          truncated minimal-kill-family of the task is empty, i.e. every
          crash set starving all replicas has more than [epsilon]
          processors. *)

type task_verdict =
  | Certified of witness
  | Refuted of Platform.proc list
      (** a minimal crash set of size [<= epsilon] starving the task,
          sorted increasingly *)

type report = {
  rs_epsilon : int;  (** the [epsilon] the analysis was run against *)
  rs_resists : bool;
  rs_tasks : task_verdict array;  (** indexed by task id *)
  rs_counterexample : (Platform.proc list * Dag.task list) option;
      (** smallest refuting crash set over all tasks, with every task it
          starves — the same shape as [Fault_check.report.counterexample] *)
}

exception Family_overflow of Dag.task
(** Raised when a kill-set family exceeds [max_family] elements while
    certifying the given task; the analysis is then abandoned rather than
    risking an unsound truncation.  Practically reachable only for large
    [epsilon] on highly entangled schedules — fall back to replay
    sampling. *)

val certify :
  ?epsilon:int ->
  ?domains:int ->
  ?max_family:int ->
  Schedule.t ->
  report
(** [certify sched] statically decides resistance to [epsilon] (default:
    the schedule's replication degree) arbitrary fail-stop crashes.  No
    replay is performed.  Tasks of wide DAG levels are certified in
    parallel over [domains] OCaml domains (default
    {!Parallel.available_domains}).  [max_family] (default [65536]) bounds
    any intermediate kill-set family, see {!Family_overflow}. *)

val survivors : Schedule.t -> crashed:Platform.proc list -> bool array array
(** [survivors sched ~crashed].(task).(replica) — the combinatorial
    survival relation under the given from-start crash set: alive
    processor and, per predecessor, at least one surviving supplier.
    Agrees with [Replay.crash_from_start] on completion (not on times). *)

val starved_tasks : Schedule.t -> crashed:Platform.proc list -> Dag.task list
(** Tasks with no surviving replica, increasing ids. *)

val pp_verdict : Format.formatter -> task_verdict -> unit
