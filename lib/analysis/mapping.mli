(** Proposition 5.1 verifier: one-to-one mappings and message-count
    bounds.

    The paper proves that CAFT books at most [e(epsilon+1)] messages when
    every join uses a {e one-to-one mapping} — replica [i] of a task fed
    by exactly one replica of each predecessor, distinct replicas feeding
    distinct replicas — which it achieves on fork graphs and out-forests,
    and at most [e(epsilon+1)^2] in the general fallback where every
    replica receives from {e all} [epsilon+1] replicas of every
    predecessor.  This module classifies every join of a schedule and
    checks the corresponding bounds, cross-referencing the structural
    predicates of [Ftsched_dag.Classify]. *)

type join_class =
  | One_to_one
      (** every successor replica has exactly one supplier and no two
          share it: an injective replica-to-replica mapping *)
  | Fallback
      (** every successor replica is supplied by all [epsilon+1]
          predecessor replicas *)
  | Mixed
      (** well-formed but neither pattern; still possibly resistant,
          counted against the quadratic bound *)
  | Invalid
      (** some successor replica has no supplier for this predecessor *)

type join = {
  jn_pred : Dag.task;
  jn_succ : Dag.task;
  jn_class : join_class;
  jn_messages : int;  (** inter-processor messages booked on this join *)
}

type report = {
  mp_epsilon : int;
  mp_joins : join array;  (** in DAG edge order *)
  mp_total_messages : int;  (** [Schedule.message_count] *)
  mp_linear_bound : int;  (** [e(epsilon+1)] *)
  mp_quadratic_bound : int;  (** [e(epsilon+1)^2] *)
  mp_all_one_to_one : bool;
  mp_within_linear : bool;  (** total [<= e(epsilon+1)] *)
  mp_within_quadratic : bool;  (** total [<= e(epsilon+1)^2] *)
  mp_out_forest : bool;
      (** [Classify.is_out_forest] — the graphs Proposition 5.1 promises
          the linear bound for *)
}

val verify : Schedule.t -> report
(** Classify every join and check the bounds.  A schedule of an
    out-forest whose joins are all one-to-one must satisfy the linear
    bound; every well-formed schedule must satisfy the quadratic one. *)

val class_to_string : join_class -> string

val count : report -> join_class -> int
(** Number of joins of the given class. *)
