(* ftsched: command-line driver for the fault-tolerant scheduling library.

   Subcommands:
     schedule    build one schedule on a random instance and inspect it
     crash       replay a schedule under a crash scenario
     check       verify epsilon-fault tolerance by exhaustive/sampled replay
     analyze     static epsilon-resistance certificate, mapping bounds, lints
     inspect     utilization/communication metrics, bounds, save/load
     montecarlo  random fault-injection campaigns on one schedule
     stress      adversarial fault injection and graceful degradation
     topology    inspect a sparse interconnect and its routing tables
     campaign    regenerate one of the paper's figures *)

open Cmdliner

(* -- shared options ---------------------------------------------------- *)

let seed_t =
  let doc = "Random seed (drives the instance and tie-breaking)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let m_t =
  let doc = "Number of processors." in
  Arg.(value & opt int 10 & info [ "m"; "processors" ] ~docv:"M" ~doc)

let tasks_t =
  let doc = "Number of tasks of the random DAG." in
  Arg.(value & opt int 40 & info [ "tasks" ] ~docv:"V" ~doc)

let epsilon_t =
  let doc = "Number of processor failures the schedule must tolerate." in
  Arg.(value & opt int 1 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc)

let granularity_t =
  let doc = "Target task-graph granularity g(G, P)." in
  Arg.(value & opt float 1.0 & info [ "granularity"; "g" ] ~docv:"G" ~doc)

let algo_t =
  let doc = "Scheduling algorithm: caft, ftsa, ftbar or heft." in
  Arg.(
    value
    & opt (enum [ ("caft", `Caft); ("ftsa", `Ftsa); ("ftbar", `Ftbar); ("heft", `Heft) ]) `Caft
    & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let model_t =
  let doc = "Communication model: one-port, multiport-2, multiport-4 or macro." in
  Arg.(
    value
    & opt
        (enum
           [
             ("one-port", Netstate.One_port);
             ("macro", Netstate.Macro_dataflow);
             ("multiport-2", Netstate.Multiport 2);
             ("multiport-4", Netstate.Multiport 4);
           ])
        Netstate.One_port
    & info [ "model" ] ~docv:"MODEL" ~doc)

let family_t =
  let doc =
    "Task-graph family: random, fork, join, chain, out-tree, fork-join, \
     stencil, gauss, butterfly, cholesky, staged, pipelines."
  in
  Arg.(value & opt string "random" & info [ "family" ] ~docv:"FAMILY" ~doc)

let import_t =
  let doc =
    "Import the task graph from a DOT file instead of generating one \
     (numeric edge labels become data volumes)."
  in
  Arg.(value & opt (some string) None & info [ "import" ] ~docv:"FILE" ~doc)

(* Bad option values the cmdliner combinators cannot type-check
   themselves (family names, topology shapes) are reported like bad
   input files: one structured line on stderr and exit 2, never a raw
   exception backtrace. *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "ftsched: error: %s\n" msg;
      exit 2)
    fmt

(* family dispatch lives in [Instance] now, shared with the serve daemon *)
let make_dag rng ~family ~tasks =
  match Instance.make_dag rng ~family ~tasks with
  | Ok dag -> dag
  | Error msg -> usage_error "%s" msg

(* -- input hardening ----------------------------------------------------
   Malformed user-supplied files must not surface as raw OCaml exception
   backtraces: every load funnels through these helpers, which print one
   structured line (file, line, reason) on stderr and exit 2. *)

let input_error path ?line reason =
  let reason =
    (* Sys_error messages already lead with the file name *)
    let pre = path ^ ": " in
    let n = String.length pre in
    if String.length reason > n && String.sub reason 0 n = pre then
      String.sub reason n (String.length reason - n)
    else reason
  in
  (match line with
  | Some l -> Printf.eprintf "ftsched: error: %s:%d: %s\n" path l reason
  | None -> Printf.eprintf "ftsched: error: %s: %s\n" path reason);
  exit 2

let load_dag_file path =
  try Dot.parse_file ~default_volume:100. path with
  | Dot.Parse_error { line; message } -> input_error path ~line message
  | Dag.Cycle tasks ->
      input_error path
        (Printf.sprintf "graph has a dependency cycle through tasks {%s}"
           (String.concat "," (List.map string_of_int tasks)))
  | Sys_error msg -> input_error path msg
  | Invalid_argument msg | Failure msg -> input_error path msg

let load_schedule_file path =
  try Schedule_io.of_file path with
  | Schedule_io.Parse_error { line; message } -> input_error path ~line message
  | Dag.Cycle tasks ->
      input_error path
        (Printf.sprintf "schedule DAG has a cycle through tasks {%s}"
           (String.concat "," (List.map string_of_int tasks)))
  | Sys_error msg -> input_error path msg
  | Invalid_argument msg | Failure msg -> input_error path msg

let make_instance ?import ~seed ~family ~tasks ~m ~granularity () =
  let rng = Rng.create seed in
  let dag =
    match import with
    | Some path -> load_dag_file path
    | None -> make_dag rng ~family ~tasks
  in
  let params = Platform_gen.default ~m () in
  let costs = Platform_gen.instance rng ~granularity params dag in
  (dag, costs)

let run_algo algo ~model ~seed ~epsilon costs =
  match algo with
  | `Caft -> Caft.run ~model ~seed ~epsilon costs
  | `Ftsa -> Ftsa.run ~model ~seed ~epsilon costs
  | `Ftbar -> Ftbar.run ~model ~seed ~epsilon costs
  | `Heft -> Heft.run ~model ~seed costs

(* -- observability ------------------------------------------------------ *)

type obs = {
  o_trace : string option;
  o_metrics : bool;
  o_metrics_format : [ `Text | `Json ];
  o_metrics_out : string option;
  o_profile : bool;
  o_profile_out : string option;
}

let obs_t =
  let trace_t =
    let doc =
      "Record a Chrome trace-event timeline of the run and write it to \
       $(docv) (loadable in Perfetto or chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_t =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect scheduler metrics (decision counters, contention \
             histograms) and print them after the command output.")
  in
  let metrics_format_t =
    let doc = "Metrics dump format: text or json." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "metrics-format" ] ~docv:"FMT" ~doc)
  in
  let metrics_out_t =
    let doc = "Write the metrics dump to $(docv) instead of stdout." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let profile_t =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Profile the run: per-phase wall/self time, call counts and GC \
             deltas attributed per domain, plus parallel worker busy/steal \
             telemetry, printed as a table after the command output.")
  in
  let profile_out_t =
    let doc =
      "Write the profile report as JSON (ftsched/profile/v1) to $(docv); \
       implies $(b,--profile) without the text table."
    in
    Arg.(
      value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)
  in
  let mk o_trace o_metrics o_metrics_format o_metrics_out o_profile
      o_profile_out =
    { o_trace; o_metrics; o_metrics_format; o_metrics_out; o_profile;
      o_profile_out }
  in
  Term.(
    const mk $ trace_t $ metrics_t $ metrics_format_t $ metrics_out_t
    $ profile_t $ profile_out_t)

let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* Runs a command body with tracing/metrics switched on as requested and
   dumps both afterwards.  The body returns its exit code (instead of
   calling [exit]) so failure paths still get their dumps. *)
let with_obs obs f =
  let profiling = obs.o_profile || obs.o_profile_out <> None in
  if obs.o_metrics then Obs.Metrics.set_enabled true;
  if profiling then begin
    Obs.Prof.reset ();
    Obs.Prof.set_enabled true
  end;
  (* Arm the exit-time flush before starting: an [exit code] below (or a
     crash mid-run) still leaves a loadable trace. *)
  Option.iter Obs.Trace.set_output obs.o_trace;
  if obs.o_trace <> None then Obs.Trace.start ();
  let code = f () in
  Option.iter Obs.Trace.write obs.o_trace;
  if profiling then begin
    let r = Obs.Prof.report () in
    Obs.Prof.set_enabled false;
    (match obs.o_profile_out with
    | Some path -> write_file path (Json.to_string (Obs.Prof.to_json r) ^ "\n")
    | None -> ());
    if obs.o_profile then
      print_string (Text_table.to_string (Obs.Prof.to_table r) ^ "\n")
  end;
  if obs.o_metrics then begin
    let dump =
      match obs.o_metrics_format with
      | `Text -> Text_table.to_string (Obs.Metrics.to_table ()) ^ "\n"
      | `Json -> Json.to_string (Obs.Metrics.to_json ()) ^ "\n"
    in
    match obs.o_metrics_out with
    | None -> print_string dump
    | Some path -> write_file path dump
  end;
  if code <> 0 then exit code

(* -- schedule ----------------------------------------------------------- *)

let schedule_cmd =
  let gantt_t =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.")
  in
  let comm_t =
    Arg.(
      value & flag
      & info [ "show-comm" ] ~doc:"Add send/receive port rows to the Gantt chart.")
  in
  let dot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Export the task graph in DOT format.")
  in
  let stream_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "stream" ] ~docv:"FILE"
          ~doc:
            "Stream the schedule to $(docv) while it is built instead of \
             materializing it (CAFT only): the million-task path.  The file \
             is the usual ftsched-schedule format; summary, validation, \
             Gantt and DOT output are skipped.")
  in
  let run seed m tasks epsilon granularity algo model family import gantt
      show_comm dot stream obs =
    with_obs obs @@ fun () ->
    let dag, costs = make_instance ?import ~seed ~family ~tasks ~m ~granularity () in
    match stream with
    | Some path ->
        if algo <> `Caft then begin
          Format.eprintf "--stream is only supported for CAFT@.";
          1
        end
        else begin
          Caft.run_stream ~model ~seed ~epsilon ~path costs;
          Format.printf "streamed %d tasks x %d replicas to %s@."
            (Dag.task_count dag) (epsilon + 1) path;
          0
        end
    | None ->
    let sched = run_algo algo ~model ~seed ~epsilon costs in
    Format.printf "%a@." Schedule.pp_summary sched;
    (* width is quadratic (transitive closure); past the cap print n/a
       instead of failing the whole run *)
    let width =
      if Dag.task_count dag <= Dag.transitive_closure_cap then
        string_of_int (Dag.width dag)
      else "n/a"
    in
    Format.printf "graph: %d tasks, %d edges, width %s, granularity %.2f@."
      (Dag.task_count dag) (Dag.edge_count dag) width
      (Granularity.compute costs);
    (match Validate.run sched with
    | [] -> Format.printf "validation: ok@."
    | vs ->
        Format.printf "validation: %d violations@." (List.length vs);
        List.iter (fun v -> Format.printf "  %a@." Validate.pp_violation v) vs);
    if gantt then Gantt.print ~show_comm sched;
    Option.iter (fun path -> Dot.to_file path dag) dot;
    0
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ epsilon_t $ granularity_t $ algo_t
      $ model_t $ family_t $ import_t $ gantt_t $ comm_t $ dot_t $ stream_t
      $ obs_t)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Build one fault-tolerant schedule and inspect it")
    term

(* -- crash -------------------------------------------------------------- *)

let crash_cmd =
  let crashed_t =
    Arg.(
      value
      & opt (list int) []
      & info [ "crash" ] ~docv:"P1,P2" ~doc:"Processors that fail (from time 0).")
  in
  let random_t =
    Arg.(
      value & opt int 0
      & info [ "random-crashes" ] ~docv:"K"
          ~doc:"Crash K processors chosen uniformly instead of --crash.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Accepted for symmetry with check/montecarlo; a single replay \
             always runs on one domain.")
  in
  let run seed m tasks epsilon granularity algo model family crashed random_crashes domains obs =
    with_obs obs @@ fun () ->
    ignore (domains : int option);
    let _, costs = make_instance ~seed ~family ~tasks ~m ~granularity () in
    let sched = run_algo algo ~model ~seed ~epsilon costs in
    let crashed =
      if random_crashes > 0 then
        Scenario.uniform_procs (Rng.create (seed + 17)) ~m ~count:random_crashes
      else crashed
    in
    let out = Replay.crash_from_start sched ~crashed in
    Format.printf "schedule %s: latency %.3f (0 crash), upper bound %.3f@."
      (Schedule.algorithm sched)
      (Schedule.latency_zero_crash sched)
      (Schedule.latency_upper_bound sched);
    Format.printf "crashed processors: {%s}@."
      (String.concat "," (List.map string_of_int crashed));
    if out.Replay.completed then
      Format.printf "replay: completed, real latency %.3f@." out.Replay.latency
    else
      Format.printf "replay: FAILED, starved tasks {%s}@."
        (String.concat "," (List.map string_of_int out.Replay.failed_tasks));
    0
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ epsilon_t $ granularity_t $ algo_t
      $ model_t $ family_t $ crashed_t $ random_t $ domains_t $ obs_t)
  in
  Cmd.v (Cmd.info "crash" ~doc:"Replay a schedule under processor failures") term

(* -- check -------------------------------------------------------------- *)

let check_cmd =
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard the exhaustive crash-set enumeration over N domains \
             (the report is identical for any N).")
  in
  let run seed m tasks epsilon granularity algo model family domains obs =
    with_obs obs @@ fun () ->
    let _, costs = make_instance ~seed ~family ~tasks ~m ~granularity () in
    let sched = run_algo algo ~model ~seed ~epsilon costs in
    let report = Fault_check.check ?domains ~epsilon sched in
    Format.printf "%s, epsilon=%d: %s (%d scenarios%s)@."
      (Schedule.algorithm sched) epsilon
      (if report.Fault_check.resists then "resists" else "DOES NOT RESIST")
      report.Fault_check.scenarios_checked
      (if report.Fault_check.exhaustive then ", exhaustive" else ", sampled");
    (match report.Fault_check.counterexample with
    | None ->
        Format.printf "worst completed-scenario latency: %.3f@."
          report.Fault_check.worst_latency
    | Some (crashed, failed) ->
        Format.printf "counterexample: crash {%s} starves tasks {%s}@."
          (String.concat "," (List.map string_of_int crashed))
          (String.concat "," (List.map string_of_int failed)));
    if report.Fault_check.resists then 0 else 1
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ epsilon_t $ granularity_t $ algo_t
      $ model_t $ family_t $ domains_t $ obs_t)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Verify fault tolerance by crash-set enumeration")
    term

(* -- inspect -------------------------------------------------------------- *)

let inspect_cmd =
  let save_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Save the schedule (text format).")
  in
  let load_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Inspect a previously saved schedule instead of building one.")
  in
  let explain_t =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the critical chain that determines the latency.")
  in
  let run seed m tasks epsilon granularity algo model family import save load explain =
    let sched =
      match load with
      | Some path -> load_schedule_file path
      | None ->
          let _, costs =
            make_instance ?import ~seed ~family ~tasks ~m ~granularity ()
          in
          run_algo algo ~model ~seed ~epsilon costs
    in
    Format.printf "%a@.@." Schedule.pp_summary sched;
    Format.printf "%a@." Metrics.pp (Metrics.analyze sched);
    let costs = Schedule.costs sched in
    Format.printf "lower bounds: critical path %.3f, work %.3f@."
      (Bounds.critical_path costs) (Bounds.work costs);
    (match Validate.run sched with
    | [] -> Format.printf "validation: ok@."
    | vs -> Format.printf "validation: %d violations!@." (List.length vs));
    if explain then begin
      Format.printf "@.critical chain (comm share %.0f%%):@."
        (100. *. Explain.comm_share sched);
      Format.printf "@[<v>%a@]@." Explain.pp (Explain.critical_chain sched)
    end;
    Option.iter (fun path -> Schedule_io.to_file path sched) save
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ epsilon_t $ granularity_t $ algo_t
      $ model_t $ family_t $ import_t $ save_t $ load_t $ explain_t)
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Analyze a schedule: utilization, communication, bounds; save/load")
    term

(* -- analyze ------------------------------------------------------------- *)

let analyze_cmd =
  let eps_opt_t =
    let doc =
      "Tolerance to certify; also drives the replication degree when \
       building a schedule (default: the schedule's replication degree)."
    in
    Arg.(value & opt (some int) None & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc)
  in
  let format_t =
    let doc = "Output format: text or json." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let certificate_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "certificate" ] ~docv:"FILE"
          ~doc:"Write the standalone resistance certificate (JSON) to FILE.")
  in
  let cross_check_t =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "Also replay crash scenarios with the dynamic checker and \
             report whether it agrees with the static certificate.")
  in
  let load_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Analyze a previously saved schedule instead of building one.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Parallelize per-task certification over N domains.")
  in
  let run seed m tasks epsilon granularity algo model family import load format
      certificate cross_check domains =
    let sched =
      match load with
      | Some path -> load_schedule_file path
      | None ->
          let _, costs =
            make_instance ?import ~seed ~family ~tasks ~m ~granularity ()
          in
          run_algo algo ~model ~seed
            ~epsilon:(Option.value epsilon ~default:1)
            costs
    in
    let report = Analysis_report.analyze ?epsilon ?domains sched in
    (match format with
    | `Json -> print_endline (Json.to_string (Analysis_report.to_json report))
    | `Text ->
        Format.printf "@[<v>%a@]@?" Analysis_report.pp report;
        if cross_check then begin
          match report.Analysis_report.a_resilience with
          | None ->
              Format.printf
                "cross-check: skipped (no static verdict to compare)@."
          | Some static ->
              let dynamic =
                Fault_check.check ~static
                  ~epsilon:report.Analysis_report.a_epsilon sched
              in
              Format.printf
                "cross-check: replay %s after %d scenarios (%s), static \
                 certificate %s@."
                (if dynamic.Fault_check.resists then "resists"
                 else "does not resist")
                dynamic.Fault_check.scenarios_checked
                (if dynamic.Fault_check.exhaustive then "exhaustive"
                 else "sampled")
                (match dynamic.Fault_check.static_agrees with
                | Some true -> "agrees"
                | Some false -> "DISAGREES"
                | None -> "not compared")
        end);
    Option.iter
      (fun path ->
        match report.Analysis_report.a_certificate with
        | None -> prerr_endline "no certificate to write (analysis overflowed)"
        | Some c ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Json.to_string (Certificate.to_json c));
                output_char oc '\n'))
      certificate;
    if not (Analysis_report.ok report) then exit 1
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ eps_opt_t $ granularity_t $ algo_t
      $ model_t $ family_t $ import_t $ load_t $ format_t $ certificate_t
      $ cross_check_t $ domains_t)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically certify \xCE\xB5-resistance, verify mapping bounds and \
          lint the schedule")
    term

(* -- montecarlo ------------------------------------------------------------ *)

let montecarlo_cmd =
  let runs_t =
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc:"Number of scenarios.")
  in
  let crashes_t =
    Arg.(
      value & opt int 1
      & info [ "crashes" ] ~docv:"K" ~doc:"Processors crashed per scenario.")
  in
  let timed_t =
    Arg.(
      value & flag
      & info [ "timed" ]
          ~doc:
            "Crash at uniform random instants within the schedule horizon \
             instead of from time zero.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Evaluate the replays over N domains (the report is identical \
             for any N).")
  in
  let no_batch_t =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Evaluate one scenario per replay call instead of \
             struct-of-arrays blocks (the report is identical either way; \
             this is the differential baseline).")
  in
  let batch_block_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch-block" ] ~docv:"N"
          ~doc:
            "Scenarios per batched replay block (default 256).  Tunes the \
             work-stealing granularity only; the report is identical for \
             any N.")
  in
  let run seed m tasks epsilon granularity algo model family runs crashes timed
      domains no_batch batch_block obs =
    with_obs obs @@ fun () ->
    let _, costs = make_instance ~seed ~family ~tasks ~m ~granularity () in
    let sched = run_algo algo ~model ~seed ~epsilon costs in
    let mode =
      if timed then Monte_carlo.Timed (Schedule.makespan sched)
      else Monte_carlo.From_start
    in
    Format.printf
      "%s, epsilon=%d, %d scenarios of %d %s crashes (latency with 0 crash: \
       %.3f)@."
      (Schedule.algorithm sched) epsilon runs crashes
      (if timed then "timed" else "from-start")
      (Schedule.latency_zero_crash sched);
    let report =
      Monte_carlo.run ~seed:(seed + 1) ~runs ?domains ~batch:(not no_batch)
        ?batch_block ~crashes ~mode sched
    in
    Format.printf "%a@." Monte_carlo.pp report;
    0
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ epsilon_t $ granularity_t $ algo_t
      $ model_t $ family_t $ runs_t $ crashes_t $ timed_t $ domains_t
      $ no_batch_t $ batch_block_t $ obs_t)
  in
  Cmd.v
    (Cmd.info "montecarlo" ~doc:"Monte-Carlo fault injection on one schedule")
    term

(* -- stress -------------------------------------------------------------- *)

let stress_cmd =
  let budget_t =
    let doc =
      "Adversary search budget (frontier evaluations): small (2k), medium \
       (20k) or large (200k)."
    in
    Arg.(
      value
      & opt (enum [ ("small", 2_000); ("medium", 20_000); ("large", 200_000) ])
          20_000
      & info [ "budget" ] ~docv:"SIZE" ~doc)
  in
  let beyond_t =
    let doc =
      "Sweep the degradation curve up to K crashes beyond epsilon (0 \
       disables the sweep)."
    in
    Arg.(value & opt int 2 & info [ "beyond-epsilon" ] ~docv:"K" ~doc)
  in
  let runs_t =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"N"
          ~doc:"Monte-Carlo scenarios per degradation-curve point.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the full report as JSON on stdout.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Parallelize the static certification and the degradation \
             sweep over N domains (the report is identical for any N).")
  in
  let run seed m tasks epsilon granularity algo model family import budget
      beyond runs json domains obs =
    with_obs obs @@ fun () ->
    let _, costs =
      make_instance ?import ~seed ~family ~tasks ~m ~granularity ()
    in
    let sched = run_algo algo ~model ~seed ~epsilon costs in
    (* the schedule's actual tolerance (0 for unreplicated baselines),
       not the requested one: the invariant below is about what the
       schedule guarantees *)
    let epsilon = Schedule.epsilon sched in
    let report = Inject.adversary ~seed:(seed + 23) ~budget ?domains sched in
    let curve =
      if beyond <= 0 then []
      else
        Monte_carlo.degradation_curve ~seed:(seed + 1) ~runs ?domains
          ~max_crashes:(min m (epsilon + beyond))
          ~mode:Monte_carlo.From_start sched
    in
    (* the dynamic half of Proposition 5.2: within tolerance, every
       sampled scenario must complete *)
    let within_eps_ok =
      List.for_all
        (fun (k, (r : Monte_carlo.report)) ->
          k > epsilon || r.Monte_carlo.completed = r.Monte_carlo.runs)
        curve
    in
    (if json then
       let curve_json =
         List.map
           (fun (k, (r : Monte_carlo.report)) ->
             let cm, cmin =
               match r.Monte_carlo.degradation with
               | Some d ->
                   ( d.Monte_carlo.deg_completion_mean,
                     d.Monte_carlo.deg_completion_min )
               | None -> (1., 1.)
             in
             Json.Obj
               [
                 ("crashes", Json.Int k);
                 ("runs", Json.Int r.Monte_carlo.runs);
                 ("completed", Json.Int r.Monte_carlo.completed);
                 ("completion_mean", Json.Float cm);
                 ("completion_min", Json.Float cmin);
                 ("worst_slowdown", Json.Float r.Monte_carlo.worst_slowdown);
               ])
           curve
       in
       print_endline
         (Json.to_string
            (Json.Obj
               [
                 ("stress", Inject.to_json report);
                 ("degradation_curve", Json.List curve_json);
                 ("within_epsilon_ok", Json.Bool within_eps_ok);
               ]))
     else begin
       Format.printf "%s, %d tasks on %d processors@."
         (Schedule.algorithm sched)
         (Dag.task_count (Schedule.dag sched))
         m;
       Format.printf "@[<v>%a@]@." Inject.pp report;
       if curve <> [] then begin
         Format.printf "degradation curve (%d runs per point):@." runs;
         Format.printf
           "  crashes  completed  completion(mean/min)  worst-slowdown@.";
         List.iter
           (fun (k, (r : Monte_carlo.report)) ->
             let cm, cmin =
               match r.Monte_carlo.degradation with
               | Some d ->
                   ( d.Monte_carlo.deg_completion_mean,
                     d.Monte_carlo.deg_completion_min )
               | None -> (1., 1.)
             in
             Format.printf "  %7d  %4d/%-4d  %8.3f/%-8.3f  %s@." k
               r.Monte_carlo.completed r.Monte_carlo.runs cm cmin
               (if Float.is_nan r.Monte_carlo.worst_slowdown then "-"
                else Printf.sprintf "%.2fx" r.Monte_carlo.worst_slowdown))
           curve
       end;
       if not within_eps_ok then
         Format.printf
           "WARNING: a scenario within epsilon crashes failed to complete@."
     end);
    if within_eps_ok then 0 else 1
  in
  let term =
    Term.(
      const run $ seed_t $ m_t $ tasks_t $ epsilon_t $ granularity_t $ algo_t
      $ model_t $ family_t $ import_t $ budget_t $ beyond_t $ runs_t $ json_t
      $ domains_t $ obs_t)
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Adversarial fault injection: worst-case crash plans and graceful \
          degradation")
    term

(* -- topology ------------------------------------------------------------ *)

let topology_cmd =
  let shape_t =
    Arg.(
      value & opt string "ring"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:"Interconnect: ring, star, mesh-RxC, torus-RxC, hypercube-D, clique.")
  in
  let routes_t =
    Arg.(value & flag & info [ "routes" ] ~doc:"Print the full routing table.")
  in
  let parse_shape m shape =
    let unknown () =
      usage_error
        "unknown topology shape %S (accepted: ring, star, clique, mesh-RxC, \
         torus-RxC, hypercube-D)"
        shape
    in
    let grid prefix f =
      try Scanf.sscanf shape (prefix ^^ "-%dx%d") (fun r c -> f ~rows:r ~cols:c ())
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> unknown ()
    in
    match shape with
    | "ring" -> Topology.ring m
    | "star" -> Topology.star m
    | "clique" -> Topology.clique m
    | _ when String.length shape > 5 && String.sub shape 0 5 = "mesh-" ->
        grid "mesh" (fun ~rows ~cols () -> Topology.mesh2d ~rows ~cols ())
    | _ when String.length shape > 6 && String.sub shape 0 6 = "torus-" ->
        grid "torus" (fun ~rows ~cols () -> Topology.torus2d ~rows ~cols ())
    | _ when String.length shape > 10 && String.sub shape 0 10 = "hypercube-" -> (
        match
          int_of_string_opt (String.sub shape 10 (String.length shape - 10))
        with
        | Some d when d >= 0 -> Topology.hypercube d
        | Some _ | None -> unknown ())
    | _ -> unknown ()
  in
  let run m shape routes =
    let topo =
      try parse_shape m shape
      with Invalid_argument msg | Failure msg -> usage_error "%s" msg
    in
    let mm = Topology.proc_count topo in
    Format.printf "%s: %d processors, %d directed links, diameter %d hops@."
      shape mm (Topology.link_count topo) (Topology.diameter_hops topo);
    if routes then
      for src = 0 to mm - 1 do
        for dst = 0 to mm - 1 do
          if src <> dst then
            Format.printf "  %d -> %d: %s (delay %.2f)@." src dst
              (String.concat " -> "
                 (List.map string_of_int (Topology.route topo src dst)))
              (Topology.delay_between topo src dst)
        done
      done
  in
  let term = Term.(const run $ m_t $ shape_t $ routes_t) in
  Cmd.v
    (Cmd.info "topology" ~doc:"Inspect a sparse interconnect and its routes")
    term

(* -- campaign ------------------------------------------------------------ *)

let campaign_cmd =
  let figure_t =
    Arg.(
      value & opt int 1
      & info [ "figure"; "f" ] ~docv:"N" ~doc:"Paper figure to regenerate (1-6).")
  in
  let graphs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "graphs" ] ~docv:"N" ~doc:"Random graphs per point (default 60).")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Parallelize the campaign over N domains.")
  in
  let gnuplot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "gnuplot" ] ~docv:"FILE"
          ~doc:
            "Also write a gnuplot script rendering the figure's three \
             panels from the CSV (requires --csv).")
  in
  let checkpoint_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Record every completed granularity point in FILE (written \
             atomically after each point); rerunning with the same figure \
             and seed resumes from it, reproducing the uninterrupted \
             report byte for byte.")
  in
  let run figure graphs csv gnuplot checkpoint seed domains obs =
    with_obs obs @@ fun () ->
    let config = Config.figure figure in
    let config =
      match graphs with
      | Some g -> Config.with_graphs_per_point config g
      | None -> config
    in
    let result =
      try Campaign.run ~seed ?domains ?checkpoint config
      with Campaign.Checkpoint_error msg -> usage_error "%s" msg
    in
    print_string (Report.render result);
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Report.to_csv result)))
      csv;
    Option.iter
      (fun path ->
        match csv with
        | None -> prerr_endline "--gnuplot requires --csv; script not written"
        | Some data ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Report.to_gnuplot result ~data)))
      gnuplot;
    0
  in
  let term =
    Term.(
      const run $ figure_t $ graphs_t $ csv_t $ gnuplot_t $ checkpoint_t
      $ seed_t $ domains_t $ obs_t)
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Regenerate one of the paper's figures") term

(* -- benchdiff ---------------------------------------------------------- *)

let benchdiff_cmd =
  let old_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench JSON (ftsched/bench/v1).")
  in
  let new_t =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench JSON to compare.")
  in
  let threshold_t =
    Arg.(
      value & opt float 20.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Regression threshold in percent: a metric that got worse by at \
             least $(docv)%% fails the diff.")
  in
  let advisory_t =
    Arg.(
      value & flag
      & info [ "advisory" ]
          ~doc:
            "Report regressions but exit 0 anyway — for CI steps that should \
             warn, not gate.")
  in
  let filter_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTR"
          ~doc:
            "Compare only metrics whose key contains $(docv) (e.g. \
             $(b,batched) for the blocking batched-replay gate).")
  in
  let read_doc path =
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse s with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  in
  let run old_path new_path threshold advisory filter =
    match (read_doc old_path, read_doc new_path) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 2
    | Ok old_doc, Ok new_doc ->
        let r =
          Bench_compare.compare_docs ?filter ~threshold_pct:threshold old_doc
            new_doc
        in
        Text_table.print (Bench_compare.to_table r);
        print_endline (Bench_compare.summary r);
        if Bench_compare.regressions r <> [] && not advisory then exit 1
  in
  let term =
    Term.(const run $ old_t $ new_t $ threshold_t $ advisory_t $ filter_t)
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:
         "Diff two bench JSON reports and fail on throughput/latency \
          regressions beyond a threshold")
    term

(* -- serve --------------------------------------------------------------- *)

let serve_cmd =
  let socket_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket instead of stdin/stdout.")
  in
  let cache_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Journal finished results to FILE so a restarted daemon serves \
             them from cache.")
  in
  let resume_t =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Warm-restart: replay an existing cache journal (tolerates the \
             torn tail a kill -9 leaves).")
  in
  let queue_t =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue capacity; requests beyond it are shed with an \
             'overloaded' error.")
  in
  let max_frame_t =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Request frame size limit (default 1 MiB).")
  in
  let deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"MS"
          ~doc:"Budget for requests that do not carry their own deadline_ms.")
  in
  let max_requests_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:
            "Drain and exit after admitting N frames (deterministic shutdown \
             for tests).")
  in
  let self_test_t =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Run the in-process fault-injection harness instead of serving; \
             exit 1 on any contract violation.")
  in
  let frames_t =
    Arg.(
      value & opt int 200
      & info [ "frames" ] ~docv:"N"
          ~doc:"Frames the self-test injects (with --self-test).")
  in
  let run seed socket cache resume queue max_frame deadline max_requests
      self_test frames obs =
    with_obs obs @@ fun () ->
    if self_test then begin
      let r = Serve_faults.run ~frames ~seed () in
      Format.printf "%a@." Serve_faults.pp r;
      if r.Serve_faults.fr_violations = [] then 0 else 1
    end
    else begin
      let cache =
        match cache with
        | None ->
            if resume then
              usage_error "--resume needs --cache FILE to restart from";
            Serve_cache.in_memory ()
        | Some path -> (
            match Serve_cache.journaled ~resume path with
            | Error msg -> usage_error "%s" msg
            | Ok (c, rc) ->
                if resume then
                  Obs.Log.info "serve: warm restart, %d results from %s%s"
                    rc.Serve_cache.rc_entries path
                    (if rc.Serve_cache.rc_skipped > 0 then
                       Printf.sprintf " (%d torn journal lines dropped)"
                         rc.Serve_cache.rc_skipped
                     else "");
                c)
      in
      let cfg =
        {
          Serve_server.queue_capacity = queue;
          max_frame;
          default_deadline_ms = deadline;
          max_requests;
        }
      in
      (match socket with
      | None -> Serve_server.run_stdio (Serve_server.create cfg ~cache)
      | Some path -> Serve_server.run_socket (Serve_server.create cfg ~cache) ~path);
      0
    end
  in
  let term =
    Term.(
      const run $ seed_t $ socket_t $ cache_t $ resume_t $ queue_t
      $ max_frame_t $ deadline_t $ max_requests_t $ self_test_t $ frames_t
      $ obs_t)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Crash-tolerant scheduling daemon: JSON-lines requests over \
          stdin/stdout or a Unix socket, with admission control, deadlines \
          and a warm-restart result cache")
    term

let client_cmd =
  let socket_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to connect to.")
  in
  let op_t =
    Arg.(
      value & opt string "ping"
      & info [ "op" ] ~docv:"OP" ~doc:"Operation to request.")
  in
  let params_t =
    Arg.(
      value & opt string "{}"
      & info [ "params" ] ~docv:"JSON" ~doc:"Request parameters, one JSON object.")
  in
  let deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS" ~doc:"Request budget in milliseconds.")
  in
  let retries_t =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Attempts on 'overloaded'/'shutting_down' replies and connection \
             errors (exponential backoff with seeded jitter).")
  in
  let count_t =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N"
          ~doc:"Send the request N times (fresh connection each).")
  in
  let run seed socket op params deadline retries count =
    let params =
      match Json.parse params with
      | Ok (Json.Obj _ as p) -> p
      | Ok _ -> usage_error "--params must be a JSON object"
      | Error e -> usage_error "--params: %s" e
    in
    let rng = Rng.create seed in
    let policy =
      { Serve_client.default_policy with Serve_client.max_attempts = retries }
    in
    let code = ref 0 in
    for i = 1 to count do
      let rq =
        {
          Serve_protocol.rq_id = Json.Int i;
          rq_op = op;
          rq_params = params;
          rq_deadline_ms = deadline;
        }
      in
      match Serve_client.request_with_retry ~policy ~rng ~path:socket rq with
      | Error msg ->
          Printf.eprintf "ftsched client: %s\n" msg;
          code := 1
      | Ok rs -> (
          match rs.Serve_protocol.rs_error with
          | Some (cls, msg) ->
              Printf.eprintf "ftsched client: error %s: %s\n"
                (Serve_protocol.class_name cls)
                msg;
              code := 1
          | None ->
              (* meta on stderr, result bytes alone on stdout: scripts can
                 diff cached vs fresh runs directly *)
              Printf.eprintf "ftsched client: ok op=%s cached=%b elapsed_ms=%s\n"
                (Option.value rs.Serve_protocol.rs_op ~default:"?")
                rs.Serve_protocol.rs_cached
                (match rs.Serve_protocol.rs_elapsed_ms with
                | Some e -> Printf.sprintf "%.3f" e
                | None -> "?");
              print_string
                (Json.to_string
                   (Option.value rs.Serve_protocol.rs_result ~default:Json.Null));
              print_newline ())
    done;
    if !code <> 0 then exit !code
  in
  let term =
    Term.(
      const run $ seed_t $ socket_t $ op_t $ params_t $ deadline_t $ retries_t
      $ count_t)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Test driver for the serve daemon: send one request over its Unix \
          socket, retrying with backoff when the daemon sheds load")
    term

let () =
  let info =
    Cmd.info "ftsched" ~version:"1.0.0"
      ~doc:"Contention-aware fault-tolerant scheduling (CAFT) toolbox"
  in
  exit (Cmd.eval (Cmd.group info
       [
         schedule_cmd; crash_cmd; check_cmd; analyze_cmd; inspect_cmd;
         montecarlo_cmd; stress_cmd; topology_cmd; campaign_cmd;
         benchdiff_cmd; serve_cmd; client_cmd;
       ]))
