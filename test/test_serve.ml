(* Tests for the serve daemon stack: protocol totality, cancellation
   tokens, the content-addressed journal cache (including the torn tail
   a kill -9 leaves), admission control and deadlines in the server
   state machine, byte-identical cache servings (fresh vs cached vs
   resumed-after-crash), the differential check against direct library
   calls, and the fault-injection harness over several seeds. *)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let ok_or_fail_rq = function
  | Ok rq -> rq
  | Error ((_ : Serve_protocol.error_class), m) ->
      Alcotest.failf "unexpected parse error: %s" m

(* the raw result bytes of an ok response frame: everything between
   [,"result":] and the final brace — exactly what [ok_response] spliced *)
let raw_result resp =
  let marker = {|,"result":|} in
  let mlen = String.length marker in
  let n = String.length resp in
  let rec find i =
    if i + mlen > n then Alcotest.failf "no result member in %s" resp
    else if String.sub resp i mlen = marker then i + mlen
    else find (i + 1)
  in
  let start = find 0 in
  String.sub resp start (n - start - 1)

let parse_resp line =
  match Serve_protocol.parse_response line with
  | Ok rs -> rs
  | Error e -> Alcotest.failf "non-protocol response %S: %s" line e

let expect_error cls line =
  let rs = parse_resp line in
  match rs.Serve_protocol.rs_error with
  | Some (c, _) when c = cls -> ()
  | Some (c, m) ->
      Alcotest.failf "expected %s, got %s: %s"
        (Serve_protocol.class_name cls)
        (Serve_protocol.class_name c)
        m
  | None -> Alcotest.failf "expected %s, got ok" (Serve_protocol.class_name cls)

(* -- protocol ------------------------------------------------------------ *)

let test_protocol_parse () =
  let parse line = Serve_protocol.parse_request ~max_frame:1024 line in
  let expect_class cls line =
    match parse line with
    | Error (c, _) when c = cls -> ()
    | Error (c, m) ->
        Alcotest.failf "%S: expected %s, got %s (%s)" line
          (Serve_protocol.class_name cls)
          (Serve_protocol.class_name c)
          m
    | Ok _ -> Alcotest.failf "%S: expected an error" line
  in
  expect_class Serve_protocol.Bad_request "not json";
  expect_class Serve_protocol.Bad_request "[1,2,3]";
  expect_class Serve_protocol.Bad_request "42";
  expect_class Serve_protocol.Bad_request {|{"params":{}}|} (* missing op *);
  expect_class Serve_protocol.Bad_request {|{"op":7}|};
  expect_class Serve_protocol.Bad_request {|{"op":"ping","v":99}|};
  expect_class Serve_protocol.Bad_request {|{"op":"ping","v":"x"}|};
  expect_class Serve_protocol.Bad_request {|{"op":"ping","params":[]}|};
  expect_class Serve_protocol.Bad_request {|{"op":"ping","deadline_ms":-5}|};
  expect_class Serve_protocol.Bad_request {|{"op":"ping","id":{"a":1}}|};
  expect_class Serve_protocol.Oversized
    ({|{"op":"|} ^ String.make 2048 'x' ^ {|"}|});
  let rq = ok_or_fail_rq (parse {|{"op":"ping","id":7}|}) in
  Alcotest.(check string) "op" "ping" rq.Serve_protocol.rq_op;
  Helpers.check_bool "id echoed" true (rq.Serve_protocol.rq_id = Json.Int 7);
  Helpers.check_bool "no deadline" true (rq.Serve_protocol.rq_deadline_ms = None)

let test_protocol_response_roundtrip () =
  let ok =
    Serve_protocol.ok_response ~id:(Json.Int 3) ~op:"schedule" ~cached:true
      ~elapsed_ms:1.5 {|{"x":1}|}
  in
  let rs = parse_resp ok in
  Helpers.check_bool "ok" true rs.Serve_protocol.rs_ok;
  Helpers.check_bool "cached" true rs.Serve_protocol.rs_cached;
  Helpers.check_bool "result" true
    (rs.Serve_protocol.rs_result = Some (Json.Obj [ ("x", Json.Int 1) ]));
  Alcotest.(check string) "raw result bytes" {|{"x":1}|} (raw_result ok);
  let err =
    Serve_protocol.error_response ~id:Json.Null Serve_protocol.Overloaded "full"
  in
  expect_error Serve_protocol.Overloaded err;
  Helpers.check_bool "overloaded retryable" true
    (Serve_protocol.retryable Serve_protocol.Overloaded);
  Helpers.check_bool "bad_request final" false
    (Serve_protocol.retryable Serve_protocol.Bad_request)

(* -- cancellation tokens -------------------------------------------------- *)

let test_cancel_tokens () =
  Helpers.check_bool "never" false (Cancel.cancelled Cancel.never);
  let t = Cancel.create () in
  Helpers.check_bool "fresh" false (Cancel.cancelled t);
  Cancel.cancel t;
  Helpers.check_bool "cancelled" true (Cancel.cancelled t);
  (match Cancel.check t with
  | () -> Alcotest.fail "check did not raise"
  | exception Cancel.Cancelled -> ());
  let past = Cancel.with_deadline (Unix.gettimeofday () -. 1.) in
  Helpers.check_bool "past deadline" true (Cancel.cancelled past);
  let future = Cancel.with_deadline (Unix.gettimeofday () +. 3600.) in
  Helpers.check_bool "future deadline" false (Cancel.cancelled future)

let test_cancel_threading () =
  (* an expired token aborts the evaluation loops with [Cancelled]
     instead of returning a perturbed result *)
  let _, costs = Helpers.random_instance ~seed:2 ~m:4 ~tasks:15 () in
  let sched = Caft.run ~epsilon:1 costs in
  let expired = Cancel.with_deadline (Unix.gettimeofday () -. 1.) in
  (match
     Monte_carlo.run ~seed:3 ~runs:20 ~cancel:expired ~crashes:1
       ~mode:Monte_carlo.From_start sched
   with
  | _ -> Alcotest.fail "monte carlo ignored the token"
  | exception Cancel.Cancelled -> ());
  let c = Replay.compile sched in
  let scenarios =
    Scenario.draw_block (Rng.create 1) ~m:4 ~count:1 ~mode:Scenario.From_start
      ~runs:8
  in
  (match Replay.eval_batch ~cancel:expired c scenarios with
  | _ -> Alcotest.fail "eval_batch ignored the token"
  | exception Cancel.Cancelled -> ());
  (* a token that never trips leaves the report byte-identical *)
  let plain =
    Monte_carlo.run ~seed:3 ~runs:20 ~crashes:1 ~mode:Monte_carlo.From_start
      sched
  in
  let tokened =
    Monte_carlo.run ~seed:3 ~runs:20 ~cancel:(Cancel.create ()) ~crashes:1
      ~mode:Monte_carlo.From_start sched
  in
  Helpers.check_bool "token-free report identical" true (plain = tokened)

(* -- fingerprints ---------------------------------------------------------- *)

let test_fingerprint () =
  let h1 = Fingerprint.(to_hex (add_string (add_string empty "ab") "c")) in
  let h2 = Fingerprint.(to_hex (add_string (add_string empty "a") "bc")) in
  Helpers.check_bool "field boundaries hashed" true (h1 <> h2);
  Helpers.check_int "hex width" 16 (String.length h1);
  Alcotest.(check string)
    "deterministic" (Fingerprint.string "caft") (Fingerprint.string "caft");
  Helpers.check_bool "int vs float distinct" true
    Fingerprint.(to_hex (add_int empty 1) <> to_hex (add_float empty 1.))

(* -- instance ---------------------------------------------------------------- *)

let test_instance () =
  (match Instance.make ~family:"nope" () with
  | Ok _ -> Alcotest.fail "unknown family accepted"
  | Error msg ->
      Helpers.check_bool "names the family" true
        (String.length msg >= 7 && String.sub msg 0 7 = "unknown"));
  (match Instance.make ~tasks:0 () with
  | Ok _ -> Alcotest.fail "zero tasks accepted"
  | Error _ -> ());
  let dag, costs = ok_or_fail (Instance.make ~seed:5 ~tasks:12 ~m:3 ()) in
  Helpers.check_int "tasks" 12 (Dag.task_count dag);
  Helpers.check_int "procs" 3 (Platform.proc_count (Costs.platform costs));
  (* deterministic in the seed *)
  let _, costs2 = ok_or_fail (Instance.make ~seed:5 ~tasks:12 ~m:3 ()) in
  let s1 = Caft.run ~epsilon:1 costs and s2 = Caft.run ~epsilon:1 costs2 in
  Helpers.check_float "same instance, same schedule"
    (Schedule.latency_zero_crash s1)
    (Schedule.latency_zero_crash s2)

(* -- journal cache ------------------------------------------------------------ *)

let in_dir f =
  let dir = Filename.temp_file "ftsched_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_cache_journal () =
  in_dir @@ fun dir ->
  let path = Filename.concat dir "journal.db" in
  let c, rc = ok_or_fail (Serve_cache.journaled ~resume:false path) in
  Helpers.check_int "fresh journal empty" 0 rc.Serve_cache.rc_entries;
  Serve_cache.add c ~key:"k1" ~op:"schedule" {|{"a":1}|};
  Serve_cache.add c ~key:"k2" ~op:"replay" {|{"b":[1,2]}|};
  Serve_cache.add c ~key:"k1" ~op:"schedule" {|{"CHANGED":true}|};
  Alcotest.(check (option string))
    "first write wins"
    (Some {|{"a":1}|})
    (Serve_cache.find c ~key:"k1");
  (* starting over on an existing journal must be refused *)
  (match Serve_cache.journaled ~resume:false path with
  | Ok _ -> Alcotest.fail "clobbered an existing journal"
  | Error msg ->
      Helpers.check_bool "mentions --resume" true (contains msg "--resume"));
  (* simulate kill -9 mid-append: a torn half line at the tail *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"key":"k3","op":"schedule","result":{"c"|};
  close_out oc;
  let c2, rc2 = ok_or_fail (Serve_cache.journaled ~resume:true path) in
  Helpers.check_int "intact entries replayed" 2 rc2.Serve_cache.rc_entries;
  Helpers.check_int "torn tail skipped" 1 rc2.Serve_cache.rc_skipped;
  Alcotest.(check (option string))
    "bytes survive the restart"
    (Some {|{"a":1}|})
    (Serve_cache.find c2 ~key:"k1");
  Alcotest.(check (option string))
    "second entry too"
    (Some {|{"b":[1,2]}|})
    (Serve_cache.find c2 ~key:"k2");
  (* compaction drops the tail for good and keeps everything loadable *)
  Serve_cache.compact c2;
  Serve_cache.close c2;
  let c3, rc3 = ok_or_fail (Serve_cache.journaled ~resume:true path) in
  Helpers.check_int "compacted entries" 2 rc3.Serve_cache.rc_entries;
  Helpers.check_int "no torn lines left" 0 rc3.Serve_cache.rc_skipped;
  Serve_cache.close c3

(* -- server state machine ------------------------------------------------------ *)

let mk_server ?(queue = 64) ?(max_requests = None) () =
  Serve_server.create
    {
      Serve_server.queue_capacity = queue;
      max_frame = 1 lsl 16;
      default_deadline_ms = None;
      max_requests;
    }
    ~cache:(Serve_cache.in_memory ())

let admit_reply srv line =
  match Serve_server.admit srv ~client:() line with
  | Serve_server.Reply r | Serve_server.Reply_shutdown r -> r
  | Serve_server.Queued -> (
      match Serve_server.step srv with
      | Some ((), r) -> r
      | None -> Alcotest.fail "queued but queue empty")

let sched_frame ?(seed = 9) () =
  Printf.sprintf
    {|{"op":"schedule","params":{"seed":%d,"tasks":8,"m":3,"epsilon":1}}|} seed

let test_server_admission () =
  let srv = mk_server ~queue:1 () in
  (* capacity 1: the second fresh request in the same round sheds *)
  (match Serve_server.admit srv ~client:() (sched_frame ~seed:100 ()) with
  | Serve_server.Queued -> ()
  | _ -> Alcotest.fail "first request not queued");
  (match Serve_server.admit srv ~client:() (sched_frame ~seed:101 ()) with
  | Serve_server.Reply r -> expect_error Serve_protocol.Overloaded r
  | _ -> Alcotest.fail "second request not shed");
  Helpers.check_int "depth" 1 (Serve_server.queue_depth srv);
  (match Serve_server.step srv with
  | Some ((), r) ->
      Helpers.check_bool "ok" true (parse_resp r).Serve_protocol.rs_ok
  | None -> Alcotest.fail "nothing to step");
  (* the shed request succeeds on retry once the queue drained *)
  (match Serve_server.admit srv ~client:() (sched_frame ~seed:101 ()) with
  | Serve_server.Queued -> ()
  | _ -> Alcotest.fail "retry after shed not accepted");
  ignore (Serve_server.step srv)

let test_server_errors_and_deadline () =
  let srv = mk_server () in
  expect_error Serve_protocol.Bad_request
    (admit_reply srv {|{"op":"frobnicate"}|});
  expect_error Serve_protocol.Bad_request
    (admit_reply srv {|{"op":"schedule","params":{"task":40}}|});
  expect_error Serve_protocol.Bad_request
    (admit_reply srv {|{"op":"schedule","params":{"m":100000}}|});
  expect_error Serve_protocol.Deadline_exceeded
    (admit_reply srv
       {|{"op":"schedule","deadline_ms":0,"params":{"tasks":8,"m":3}}|});
  (* deadline expired while queued: admit with a tiny budget, stall, step *)
  (match
     Serve_server.admit srv ~client:()
       {|{"op":"schedule","deadline_ms":1,"params":{"seed":55,"tasks":8,"m":3}}|}
   with
  | Serve_server.Queued -> ()
  | _ -> Alcotest.fail "tiny-budget request not queued");
  Unix.sleepf 0.02;
  match Serve_server.step srv with
  | Some ((), r) -> expect_error Serve_protocol.Deadline_exceeded r
  | None -> Alcotest.fail "nothing to step"

let test_server_shutdown_and_max_requests () =
  let srv = mk_server () in
  Serve_server.begin_shutdown srv;
  expect_error Serve_protocol.Shutting_down (admit_reply srv (sched_frame ()));
  (* introspection survives the drain *)
  Helpers.check_bool "ping during drain" true
    (parse_resp (admit_reply srv {|{"op":"ping"}|})).Serve_protocol.rs_ok;
  let srv2 = mk_server ~max_requests:(Some 2) () in
  ignore (admit_reply srv2 {|{"op":"ping"}|});
  Helpers.check_bool "not draining yet" false (Serve_server.draining srv2);
  ignore (admit_reply srv2 {|{"op":"ping"}|});
  Helpers.check_bool "draining after max-requests" true
    (Serve_server.draining srv2)

(* -- byte-identical servings ----------------------------------------------------- *)

let test_cached_byte_identical () =
  let srv = mk_server () in
  let frame = sched_frame ~seed:77 () in
  let fresh = admit_reply srv frame in
  let hit = admit_reply srv frame in
  let rs_fresh = parse_resp fresh and rs_hit = parse_resp hit in
  Helpers.check_bool "first is fresh" false rs_fresh.Serve_protocol.rs_cached;
  Helpers.check_bool "second is cached" true rs_hit.Serve_protocol.rs_cached;
  Alcotest.(check string)
    "result bytes identical" (raw_result fresh) (raw_result hit);
  (* and identical to an independent daemon computing from scratch *)
  let srv2 = mk_server () in
  Alcotest.(check string)
    "fresh recomputation identical" (raw_result fresh)
    (raw_result (admit_reply srv2 frame))

let test_restart_byte_identical () =
  in_dir @@ fun dir ->
  let path = Filename.concat dir "journal.db" in
  let frame = sched_frame ~seed:31 () in
  let fresh =
    let cache, _ = ok_or_fail (Serve_cache.journaled ~resume:false path) in
    let srv = Serve_server.create Serve_server.default_config ~cache in
    (* no [finish]: the daemon dies right after replying, kill -9 style;
       the journal's per-entry flush is all that persists *)
    admit_reply srv frame
  in
  let cache, rc = ok_or_fail (Serve_cache.journaled ~resume:true path) in
  Helpers.check_int "journal survived the crash" 1 rc.Serve_cache.rc_entries;
  let srv = Serve_server.create Serve_server.default_config ~cache in
  let resumed = admit_reply srv frame in
  Helpers.check_bool "served from cache" true
    (parse_resp resumed).Serve_protocol.rs_cached;
  Alcotest.(check string)
    "bytes identical across restart" (raw_result fresh) (raw_result resumed)

(* -- differential: daemon vs direct library calls -------------------------------- *)

let test_differential_montecarlo () =
  let seed = 3 and tasks = 12 and m = 4 and epsilon = 1 and runs = 50 in
  let direct =
    let _, costs =
      ok_or_fail (Instance.make ~seed ~family:"random" ~tasks ~m ())
    in
    let sched = Caft.run ~model:Netstate.One_port ~seed ~epsilon costs in
    Monte_carlo.run ~seed:(seed + 1) ~runs ~crashes:1
      ~mode:Monte_carlo.From_start sched
  in
  let srv = mk_server () in
  let frame =
    Printf.sprintf
      {|{"op":"montecarlo","params":{"seed":%d,"tasks":%d,"m":%d,"epsilon":%d,"runs":%d,"crashes":1}}|}
      seed tasks m epsilon runs
  in
  let rs = parse_resp (admit_reply srv frame) in
  let result = Option.get rs.Serve_protocol.rs_result in
  let geti name =
    Option.get (Option.bind (Json.member name result) Json.to_int)
  in
  Helpers.check_int "runs" direct.Monte_carlo.runs (geti "runs");
  Helpers.check_int "completed" direct.Monte_carlo.completed (geti "completed");
  let rate =
    Option.get (Option.bind (Json.member "failure_rate" result) Json.to_float)
  in
  Helpers.check_float "failure rate" direct.Monte_carlo.failure_rate rate

(* -- fault harness ----------------------------------------------------------------- *)

let test_fault_harness () =
  List.iter
    (fun seed ->
      let r = Serve_faults.run ~frames:120 ~seed () in
      (match r.Serve_faults.fr_violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "seed %d: %d violations, first: %s" seed
            (List.length r.Serve_faults.fr_violations)
            v);
      Helpers.check_bool "saw cache hits" true (r.Serve_faults.fr_cache_hits > 0);
      Helpers.check_bool "saw shedding" true (r.Serve_faults.fr_shed > 0))
    [ 1; 5; 9 ]

let suite =
  [
    Alcotest.test_case "protocol request parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol response roundtrip" `Quick
      test_protocol_response_roundtrip;
    Alcotest.test_case "cancel tokens" `Quick test_cancel_tokens;
    Alcotest.test_case "cancellation threads the loops" `Quick
      test_cancel_threading;
    Alcotest.test_case "fingerprints" `Quick test_fingerprint;
    Alcotest.test_case "instance construction" `Quick test_instance;
    Alcotest.test_case "journal cache survives kill -9" `Quick
      test_cache_journal;
    Alcotest.test_case "admission control sheds" `Quick test_server_admission;
    Alcotest.test_case "error classes and deadlines" `Quick
      test_server_errors_and_deadline;
    Alcotest.test_case "shutdown and max-requests" `Quick
      test_server_shutdown_and_max_requests;
    Alcotest.test_case "cached serving byte-identical" `Quick
      test_cached_byte_identical;
    Alcotest.test_case "warm restart byte-identical" `Quick
      test_restart_byte_identical;
    Alcotest.test_case "differential vs direct library" `Quick
      test_differential_montecarlo;
    Alcotest.test_case "fault-injection harness" `Slow test_fault_harness;
  ]
