(* Obs.Prof: phase nesting, per-domain attribution, GC deltas, JSON
   round-trip, and the Parallel.map worker telemetry hook. *)

let with_prof f =
  Obs.Prof.reset ();
  Obs.Prof.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Prof.set_enabled false) f

let find_phase r name domain =
  List.find_opt
    (fun p -> p.Obs.Prof.ph_name = name && p.Obs.Prof.ph_domain = domain)
    r.Obs.Prof.r_phases

let self_domain () = (Domain.self () :> int)

let spin seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ignore (Sys.opaque_identity (sin 1.0))
  done

(* -- nesting ----------------------------------------------------------- *)

let test_nesting () =
  with_prof @@ fun () ->
  Obs.Prof.phase "outer" (fun () ->
      spin 0.01;
      Obs.Prof.phase "inner" (fun () -> spin 0.02));
  let r = Obs.Prof.report () in
  let d = self_domain () in
  let outer = Option.get (find_phase r "outer" d) in
  let inner = Option.get (find_phase r "inner" d) in
  Alcotest.(check int) "outer once" 1 outer.Obs.Prof.ph_count;
  Alcotest.(check int) "inner once" 1 inner.Obs.Prof.ph_count;
  (* inclusive wall of outer covers inner *)
  Alcotest.(check bool) "outer wall >= inner wall" true
    (outer.Obs.Prof.ph_wall_s >= inner.Obs.Prof.ph_wall_s);
  (* self excludes the nested phase: outer self ~0.01 despite 0.03 wall *)
  Alcotest.(check bool) "outer self excludes inner" true
    (outer.Obs.Prof.ph_self_s
    <= outer.Obs.Prof.ph_wall_s -. inner.Obs.Prof.ph_wall_s +. 0.005);
  Alcotest.(check bool) "inner self = inner wall" true
    (Float.abs (inner.Obs.Prof.ph_self_s -. inner.Obs.Prof.ph_wall_s) < 1e-9)

let test_disabled_is_transparent () =
  Obs.Prof.reset ();
  Alcotest.(check bool) "disabled" false (Obs.Prof.enabled ());
  let x = Obs.Prof.phase "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 x;
  let r = Obs.Prof.report () in
  Alcotest.(check int) "nothing recorded" 0 (List.length r.Obs.Prof.r_phases)

let test_exception_closes_frame () =
  with_prof @@ fun () ->
  (try Obs.Prof.phase "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.Prof.phase "after" (fun () -> ());
  let r = Obs.Prof.report () in
  let d = self_domain () in
  let boom = Option.get (find_phase r "boom" d) in
  Alcotest.(check int) "raised phase still counted" 1 boom.Obs.Prof.ph_count;
  (* the raising frame was popped: "after" is top-level, not a child *)
  let after = Option.get (find_phase r "after" d) in
  Alcotest.(check int) "after counted" 1 after.Obs.Prof.ph_count

(* -- per-domain attribution -------------------------------------------- *)

let test_multi_domain_attribution () =
  with_prof @@ fun () ->
  let items = List.init 32 (fun i -> i) in
  let results =
    Parallel.map ~domains:4
      (fun i -> Obs.Prof.phase "work" (fun () -> spin 0.002; i * i))
      items
  in
  Alcotest.(check int) "all items" 32 (List.length results);
  let r = Obs.Prof.report () in
  let work =
    List.filter (fun p -> p.Obs.Prof.ph_name = "work") r.Obs.Prof.r_phases
  in
  let total_count =
    List.fold_left (fun a p -> a + p.Obs.Prof.ph_count) 0 work
  in
  Alcotest.(check int) "32 calls across domains" 32 total_count;
  (* per-domain wall sums to at least the spin floor *)
  let total_wall =
    List.fold_left (fun a p -> a +. p.Obs.Prof.ph_wall_s) 0. work
  in
  Alcotest.(check bool) "wall >= 32 * spin" true (total_wall >= 32. *. 0.002);
  (* attribution never exceeds the report wall by more than the domain
     count (phases run concurrently, one per domain at most) *)
  Alcotest.(check bool) "wall bounded by wall * domains" true
    (total_wall <= r.Obs.Prof.r_wall_s *. 5.)

let test_worker_telemetry () =
  with_prof @@ fun () ->
  let items = List.init 40 (fun i -> i) in
  let _ = Parallel.map ~domains:4 (fun i -> spin 0.001; i) items in
  let r = Obs.Prof.report () in
  let workers = r.Obs.Prof.r_workers in
  Alcotest.(check bool) "some worker rows" true (List.length workers >= 1);
  let items_total =
    List.fold_left (fun a w -> a + w.Obs.Prof.wk_items) 0 workers
  in
  Alcotest.(check int) "items conserved" 40 items_total;
  List.iter
    (fun w ->
      Alcotest.(check bool) "busy >= 0" true (w.Obs.Prof.wk_busy_s >= 0.);
      Alcotest.(check bool) "idle >= 0" true (w.Obs.Prof.wk_idle_s >= 0.))
    workers;
  (* worker slot 0 is the caller and always takes part *)
  Alcotest.(check bool) "slot 0 present" true
    (List.exists (fun w -> w.Obs.Prof.wk_worker = 0) workers)

(* -- GC deltas ---------------------------------------------------------- *)

let test_gc_delta () =
  with_prof @@ fun () ->
  Obs.Prof.phase "alloc" (fun () ->
      let acc = ref [] in
      for i = 1 to 50_000 do
        acc := (i, float_of_int i) :: !acc
      done;
      ignore (Sys.opaque_identity !acc));
  Obs.Prof.phase "quiet" (fun () -> ());
  let r = Obs.Prof.report () in
  let d = self_domain () in
  let alloc = Option.get (find_phase r "alloc" d) in
  let quiet = Option.get (find_phase r "quiet" d) in
  (* 50k boxed pairs: at least 4 words each *)
  Alcotest.(check bool) "alloc phase charged minor words" true
    (alloc.Obs.Prof.ph_minor_words >= 200_000.);
  Alcotest.(check bool) "quiet phase nearly free" true
    (quiet.Obs.Prof.ph_minor_words < 1_000.);
  Alcotest.(check bool) "collections non-negative" true
    (alloc.Obs.Prof.ph_minor_collections >= 0
    && alloc.Obs.Prof.ph_major_collections >= 0)

let test_gc_monotone_across_calls () =
  with_prof @@ fun () ->
  let words_after n =
    Obs.Prof.reset ();
    for _ = 1 to n do
      Obs.Prof.phase "alloc" (fun () ->
          ignore (Sys.opaque_identity (List.init 10_000 (fun i -> (i, i)))))
    done;
    let r = Obs.Prof.report () in
    (Option.get (find_phase r "alloc" (self_domain ()))).Obs.Prof.ph_minor_words
  in
  let w1 = words_after 1 in
  let w4 = words_after 4 in
  Alcotest.(check bool) "4 calls allocate more than 1" true (w4 > w1);
  Alcotest.(check bool) "roughly linear (>=3x)" true (w4 >= 3. *. w1)

(* -- report / JSON ------------------------------------------------------ *)

let test_json_roundtrip () =
  with_prof @@ fun () ->
  Obs.Prof.phase "a" (fun () -> Obs.Prof.phase "b" (fun () -> spin 0.002));
  let _ = Parallel.map ~domains:2 (fun i -> i) [ 1; 2; 3 ] in
  let r = Obs.Prof.report () in
  let j = Obs.Prof.to_json r in
  (* through the printer and parser, not just the constructors *)
  let j' = Json.parse_exn (Json.to_string j) in
  match Obs.Prof.of_json j' with
  | None -> Alcotest.fail "of_json returned None"
  | Some r' ->
      Alcotest.(check int) "phase rows survive"
        (List.length r.Obs.Prof.r_phases)
        (List.length r'.Obs.Prof.r_phases);
      Alcotest.(check int) "worker rows survive"
        (List.length r.Obs.Prof.r_workers)
        (List.length r'.Obs.Prof.r_workers);
      List.iter2
        (fun p p' ->
          Alcotest.(check string) "name" p.Obs.Prof.ph_name p'.Obs.Prof.ph_name;
          Alcotest.(check int) "domain" p.Obs.Prof.ph_domain
            p'.Obs.Prof.ph_domain;
          Alcotest.(check int) "count" p.Obs.Prof.ph_count p'.Obs.Prof.ph_count;
          Alcotest.(check bool) "wall close" true
            (Float.abs (p.Obs.Prof.ph_wall_s -. p'.Obs.Prof.ph_wall_s) < 1e-6))
        r.Obs.Prof.r_phases r'.Obs.Prof.r_phases

let test_of_json_rejects_bad_schema () =
  let j = Json.Obj [ ("schema", Json.String "ftsched/other/v1") ] in
  Alcotest.(check bool) "unknown schema rejected" true
    (Obs.Prof.of_json j = None);
  Alcotest.(check bool) "missing schema rejected" true
    (Obs.Prof.of_json (Json.Obj []) = None)

let test_report_sorted () =
  with_prof @@ fun () ->
  Obs.Prof.phase "zeta" (fun () -> ());
  Obs.Prof.phase "alpha" (fun () -> ());
  Obs.Prof.phase "mid" (fun () -> ());
  let r = Obs.Prof.report () in
  let names = List.map (fun p -> p.Obs.Prof.ph_name) r.Obs.Prof.r_phases in
  Alcotest.(check (list string)) "sorted by name" [ "alpha"; "mid"; "zeta" ]
    names

let test_reset () =
  with_prof @@ fun () ->
  Obs.Prof.phase "x" (fun () -> ());
  Obs.Prof.reset ();
  let r = Obs.Prof.report () in
  Alcotest.(check int) "phases cleared" 0 (List.length r.Obs.Prof.r_phases);
  Alcotest.(check int) "workers cleared" 0 (List.length r.Obs.Prof.r_workers)

let suite =
  [
    Alcotest.test_case "nesting: wall inclusive, self exclusive" `Quick
      test_nesting;
    Alcotest.test_case "disabled phase is transparent" `Quick
      test_disabled_is_transparent;
    Alcotest.test_case "exception closes the frame" `Quick
      test_exception_closes_frame;
    Alcotest.test_case "multi-domain attribution" `Quick
      test_multi_domain_attribution;
    Alcotest.test_case "Parallel.map worker telemetry" `Quick
      test_worker_telemetry;
    Alcotest.test_case "GC delta attribution" `Quick test_gc_delta;
    Alcotest.test_case "GC deltas accumulate across calls" `Quick
      test_gc_monotone_across_calls;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "of_json rejects unknown schema" `Quick
      test_of_json_rejects_bad_schema;
    Alcotest.test_case "report sorted by (name, domain)" `Quick
      test_report_sorted;
    Alcotest.test_case "reset clears state" `Quick test_reset;
  ]
