(* Robustness of the schedule text format against damaged input:
   truncation (a copy interrupted, a disk filled), corrupt directives,
   and — the case the streaming writer makes likely — a daemon or CLI
   killed mid-[--stream], leaving a file without its [end] terminator.
   Every failure must carry the offending line number so the user can
   look straight at the damage; none may be accepted silently. *)

let small_schedule () =
  let _, costs = Helpers.random_instance ~seed:4 ~m:3 ~tasks:10 () in
  Caft.run ~epsilon:1 costs

let expect_parse_error ?line text name =
  match Schedule_io.of_string text with
  | _ -> Alcotest.failf "%s: damaged input was accepted" name
  | exception Schedule_io.Parse_error { line = l; message } -> (
      match line with
      | None -> ()
      | Some want ->
          Alcotest.(check int)
            (Printf.sprintf "%s: error line (%s)" name message)
            want l)

let test_roundtrip () =
  let sched = small_schedule () in
  let text = Schedule_io.to_string sched in
  let reparsed = Schedule_io.of_string text in
  Alcotest.(check string)
    "serialize(parse(serialize)) is a fixed point" text
    (Schedule_io.to_string reparsed)

let test_truncated () =
  let sched = small_schedule () in
  let text = Schedule_io.to_string sched in
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  let total = List.length lines in
  (* drop the [end] terminator: the error points past the last line
     (the trailing newline counts as the final, empty line) *)
  let without_end =
    String.concat "\n" (List.filteri (fun i _ -> i < total - 1) lines) ^ "\n"
  in
  expect_parse_error ~line:total without_end "missing end";
  (* cut the file mid-body: still a parse error, never a silent partial *)
  let half =
    String.concat "\n" (List.filteri (fun i _ -> i < total / 2) lines) ^ "\n"
  in
  expect_parse_error half "truncated at half";
  (* empty and header-only inputs *)
  expect_parse_error "" "empty input";
  expect_parse_error "ftsched-schedule v1\n" "header only";
  expect_parse_error "not a schedule\n" "wrong magic"

let test_corrupt_directive () =
  let sched = small_schedule () in
  let text = Schedule_io.to_string sched in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  (* replace the 4th line (1-based) with garbage: the reported line
     number must name exactly that line *)
  let corrupt_at n repl =
    String.concat "\n"
      (List.mapi (fun i l -> if i = n - 1 then repl else l) lines)
    ^ "\n"
  in
  expect_parse_error ~line:4 (corrupt_at 4 "zorble 1 2 3") "unknown directive";
  (* damage a numeric field on a known line *)
  let damaged =
    List.mapi
      (fun i l ->
        if i >= 0 && String.length l > 5 && String.sub l 0 5 = "cost " then
          Some (i + 1, corrupt_at (i + 1) "cost 0 0 banana")
        else None)
      lines
    |> List.filter_map Fun.id
  in
  match damaged with
  | (lineno, text) :: _ -> expect_parse_error ~line:lineno text "bad number"
  | [] -> Alcotest.fail "schedule text had no cost line to damage"

let test_partial_stream_detected () =
  (* a --stream writer killed before [stream_close]: the file on disk
     has the header and some replicas but no [end]; of_file must refuse
     it rather than return a schedule missing tasks *)
  let sched = small_schedule () in
  let path = Filename.temp_file "ftsched_stream" ".fts" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w =
        Schedule_io.stream_writer
          ~insertion:(Schedule.insertion sched)
          ~algorithm:(Schedule.algorithm sched)
          ~epsilon:(Schedule.epsilon sched) ~model:(Schedule.model sched) ~path
          (Schedule.costs sched)
      in
      (* stream only the first replica, then "die" without stream_close *)
      (match Schedule.all_replicas sched with
      | r :: _ -> Schedule_io.stream_replica w r
      | [] -> Alcotest.fail "schedule has no replicas");
      (match Schedule_io.of_file path with
      | _ -> Alcotest.fail "partially-streamed file was accepted"
      | exception Schedule_io.Parse_error _ -> ());
      (* closing and finishing the stream makes the same file parse *)
      List.iter (Schedule_io.stream_replica w)
        (match Schedule.all_replicas sched with [] -> [] | _ :: tl -> tl);
      Schedule_io.stream_close w;
      Schedule_io.stream_close w (* idempotent *);
      let reparsed = Schedule_io.of_file path in
      Alcotest.(check string)
        "completed stream parses to the same bytes"
        (Schedule_io.to_string sched)
        (Schedule_io.to_string reparsed))

let suite =
  [
    Alcotest.test_case "roundtrip fixed point" `Quick test_roundtrip;
    Alcotest.test_case "truncated input rejected with line" `Quick
      test_truncated;
    Alcotest.test_case "corrupt directive names its line" `Quick
      test_corrupt_directive;
    Alcotest.test_case "partial --stream output detected" `Quick
      test_partial_stream_detected;
  ]
