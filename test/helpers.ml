(* Shared builders for the test suites. *)

let check_float = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A fixed small diamond DAG:
     0 -> 1 (10), 0 -> 2 (20), 1 -> 3 (30), 2 -> 3 (40) *)
let diamond_dag () =
  Dag.make ~n:4 ~edges:[ (0, 1, 10.); (0, 2, 20.); (1, 3, 30.); (2, 3, 40.) ] ()

(* A chain 0 -> 1 -> 2 with unit volumes. *)
let chain3 () = Dag.make ~n:3 ~edges:[ (0, 1, 1.); (1, 2, 1.) ] ()

(* Homogeneous platform: m processors, every link delay 1. *)
let uniform_platform m = Platform.uniform ~m ~delay:1.

(* Costs where every task costs [c] on every processor. *)
let flat_costs ?(c = 10.) dag platform =
  Costs.create dag platform (fun _ _ -> c)

(* A random paper-style instance, small enough for fast tests. *)
let random_instance ?(seed = 1) ?(m = 6) ?(tasks = 30) ?(granularity = 1.0) () =
  let rng = Rng.create seed in
  let dag =
    Random_dag.generate rng
      { Random_dag.default with Random_dag.tasks_min = tasks; tasks_max = tasks }
  in
  let params = Platform_gen.default ~m () in
  let costs = Platform_gen.instance rng ~granularity params dag in
  (dag, costs)

let schedulers =
  [
    ("CAFT", fun ~epsilon costs -> Caft.run ~epsilon costs);
    ("FTSA", fun ~epsilon costs -> Ftsa.run ~epsilon costs);
    ("FTBAR", fun ~epsilon costs -> Ftbar.run ~epsilon costs);
  ]
