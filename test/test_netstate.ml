(* Unit tests for the one-port booking engine: equations (1)-(6) on
   hand-computed scenarios. *)

let src ~task ~replica ~proc ~finish ~volume =
  {
    Netstate.s_task = task;
    s_replica = replica;
    s_proc = proc;
    s_finish = finish;
    s_volume = volume;
  }

let fresh ?(model = Netstate.One_port) m =
  Netstate.create ~model (Helpers.uniform_platform m)

let test_exec_only () =
  let net = fresh 2 in
  let b = Netstate.book_exec_only net ~proc:0 ~exec:5. in
  Helpers.check_float "starts at zero" 0. b.Netstate.b_start;
  Helpers.check_float "finish" 5. b.Netstate.b_finish;
  Helpers.check_float "proc ready advanced" 5. (Netstate.proc_ready net 0);
  let b2 = Netstate.book_exec_only net ~proc:0 ~exec:3. in
  Helpers.check_float "second task appended" 5. b2.Netstate.b_start;
  Helpers.check_float "other proc untouched" 0. (Netstate.proc_ready net 1)

let test_single_message () =
  let net = fresh 2 in
  (* source task 0 replica 0 on P0, finished at 4, ships 10 units, delay 1 *)
  let b =
    Netstate.book_replica net ~proc:1 ~exec:2.
      ~inputs:[ (0, [ src ~task:0 ~replica:0 ~proc:0 ~finish:4. ~volume:10. ]) ]
  in
  (match b.Netstate.b_messages with
  | [ m ] ->
      Helpers.check_float "leg starts at source finish" 4. m.Netstate.m_leg_start;
      Helpers.check_float "leg finish" 14. m.Netstate.m_leg_finish;
      Helpers.check_float "arrival = leg finish (empty ports)" 14.
        m.Netstate.m_arrival;
      Helpers.check_float "duration" 10. m.Netstate.m_duration
  | _ -> Alcotest.fail "expected one message");
  Helpers.check_float "exec starts at arrival" 14. b.Netstate.b_start;
  Helpers.check_float "send port consumed" 14. (Netstate.send_free net 0);
  Helpers.check_float "recv port consumed" 14. (Netstate.recv_free net 1);
  Helpers.check_float "link consumed" 14. (Netstate.link_ready net ~src:0 ~dst:1)

let test_send_serialization () =
  let net = fresh 3 in
  (* one replica on P1 receiving from P0, then another on P2 also from P0:
     the second leg must wait for P0's send port (equation (2)) *)
  let source = src ~task:0 ~replica:0 ~proc:0 ~finish:0. ~volume:10. in
  let _ = Netstate.book_replica net ~proc:1 ~exec:1. ~inputs:[ (0, [ source ]) ] in
  let b2 = Netstate.book_replica net ~proc:2 ~exec:1. ~inputs:[ (0, [ source ]) ] in
  match b2.Netstate.b_messages with
  | [ m ] ->
      Helpers.check_float "second send serialized" 10. m.Netstate.m_leg_start;
      Helpers.check_float "second arrival" 20. m.Netstate.m_arrival
  | _ -> Alcotest.fail "expected one message"

let test_receive_serialization () =
  let net = fresh 3 in
  (* two predecessors on P0 and P1 send to P2; both ready at 0; volumes 10
     and 5.  Legs run in parallel on distinct links, but the receive port
     of P2 serializes the arrivals in non-decreasing leg-finish order. *)
  let a = src ~task:0 ~replica:0 ~proc:0 ~finish:0. ~volume:10. in
  let b = src ~task:1 ~replica:0 ~proc:1 ~finish:0. ~volume:5. in
  let booked =
    Netstate.book_replica net ~proc:2 ~exec:7. ~inputs:[ (0, [ a ]); (1, [ b ]) ]
  in
  (match booked.Netstate.b_messages with
  | [ m1; m2 ] ->
      (* arrival order: the volume-5 message lands first *)
      Helpers.check_float "first arrival" 5. m1.Netstate.m_arrival;
      Helpers.check_float "second arrival serialized" 15. m2.Netstate.m_arrival;
      Helpers.check_float "legs overlap on distinct links" 0.
        m2.Netstate.m_leg_start
  | _ -> Alcotest.fail "expected two messages");
  (* both predecessors needed: start at the later arrival *)
  Helpers.check_float "exec start" 15. booked.Netstate.b_start;
  Helpers.check_float "exec finish" 22. booked.Netstate.b_finish;
  Helpers.check_float "recv free" 15. (Netstate.recv_free net 2)

let test_first_complete_input_set () =
  let net = fresh 3 in
  (* the same task provides two replicas; only the earliest is needed *)
  let r0 = src ~task:0 ~replica:0 ~proc:0 ~finish:0. ~volume:10. in
  let r1 = src ~task:0 ~replica:1 ~proc:1 ~finish:0. ~volume:5. in
  let booked =
    Netstate.book_replica net ~proc:2 ~exec:1. ~inputs:[ (0, [ r0; r1 ]) ]
  in
  Helpers.check_int "both replicas ship" 2 (List.length booked.Netstate.b_messages);
  (* earliest arrival is the volume-5 replica at time 5 *)
  Helpers.check_float "starts on first complete set" 5. booked.Netstate.b_start

let test_colocation_suppression () =
  let net = fresh 3 in
  let local = src ~task:0 ~replica:0 ~proc:2 ~finish:6. ~volume:10. in
  let remote = src ~task:0 ~replica:1 ~proc:0 ~finish:0. ~volume:10. in
  let booked =
    Netstate.book_replica net ~proc:2 ~exec:1. ~inputs:[ (0, [ remote; local ]) ]
  in
  Helpers.check_int "remote copies suppressed" 0
    (List.length booked.Netstate.b_messages);
  Helpers.check_bool "local supply recorded" true
    (booked.Netstate.b_local = [ (0, 0, 6.) ]);
  Helpers.check_float "starts at local finish" 6. booked.Netstate.b_start;
  Helpers.check_float "send port of P0 untouched" 0. (Netstate.send_free net 0)

let test_colocation_not_exclusive () =
  let net = fresh 3 in
  let local = src ~task:0 ~replica:0 ~proc:2 ~finish:6. ~volume:10. in
  let remote = src ~task:0 ~replica:1 ~proc:0 ~finish:0. ~volume:10. in
  let booked =
    Netstate.book_replica ~colocate_exclusive:false net ~proc:2 ~exec:1.
      ~inputs:[ (0, [ remote; local ]) ]
  in
  Helpers.check_int "remote copy still shipped" 1
    (List.length booked.Netstate.b_messages);
  Helpers.check_bool "local supply also recorded" true
    (booked.Netstate.b_local = [ (0, 0, 6.) ]);
  (* data available from the local copy at 6 (remote arrives at 10) *)
  Helpers.check_float "starts at earliest supply" 6. booked.Netstate.b_start

let test_macro_dataflow_no_contention () =
  let net = fresh ~model:Netstate.Macro_dataflow 3 in
  let a = src ~task:0 ~replica:0 ~proc:0 ~finish:0. ~volume:10. in
  let b = src ~task:1 ~replica:0 ~proc:1 ~finish:0. ~volume:5. in
  let booked =
    Netstate.book_replica net ~proc:2 ~exec:1. ~inputs:[ (0, [ a ]); (1, [ b ]) ]
  in
  List.iter
    (fun m ->
      Helpers.check_float "arrival = leg finish under macro-dataflow"
        m.Netstate.m_leg_finish m.Netstate.m_arrival)
    booked.Netstate.b_messages;
  Helpers.check_float "start at max arrival" 10. booked.Netstate.b_start;
  (* ports are never consumed *)
  Helpers.check_float "send free" 0. (Netstate.send_free net 0);
  Helpers.check_float "recv free" 0. (Netstate.recv_free net 2);
  (* same source twice: no serialization under macro-dataflow *)
  let _ = Netstate.book_replica net ~proc:1 ~exec:1. ~inputs:[ (0, [ a ]) ] in
  let again = Netstate.book_replica net ~proc:2 ~exec:1. ~inputs:[ (0, [ a ]) ] in
  (match again.Netstate.b_messages with
  | [ m ] -> Helpers.check_float "no send serialization" 0. m.Netstate.m_leg_start
  | _ -> Alcotest.fail "expected one message")

let test_snapshot_restore () =
  let net = fresh 3 in
  let snap = Netstate.snapshot net in
  let source = src ~task:0 ~replica:0 ~proc:0 ~finish:0. ~volume:10. in
  let _ = Netstate.book_replica net ~proc:1 ~exec:5. ~inputs:[ (0, [ source ]) ] in
  Helpers.check_bool "state mutated" true (Netstate.proc_ready net 1 > 0.);
  Netstate.restore net snap;
  Helpers.check_float "ready restored" 0. (Netstate.proc_ready net 1);
  Helpers.check_float "send restored" 0. (Netstate.send_free net 0);
  Helpers.check_float "recv restored" 0. (Netstate.recv_free net 1);
  Helpers.check_float "link restored" 0. (Netstate.link_ready net ~src:0 ~dst:1);
  (* rebooking after restore reproduces the same times *)
  let b = Netstate.book_replica net ~proc:1 ~exec:5. ~inputs:[ (0, [ source ]) ] in
  Helpers.check_float "deterministic rebooking" 10. b.Netstate.b_start

let test_empty_sources_rejected () =
  let net = fresh 2 in
  Alcotest.check_raises "empty source list"
    (Invalid_argument "Netstate.book_replica: predecessor 0 has no source")
    (fun () ->
      ignore (Netstate.book_replica net ~proc:1 ~exec:1. ~inputs:[ (0, []) ]))

let test_heterogeneous_delays () =
  let delays = [| [| 0.; 2. |]; [| 0.5; 0. |] |] in
  let net = Netstate.create (Platform.create ~delays) in
  let b =
    Netstate.book_replica net ~proc:1 ~exec:1.
      ~inputs:[ (0, [ src ~task:0 ~replica:0 ~proc:0 ~finish:0. ~volume:10. ]) ]
  in
  (* volume 10 x delay 2 = 20 *)
  Helpers.check_float "directional delay applied" 20. b.Netstate.b_start

let suite =
  [
    Alcotest.test_case "exec-only booking" `Quick test_exec_only;
    Alcotest.test_case "single message timing" `Quick test_single_message;
    Alcotest.test_case "send-port serialization (eq 2)" `Quick
      test_send_serialization;
    Alcotest.test_case "receive-port serialization (eq 3/6)" `Quick
      test_receive_serialization;
    Alcotest.test_case "first complete input set" `Quick
      test_first_complete_input_set;
    Alcotest.test_case "co-location suppression" `Quick
      test_colocation_suppression;
    Alcotest.test_case "co-location without suppression" `Quick
      test_colocation_not_exclusive;
    Alcotest.test_case "macro-dataflow has no contention" `Quick
      test_macro_dataflow_no_contention;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "empty sources rejected" `Quick
      test_empty_sources_rejected;
    Alcotest.test_case "heterogeneous delays" `Quick test_heterogeneous_delays;
  ]
