(* Unit tests for sparse interconnection topologies and their integration
   with the booking engine / validator / replay. *)

let test_ring_routes () =
  let t = Topology.ring 6 in
  Helpers.check_int "procs" 6 (Topology.proc_count t);
  Helpers.check_int "directed links" 12 (Topology.link_count t);
  Helpers.check_bool "adjacent route" true (Topology.route t 0 1 = [ 0; 1 ]);
  Helpers.check_float "adjacent delay" 1. (Topology.delay_between t 0 1);
  (* 0 -> 3 is 3 hops either way; tie broken deterministically *)
  Helpers.check_float "opposite delay" 3. (Topology.delay_between t 0 3);
  Helpers.check_int "ring diameter" 3 (Topology.diameter_hops t);
  (* going 0 -> 5 wraps backwards: 1 hop *)
  Helpers.check_float "wrap delay" 1. (Topology.delay_between t 0 5)

let test_star_routes () =
  let t = Topology.star 5 in
  Helpers.check_int "links" 8 (Topology.link_count t);
  Helpers.check_bool "leaf to leaf through hub" true
    (Topology.route t 1 4 = [ 1; 0; 4 ]);
  Helpers.check_float "two hops" 2. (Topology.delay_between t 1 4);
  Helpers.check_float "hub direct" 1. (Topology.delay_between t 0 3);
  Helpers.check_int "diameter" 2 (Topology.diameter_hops t)

let test_mesh_and_torus () =
  let mesh = Topology.mesh2d ~rows:3 ~cols:3 () in
  Helpers.check_int "mesh procs" 9 (Topology.proc_count mesh);
  (* corner to corner: manhattan distance 4 *)
  Helpers.check_float "mesh corner distance" 4. (Topology.delay_between mesh 0 8);
  Helpers.check_int "mesh diameter" 4 (Topology.diameter_hops mesh);
  let torus = Topology.torus2d ~rows:3 ~cols:3 () in
  (* wrap-around shortens the corner route *)
  Helpers.check_float "torus corner distance" 2.
    (Topology.delay_between torus 0 8);
  Helpers.check_int "torus diameter" 2 (Topology.diameter_hops torus)

let test_hypercube () =
  let t = Topology.hypercube 3 in
  Helpers.check_int "procs" 8 (Topology.proc_count t);
  Helpers.check_int "links" (2 * 12) (Topology.link_count t);
  Helpers.check_float "antipodal distance" 3. (Topology.delay_between t 0 7);
  Helpers.check_float "hamming distance" 2. (Topology.delay_between t 1 7)

let test_clique_matches_uniform () =
  let t = Topology.clique ~delay:0.5 4 in
  Helpers.check_float "direct" 0.5 (Topology.delay_between t 1 3);
  Helpers.check_int "diameter" 1 (Topology.diameter_hops t)

let test_custom_validation () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Topology.custom: disconnected topology") (fun () ->
      ignore (Topology.custom ~m:3 ~links:[ (0, 1, 1.) ]));
  Alcotest.check_raises "self cable"
    (Invalid_argument "Topology.custom: self cable") (fun () ->
      ignore (Topology.custom ~m:2 ~links:[ (0, 0, 1.) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.custom: duplicate cable") (fun () ->
      ignore (Topology.custom ~m:2 ~links:[ (0, 1, 1.); (1, 0, 1.) ]));
  Alcotest.check_raises "bad delay"
    (Invalid_argument "Topology.custom: non-positive delay") (fun () ->
      ignore (Topology.custom ~m:2 ~links:[ (0, 1, 0.) ]))

let test_routes_are_consistent () =
  let t = Topology.torus2d ~rows:3 ~cols:4 () in
  let m = Topology.proc_count t in
  for src = 0 to m - 1 do
    for dst = 0 to m - 1 do
      let path = Topology.route t src dst in
      (match path with
      | first :: _ -> Helpers.check_int "path starts at src" src first
      | [] -> Alcotest.fail "empty path");
      Helpers.check_int "path ends at dst" dst (List.nth path (List.length path - 1));
      (* delay equals hop count here (all cables delay 1) *)
      Helpers.check_float "delay = hops"
        (float_of_int (List.length path - 1))
        (Topology.delay_between t src dst)
    done
  done

let test_fabric_route_lengths () =
  let t = Topology.ring 5 in
  let fabric = Topology.fabric t in
  Helpers.check_int "phys count" (Topology.link_count t)
    fabric.Netstate.phys_count;
  for src = 0 to 4 do
    for dst = 0 to 4 do
      if src <> dst then begin
        let links = fabric.Netstate.route src dst in
        Helpers.check_int "one link per hop"
          (List.length (Topology.route t src dst) - 1)
          (List.length links);
        List.iter
          (fun l ->
            Helpers.check_bool "valid id" true
              (l >= 0 && l < fabric.Netstate.phys_count))
          links
      end
    done
  done

let schedule_on topology ~epsilon ~seed =
  let rng = Rng.create seed in
  let dag =
    Random_dag.generate rng
      { Random_dag.default with Random_dag.tasks_min = 20; tasks_max = 20 }
  in
  let platform = Topology.platform topology in
  let costs =
    Costs.create dag platform (fun t _ ->
        50. +. (10. *. float_of_int (t mod 7)))
  in
  let fabric = Topology.fabric topology in
  (Caft.run ~fabric ~seed ~epsilon costs, fabric)

let test_caft_on_sparse_topologies () =
  List.iter
    (fun (name, topo) ->
      let sched, fabric = schedule_on topo ~epsilon:1 ~seed:3 in
      (match Validate.run ~fabric sched with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s: invalid schedule:\n%s" name
            (String.concat "\n"
               (List.map (fun v -> Format.asprintf "%a" Validate.pp_violation v) vs)));
      let out = Replay.fault_free ~fabric sched in
      Helpers.check_bool (name ^ " replay completes") true out.Replay.completed;
      Helpers.check_float
        (name ^ " replay matches static")
        (Schedule.latency_zero_crash sched)
        out.Replay.latency;
      (* exhaustive single-crash tolerance on the sparse fabric *)
      let m = Platform.proc_count (Schedule.platform sched) in
      List.iter
        (fun p ->
          let out = Replay.crash_from_start ~fabric sched ~crashed:[ p ] in
          Helpers.check_bool
            (Printf.sprintf "%s survives crash of P%d" name p)
            true out.Replay.completed)
        (List.init m Fun.id))
    [
      ("ring", Topology.ring 8);
      ("star", Topology.star 8);
      ("mesh", Topology.mesh2d ~rows:2 ~cols:4 ());
      ("hypercube", Topology.hypercube 3);
    ]

let test_star_contention_slower_than_clique () =
  (* the hub serializes everything: the same workload must not be faster
     on the star than on the clique *)
  let rng = Rng.create 17 in
  let dag =
    Random_dag.generate rng
      { Random_dag.default with Random_dag.tasks_min = 25; tasks_max = 25 }
  in
  let costs_on topo =
    let platform = Topology.platform topo in
    Costs.create dag platform (fun t _ -> 20. +. float_of_int (t mod 5))
  in
  let clique = Topology.clique 6 in
  let star = Topology.star 6 in
  let sched_clique =
    Caft.run ~fabric:(Topology.fabric clique) ~epsilon:1 (costs_on clique)
  in
  let sched_star =
    Caft.run ~fabric:(Topology.fabric star) ~epsilon:1 (costs_on star)
  in
  (* the scheduler is a heuristic, so strict dominance is not a theorem;
     but the star must not be significantly faster than the clique *)
  Helpers.check_bool "star not significantly faster than clique" true
    (Schedule.latency_zero_crash sched_star
    >= 0.85 *. Schedule.latency_zero_crash sched_clique)

let suite =
  [
    Alcotest.test_case "ring routes" `Quick test_ring_routes;
    Alcotest.test_case "star routes" `Quick test_star_routes;
    Alcotest.test_case "mesh and torus" `Quick test_mesh_and_torus;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "clique" `Quick test_clique_matches_uniform;
    Alcotest.test_case "custom validation" `Quick test_custom_validation;
    Alcotest.test_case "route consistency" `Quick test_routes_are_consistent;
    Alcotest.test_case "fabric route lengths" `Quick test_fabric_route_lengths;
    Alcotest.test_case "CAFT on sparse topologies" `Slow
      test_caft_on_sparse_topologies;
    Alcotest.test_case "star contention" `Quick
      test_star_contention_slower_than_clique;
  ]
