(* Tests for schedule metrics, serialization and Monte-Carlo campaigns. *)

let test_metrics_basic () =
  let _, costs = Helpers.random_instance ~seed:51 () in
  let sched = Caft.run ~epsilon:1 costs in
  let m = Metrics.analyze sched in
  Helpers.check_float "horizon" (Schedule.makespan sched) m.Metrics.horizon;
  Helpers.check_float "latency" (Schedule.latency_zero_crash sched)
    m.Metrics.latency;
  Helpers.check_int "message count" (Schedule.message_count sched)
    m.Metrics.message_count;
  Helpers.check_bool "utilization in range" true
    (m.Metrics.mean_utilization >= 0.
    && m.Metrics.mean_utilization <= m.Metrics.max_utilization
    && m.Metrics.max_utilization <= 1. +. 1e-9);
  (* total exec equals the sum over replicas of the cost matrix entries *)
  let expected =
    List.fold_left
      (fun acc (r : Schedule.replica) ->
        acc +. Costs.exec costs r.Schedule.r_task r.Schedule.r_proc)
      0.
      (Schedule.all_replicas sched)
  in
  Alcotest.(check (float 1e-3)) "total exec" expected m.Metrics.total_exec;
  Helpers.check_int "per-proc rows" 6 (List.length m.Metrics.per_proc);
  Helpers.check_bool "imbalance >= 1" true (m.Metrics.replica_imbalance >= 1.)

let test_metrics_empty_comm () =
  let dag = Dag.make ~n:3 ~edges:[] () in
  let platform = Helpers.uniform_platform 4 in
  let costs = Helpers.flat_costs ~c:5. dag platform in
  let sched = Caft.run ~epsilon:1 costs in
  let m = Metrics.analyze sched in
  Helpers.check_int "no messages" 0 m.Metrics.message_count;
  Helpers.check_float "no comm time" 0. m.Metrics.total_comm_time;
  Helpers.check_float "serial comm bound" 0.
    (Metrics.serial_comm_lower_bound sched)

let test_metrics_pp () =
  let _, costs = Helpers.random_instance ~seed:52 () in
  let sched = Ftsa.run ~epsilon:1 costs in
  let s = Format.asprintf "%a" Metrics.pp (Metrics.analyze sched) in
  Helpers.check_bool "pp non-empty" true (String.length s > 100)

let test_io_roundtrip () =
  List.iter
    (fun (name, sched) ->
      let text = Schedule_io.to_string sched in
      let back = Schedule_io.of_string text in
      Helpers.check_bool (name ^ ": algorithm") true
        (Schedule.algorithm back = Schedule.algorithm sched);
      Helpers.check_int (name ^ ": epsilon") (Schedule.epsilon sched)
        (Schedule.epsilon back);
      Helpers.check_float (name ^ ": latency")
        (Schedule.latency_zero_crash sched)
        (Schedule.latency_zero_crash back);
      Helpers.check_float (name ^ ": upper")
        (Schedule.latency_upper_bound sched)
        (Schedule.latency_upper_bound back);
      Helpers.check_int (name ^ ": messages") (Schedule.message_count sched)
        (Schedule.message_count back);
      Helpers.check_bool (name ^ ": reloaded schedule is valid") true
        (Validate.is_valid back);
      (* replay agrees after the round trip *)
      let out1 = Replay.crash_from_start sched ~crashed:[ 0 ] in
      let out2 = Replay.crash_from_start back ~crashed:[ 0 ] in
      Helpers.check_bool (name ^ ": replay completion matches")
        out1.Replay.completed out2.Replay.completed;
      if out1.Replay.completed then
        Helpers.check_float (name ^ ": replay latency matches")
          out1.Replay.latency out2.Replay.latency)
    (let _, costs = Helpers.random_instance ~seed:53 () in
     [
       ("CAFT", Caft.run ~epsilon:2 costs);
       ("FTSA", Ftsa.run ~epsilon:1 costs);
       ("HEFT", Heft.run costs);
     ])

let test_io_file_roundtrip () =
  let _, costs = Helpers.random_instance ~seed:54 () in
  let sched = Caft.run ~epsilon:1 costs in
  let path = Filename.temp_file "ftsched" ".sched" in
  Schedule_io.to_file path sched;
  let back = Schedule_io.of_file path in
  Sys.remove path;
  Helpers.check_float "file roundtrip latency"
    (Schedule.latency_zero_crash sched)
    (Schedule.latency_zero_crash back)

let test_io_rejects_garbage () =
  let check_fails name text =
    match Schedule_io.of_string text with
    | exception Schedule_io.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: garbage accepted" name
  in
  check_fails "empty" "";
  check_fails "bad header" "not-a-schedule v1\nend\n";
  check_fails "unknown directive" "ftsched-schedule v1\nbogus 1\nend\n";
  check_fails "missing end" "ftsched-schedule v1\nepsilon 0\ntasks 1\nprocs 1\n";
  check_fails "bad int"
    "ftsched-schedule v1\nepsilon x\ntasks 1\nprocs 1\nend\n"

let test_monte_carlo_from_start () =
  let _, costs = Helpers.random_instance ~seed:55 () in
  let epsilon = 2 in
  let sched = Caft.run ~epsilon costs in
  let report =
    Monte_carlo.run ~runs:200 ~crashes:epsilon ~mode:Monte_carlo.From_start sched
  in
  Helpers.check_int "all runs complete" 200 report.Monte_carlo.completed;
  Helpers.check_float "zero failure rate" 0. report.Monte_carlo.failure_rate;
  (match report.Monte_carlo.latency with
  | Some s ->
      Helpers.check_bool "latencies at least zero-crash-ish" true
        (s.Stats.min > 0.)
  | None -> Alcotest.fail "expected latency summary");
  Helpers.check_bool "worst slowdown sane" true
    (report.Monte_carlo.worst_slowdown >= 0.99)

let test_monte_carlo_timed () =
  let _, costs = Helpers.random_instance ~seed:56 () in
  let sched = Caft.run ~epsilon:1 costs in
  let horizon = Schedule.makespan sched in
  let report =
    Monte_carlo.run ~runs:300 ~crashes:1 ~mode:(Monte_carlo.Timed horizon) sched
  in
  (* timed single crashes on an epsilon=1 schedule always complete *)
  Helpers.check_int "timed runs complete" 300 report.Monte_carlo.completed;
  let s = Format.asprintf "%a" Monte_carlo.pp report in
  Helpers.check_bool "pp renders" true (String.length s > 20)

let test_monte_carlo_beyond_epsilon () =
  (* 3 crashes against an epsilon=1 schedule on 5 processors must lose
     tasks at least sometimes *)
  let dag = Families.chain 8 in
  let platform = Helpers.uniform_platform 5 in
  let costs = Helpers.flat_costs dag platform in
  let sched = Caft.run ~epsilon:1 costs in
  let report =
    Monte_carlo.run ~runs:200 ~crashes:3 ~mode:Monte_carlo.From_start sched
  in
  Helpers.check_bool "some failures beyond epsilon" true
    (report.Monte_carlo.failure_rate > 0.)

let test_new_families () =
  let bf = Families.butterfly 3 in
  Helpers.check_int "butterfly tasks" 32 (Dag.task_count bf);
  Helpers.check_int "butterfly edges" (2 * 8 * 3) (Dag.edge_count bf);
  Helpers.check_int "butterfly depth" 4 (Dag.longest_path_length bf);
  let ch = Families.cholesky 4 in
  (* T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm *)
  Helpers.check_int "cholesky tasks" (4 + 6 + 6 + 4) (Dag.task_count ch);
  Helpers.check_bool "cholesky connected" true (Classify.is_connected ch);
  (* schedule both fault-tolerantly and verify *)
  List.iter
    (fun dag ->
      let platform = Helpers.uniform_platform 6 in
      let costs = Helpers.flat_costs ~c:50. dag platform in
      let sched = Caft.run ~epsilon:1 costs in
      Helpers.check_bool "valid" true (Validate.is_valid sched);
      Helpers.check_bool "resists" true
        (Fault_check.check ~epsilon:1 sched).Fault_check.resists)
    [ bf; ch ]

let suite =
  [
    Alcotest.test_case "metrics basics" `Quick test_metrics_basic;
    Alcotest.test_case "metrics without communication" `Quick
      test_metrics_empty_comm;
    Alcotest.test_case "metrics pretty-print" `Quick test_metrics_pp;
    Alcotest.test_case "schedule_io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "schedule_io file roundtrip" `Quick
      test_io_file_roundtrip;
    Alcotest.test_case "schedule_io rejects garbage" `Quick
      test_io_rejects_garbage;
    Alcotest.test_case "monte-carlo from-start" `Quick
      test_monte_carlo_from_start;
    Alcotest.test_case "monte-carlo timed" `Quick test_monte_carlo_timed;
    Alcotest.test_case "monte-carlo beyond epsilon" `Quick
      test_monte_carlo_beyond_epsilon;
    Alcotest.test_case "butterfly and cholesky" `Quick test_new_families;
  ]
