(* Fault plans and the adversarial injector: degenerate-plan equivalence
   against the compiled crash engine, Proposition 5.2 as a dynamic
   property, recovery/outage/fail-silent semantics, and the certificate
   cross-check of the adversary's minimal kill set. *)

let sched_of ?(seed = 5) ?(m = 6) ?(tasks = 25) ?(epsilon = 1) () =
  let _, costs = Helpers.random_instance ~seed ~m ~tasks () in
  Caft.run ~seed ~epsilon costs

let same_outcome name (a : Replay.outcome) (b : Replay.outcome) =
  Helpers.check_bool (name ^ ": completed") b.Replay.completed
    a.Replay.completed;
  if b.Replay.completed then
    Helpers.check_float (name ^ ": latency") b.Replay.latency a.Replay.latency;
  Helpers.check_bool (name ^ ": failed tasks") true
    (a.Replay.failed_tasks = b.Replay.failed_tasks);
  Helpers.check_bool (name ^ ": replica outcomes") true
    (a.Replay.replicas = b.Replay.replicas)

(* the empty plan is exactly the fault-free replay *)
let test_empty_plan_fault_free () =
  List.iter
    (fun seed ->
      let sched = sched_of ~seed () in
      let a = Replay.eval_plan (Replay.compile sched) [] in
      let b = Replay.fault_free sched in
      same_outcome (Printf.sprintf "seed %d" seed) a b;
      Helpers.check_float
        (Printf.sprintf "seed %d: static latency" seed)
        (Schedule.latency_zero_crash sched)
        a.Replay.latency)
    [ 1; 2; 3; 4; 5 ]

(* A [Recover] on a never-crashed processor is a no-op but forces the
   plan off the degenerate fast path, so the generalized window engine
   replays pure-crash scenarios too — it must agree with [eval] exactly,
   from-start and timed, completed or failed. *)
let test_generalized_core_matches_eval () =
  List.iter
    (fun seed ->
      let m = 6 in
      let sched = sched_of ~seed ~m () in
      let c = Replay.compile sched in
      let horizon = Schedule.makespan sched in
      let subsets =
        List.init m (fun p -> [ p ])
        @ [ [ 0; 1 ]; [ 2; 4 ]; [ 3; 5 ]; [ 1; 2; 5 ] ]
      in
      List.iter
        (fun procs ->
          let spare =
            List.find (fun p -> not (List.mem p procs)) (List.init m Fun.id)
          in
          let name =
            Printf.sprintf "seed %d {%s}" seed
              (String.concat "," (List.map string_of_int procs))
          in
          (* from start *)
          let plan =
            Replay.Recover { proc = spare; at = 0. }
            :: List.map
                 (fun p -> Replay.Crash { proc = p; at = neg_infinity })
                 procs
          in
          same_outcome (name ^ " from-start") (Replay.eval_plan c plan)
            (Replay.eval_crashed c ~crashed:procs);
          (* timed: each processor dies at a distinct mid-schedule instant *)
          let crashes =
            List.mapi
              (fun i p -> (p, horizon *. float_of_int (i + 1) /. 5.))
              procs
          in
          let plan =
            Replay.Recover { proc = spare; at = 0. }
            :: List.map
                 (fun (p, tau) -> Replay.Crash { proc = p; at = tau })
                 crashes
          in
          same_outcome (name ^ " timed") (Replay.eval_plan c plan)
            (Replay.eval_timed c ~crashes))
        subsets)
    [ 1; 2; 3 ]

(* Proposition 5.2, dynamically: every from-start plan with at most
   epsilon crashes leaves a CAFT schedule's completion fraction at 1. *)
let test_within_epsilon_completes () =
  List.iter
    (fun (seed, epsilon) ->
      let m = 6 in
      let sched = sched_of ~seed ~m ~epsilon () in
      let c = Replay.compile sched in
      for k = 0 to epsilon do
        Seq.iter
          (fun procs ->
            let plan =
              List.map
                (fun p -> Replay.Crash { proc = p; at = neg_infinity })
                procs
            in
            let d = Replay.eval_plan_degraded c plan in
            Helpers.check_float
              (Printf.sprintf "seed %d eps %d: %d crashes complete" seed
                 epsilon k)
              1.
              (Replay.completion_fraction d);
            Helpers.check_float
              (Printf.sprintf "seed %d eps %d: sinks delivered" seed epsilon)
              1. (Replay.sink_fraction d))
          (Fault_check.combinations m k)
      done)
    [ (1, 1); (2, 1); (3, 2) ]

(* crash + recovery: an immediate recovery is fault-free; a recovery at
   the horizon still completes an epsilon = 0 schedule (work is delayed,
   not lost) *)
let test_recovery () =
  let sched = sched_of ~seed:7 ~epsilon:0 () in
  let c = Replay.compile sched in
  let base = Replay.fault_free sched in
  (* a processor that actually hosts work *)
  let p =
    List.find
      (fun p -> Schedule.on_proc sched p <> [])
      (List.init (Replay.proc_count c) Fun.id)
  in
  (* permanent crash on an epsilon = 0 schedule loses tasks *)
  let dead =
    Replay.eval_plan c [ Replay.Crash { proc = p; at = neg_infinity } ]
  in
  Helpers.check_bool "permanent crash fails" false dead.Replay.completed;
  (* crash healed before time zero changes nothing *)
  let healed =
    Replay.eval_plan c
      [
        Replay.Crash { proc = p; at = neg_infinity };
        Replay.Recover { proc = p; at = 0. };
      ]
  in
  same_outcome "healed at 0" healed base;
  (* a mid-schedule down window only delays *)
  let delayed =
    Replay.eval_plan c
      [
        Replay.Crash { proc = p; at = 0. };
        Replay.Recover { proc = p; at = Schedule.makespan sched };
      ]
  in
  Helpers.check_bool "outage window completes" true delayed.Replay.completed;
  Helpers.check_bool "outage window delays" true
    (delayed.Replay.latency >= base.Replay.latency -. 1e-9)

(* healing link outages delay traffic but never lose it, unlike
   [dead_links] *)
let test_link_outage_heals () =
  let sched = sched_of ~seed:9 ~m:4 ~epsilon:0 () in
  let c = Replay.compile sched in
  let base = Replay.fault_free sched in
  let horizon = Schedule.makespan sched in
  let outages =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i = j then None
            else
              Some
                (Replay.Link_outage
                   {
                     Netstate.o_src = i;
                     o_dst = j;
                     o_from = 0.;
                     o_until = horizon;
                   }))
          (List.init 4 Fun.id))
      (List.init 4 Fun.id)
  in
  let out = Replay.eval_plan c outages in
  Helpers.check_bool "outage completes" true out.Replay.completed;
  Helpers.check_bool "outage delays" true
    (out.Replay.latency >= base.Replay.latency -. 1e-9)

(* fail-silent task faults: one lost result per task is masked by the
   epsilon = 1 replication; losing every replica of a task is not *)
let test_lose_result () =
  let sched = sched_of ~seed:11 ~epsilon:1 () in
  let c = Replay.compile sched in
  let v = Dag.task_count (Schedule.dag sched) in
  for t = 0 to v - 1 do
    let out =
      Replay.eval_plan c [ Replay.Lose_result { task = t; replica = 0 } ]
    in
    Helpers.check_bool
      (Printf.sprintf "task %d: one loss masked" t)
      true out.Replay.completed;
    (match out.Replay.replicas.(t).(0) with
    | Replay.Lost _ -> ()
    | _ -> Alcotest.failf "task %d: replica 0 not marked Lost" t);
    let d =
      Replay.eval_plan_degraded c
        [
          Replay.Lose_result { task = t; replica = 0 };
          Replay.Lose_result { task = t; replica = 1 };
        ]
    in
    Helpers.check_bool
      (Printf.sprintf "task %d: all replicas lost kills" t)
      true
      (Replay.completion_fraction d < 1.)
  done

let test_plan_validation () =
  let sched = sched_of () in
  let c = Replay.compile sched in
  Alcotest.check_raises "processor out of range"
    (Invalid_argument "Replay.eval_plan: processor out of range") (fun () ->
      ignore (Replay.eval_plan c [ Replay.Crash { proc = 99; at = 0. } ]));
  Alcotest.check_raises "replica out of range"
    (Invalid_argument "Replay.eval_plan: replica out of range") (fun () ->
      ignore
        (Replay.eval_plan c
           [
             Replay.Recover { proc = 0; at = 0. };
             Replay.Lose_result { task = 0; replica = 5 };
           ]))

(* -- the adversary ------------------------------------------------------ *)

(* The min kill set is never smaller than the certificate's bound: when
   epsilon-resistance is certified no epsilon-subset can kill, so the
   kill set must have exactly epsilon + 1 processors; when refuted, the
   counterexample itself is the (certified-minimal) kill set. *)
let test_adversary_certificate_crosscheck () =
  List.iter
    (fun seed ->
      let sched = sched_of ~seed () in
      let eps = Schedule.epsilon sched in
      let r = Inject.adversary ~budget:2_000 sched in
      Helpers.check_int "epsilon" eps r.Inject.iv_epsilon;
      Helpers.check_bool "evals within budget" true
        (r.Inject.iv_evals <= r.Inject.iv_budget);
      let k =
        match r.Inject.iv_min_kill with
        | Some k -> k
        | None -> Alcotest.fail "no kill set found"
      in
      let size = List.length k.Inject.k_procs in
      (match r.Inject.iv_cert_resists with
      | Some true ->
          Helpers.check_int "certified kill size" (eps + 1) size;
          Helpers.check_bool "kill certified minimal" true
            k.Inject.k_certified
      | Some false ->
          Helpers.check_bool "refutation within tolerance" true (size <= eps)
      | None -> ());
      (* the kill set actually kills *)
      let d =
        Replay.eval_plan_degraded
          (Replay.compile sched)
          (List.map
             (fun p -> Replay.Crash { proc = p; at = neg_infinity })
             k.Inject.k_procs)
      in
      Helpers.check_bool "kill set loses a task" true
        (Replay.completion_fraction d < 1.);
      Helpers.check_float "reported degradation agrees"
        (Replay.completion_fraction d)
        (Replay.completion_fraction k.Inject.k_degradation))
    [ 5; 6; 7 ]

(* With the subset space exhausted, the adversary's worst-case latency
   dominates any Monte-Carlo sample of from-start scenarios. *)
let test_adversary_dominates_monte_carlo () =
  let sched = sched_of ~seed:5 () in
  let r = Inject.adversary ~budget:2_000 sched in
  let w =
    match r.Inject.iv_worst with
    | Some w -> w
    | None -> Alcotest.fail "no completed plan"
  in
  Helpers.check_bool "subset space exhausted" true w.Inject.w_exhaustive;
  Helpers.check_bool "slowdown >= 1" true (w.Inject.w_slowdown >= 1. -. 1e-9);
  let mc =
    Monte_carlo.run ~seed:123 ~runs:300
      ~crashes:(Schedule.epsilon sched)
      ~mode:Monte_carlo.From_start sched
  in
  Helpers.check_bool "adversary >= Monte-Carlo max" true
    (w.Inject.w_slowdown >= mc.Monte_carlo.worst_slowdown -. 1e-9)

let test_adversary_deterministic () =
  let sched = sched_of ~seed:6 () in
  let a = Inject.adversary ~seed:3 ~budget:500 sched in
  let b = Inject.adversary ~seed:3 ~budget:500 sched in
  Helpers.check_bool "reports identical" true (a = b)

(* -- degradation curve -------------------------------------------------- *)

let test_degradation_curve () =
  let sched = sched_of ~seed:5 () in
  let eps = Schedule.epsilon sched in
  let curve =
    Monte_carlo.degradation_curve ~seed:2 ~runs:40 ~max_crashes:3
      ~mode:Monte_carlo.From_start sched
  in
  Helpers.check_int "four points" 4 (List.length curve);
  List.iter
    (fun (k, (r : Monte_carlo.report)) ->
      if k <= eps then begin
        (* within tolerance: full completion, no degradation columns *)
        Helpers.check_int
          (Printf.sprintf "%d crashes all complete" k)
          r.Monte_carlo.runs r.Monte_carlo.completed;
        Helpers.check_bool
          (Printf.sprintf "%d crashes: no degradation stats" k)
          true
          (r.Monte_carlo.degradation = None)
      end
      else
        match r.Monte_carlo.degradation with
        | None -> Alcotest.failf "%d crashes: degradation stats missing" k
        | Some d ->
            let mean = d.Monte_carlo.deg_completion_mean in
            let min = d.Monte_carlo.deg_completion_min in
            Helpers.check_bool
              (Printf.sprintf "%d crashes: fractions ordered" k)
              true
              (0. <= min && min <= mean && mean <= 1.);
            Helpers.check_bool
              (Printf.sprintf "%d crashes: sinks in range" k)
              true
              (0. <= d.Monte_carlo.deg_sink_mean
              && d.Monte_carlo.deg_sink_mean <= 1.);
            (* the pp gains a degradation line only beyond epsilon *)
            let s = Format.asprintf "%a" Monte_carlo.pp r in
            let contains_degradation =
              let pat = "degradation:" in
              let n = String.length pat in
              let rec scan i =
                i + n <= String.length s
                && (String.sub s i n = pat || scan (i + 1))
              in
              scan 0
            in
            Helpers.check_bool
              (Printf.sprintf "%d crashes: pp prints degradation" k)
              true contains_degradation)
    curve

(* -- observability ------------------------------------------------------ *)

let test_metrics () =
  Obs_metrics.reset ();
  Obs_metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs_metrics.set_enabled false)
    (fun () ->
      let sched = sched_of ~seed:5 () in
      let c = Replay.compile sched in
      ignore (Replay.eval_plan c []);
      ignore (Replay.eval_plan c [ Replay.Crash { proc = 0; at = 0. } ]);
      (match Obs_metrics.find "inject.plans" with
      | Some (Obs_metrics.Counter n) -> Helpers.check_int "inject.plans" 2 n
      | _ -> Alcotest.fail "inject.plans not registered");
      let r = Inject.adversary ~budget:200 sched in
      match Obs_metrics.find "stress.frontier_evals" with
      | Some (Obs_metrics.Counter n) ->
          Helpers.check_int "stress.frontier_evals" r.Inject.iv_evals n
      | _ -> Alcotest.fail "stress.frontier_evals not registered")

let suite =
  [
    Alcotest.test_case "empty plan is fault-free" `Quick
      test_empty_plan_fault_free;
    Alcotest.test_case "generalized core matches eval" `Slow
      test_generalized_core_matches_eval;
    Alcotest.test_case "within epsilon completes" `Slow
      test_within_epsilon_completes;
    Alcotest.test_case "crash recovery" `Quick test_recovery;
    Alcotest.test_case "link outage heals" `Quick test_link_outage_heals;
    Alcotest.test_case "lose result" `Slow test_lose_result;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "adversary certificate cross-check" `Slow
      test_adversary_certificate_crosscheck;
    Alcotest.test_case "adversary dominates monte-carlo" `Slow
      test_adversary_dominates_monte_carlo;
    Alcotest.test_case "adversary deterministic" `Quick
      test_adversary_deterministic;
    Alcotest.test_case "degradation curve" `Quick test_degradation_curve;
    Alcotest.test_case "metrics" `Quick test_metrics;
  ]
