(* Tests for the DOT importer. *)

let test_simple () =
  let g =
    Dot.parse
      {|digraph test {
          a [label="load"];
          b;
          a -> b [label="42.5"];
        }|}
  in
  Helpers.check_int "tasks" 2 (Dag.task_count g);
  Helpers.check_int "edges" 1 (Dag.edge_count g);
  Helpers.check_bool "label becomes name" true (Dag.name g 0 = "load");
  Helpers.check_bool "dot id fallback" true (Dag.name g 1 = "b");
  Helpers.check_bool "volume from label" true
    (Dag.volume g ~src:0 ~dst:1 = Some 42.5)

let test_roundtrip_with_export () =
  let rng = Rng.create 3 in
  let original =
    Random_dag.generate rng
      { Random_dag.default with Random_dag.tasks_min = 25; tasks_max = 25 }
  in
  let g = Dot.parse (Dot.to_string original) in
  Helpers.check_int "tasks preserved" (Dag.task_count original) (Dag.task_count g);
  Helpers.check_int "edges preserved" (Dag.edge_count original) (Dag.edge_count g);
  (* exported names come back *)
  for t = 0 to Dag.task_count g - 1 do
    Helpers.check_bool "name preserved" true (Dag.name g t = Dag.name original t)
  done;
  (* edge endpoints preserved; volumes only to the exporter's precision *)
  Dag.iter_edges
    (fun u v vol ->
      match Dag.volume original ~src:u ~dst:v with
      | Some orig -> Helpers.check_bool "volume close" true (Float.abs (orig -. vol) < 0.05 +. 1e-9)
      | None -> Alcotest.failf "edge %d->%d not in original" u v)
    g

let test_implicit_nodes_and_chains () =
  let g = Dot.parse ~default_volume:7. "digraph { x -> y -> z; y -> w }" in
  Helpers.check_int "implicit nodes" 4 (Dag.task_count g);
  Helpers.check_int "chain expands" 3 (Dag.edge_count g);
  Dag.iter_edges
    (fun _ _ vol -> Helpers.check_float "default volume" 7. vol)
    g

let test_comments_and_defaults () =
  let g =
    Dot.parse
      {|// a comment
        digraph "named graph" {
          rankdir=TB;
          node [shape=box];
          /* block
             comment */
          # hash comment
          a -> b;
        }|}
  in
  Helpers.check_int "tasks" 2 (Dag.task_count g);
  Helpers.check_int "edges" 1 (Dag.edge_count g)

let test_strict_header_and_quoted_ids () =
  let g = Dot.parse {|strict digraph { "node one" -> "node two" [weight=3]; }|} in
  Helpers.check_int "tasks" 2 (Dag.task_count g);
  Helpers.check_bool "quoted name" true (Dag.name g 0 = "node one")

let test_errors () =
  let fails text =
    match Dot.parse text with
    | exception Dot.Parse_error _ -> ()
    | exception Dag.Cycle _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted %S" text
  in
  fails "";
  fails "graph { a -- b }";
  fails "digraph { a -> }";
  fails "digraph { a -> b ";
  fails "digraph { a [label=\"unterminated }";
  (* cycles are rejected by the builder *)
  fails "digraph { a -> b; b -> a }";
  (* duplicate edges too *)
  fails "digraph { a -> b; a -> b }"

let test_parse_then_schedule () =
  (* an imported workflow goes straight through the whole pipeline *)
  let g =
    Dot.parse ~default_volume:50.
      {|digraph pipeline {
          ingest -> clean; ingest -> index;
          clean -> model; index -> model;
          model -> report;
        }|}
  in
  let platform = Helpers.uniform_platform 4 in
  let costs = Helpers.flat_costs ~c:30. g platform in
  let sched = Caft.run ~epsilon:1 costs in
  Helpers.check_bool "valid" true (Validate.is_valid sched);
  Helpers.check_bool "resists" true
    (Fault_check.check ~epsilon:1 sched).Fault_check.resists

let test_svg_renders () =
  let _, costs = Helpers.random_instance ~seed:9 () in
  let sched = Caft.run ~epsilon:1 costs in
  let svg = Gantt.to_svg sched in
  Helpers.check_bool "svg header" true
    (String.length svg > 200 && String.sub svg 0 4 = "<svg");
  Helpers.check_bool "svg closes" true
    (let tail = String.sub svg (String.length svg - 7) 7 in
     tail = "</svg>\n");
  (* one rect per replica *)
  let count needle =
    let n = String.length needle and h = String.length svg in
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub svg i n = needle then incr c
    done;
    !c
  in
  Helpers.check_int "one rect per replica"
    (List.length (Schedule.all_replicas sched))
    (count "<rect ")

let suite =
  [
    Alcotest.test_case "simple digraph" `Quick test_simple;
    Alcotest.test_case "roundtrip with exporter" `Quick
      test_roundtrip_with_export;
    Alcotest.test_case "implicit nodes and chains" `Quick
      test_implicit_nodes_and_chains;
    Alcotest.test_case "comments and defaults" `Quick test_comments_and_defaults;
    Alcotest.test_case "strict header, quoted ids" `Quick
      test_strict_header_and_quoted_ids;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "imported workflow schedules" `Quick
      test_parse_then_schedule;
    Alcotest.test_case "svg gantt renders" `Quick test_svg_renders;
  ]
