(* CAFT-specific behaviour: one-to-one replication, message bounds,
   support disjointness (via exhaustive crash checks), determinism. *)

let test_proposition_5_1_bound () =
  (* Proposition 5.1: on fork / out-forest graphs CAFT sends at most
     e(eps+1) messages. *)
  let rng = Rng.create 2 in
  List.iter
    (fun dag ->
      List.iter
        (fun (m, epsilon) ->
          let params = Platform_gen.default ~m () in
          let costs = Platform_gen.instance rng ~granularity:1.0 params dag in
          let sched = Caft.run ~epsilon costs in
          let bound = Dag.edge_count dag * (epsilon + 1) in
          Helpers.check_bool
            (Printf.sprintf "bound e(eps+1), eps=%d m=%d" epsilon m)
            true
            (Schedule.message_count sched <= bound))
        [ (10, 1); (10, 3); (8, 2) ])
    [
      Families.fork 12;
      Families.out_tree ~arity:2 ~depth:4 ();
      Families.out_tree ~arity:3 ~depth:2 ();
      Families.chain 15;
    ]

let test_single_pred_one_to_one () =
  (* A chain with plenty of processors: every task has one predecessor,
     so every replica receives exactly one message (or a local supply) -
     pure one-to-one mapping. *)
  let dag = Families.chain 10 in
  let platform = Helpers.uniform_platform 8 in
  let costs = Helpers.flat_costs ~c:10. dag platform in
  let epsilon = 2 in
  let sched = Caft.run ~epsilon costs in
  List.iter
    (fun (r : Schedule.replica) ->
      if Dag.in_degree dag r.Schedule.r_task > 0 then
        Helpers.check_int
          (Printf.sprintf "replica %d.%d has exactly one supply"
             r.Schedule.r_task r.Schedule.r_index)
          1
          (List.length r.Schedule.r_inputs))
    (Schedule.all_replicas sched)

let test_fault_free_is_heft_like () =
  (* epsilon=0 CAFT and HEFT follow the same strategy; on a single-pred
     graph they should produce identical latencies *)
  let _, costs = Helpers.random_instance ~seed:14 () in
  let caft = Caft.fault_free ~seed:5 costs in
  let heft = Heft.run ~seed:5 costs in
  Helpers.check_float "same latency as HEFT"
    (Schedule.latency_zero_crash heft)
    (Schedule.latency_zero_crash caft);
  Helpers.check_int "one replica per task"
    (Dag.task_count (Schedule.costs caft |> Costs.dag))
    (List.length (Schedule.all_replicas caft))

let test_determinism () =
  let _, costs = Helpers.random_instance ~seed:15 () in
  let s1 = Caft.run ~seed:9 ~epsilon:2 costs in
  let s2 = Caft.run ~seed:9 ~epsilon:2 costs in
  Helpers.check_float "same latency" (Schedule.latency_zero_crash s1)
    (Schedule.latency_zero_crash s2);
  Helpers.check_int "same messages" (Schedule.message_count s1)
    (Schedule.message_count s2);
  List.iter2
    (fun (a : Schedule.replica) (b : Schedule.replica) ->
      Helpers.check_int "same placement" a.Schedule.r_proc b.Schedule.r_proc)
    (Schedule.all_replicas s1) (Schedule.all_replicas s2)

let test_epsilon_zero_to_high () =
  (* Replication usually costs latency, but a replicated predecessor can
     occasionally deliver *earlier* (the consumer uses whichever replica
     arrives first), so small inversions are legitimate.  Guard against
     gross anomalies only: latency at epsilon>0 within 25% below the
     fault-free latency, and the high-replication end strictly above it. *)
  let _, costs = Helpers.random_instance ~seed:16 ~m:8 () in
  let latency epsilon = Schedule.latency_zero_crash (Caft.run ~epsilon costs) in
  let l0 = latency 0 in
  List.iter
    (fun epsilon ->
      Helpers.check_bool
        (Printf.sprintf "eps=%d latency sane" epsilon)
        true
        (latency epsilon >= 0.75 *. l0))
    [ 1; 2; 3 ];
  Helpers.check_bool "heavy replication costs latency" true (latency 3 > l0)

let test_resists_on_many_seeds () =
  (* broad randomized sweep of the support-set machinery *)
  for seed = 1 to 15 do
    let _, costs = Helpers.random_instance ~seed ~m:7 ~tasks:25 () in
    let sched = Caft.run ~epsilon:2 costs in
    let report = Fault_check.check ~epsilon:2 sched in
    (match report.Fault_check.counterexample with
    | Some (crashed, failed) ->
        Alcotest.failf "seed %d: crash {%s} starves {%s}" seed
          (String.concat "," (List.map string_of_int crashed))
          (String.concat "," (List.map string_of_int failed))
    | None -> ());
    Helpers.check_bool "exhaustive" true report.Fault_check.exhaustive
  done

let test_minimal_platform () =
  (* m = epsilon + 1: every processor hosts one replica of every task *)
  let dag = Families.chain 5 in
  let platform = Helpers.uniform_platform 3 in
  let costs = Helpers.flat_costs ~c:4. dag platform in
  let sched = Caft.run ~epsilon:2 costs in
  Helpers.check_bool "valid" true (Validate.is_valid sched);
  let report = Fault_check.check ~epsilon:2 sched in
  Helpers.check_bool "resists with m = eps+1" true report.Fault_check.resists;
  (* each processor must run all 5 tasks *)
  List.iter
    (fun p -> Helpers.check_int "full column" 5 (List.length (Schedule.on_proc sched p)))
    (Platform.procs platform)

let test_epsilon_bounds () =
  let dag = Families.chain 3 in
  let platform = Helpers.uniform_platform 2 in
  let costs = Helpers.flat_costs dag platform in
  Alcotest.check_raises "epsilon >= m rejected"
    (Invalid_argument
       "Workspace.create: need at least epsilon+1 processors for replication")
    (fun () -> ignore (Caft.run ~epsilon:2 costs))

let test_messages_less_than_ftsa_aggregate () =
  (* aggregate over seeds: CAFT sends at most as many messages as FTSA on
     average (individual seeds may rarely tie) *)
  let total_caft = ref 0 and total_ftsa = ref 0 in
  for seed = 1 to 10 do
    let _, costs = Helpers.random_instance ~seed ~m:10 ~tasks:40 () in
    total_caft := !total_caft + Schedule.message_count (Caft.run ~epsilon:2 costs);
    total_ftsa := !total_ftsa + Schedule.message_count (Ftsa.run ~epsilon:2 costs)
  done;
  Helpers.check_bool
    (Printf.sprintf "aggregate messages: CAFT %d vs FTSA %d" !total_caft
       !total_ftsa)
    true
    (float_of_int !total_caft < 0.85 *. float_of_int !total_ftsa)

let test_macro_model_variant () =
  let _, costs = Helpers.random_instance ~seed:18 () in
  let sched = Caft.run ~model:Netstate.Macro_dataflow ~epsilon:1 costs in
  Helpers.check_bool "macro variant valid" true (Validate.is_valid sched);
  Helpers.check_bool "macro variant resists" true
    (Fault_check.check ~epsilon:1 sched).Fault_check.resists;
  Helpers.check_bool "algorithm name" true
    (Schedule.algorithm sched = "CAFT-macro")

let suite =
  [
    Alcotest.test_case "Proposition 5.1 message bound" `Quick
      test_proposition_5_1_bound;
    Alcotest.test_case "single-pred pure one-to-one" `Quick
      test_single_pred_one_to_one;
    Alcotest.test_case "fault-free reduces to HEFT" `Quick
      test_fault_free_is_heft_like;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "replication never cheaper than fault-free" `Quick
      test_epsilon_zero_to_high;
    Alcotest.test_case "resists across seeds (exhaustive)" `Slow
      test_resists_on_many_seeds;
    Alcotest.test_case "minimal platform m=eps+1" `Quick test_minimal_platform;
    Alcotest.test_case "epsilon bounds" `Quick test_epsilon_bounds;
    Alcotest.test_case "aggregate message advantage over FTSA" `Quick
      test_messages_less_than_ftsa_aggregate;
    Alcotest.test_case "macro-dataflow variant" `Quick test_macro_model_variant;
  ]
