(* Unit tests for the fail-stop replay simulator. *)

let mk_replica ?(inputs = []) ~task ~index ~proc ~start ~finish () =
  {
    Schedule.r_task = task;
    r_index = index;
    r_proc = proc;
    r_start = start;
    r_finish = finish;
    r_inputs = inputs;
  }

let msg ~stask ~sreplica ~sproc ~sfinish ~volume ~dst ~leg_start ~arrival =
  Schedule.Message
    {
      Netstate.m_source =
        {
          Netstate.s_task = stask;
          s_replica = sreplica;
          s_proc = sproc;
          s_finish = sfinish;
          s_volume = volume;
        };
      m_dst_proc = dst;
      m_duration = volume;
      m_leg_start = leg_start;
      m_leg_finish = leg_start +. volume;
      m_arrival = arrival;
    }

(* chain 0 -> 1 with epsilon = 1:
   t0: replica 0 on P0 [0,5], replica 1 on P1 [0,5]
   t1: replica 0 on P0 [5,10] (local from t0[0]);
       replica 1 on P2 [15,20] (message from t0[1] on P1, vol 10) *)
let chain_sched () =
  let dag = Dag.make ~n:2 ~edges:[ (0, 1, 10.) ] () in
  let platform = Helpers.uniform_platform 3 in
  let costs = Helpers.flat_costs ~c:5. dag platform in
  Schedule.create ~algorithm:"hand" ~epsilon:1 ~model:Netstate.One_port ~costs
    [
      mk_replica ~task:0 ~index:0 ~proc:0 ~start:0. ~finish:5. ();
      mk_replica ~task:0 ~index:1 ~proc:1 ~start:0. ~finish:5. ();
      mk_replica ~task:1 ~index:0 ~proc:0 ~start:5. ~finish:10.
        ~inputs:[ Schedule.Local { l_pred = 0; l_pred_replica = 0; l_finish = 5. } ]
        ();
      mk_replica ~task:1 ~index:1 ~proc:2 ~start:15. ~finish:20.
        ~inputs:
          [
            msg ~stask:0 ~sreplica:1 ~sproc:1 ~sfinish:5. ~volume:10. ~dst:2
              ~leg_start:5. ~arrival:15.;
          ]
        ();
    ]

let test_fault_free_matches_static () =
  let s = chain_sched () in
  let out = Replay.fault_free s in
  Helpers.check_bool "completed" true out.Replay.completed;
  Helpers.check_float "latency" 10. out.Replay.latency;
  (match out.Replay.replicas.(1).(1) with
  | Replay.Ran { start; finish } ->
      Helpers.check_float "replica start" 15. start;
      Helpers.check_float "replica finish" 20. finish
  | _ -> Alcotest.fail "replica should run")

let test_crash_kills_processor () =
  let s = chain_sched () in
  let out = Replay.crash_from_start s ~crashed:[ 0 ] in
  Helpers.check_bool "completed via survivors" true out.Replay.completed;
  (* both replicas on P0 are gone; latency set by t1[1] at 20 *)
  Helpers.check_float "latency through replica chain" 20. out.Replay.latency;
  (match out.Replay.replicas.(0).(0) with
  | Replay.Crashed -> ()
  | _ -> Alcotest.fail "t0[0] should crash");
  match out.Replay.replicas.(1).(0) with
  | Replay.Crashed -> ()
  | _ -> Alcotest.fail "t1[0] should crash"

let test_starvation_propagates () =
  let s = chain_sched () in
  (* crash P1: t0[1] dead; t1[1] on P2 has only the P1 message -> starved *)
  let out = Replay.crash_from_start s ~crashed:[ 1 ] in
  Helpers.check_bool "still completed (P0 chain alive)" true out.Replay.completed;
  Helpers.check_float "latency from local chain" 10. out.Replay.latency;
  match out.Replay.replicas.(1).(1) with
  | Replay.Starved 0 -> ()
  | Replay.Starved p -> Alcotest.failf "starved by unexpected pred %d" p
  | _ -> Alcotest.fail "t1[1] should starve"

let test_total_failure_detected () =
  let s = chain_sched () in
  (* two crashes exceed epsilon=1: kill both chains *)
  let out = Replay.crash_from_start s ~crashed:[ 0; 1 ] in
  Helpers.check_bool "not completed" false out.Replay.completed;
  Helpers.check_bool "latency is nan" true (Float.is_nan out.Replay.latency);
  Helpers.check_bool "failed tasks" true (out.Replay.failed_tasks = [ 0; 1 ])

let test_starved_replica_frees_processor () =
  (* P1 hosts t1[1] (starved when P0 dies... here we starve it by crashing
     its only source) then t2[0]; t2 must shift earlier into the freed slot *)
  let dag = Dag.make ~n:3 ~edges:[ (0, 1, 10.) ] () in
  let platform = Helpers.uniform_platform 3 in
  let costs = Helpers.flat_costs ~c:5. dag platform in
  let s =
    Schedule.create ~algorithm:"hand" ~epsilon:0 ~model:Netstate.One_port ~costs
      [
        mk_replica ~task:0 ~index:0 ~proc:0 ~start:0. ~finish:5. ();
        mk_replica ~task:1 ~index:0 ~proc:1 ~start:15. ~finish:20.
          ~inputs:
            [
              msg ~stask:0 ~sreplica:0 ~sproc:0 ~sfinish:5. ~volume:10. ~dst:1
                ~leg_start:5. ~arrival:15.;
            ]
          ();
        mk_replica ~task:2 ~index:0 ~proc:1 ~start:20. ~finish:25. ();
      ]
  in
  let out = Replay.crash_from_start s ~crashed:[ 0 ] in
  Helpers.check_bool "t0 and t1 fail" true
    (out.Replay.failed_tasks = [ 0; 1 ]);
  match out.Replay.replicas.(2).(0) with
  | Replay.Ran { start; finish } ->
      Helpers.check_float "t2 pulled earlier" 0. start;
      Helpers.check_float "t2 finish" 5. finish
  | _ -> Alcotest.fail "t2 should run"

let test_timed_crash_keeps_delivered_results () =
  let s = chain_sched () in
  (* P1 dies at t=12: t0[1] (finish 5) survived and its message (leg
     [5,15]... leg_finish 15 > 12) dies mid-flight -> t1[1] starves *)
  let out = Replay.crash_timed s ~crashes:[ (1, 12.) ] in
  Helpers.check_bool "completed" true out.Replay.completed;
  (match out.Replay.replicas.(0).(1) with
  | Replay.Ran _ -> ()
  | _ -> Alcotest.fail "t0[1] finished before the crash");
  (match out.Replay.replicas.(1).(1) with
  | Replay.Starved _ -> ()
  | _ -> Alcotest.fail "t1[1] starves on the cut message");
  (* P1 dies at t=16: the message (delivered at 15) got through *)
  let out2 = Replay.crash_timed s ~crashes:[ (1, 16.) ] in
  match out2.Replay.replicas.(1).(1) with
  | Replay.Ran { finish; _ } -> Helpers.check_float "t1[1] runs" 20. finish
  | _ -> Alcotest.fail "t1[1] should run: message was delivered"

let test_receiver_timed_crash () =
  let s = chain_sched () in
  (* P2 dies at 17: its replica t1[1] would finish at 20 -> dead; but the
     P0 chain completes *)
  let out = Replay.crash_timed s ~crashes:[ (2, 17.) ] in
  Helpers.check_bool "completed" true out.Replay.completed;
  Helpers.check_float "latency" 10. out.Replay.latency;
  match out.Replay.replicas.(1).(1) with
  | Replay.Crashed -> ()
  | _ -> Alcotest.fail "t1[1] dies mid-execution"

let test_replay_scheduler_outputs () =
  (* replays of real schedules complete and match static latency at zero
     crash, for all algorithms and both models *)
  List.iter
    (fun model ->
      List.iter
        (fun (name, schedule) ->
          let _, costs = Helpers.random_instance ~seed:5 () in
          let sched = schedule ~model ~epsilon:2 costs in
          let out = Replay.fault_free sched in
          Helpers.check_bool (name ^ " completes") true out.Replay.completed;
          Helpers.check_float
            (name ^ " latency matches")
            (Schedule.latency_zero_crash sched)
            out.Replay.latency)
        [
          ("CAFT", fun ~model ~epsilon costs -> Caft.run ~model ~epsilon costs);
          ("FTSA", fun ~model ~epsilon costs -> Ftsa.run ~model ~epsilon costs);
          ("FTBAR", fun ~model ~epsilon costs -> Ftbar.run ~model ~epsilon costs);
        ])
    [ Netstate.One_port; Netstate.Macro_dataflow ]

let test_crash_latency_bounded_by_replay () =
  (* with crashes, real latency may exceed the static zero-crash latency
     but replicas never start before their data; sanity: latency is finite
     and at least the zero-crash value of the surviving work *)
  let _, costs = Helpers.random_instance ~seed:6 () in
  let sched = Caft.run ~epsilon:2 costs in
  let out = Replay.crash_from_start sched ~crashed:[ 0; 1 ] in
  Helpers.check_bool "completed" true out.Replay.completed;
  Helpers.check_bool "latency positive and finite" true
    (out.Replay.latency > 0. && Float.is_finite out.Replay.latency)

let suite =
  [
    Alcotest.test_case "fault-free matches static" `Quick
      test_fault_free_matches_static;
    Alcotest.test_case "crash kills processor" `Quick test_crash_kills_processor;
    Alcotest.test_case "starvation propagates" `Quick test_starvation_propagates;
    Alcotest.test_case "total failure detected" `Quick test_total_failure_detected;
    Alcotest.test_case "starved replica frees processor" `Quick
      test_starved_replica_frees_processor;
    Alcotest.test_case "timed crash keeps delivered results" `Quick
      test_timed_crash_keeps_delivered_results;
    Alcotest.test_case "receiver timed crash" `Quick test_receiver_timed_crash;
    Alcotest.test_case "replay of real schedules" `Quick
      test_replay_scheduler_outputs;
    Alcotest.test_case "crash latency sanity" `Quick
      test_crash_latency_bounded_by_replay;
  ]
