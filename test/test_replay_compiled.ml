(* Differential and determinism tests for the compile-once replay engine:

   - on >= 100 (seed, model, fabric, insertion) configurations, compile
     the schedule once and assert that [Replay.eval] produces outcomes
     identical (bit-for-bit, including [nan] latencies) to the
     rebuild-per-scenario [Replay.reference] oracle, across fault-free,
     from-start, timed and dead-link scenarios;
   - [Monte_carlo.run] and [Fault_check.check] reports are byte-identical
     for domains in {1, 2, 4} (pre-drawn scenarios / lowest-rank
     counterexample);
   - [Fault_check.subset_at_rank] agrees with the [combinations]
     enumeration at every rank. *)

let float_eq a b =
  (* bitwise, so nan = nan and 0. <> -0. — "same result" means the same
     word, not merely numerically close *)
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let outcome_equal (a : Replay.outcome) (b : Replay.outcome) =
  a.Replay.completed = b.Replay.completed
  && float_eq a.Replay.latency b.Replay.latency
  && a.Replay.failed_tasks = b.Replay.failed_tasks
  && Array.length a.Replay.replicas = Array.length b.Replay.replicas
  && Array.for_all2
       (fun ra rb ->
         Array.for_all2
           (fun oa ob ->
             match (oa, ob) with
             | Replay.Ran { start = sa; finish = fa },
               Replay.Ran { start = sb; finish = fb } ->
                 float_eq sa sb && float_eq fa fb
             | Replay.Crashed, Replay.Crashed -> true
             | Replay.Starved ta, Replay.Starved tb -> ta = tb
             | _ -> false)
           ra rb)
       a.Replay.replicas b.Replay.replicas

let check_differential name sched fabric ~crash_time ~dead_links compiled =
  let fresh = Replay.reference ?fabric ~dead_links sched ~crash_time in
  let cached = Replay.eval ~dead_links compiled ~crash_time in
  if not (outcome_equal fresh cached) then
    Alcotest.failf "%s: compiled eval differs from fresh replay" name;
  (* eval_latency is the campaign hot path — same verdict, no arrays *)
  let lat = Replay.eval_latency ~dead_links compiled ~crash_time in
  if not (float_eq lat fresh.Replay.latency) then
    Alcotest.failf "%s: eval_latency %.6f <> outcome latency %.6f" name lat
      fresh.Replay.latency

(* One configuration: build a schedule, compile once, then diff several
   scenario shapes against the rebuild-per-scenario oracle. *)
let run_config seed =
  let rng = Rng.create (7000 + seed) in
  let model =
    match seed mod 3 with
    | 0 -> Netstate.Macro_dataflow
    | 1 -> Netstate.One_port
    | _ -> Netstate.Multiport 2
  in
  let insertion = seed mod 2 = 1 in
  let platform, fabric =
    match seed mod 4 with
    | 0 | 1 -> (Helpers.uniform_platform (4 + (seed mod 4)), None)
    | 2 ->
        let topo = Topology.ring (4 + (seed mod 3)) in
        (Topology.platform topo, Some (Topology.fabric topo))
    | _ ->
        let topo = Topology.star (4 + (seed mod 3)) in
        (Topology.platform topo, Some (Topology.fabric topo))
  in
  let m = Platform.proc_count platform in
  let dag =
    Random_dag.generate rng
      { Random_dag.default with Random_dag.tasks_min = 16; tasks_max = 16 }
  in
  let costs =
    Costs.create dag platform (fun t p ->
        30. +. (7. *. float_of_int ((t + p) mod 5)))
  in
  let epsilon = 1 + (seed mod 2) in
  let sched =
    Caft.run ~model ?fabric ~insertion ~seed ~epsilon costs
  in
  let compiled = Replay.compile ?fabric sched in
  let name = Printf.sprintf "config %d" seed in
  (* fault-free *)
  let no_crash = Array.make m infinity in
  check_differential name sched fabric ~crash_time:no_crash ~dead_links:[]
    compiled;
  (* from-start crash sets of size 1, 2 and epsilon+1 (the last one can
     starve tasks: the nan/failed path must agree too) *)
  List.iter
    (fun k ->
      let crashed = Rng.sample_without_replacement rng (min k m) m in
      let crash_time =
        Array.init m (fun p ->
            if List.mem p crashed then neg_infinity else infinity)
      in
      check_differential name sched fabric ~crash_time ~dead_links:[] compiled)
    [ 1; 2; epsilon + 1 ];
  (* timed crashes inside the horizon *)
  let horizon = Schedule.makespan sched in
  let crash_time =
    Array.init m (fun _ ->
        if Rng.bool rng then Rng.float rng horizon else infinity)
  in
  check_differential name sched fabric ~crash_time ~dead_links:[] compiled;
  (* dead links, then a scenario without them again: the scratch arena
     must fully clear the dead-link marks between evals *)
  let dead_links =
    [ (Rng.int rng m, Rng.int rng m); (Rng.int rng m, Rng.int rng m) ]
  in
  check_differential name sched fabric ~crash_time:no_crash ~dead_links
    compiled;
  check_differential name sched fabric ~crash_time:no_crash ~dead_links:[]
    compiled

let test_differential () =
  (* 108 configurations x 7 scenarios each, spanning all three models,
     clique/ring/star fabrics and both processor policies *)
  for seed = 0 to 107 do
    run_config seed
  done

(* -- domain-count independence ---------------------------------------- *)

let bytes_of x = Marshal.to_string x []

let test_montecarlo_domains () =
  let _, costs = Helpers.random_instance ~seed:11 ~m:6 ~tasks:20 () in
  let sched = Caft.run ~epsilon:1 costs in
  List.iter
    (fun mode ->
      let reports =
        List.map
          (fun domains ->
            bytes_of
              (Monte_carlo.run ~seed:5 ~runs:120 ~domains ~crashes:2 ~mode
                 sched))
          [ 1; 2; 4 ]
      in
      match reports with
      | [ r1; r2; r4 ] ->
          Helpers.check_bool "montecarlo domains=2 byte-identical" true
            (r1 = r2);
          Helpers.check_bool "montecarlo domains=4 byte-identical" true
            (r1 = r4)
      | _ -> assert false)
    [ Monte_carlo.From_start; Monte_carlo.Timed (Schedule.makespan sched) ]

let test_fault_check_domains () =
  let _, costs = Helpers.random_instance ~seed:4 ~m:7 ~tasks:20 () in
  let sched = Caft.run ~epsilon:1 costs in
  let run_eps epsilon =
    let reports =
      List.map
        (fun domains -> bytes_of (Fault_check.check ~domains ~epsilon sched))
        [ 1; 2; 4 ]
    in
    match reports with
    | [ r1; r2; r4 ] ->
        Helpers.check_bool "check domains=2 byte-identical" true (r1 = r2);
        Helpers.check_bool "check domains=4 byte-identical" true (r1 = r4)
    | _ -> assert false
  in
  (* resisting (full enumeration) and refuting (lowest-rank
     counterexample wins over whatever later shards found) *)
  run_eps 1;
  run_eps 3

let test_fault_check_matches_sequential_semantics () =
  (* the sharded exhaustive check must agree with plain wrappers on a
     known refutation: epsilon+1 crashes on an epsilon=1 schedule *)
  let _, costs = Helpers.random_instance ~seed:9 ~m:6 ~tasks:18 () in
  let sched = Caft.run ~epsilon:1 costs in
  let r = Fault_check.check ~domains:4 ~epsilon:2 sched in
  (match r.Fault_check.counterexample with
  | None -> ()
  | Some (crashed, failed) ->
      let out = Replay.crash_from_start sched ~crashed in
      Helpers.check_bool "counterexample actually fails" false
        out.Replay.completed;
      Helpers.check_bool "failed tasks match replay" true
        (failed = out.Replay.failed_tasks));
  (* scenarios_checked in a refuting run is the 1-based rank of the
     counterexample — by construction at most the total *)
  Helpers.check_bool "checked within total" true
    (r.Fault_check.scenarios_checked <= Fault_check.count_combinations 6 2)

let test_subset_at_rank () =
  List.iter
    (fun (n, k) ->
      let all = List.of_seq (Fault_check.combinations n k) in
      List.iteri
        (fun rank expected ->
          let got =
            Array.to_list (Fault_check.subset_at_rank ~n ~k rank)
          in
          if got <> expected then
            Alcotest.failf "subset_at_rank ~n:%d ~k:%d %d: [%s] <> [%s]" n k
              rank
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int expected)))
        all;
      Helpers.check_int "rank count" (List.length all)
        (Fault_check.count_combinations n k))
    [ (6, 2); (7, 3); (5, 1); (5, 5); (4, 0); (8, 4) ]

let suite =
  [
    Alcotest.test_case "compiled eval ≡ fresh replay (108 configs)" `Quick
      test_differential;
    Alcotest.test_case "montecarlo domain-count independent" `Quick
      test_montecarlo_domains;
    Alcotest.test_case "fault-check domain-count independent" `Quick
      test_fault_check_domains;
    Alcotest.test_case "fault-check counterexample semantics" `Quick
      test_fault_check_matches_sequential_semantics;
    Alcotest.test_case "subset_at_rank ≡ combinations" `Quick
      test_subset_at_rank;
  ]
