(* Differential and determinism tests for the compile-once replay engine:

   - on >= 100 (seed, model, fabric, insertion) configurations, compile
     the schedule once and assert that [Replay.eval] produces outcomes
     identical (bit-for-bit, including [nan] latencies) to the
     rebuild-per-scenario [Replay.reference] oracle, across fault-free,
     from-start, timed and dead-link scenarios — and that one
     [Replay.eval_batch] block over the same mixed scenario set
     reproduces [eval_latency] / [eval_degraded] per element;
   - [Monte_carlo.run] and [Fault_check.check] reports are byte-identical
     for domains in {1, 2, 4}, for persistent pools of those sizes, and
     with batching off (pre-drawn scenarios / lowest-rank
     counterexample);
   - [Scenario.draw_block] consumes the exact per-scenario RNG stream;
   - [Fault_check.subset_at_rank] agrees with the [combinations]
     enumeration at every rank. *)

let float_eq a b =
  (* bitwise, so nan = nan and 0. <> -0. — "same result" means the same
     word, not merely numerically close *)
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let outcome_equal (a : Replay.outcome) (b : Replay.outcome) =
  a.Replay.completed = b.Replay.completed
  && float_eq a.Replay.latency b.Replay.latency
  && a.Replay.failed_tasks = b.Replay.failed_tasks
  && Array.length a.Replay.replicas = Array.length b.Replay.replicas
  && Array.for_all2
       (fun ra rb ->
         Array.for_all2
           (fun oa ob ->
             match (oa, ob) with
             | Replay.Ran { start = sa; finish = fa },
               Replay.Ran { start = sb; finish = fb } ->
                 float_eq sa sb && float_eq fa fb
             | Replay.Crashed, Replay.Crashed -> true
             | Replay.Starved ta, Replay.Starved tb -> ta = tb
             | _ -> false)
           ra rb)
       a.Replay.replicas b.Replay.replicas

let check_differential name sched fabric ~crash_time ~dead_links compiled =
  let fresh = Replay.reference ?fabric ~dead_links sched ~crash_time in
  let cached = Replay.eval ~dead_links compiled ~crash_time in
  if not (outcome_equal fresh cached) then
    Alcotest.failf "%s: compiled eval differs from fresh replay" name;
  (* eval_latency is the campaign hot path — same verdict, no arrays *)
  let lat = Replay.eval_latency ~dead_links compiled ~crash_time in
  if not (float_eq lat fresh.Replay.latency) then
    Alcotest.failf "%s: eval_latency %.6f <> outcome latency %.6f" name lat
      fresh.Replay.latency

(* One configuration: build a schedule, compile once, then diff several
   scenario shapes against the rebuild-per-scenario oracle. *)
let run_config seed =
  let rng = Rng.create (7000 + seed) in
  let model =
    match seed mod 3 with
    | 0 -> Netstate.Macro_dataflow
    | 1 -> Netstate.One_port
    | _ -> Netstate.Multiport 2
  in
  let insertion = seed mod 2 = 1 in
  let platform, fabric =
    match seed mod 4 with
    | 0 | 1 -> (Helpers.uniform_platform (4 + (seed mod 4)), None)
    | 2 ->
        let topo = Topology.ring (4 + (seed mod 3)) in
        (Topology.platform topo, Some (Topology.fabric topo))
    | _ ->
        let topo = Topology.star (4 + (seed mod 3)) in
        (Topology.platform topo, Some (Topology.fabric topo))
  in
  let m = Platform.proc_count platform in
  let dag =
    Random_dag.generate rng
      { Random_dag.default with Random_dag.tasks_min = 16; tasks_max = 16 }
  in
  let costs =
    Costs.create dag platform (fun t p ->
        30. +. (7. *. float_of_int ((t + p) mod 5)))
  in
  let epsilon = 1 + (seed mod 2) in
  let sched =
    Caft.run ~model ?fabric ~insertion ~seed ~epsilon costs
  in
  let compiled = Replay.compile ?fabric sched in
  let name = Printf.sprintf "config %d" seed in
  let scenarios = ref [] in
  let diff ~crash_time ~dead_links =
    check_differential name sched fabric ~crash_time ~dead_links compiled;
    scenarios := (crash_time, dead_links) :: !scenarios
  in
  (* fault-free *)
  let no_crash = Array.make m infinity in
  diff ~crash_time:no_crash ~dead_links:[];
  (* from-start crash sets of size 1, 2 and epsilon+1 (the last one can
     starve tasks: the nan/failed path must agree too) *)
  List.iter
    (fun k ->
      let crashed = Rng.sample_without_replacement rng (min k m) m in
      let crash_time =
        Array.init m (fun p ->
            if List.mem p crashed then neg_infinity else infinity)
      in
      diff ~crash_time ~dead_links:[])
    [ 1; 2; epsilon + 1 ];
  (* timed crashes inside the horizon *)
  let horizon = Schedule.makespan sched in
  let crash_time =
    Array.init m (fun _ ->
        if Rng.bool rng then Rng.float rng horizon else infinity)
  in
  diff ~crash_time ~dead_links:[];
  (* dead links, then a scenario without them again: the scratch arena
     must fully clear the dead-link marks between evals *)
  let dead_links =
    [ (Rng.int rng m, Rng.int rng m); (Rng.int rng m, Rng.int rng m) ]
  in
  diff ~crash_time:no_crash ~dead_links;
  diff ~crash_time:no_crash ~dead_links:[];
  (* the whole mixed scenario set again as ONE struct-of-arrays block:
     eval_batch must reproduce eval_latency (and, in degradation mode,
     eval_degraded under the Monte-Carlo completion rule) per element,
     with the dead-link masks and crash bitsets fully reset between
     neighbouring scenarios of the same block *)
  let scen = Array.of_list (List.rev !scenarios) in
  let block =
    Array.map
      (fun (ct, dl) -> Scenario.of_crash_times ~dead_links:dl ct)
      scen
  in
  let batch = Replay.eval_batch compiled block in
  Array.iteri
    (fun i (ct, dl) ->
      let lat = Replay.eval_latency ~dead_links:dl compiled ~crash_time:ct in
      if not (float_eq batch.Replay.br_latency.(i) lat) then
        Alcotest.failf "%s: eval_batch latency %d: %h <> %h" name i
          batch.Replay.br_latency.(i) lat)
    scen;
  let dbatch = Replay.eval_batch ~degradation:true compiled block in
  Array.iteri
    (fun i (ct, dl) ->
      let d = Replay.eval_degraded ~dead_links:dl compiled ~crash_time:ct in
      if dbatch.Replay.br_tasks.(i) <> d.Replay.d_tasks then
        Alcotest.failf "%s: eval_batch tasks %d" name i;
      if dbatch.Replay.br_sinks.(i) <> d.Replay.d_sinks then
        Alcotest.failf "%s: eval_batch sinks %d" name i;
      if not (float_eq dbatch.Replay.br_frontier.(i) d.Replay.d_frontier) then
        Alcotest.failf "%s: eval_batch frontier %d" name i;
      let expect =
        if d.Replay.d_tasks = d.Replay.d_task_count then d.Replay.d_frontier
        else nan
      in
      if not (float_eq dbatch.Replay.br_latency.(i) expect) then
        Alcotest.failf "%s: eval_batch degraded latency %d" name i)
    scen

let test_differential () =
  (* 108 configurations x 7 scenarios each, spanning all three models,
     clique/ring/star fabrics and both processor policies *)
  for seed = 0 to 107 do
    run_config seed
  done

(* -- domain-count independence ---------------------------------------- *)

let bytes_of x = Marshal.to_string x []

let test_montecarlo_domains () =
  let _, costs = Helpers.random_instance ~seed:11 ~m:6 ~tasks:20 () in
  let sched = Caft.run ~epsilon:1 costs in
  (* beyond epsilon too, so the degradation aggregation path is pinned *)
  List.iter
    (fun crashes ->
      List.iter
        (fun mode ->
          let campaign ?domains ?pool ?batch () =
            bytes_of
              (Monte_carlo.run ~seed:5 ~runs:120 ?domains ?pool ?batch
                 ~crashes ~mode sched)
          in
          let r1 = campaign ~domains:1 () in
          (* spawned-per-call domains *)
          List.iter
            (fun domains ->
              Helpers.check_bool "montecarlo domains byte-identical" true
                (r1 = campaign ~domains ()))
            [ 2; 4 ];
          (* persistent pool of every size, reused across both calls *)
          List.iter
            (fun size ->
              let pool = Parallel.pool ~domains:size () in
              Fun.protect
                ~finally:(fun () -> Parallel.shutdown pool)
                (fun () ->
                  Helpers.check_bool "montecarlo pooled byte-identical" true
                    (r1 = campaign ~pool ());
                  Helpers.check_bool "montecarlo pooled batch-off" true
                    (r1 = campaign ~pool ~batch:false ())))
            [ 1; 2; 4 ];
          (* the legacy per-scenario path is the differential baseline *)
          Helpers.check_bool "montecarlo batch-off byte-identical" true
            (r1 = campaign ~domains:1 ~batch:false ()))
        [ Monte_carlo.From_start; Monte_carlo.Timed (Schedule.makespan sched) ])
    [ 1; 2 ] (* within epsilon (plain path) and beyond (degradation path) *)

let test_fault_check_domains () =
  let _, costs = Helpers.random_instance ~seed:4 ~m:7 ~tasks:20 () in
  let sched = Caft.run ~epsilon:1 costs in
  let run_eps epsilon =
    let reports =
      List.map
        (fun domains -> bytes_of (Fault_check.check ~domains ~epsilon sched))
        [ 1; 2; 4 ]
    in
    (match reports with
    | [ r1; r2; r4 ] ->
        Helpers.check_bool "check domains=2 byte-identical" true (r1 = r2);
        Helpers.check_bool "check domains=4 byte-identical" true (r1 = r4)
    | _ -> assert false);
    (* pooled sharding must produce the same report as domain sharding *)
    List.iter
      (fun size ->
        let pool = Parallel.pool ~domains:size () in
        Fun.protect
          ~finally:(fun () -> Parallel.shutdown pool)
          (fun () ->
            Helpers.check_bool "check pooled byte-identical" true
              (List.hd reports = bytes_of (Fault_check.check ~pool ~epsilon sched))))
      [ 1; 2; 4 ]
  in
  (* resisting (full enumeration) and refuting (lowest-rank
     counterexample wins over whatever later shards found) *)
  run_eps 1;
  run_eps 3

let test_fault_check_matches_sequential_semantics () =
  (* the sharded exhaustive check must agree with plain wrappers on a
     known refutation: epsilon+1 crashes on an epsilon=1 schedule *)
  let _, costs = Helpers.random_instance ~seed:9 ~m:6 ~tasks:18 () in
  let sched = Caft.run ~epsilon:1 costs in
  let r = Fault_check.check ~domains:4 ~epsilon:2 sched in
  (match r.Fault_check.counterexample with
  | None -> ()
  | Some (crashed, failed) ->
      let out = Replay.crash_from_start sched ~crashed in
      Helpers.check_bool "counterexample actually fails" false
        out.Replay.completed;
      Helpers.check_bool "failed tasks match replay" true
        (failed = out.Replay.failed_tasks));
  (* scenarios_checked in a refuting run is the 1-based rank of the
     counterexample — by construction at most the total *)
  Helpers.check_bool "checked within total" true
    (r.Fault_check.scenarios_checked <= Fault_check.count_combinations 6 2)

let test_draw_block_stream () =
  (* [Scenario.draw_block] must consume the root generator stream exactly
     as the historical per-scenario [uniform_procs] / [timed] draws did —
     otherwise every pre-PR campaign report would shift *)
  let m = 9 and runs = 40 and count = 3 in
  let block =
    Scenario.draw_block (Rng.create 42) ~m ~count ~mode:Scenario.From_start
      ~runs
  in
  let rng = Rng.create 42 in
  Array.iteri
    (fun i sc ->
      let procs = Scenario.uniform_procs rng ~m ~count in
      let expect = Array.make m infinity in
      List.iter (fun p -> expect.(p) <- neg_infinity) procs;
      if sc.Scenario.sc_crash_time <> expect then
        Alcotest.failf "from-start scenario %d differs from uniform_procs" i;
      Helpers.check_bool "no dead links" true (sc.Scenario.sc_dead_links = []))
    block;
  let horizon = 123.5 in
  let block =
    Scenario.draw_block (Rng.create 43) ~m ~count
      ~mode:(Scenario.Timed horizon) ~runs
  in
  let rng = Rng.create 43 in
  Array.iteri
    (fun i sc ->
      let pairs = Scenario.timed rng ~m ~count ~horizon in
      let expect = Array.make m infinity in
      List.iter (fun (p, t) -> expect.(p) <- t) pairs;
      for p = 0 to m - 1 do
        if not (float_eq sc.Scenario.sc_crash_time.(p) expect.(p)) then
          Alcotest.failf "timed scenario %d proc %d: %h <> %h" i p
            sc.Scenario.sc_crash_time.(p) expect.(p)
      done)
    block

let test_subset_at_rank () =
  List.iter
    (fun (n, k) ->
      let all = List.of_seq (Fault_check.combinations n k) in
      List.iteri
        (fun rank expected ->
          let got =
            Array.to_list (Fault_check.subset_at_rank ~n ~k rank)
          in
          if got <> expected then
            Alcotest.failf "subset_at_rank ~n:%d ~k:%d %d: [%s] <> [%s]" n k
              rank
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int expected)))
        all;
      Helpers.check_int "rank count" (List.length all)
        (Fault_check.count_combinations n k))
    [ (6, 2); (7, 3); (5, 1); (5, 5); (4, 0); (8, 4) ]

let suite =
  [
    Alcotest.test_case "compiled eval ≡ fresh replay (108 configs)" `Quick
      test_differential;
    Alcotest.test_case "montecarlo domain-count independent" `Quick
      test_montecarlo_domains;
    Alcotest.test_case "fault-check domain-count independent" `Quick
      test_fault_check_domains;
    Alcotest.test_case "fault-check counterexample semantics" `Quick
      test_fault_check_matches_sequential_semantics;
    Alcotest.test_case "draw_block ≡ per-scenario stream" `Quick
      test_draw_block_stream;
    Alcotest.test_case "subset_at_rank ≡ combinations" `Quick
      test_subset_at_rank;
  ]
