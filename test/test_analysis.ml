(* Tests for the static analysis subsystem: resilience certification
   against exhaustive replay, mapping classification, lint rules, and
   certificate round-trips. *)

(* -- hand-built schedules ---------------------------------------------- *)

let fork3 () = Dag.make ~n:3 ~edges:[ (0, 1, 1.); (0, 2, 1.) ] ()

let replica ~task ~index ~proc ~start ~finish inputs =
  {
    Schedule.r_task = task;
    r_index = index;
    r_proc = proc;
    r_start = start;
    r_finish = finish;
    r_inputs = inputs;
  }

let message ?arrival ~pred ~pred_replica ~src_proc ~src_finish ~dst_proc () =
  let volume = 1. in
  let leg_finish = src_finish +. volume in
  Schedule.Message
    {
      Netstate.m_source =
        {
          Netstate.s_task = pred;
          s_replica = pred_replica;
          s_proc = src_proc;
          s_finish = src_finish;
          s_volume = volume;
        };
      m_dst_proc = dst_proc;
      m_duration = volume;
      m_leg_start = src_finish;
      m_leg_finish = leg_finish;
      m_arrival = Option.value arrival ~default:leg_finish;
    }

let local ~pred ~pred_replica ~finish =
  Schedule.Local
    { l_pred = pred; l_pred_replica = pred_replica; l_finish = finish }

(* A fork 0 -> {1, 2} on four processors, epsilon = 1, where BOTH replicas
   of task 1 are supplied by replica 0 of task 0 (on P0): crashing P0
   starves task 1.  Task 2 is mapped one-to-one and survives.
   [Schedule.create] only checks shape, so the tampering goes through. *)
let tampered_fork () =
  let dag = fork3 () in
  let platform = Helpers.uniform_platform 4 in
  let costs = Helpers.flat_costs ~c:10. dag platform in
  let replicas =
    [
      replica ~task:0 ~index:0 ~proc:0 ~start:0. ~finish:10. [];
      replica ~task:0 ~index:1 ~proc:1 ~start:0. ~finish:10. [];
      replica ~task:1 ~index:0 ~proc:2 ~start:11. ~finish:21.
        [ message ~pred:0 ~pred_replica:0 ~src_proc:0 ~src_finish:10.
            ~dst_proc:2 () ];
      replica ~task:1 ~index:1 ~proc:3 ~start:12. ~finish:22.
        [ message ~pred:0 ~pred_replica:0 ~src_proc:0 ~src_finish:11.
            ~dst_proc:3 () ];
      replica ~task:2 ~index:0 ~proc:0 ~start:10. ~finish:20.
        [ local ~pred:0 ~pred_replica:0 ~finish:10. ];
      replica ~task:2 ~index:1 ~proc:1 ~start:10. ~finish:20.
        [ local ~pred:0 ~pred_replica:1 ~finish:10. ];
    ]
  in
  Schedule.create ~algorithm:"tampered" ~epsilon:1 ~model:Netstate.One_port
    ~costs replicas

(* -- static certificate vs exhaustive replay --------------------------- *)

let check_agreement ~name sched ~epsilon =
  let static = Resilience.certify ~epsilon sched in
  let dynamic = Fault_check.check ~static ~epsilon sched in
  Helpers.check_bool (name ^ ": exhaustive") true dynamic.Fault_check.exhaustive;
  Helpers.check_bool (name ^ ": verdicts agree") true
    (static.Resilience.rs_resists = dynamic.Fault_check.resists);
  Helpers.check_bool (name ^ ": static_agrees") true
    (dynamic.Fault_check.static_agrees = Some true)

let test_fork_agreement () =
  for seed = 1 to 50 do
    let rng = Rng.create seed in
    let dag = Families.fork (4 + (seed mod 4)) in
    let params = Platform_gen.default ~m:5 () in
    let costs = Platform_gen.instance rng ~granularity:1.0 params dag in
    let sched = Caft.run ~seed ~epsilon:1 costs in
    check_agreement ~name:(Printf.sprintf "fork seed %d" seed) sched ~epsilon:1
  done

let test_random_agreement () =
  List.iter
    (fun (name, run) ->
      for seed = 1 to 6 do
        let _, costs = Helpers.random_instance ~seed ~m:5 ~tasks:20 () in
        let sched = run ~epsilon:1 costs in
        check_agreement
          ~name:(Printf.sprintf "%s seed %d" name seed)
          sched ~epsilon:1
      done)
    Helpers.schedulers

let test_epsilon2_agreement () =
  for seed = 1 to 5 do
    let _, costs = Helpers.random_instance ~seed ~m:6 ~tasks:15 () in
    let sched = Caft.run ~epsilon:2 costs in
    check_agreement ~name:(Printf.sprintf "eps2 seed %d" seed) sched ~epsilon:2;
    (* certifying beyond the replication degree must also match replay *)
    check_agreement
      ~name:(Printf.sprintf "eps3 seed %d" seed)
      sched ~epsilon:3
  done

let test_refutes_unreplicated () =
  let _, costs = Helpers.random_instance ~seed:42 () in
  let sched = Heft.run costs in
  let static = Resilience.certify ~epsilon:1 sched in
  Helpers.check_bool "heft refuted" false static.Resilience.rs_resists;
  match static.Resilience.rs_counterexample with
  | None -> Alcotest.fail "expected a counterexample"
  | Some (crashed, starved) ->
      Helpers.check_int "single crash suffices" 1 (List.length crashed);
      Helpers.check_bool "names starved tasks" true (starved <> []);
      let out = Replay.crash_from_start sched ~crashed in
      Helpers.check_bool "replay confirms" false out.Replay.completed

let test_tampered_counterexample () =
  let sched = tampered_fork () in
  let static = Resilience.certify ~epsilon:1 sched in
  Helpers.check_bool "tampered refuted" false static.Resilience.rs_resists;
  (match static.Resilience.rs_counterexample with
  | None -> Alcotest.fail "expected a counterexample"
  | Some (crashed, starved) ->
      Helpers.check_bool "crash is {P0}" true (crashed = [ 0 ]);
      Helpers.check_bool "task 1 starved" true (List.mem 1 starved);
      let out = Replay.crash_from_start sched ~crashed in
      Helpers.check_bool "replay confirms starvation" false out.Replay.completed;
      Helpers.check_bool "replay starves task 1" true
        (List.mem 1 out.Replay.failed_tasks));
  (* per-task verdicts: 0 and 2 survive, 1 is refuted *)
  (match static.Resilience.rs_tasks.(1) with
  | Resilience.Refuted _ -> ()
  | Resilience.Certified _ -> Alcotest.fail "task 1 should be refuted");
  (match static.Resilience.rs_tasks.(2) with
  | Resilience.Certified _ -> ()
  | Resilience.Refuted _ -> Alcotest.fail "task 2 should be certified");
  (* the dynamic checker adopts the static counterexample *)
  let dynamic = Fault_check.check ~static ~epsilon:1 sched in
  Helpers.check_bool "dynamic agrees" true
    (dynamic.Fault_check.static_agrees = Some true);
  Helpers.check_bool "dynamic refutes too" false dynamic.Fault_check.resists

let test_survivors_matches_replay () =
  let _, costs = Helpers.random_instance ~seed:9 ~m:6 ~tasks:25 () in
  let sched = Caft.run ~epsilon:1 costs in
  let rng = Rng.create 11 in
  for _ = 1 to 20 do
    let crashed = Scenario.uniform_procs rng ~m:6 ~count:2 in
    let out = Replay.crash_from_start sched ~crashed in
    let starved = Resilience.starved_tasks sched ~crashed in
    Helpers.check_bool "completion agrees" true
      (out.Replay.completed = (starved = []));
    if not out.Replay.completed then
      Helpers.check_bool "starved sets equal" true
        (List.sort compare out.Replay.failed_tasks = starved)
  done

let test_parallel_certification () =
  (* a wide fork exercises the per-level Parallel.map path; the verdict
     must match the sequential run *)
  let rng = Rng.create 3 in
  let dag = Families.fork 40 in
  let params = Platform_gen.default ~m:6 () in
  let costs = Platform_gen.instance rng ~granularity:1.0 params dag in
  let sched = Caft.run ~epsilon:1 costs in
  let seq = Resilience.certify ~epsilon:1 ~domains:1 sched in
  let par = Resilience.certify ~epsilon:1 ~domains:4 sched in
  Helpers.check_bool "same verdict" true
    (seq.Resilience.rs_resists = par.Resilience.rs_resists);
  Array.iteri
    (fun i v ->
      Helpers.check_bool
        (Printf.sprintf "task %d verdict class" i)
        true
        (match (v, par.Resilience.rs_tasks.(i)) with
        | Resilience.Certified _, Resilience.Certified _
        | Resilience.Refuted _, Resilience.Refuted _ ->
            true
        | _ -> false))
    seq.Resilience.rs_tasks

(* -- certificates ------------------------------------------------------ *)

let test_certificate_roundtrip () =
  let _, costs = Helpers.random_instance ~seed:5 ~m:5 ~tasks:15 () in
  let sched = Caft.run ~epsilon:1 costs in
  let report = Resilience.certify ~epsilon:1 sched in
  let cert = Certificate.of_report sched report in
  let str = Json.to_string (Certificate.to_json cert) in
  let cert' =
    match Certificate.of_json (Json.parse_exn str) with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Helpers.check_bool "roundtrip is a fixed point" true
    (Json.to_string (Certificate.to_json cert') = str);
  (match Certificate.check sched cert' with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("re-verification failed: " ^ e));
  (* tampering is caught: claim a refutation the schedule survives *)
  let forged =
    {
      cert' with
      Certificate.c_resists = false;
      c_verdicts =
        (let v = Array.copy cert'.Certificate.c_verdicts in
         v.(0) <- Resilience.Refuted [ 0 ];
         v);
    }
  in
  (match Certificate.check sched forged with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forged refutation accepted");
  (* and: flipping only the flag contradicts the verdicts *)
  match
    Certificate.check sched { cert' with Certificate.c_resists = false }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inconsistent resists flag accepted"

let test_certificate_of_refuted () =
  let sched = tampered_fork () in
  let report = Resilience.certify ~epsilon:1 sched in
  let cert = Certificate.of_report sched report in
  Helpers.check_bool "records non-resistance" false cert.Certificate.c_resists;
  match Certificate.check sched cert with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("refuted certificate should verify: " ^ e)

(* -- mapping ----------------------------------------------------------- *)

let test_mapping_fork_one_to_one () =
  let rng = Rng.create 7 in
  let dag = Families.fork 6 in
  let params = Platform_gen.default ~m:5 () in
  let costs = Platform_gen.instance rng ~granularity:1.0 params dag in
  let sched = Caft.run ~epsilon:1 costs in
  let m = Mapping.verify sched in
  Helpers.check_bool "fork is an out-forest" true m.Mapping.mp_out_forest;
  Helpers.check_bool "all joins one-to-one" true m.Mapping.mp_all_one_to_one;
  Helpers.check_bool "within the linear bound" true m.Mapping.mp_within_linear;
  Helpers.check_int "one join per edge" (Dag.edge_count dag)
    (Array.length m.Mapping.mp_joins)

let test_mapping_fallback_and_invalid () =
  let dag = Dag.make ~n:2 ~edges:[ (0, 1, 1.) ] () in
  let platform = Helpers.uniform_platform 4 in
  let costs = Helpers.flat_costs ~c:10. dag platform in
  let all_suppliers dst_proc =
    [
      message ~pred:0 ~pred_replica:0 ~src_proc:0 ~src_finish:10.
        ~dst_proc ();
      message ~pred:0 ~pred_replica:1 ~src_proc:1 ~src_finish:10.
        ~dst_proc ();
    ]
  in
  let fallback =
    Schedule.create ~algorithm:"fallback" ~epsilon:1 ~model:Netstate.One_port
      ~costs
      [
        replica ~task:0 ~index:0 ~proc:0 ~start:0. ~finish:10. [];
        replica ~task:0 ~index:1 ~proc:1 ~start:0. ~finish:10. [];
        replica ~task:1 ~index:0 ~proc:2 ~start:11. ~finish:21.
          (all_suppliers 2);
        replica ~task:1 ~index:1 ~proc:3 ~start:11. ~finish:21.
          (all_suppliers 3);
      ]
  in
  let m = Mapping.verify fallback in
  Helpers.check_int "fallback join" 1 (Mapping.count m Mapping.Fallback);
  Helpers.check_bool "within quadratic" true m.Mapping.mp_within_quadratic;
  (* the all-to-all join resists epsilon = 1 and the certifier agrees *)
  check_agreement ~name:"fallback schedule" fallback ~epsilon:1;
  (* a replica with no supplier at all makes the join invalid *)
  let invalid =
    Schedule.create ~algorithm:"invalid" ~epsilon:1 ~model:Netstate.One_port
      ~costs
      [
        replica ~task:0 ~index:0 ~proc:0 ~start:0. ~finish:10. [];
        replica ~task:0 ~index:1 ~proc:1 ~start:0. ~finish:10. [];
        replica ~task:1 ~index:0 ~proc:2 ~start:11. ~finish:21.
          [ message ~pred:0 ~pred_replica:0 ~src_proc:0 ~src_finish:10.
              ~dst_proc:2 () ];
        replica ~task:1 ~index:1 ~proc:3 ~start:11. ~finish:21. [];
      ]
  in
  let mi = Mapping.verify invalid in
  Helpers.check_int "invalid join" 1 (Mapping.count mi Mapping.Invalid);
  Helpers.check_bool "not all one-to-one" false mi.Mapping.mp_all_one_to_one

(* -- lint -------------------------------------------------------------- *)

let test_lint_clean_schedule () =
  let _, costs = Helpers.random_instance ~seed:13 ~m:5 ~tasks:20 () in
  let sched = Caft.run ~epsilon:1 costs in
  let findings = Lint.run sched in
  Helpers.check_int "no errors on a valid schedule" 0 (Lint.errors findings)

let test_lint_granularity () =
  let _, costs =
    Helpers.random_instance ~seed:13 ~m:5 ~tasks:20 ~granularity:0.05 ()
  in
  let sched = Caft.run ~epsilon:1 costs in
  let findings = Lint.run sched in
  Helpers.check_bool "granularity smell fires" true
    (List.exists
       (fun f -> f.Lint.f_rule = "smell/granularity")
       findings)

let test_lint_tampered () =
  let dag = fork3 () in
  let platform = Helpers.uniform_platform 4 in
  let costs = Helpers.flat_costs ~c:10. dag platform in
  let dup =
    message ~pred:0 ~pred_replica:0 ~src_proc:0 ~src_finish:10. ~dst_proc:2 ()
  in
  let sched =
    Schedule.create ~algorithm:"tampered" ~epsilon:1 ~model:Netstate.One_port
      ~costs
      [
        replica ~task:0 ~index:0 ~proc:0 ~start:0. ~finish:10. [];
        replica ~task:0 ~index:1 ~proc:1 ~start:0. ~finish:10. [];
        (* duplicate supply: the same supplier replica booked twice *)
        replica ~task:1 ~index:0 ~proc:2 ~start:11. ~finish:21. [ dup; dup ];
        (* causality break: arrival before the link leg completes *)
        replica ~task:1 ~index:1 ~proc:3 ~start:10. ~finish:20.
          [ message ~arrival:10. ~pred:0 ~pred_replica:1 ~src_proc:1
              ~src_finish:10. ~dst_proc:3 () ];
        replica ~task:2 ~index:0 ~proc:0 ~start:10. ~finish:20.
          [ local ~pred:0 ~pred_replica:0 ~finish:10. ];
        replica ~task:2 ~index:1 ~proc:1 ~start:10. ~finish:20.
          [ local ~pred:0 ~pred_replica:1 ~finish:10. ];
      ]
  in
  let findings = Lint.run sched in
  let has rule = List.exists (fun f -> f.Lint.f_rule = rule) findings in
  Helpers.check_bool "duplicate supply flagged" true
    (has "redundancy/duplicate-supply");
  Helpers.check_bool "causality flagged" true (has "causality/message");
  Helpers.check_bool "errors counted" true (Lint.errors findings > 0);
  (* findings are sorted by decreasing severity *)
  let ranks =
    List.map
      (fun f ->
        match f.Lint.f_severity with
        | Lint.Error -> 0
        | Lint.Warning -> 1
        | Lint.Info -> 2)
      findings
  in
  Helpers.check_bool "severity sorted" true (ranks = List.sort compare ranks)

let test_lint_registry () =
  let custom =
    {
      Lint.rule_id = "test/always";
      rule_severity = Lint.Info;
      rule_doc = "fires on every schedule";
      rule_check =
        (fun ~fabric:_ _ ->
          [
            {
              Lint.f_rule = "test/always";
              f_severity = Lint.Info;
              f_loc = Lint.no_loc;
              f_msg = "hello";
            };
          ]);
    }
  in
  Lint.register custom;
  let _, costs = Helpers.random_instance ~seed:2 ~m:4 ~tasks:10 () in
  let sched = Caft.run ~epsilon:1 costs in
  Helpers.check_bool "registered rule runs" true
    (List.exists (fun f -> f.Lint.f_rule = "test/always") (Lint.run sched));
  (* restore the default registry for the other tests *)
  Lint.register
    { custom with Lint.rule_check = (fun ~fabric:_ _ -> []) };
  Helpers.check_bool "re-registration replaces" false
    (List.exists (fun f -> f.Lint.f_rule = "test/always") (Lint.run sched))

(* -- combined report --------------------------------------------------- *)

let test_report_json_roundtrip () =
  let sched = tampered_fork () in
  let report = Analysis_report.analyze sched in
  Helpers.check_bool "not ok" false (Analysis_report.ok report);
  let str = Json.to_string (Analysis_report.to_json report) in
  let json = Json.parse_exn str in
  (* every finding carries rule id, severity and a structured location *)
  let findings = Json.to_list (Option.get (Json.member "findings" json)) in
  Helpers.check_int "finding count" (List.length report.Analysis_report.a_findings)
    (List.length findings);
  List.iter
    (fun f ->
      Helpers.check_bool "rule id" true
        (Json.to_str (Option.get (Json.member "rule" f)) <> None);
      let level = Json.to_str (Option.get (Json.member "level" f)) in
      Helpers.check_bool "level" true
        (List.mem level [ Some "error"; Some "warning"; Some "info" ]);
      match Json.member "location" f with
      | Some (Json.Obj fields) ->
          List.iter
            (fun key ->
              Helpers.check_bool ("location has " ^ key) true
                (List.mem_assoc key fields))
            [ "task"; "replica"; "proc"; "span" ]
      | _ -> Alcotest.fail "finding without structured location")
    findings;
  (* the embedded certificate parses and records the refutation *)
  let cert_json = Option.get (Json.member "certificate" json) in
  (match Certificate.of_json cert_json with
  | Ok c -> Helpers.check_bool "refutation recorded" false c.Certificate.c_resists
  | Error e -> Alcotest.fail e);
  (* the counterexample crash set is reported *)
  match Json.member "counterexample" json with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "expected a counterexample object"

let test_report_ok_on_valid () =
  let _, costs = Helpers.random_instance ~seed:21 ~m:5 ~tasks:15 () in
  let sched = Caft.run ~epsilon:1 costs in
  let report = Analysis_report.analyze sched in
  Helpers.check_bool "ok" true (Analysis_report.ok report);
  match report.Analysis_report.a_resilience with
  | Some r -> Helpers.check_bool "certified" true r.Resilience.rs_resists
  | None -> Alcotest.fail "expected a resilience report"

let suite =
  [
    Alcotest.test_case "fork DAGs: static = exhaustive replay (50 seeds)"
      `Quick test_fork_agreement;
    Alcotest.test_case "random DAGs: static = exhaustive replay" `Quick
      test_random_agreement;
    Alcotest.test_case "epsilon 2 and beyond-replication agreement" `Quick
      test_epsilon2_agreement;
    Alcotest.test_case "refutes unreplicated schedules" `Quick
      test_refutes_unreplicated;
    Alcotest.test_case "tampered schedule yields a confirmed counterexample"
      `Quick test_tampered_counterexample;
    Alcotest.test_case "survivors relation matches replay" `Quick
      test_survivors_matches_replay;
    Alcotest.test_case "parallel certification matches sequential" `Quick
      test_parallel_certification;
    Alcotest.test_case "certificate JSON roundtrip and re-verification"
      `Quick test_certificate_roundtrip;
    Alcotest.test_case "certificate of a refuted schedule" `Quick
      test_certificate_of_refuted;
    Alcotest.test_case "mapping: fork is one-to-one within linear bound"
      `Quick test_mapping_fork_one_to_one;
    Alcotest.test_case "mapping: fallback and invalid joins" `Quick
      test_mapping_fallback_and_invalid;
    Alcotest.test_case "lint: clean schedule has no errors" `Quick
      test_lint_clean_schedule;
    Alcotest.test_case "lint: granularity smell" `Quick test_lint_granularity;
    Alcotest.test_case "lint: tampered schedule findings" `Quick
      test_lint_tampered;
    Alcotest.test_case "lint: rule registry" `Quick test_lint_registry;
    Alcotest.test_case "report JSON roundtrip with locations" `Quick
      test_report_json_roundtrip;
    Alcotest.test_case "report ok on a valid schedule" `Quick
      test_report_ok_on_valid;
  ]
