(* Unit tests for fixed-universe bit sets. *)

let test_basic () =
  let s = Bitset.create 10 in
  Helpers.check_bool "empty" true (Bitset.is_empty s);
  Helpers.check_int "cardinal 0" 0 (Bitset.cardinal s);
  Bitset.add s 3;
  Bitset.add s 7;
  Bitset.add s 3;
  Helpers.check_bool "mem 3" true (Bitset.mem s 3);
  Helpers.check_bool "mem 7" true (Bitset.mem s 7);
  Helpers.check_bool "not mem 4" false (Bitset.mem s 4);
  Helpers.check_int "cardinal" 2 (Bitset.cardinal s);
  Bitset.remove s 3;
  Helpers.check_bool "removed" false (Bitset.mem s 3);
  Helpers.check_int "cardinal after remove" 1 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add out of universe"
    (Invalid_argument "Bitset.add: out of universe") (fun () -> Bitset.add s 8);
  Alcotest.check_raises "mem negative"
    (Invalid_argument "Bitset.mem: out of universe") (fun () ->
      ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "negative universe"
    (Invalid_argument "Bitset.create: negative universe") (fun () ->
      ignore (Bitset.create (-1)))

let test_union_inter_disjoint () =
  let a = Bitset.of_list 12 [ 0; 3; 11 ] in
  let b = Bitset.of_list 12 [ 3; 5 ] in
  let u = Bitset.union a b in
  Helpers.check_bool "union elements" true
    (Bitset.elements u = [ 0; 3; 5; 11 ]);
  let i = Bitset.inter a b in
  Helpers.check_bool "inter elements" true (Bitset.elements i = [ 3 ]);
  Helpers.check_bool "not disjoint" false (Bitset.disjoint a b);
  Bitset.remove b 3;
  Helpers.check_bool "disjoint after removal" true (Bitset.disjoint a b);
  (* union_into mutates in place *)
  Bitset.union_into ~into:a b;
  Helpers.check_bool "union_into" true (Bitset.elements a = [ 0; 3; 5; 11 ])

let test_subset_equal () =
  let a = Bitset.of_list 9 [ 1; 2 ] in
  let b = Bitset.of_list 9 [ 1; 2; 5 ] in
  Helpers.check_bool "a subset b" true (Bitset.subset a b);
  Helpers.check_bool "b not subset a" false (Bitset.subset b a);
  Helpers.check_bool "a not equal b" false (Bitset.equal a b);
  Helpers.check_bool "a equal copy" true (Bitset.equal a (Bitset.copy a));
  Helpers.check_bool "empty subset of anything" true
    (Bitset.subset (Bitset.create 9) a)

let test_universe_mismatch () =
  let a = Bitset.create 4 and b = Bitset.create 5 in
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Bitset.union: universe mismatch") (fun () ->
      ignore (Bitset.union a b))

let test_copy_isolation () =
  let a = Bitset.of_list 6 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  Helpers.check_bool "copy does not leak back" false (Bitset.mem a 2)

let test_complement_and_singleton () =
  let s = Bitset.singleton 5 2 in
  Helpers.check_bool "singleton elements" true (Bitset.elements s = [ 2 ]);
  Helpers.check_bool "complement" true
    (Bitset.complement_elements s = [ 0; 1; 3; 4 ]);
  Helpers.check_int "universe size" 5 (Bitset.universe_size s)

let test_iter () =
  let s = Bitset.of_list 70 [ 0; 63; 64; 69 ] in
  (* crosses the byte boundaries *)
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) s;
  Helpers.check_bool "iter order" true (List.rev !acc = [ 0; 63; 64; 69 ]);
  Helpers.check_int "cardinal across words" 4 (Bitset.cardinal s)

let test_clear_and_unsafe () =
  (* the replay inner loops use clear + unsafe_add/unsafe_mem; they must
     agree with the checked operations on every in-universe index *)
  let n = 70 in
  let s = Bitset.of_list n [ 0; 7; 8; 63; 64; 69 ] in
  Bitset.clear s;
  Helpers.check_bool "clear empties" true (Bitset.is_empty s);
  Helpers.check_int "clear cardinal" 0 (Bitset.cardinal s);
  let rng = Rng.create 77 in
  let reference = Array.make n false in
  for _ = 1 to 200 do
    let i = Rng.int rng n in
    Bitset.unsafe_add s i;
    reference.(i) <- true
  done;
  for i = 0 to n - 1 do
    Helpers.check_bool "unsafe_mem = mem" (Bitset.mem s i)
      (Bitset.unsafe_mem s i);
    Helpers.check_bool "unsafe_add landed" reference.(i) (Bitset.mem s i)
  done;
  Bitset.clear s;
  for i = 0 to n - 1 do
    Helpers.check_bool "clear leaves nothing" false (Bitset.unsafe_mem s i)
  done

let test_large_universe_random () =
  let rng = Rng.create 31 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 100 in
    let l =
      List.sort_uniq compare (List.init (Rng.int rng 40) (fun _ -> Rng.int rng n))
    in
    let s = Bitset.of_list n l in
    Helpers.check_bool "of_list/elements roundtrip" true (Bitset.elements s = l);
    Helpers.check_int "cardinal matches" (List.length l) (Bitset.cardinal s)
  done

let suite =
  [
    Alcotest.test_case "add/mem/remove" `Quick test_basic;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "union/inter/disjoint" `Quick test_union_inter_disjoint;
    Alcotest.test_case "subset/equal" `Quick test_subset_equal;
    Alcotest.test_case "universe mismatch" `Quick test_universe_mismatch;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "complement/singleton" `Quick test_complement_and_singleton;
    Alcotest.test_case "iter across words" `Quick test_iter;
    Alcotest.test_case "clear + unsafe ops" `Quick test_clear_and_unsafe;
    Alcotest.test_case "random roundtrips" `Quick test_large_universe_random;
  ]
