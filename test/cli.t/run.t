The ftsched CLI, driven end to end on a small deterministic instance.

Build and validate a CAFT schedule:

  $ ftsched schedule --seed 2 --tasks 10 -m 4 --epsilon 1
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages
  graph: 10 tasks, 19 edges, width 3, granularity 1.00
  validation: ok

Exhaustive fault-tolerance check (4 single-crash scenarios on 4 processors):

  $ ftsched check --seed 2 --tasks 10 -m 4 --epsilon 1
  CAFT, epsilon=1: resists (4 scenarios, exhaustive)
  worst completed-scenario latency: 1011.092

Crash one processor and replay the real execution:

  $ ftsched crash --seed 2 --tasks 10 -m 4 --epsilon 1 --crash 1
  schedule CAFT: latency 884.755 (0 crash), upper bound 1011.092
  crashed processors: {1}
  replay: completed, real latency 884.755

Monte-Carlo fault injection — with crashes <= epsilon nothing ever fails:

  $ ftsched montecarlo --seed 2 --tasks 10 -m 4 --epsilon 1 --crashes 1 --runs 50
  CAFT, epsilon=1, 50 scenarios of 1 from-start crashes (latency with 0 crash: 884.755)
  50/50 runs completed (failure rate 0.00%)
  latency: mean 945.397, median 884.755, min 884.755, max 1011.092 (worst slowdown 1.14x)

Save a schedule, reload it, and check the round trip preserves the metrics:

  $ ftsched inspect --seed 2 --tasks 10 -m 4 --epsilon 1 --save saved.sched > full.out
  $ head -2 full.out
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages

  $ ftsched inspect --load saved.sched > reloaded.out
  $ head -2 reloaded.out
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages

A fault-free HEFT schedule cannot resist a crash — the checker says so
(and exits non-zero):

  $ ftsched check --seed 2 --tasks 10 -m 4 --epsilon 1 --algo heft
  HEFT, epsilon=1: DOES NOT RESIST (1 scenarios, exhaustive)
  counterexample: crash {0} starves tasks {1,2,3,4,5,6,7,8,9}
  [1]

Import a workflow from DOT and explain its critical chain:

  $ cat > wf.dot <<'DOT'
  > digraph { a -> b [label="120"]; a -> c [label="120"]; b -> d [label="60"]; c -> d [label="60"]; }
  > DOT
  $ ftsched inspect --import wf.dot -m 4 --epsilon 1 --explain | tail -6
  
  critical chain (comm share 22%):
  t0[0] on P3 [0.00, 48.89] — starts the chain
  t2[0] on P3 [48.89, 106.85] — after local data from t0[0]
  t1[0] on P3 [106.85, 164.93] — after t2[0] freed the processor
  t3[0] on P2 [224.28, 264.97] — after the message from t1[0]@P3 arrived at 224.28

Inspect a sparse interconnect:

  $ ftsched topology -m 8 --shape ring
  ring: 8 processors, 16 directed links, diameter 4 hops

  $ ftsched topology --shape hypercube-3 | head -1
  hypercube-3: 8 processors, 24 directed links, diameter 3 hops
