The ftsched CLI, driven end to end on a small deterministic instance.

Build and validate a CAFT schedule:

  $ ftsched schedule --seed 2 --tasks 10 -m 4 --epsilon 1
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages
  graph: 10 tasks, 19 edges, width 3, granularity 1.00
  validation: ok

Exhaustive fault-tolerance check (4 single-crash scenarios on 4 processors):

  $ ftsched check --seed 2 --tasks 10 -m 4 --epsilon 1
  CAFT, epsilon=1: resists (4 scenarios, exhaustive)
  worst completed-scenario latency: 1011.092

Crash one processor and replay the real execution:

  $ ftsched crash --seed 2 --tasks 10 -m 4 --epsilon 1 --crash 1
  schedule CAFT: latency 884.755 (0 crash), upper bound 1011.092
  crashed processors: {1}
  replay: completed, real latency 884.755

Monte-Carlo fault injection — with crashes <= epsilon nothing ever fails:

  $ ftsched montecarlo --seed 2 --tasks 10 -m 4 --epsilon 1 --crashes 1 --runs 50
  CAFT, epsilon=1, 50 scenarios of 1 from-start crashes (latency with 0 crash: 884.755)
  50/50 runs completed (failure rate 0.00%, 50 replays)
  latency: mean 945.397, median 884.755, min 884.755, max 1011.092 (worst slowdown 1.14x)

Save a schedule, reload it, and check the round trip preserves the metrics:

  $ ftsched inspect --seed 2 --tasks 10 -m 4 --epsilon 1 --save saved.sched > full.out
  $ head -2 full.out
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages

  $ ftsched inspect --load saved.sched > reloaded.out
  $ head -2 reloaded.out
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages

A fault-free HEFT schedule cannot resist a crash — the checker says so
(and exits non-zero):

  $ ftsched check --seed 2 --tasks 10 -m 4 --epsilon 1 --algo heft
  HEFT, epsilon=1: DOES NOT RESIST (1 scenarios, exhaustive)
  counterexample: crash {0} starves tasks {1,2,3,4,5,6,7,8,9}
  [1]

Import a workflow from DOT and explain its critical chain:

  $ cat > wf.dot <<'DOT'
  > digraph { a -> b [label="120"]; a -> c [label="120"]; b -> d [label="60"]; c -> d [label="60"]; }
  > DOT
  $ ftsched inspect --import wf.dot -m 4 --epsilon 1 --explain | tail -6
  
  critical chain (comm share 22%):
  t0[0] on P3 [0.00, 48.89] — starts the chain
  t2[0] on P3 [48.89, 106.85] — after local data from t0[0]
  t1[0] on P3 [106.85, 164.93] — after t2[0] freed the processor
  t3[0] on P2 [224.28, 264.97] — after the message from t1[0]@P3 arrived at 224.28

Static analysis: certify resistance without a single replay, check the
Proposition 5.1 message bounds, and lint the schedule.  The cross-check
replays the crash scenarios and compares verdicts:

  $ ftsched analyze --seed 2 --tasks 10 -m 4 --epsilon 1 --cross-check
  analysis of CAFT schedule: 10 tasks x 2 replicas on 4 processors (one-port model)
  resistance: certified for epsilon=1 with zero replays (10/10 tasks by disjoint supports, 0 by min-cut)
  mapping: 19/19 joins one-to-one (0 fallback, 0 mixed, 0 invalid), 16 messages, bounds: e(eps+1)=38 ok, e(eps+1)^2=76 ok
  lint: 0 errors, 0 warnings, 1 info
    info    smell/idle-gap: P1 idles for 318.177769 (31% of the makespan) between [106.332301, 424.510070] (P1, [106.332, 424.510])
  cross-check: replay resists after 4 scenarios (exhaustive), static certificate agrees

A fine-grain instance is certified but picks up a lint warning:

  $ ftsched analyze --seed 2 --tasks 10 -m 4 --epsilon 1 --granularity 0.05
  analysis of CAFT schedule: 10 tasks x 2 replicas on 4 processors (one-port model)
  resistance: certified for epsilon=1 with zero replays (10/10 tasks by disjoint supports, 0 by min-cut)
  mapping: 19/19 joins one-to-one (0 fallback, 0 mixed, 0 invalid), 0 messages, bounds: e(eps+1)=38 ok, e(eps+1)^2=76 ok
  lint: 0 errors, 1 warnings, 0 info
    warning smell/granularity: fine-grain instance (granularity 0.050 < 0.1): communication dominates computation, replication overhead will be high

An unreplicated HEFT schedule is refuted with a minimal counterexample
crash set (and a non-zero exit):

  $ ftsched analyze --seed 2 --tasks 10 -m 4 --epsilon 1 --algo heft
  analysis of HEFT schedule: 10 tasks x 1 replicas on 4 processors (one-port model)
  resistance: REFUTED for epsilon=1 — crash {3} starves tasks {0,1,2,3,4,5,6,7,8,9}
  mapping: 19/19 joins one-to-one (0 fallback, 0 mixed, 0 invalid), 11 messages, bounds: e(eps+1)=19 ok, e(eps+1)^2=19 ok
  lint: 0 errors, 0 warnings, 1 info
    info    smell/idle-gap: P2 idles for 367.388581 (40% of the makespan) between [368.821971, 736.210551] (P2, [368.822, 736.211])
  [1]

The JSON report embeds a machine-checkable certificate, which can also be
written standalone:

  $ ftsched analyze --seed 2 --tasks 10 -m 4 --epsilon 1 --format json --certificate cert.json > report.json
  $ grep -o '"certificate":"[^"]*"' report.json
  "certificate":"ftsched/epsilon-resistance"
  $ grep -c '"rule":' report.json
  1
  $ grep -o '"resists":[a-z]*' cert.json
  "resists":true

Inspect a sparse interconnect:

  $ ftsched topology -m 8 --shape ring
  ring: 8 processors, 16 directed links, diameter 4 hops

  $ ftsched topology --shape hypercube-3 | head -1
  hypercube-3: 8 processors, 24 directed links, diameter 3 hops

Observability: --metrics appends the decision counters to the output.
Trial placements are suppressed, so the one-to-one and full-replication
counters sum to (epsilon+1) x edges = 2 x 19, and the remote-message
counter matches the schedule summary:

  $ ftsched schedule --seed 2 --tasks 10 -m 4 --epsilon 1 --metrics | grep -E 'caft\.(one_to_one|full_replication)|net\.messages'
  caft.full_replication      counter    0
  caft.one_to_one            counter    38
  net.messages.local         counter    22
  net.messages.remote        counter    16

The dump is deterministically sorted by metric name, so diffs of saved
dumps are stable across runs and shard counts:

  $ ftsched schedule --seed 2 --tasks 10 -m 4 --epsilon 1 --metrics --metrics-out m.txt > /dev/null
  $ tail -n +3 m.txt | awk 'NF {print $1}' | sort -C && echo sorted
  sorted

The same dump is available as machine-readable JSON:

  $ ftsched schedule --seed 2 --tasks 10 -m 4 --epsilon 1 --metrics --metrics-format json --metrics-out metrics.json
  schedule CAFT: 10 tasks x 2 replicas on 4 processors (one-port model)
  latency (0 crash) 884.755, upper bound 1011.092, 16 messages
  graph: 10 tasks, 19 edges, width 3, granularity 1.00
  validation: ok
  $ grep -o '"schema":"[^"]*"' metrics.json
  "schema":"ftsched/metrics/v1"

--trace records a Chrome trace-event timeline (one "priorities" span, one
"place" span per task, one "validate" span):

  $ ftsched schedule --seed 2 --tasks 10 -m 4 --epsilon 1 --trace trace.json > /dev/null
  $ grep -c '"traceEvents"' trace.json
  1
  $ grep -o '"name":"place"' trace.json | wc -l | tr -d ' '
  10

--profile attributes wall time, calls and GC to phases per domain and
prints the table after the run; --profile-out writes the same report as
JSON (schema ftsched/profile/v1):

  $ ftsched montecarlo --seed 2 --tasks 10 -m 4 --epsilon 1 --crashes 1 --runs 50 --profile --profile-out prof.json > /dev/null
  $ grep -o '"schema":"[^"]*"' prof.json
  "schema":"ftsched/profile/v1"
  $ ftsched montecarlo --seed 2 --tasks 10 -m 4 --epsilon 1 --crashes 1 --runs 50 --profile | awk '{print $1}' | grep -c 'montecarlo.eval'
  1

benchdiff compares two bench JSON reports and fails on regressions
beyond the threshold (20% by default).  A 30% throughput drop on the
replay domain-scaling row is a regression; --advisory reports it but
exits 0:

  $ cat > bench_old.json <<'EOF'
  > {"schema":"ftsched/bench/v1",
  >  "replay":[{"m":50,"rebuild_ns_per_scenario":1000000.0,"compiled_ns_per_scenario":60000.0}],
  >  "replay_domains":[{"domains":1,"runs":2000,"scenarios_per_sec":5000.0}]}
  > EOF
  $ sed -e 's/5000\.0/3500.0/' bench_old.json > bench_new.json
  $ ftsched benchdiff bench_old.json bench_new.json
  metric                                            old        new  change     verdict
  ------------------------------------------  ---------  ---------  ------  ----------
  replay/m=50 rebuild_ns_per_scenario         1000000.0  1000000.0   +0.0%          ok
  replay/m=50 compiled_ns_per_scenario          60000.0    60000.0   +0.0%          ok
  replay_domains/domains=1 scenarios_per_sec     5000.0     3500.0  +30.0%  REGRESSION
  3 metric(s) compared, 1 regression(s) beyond 20%, 0 improvement(s)
  [1]
  $ ftsched benchdiff --advisory bench_old.json bench_new.json > /dev/null
  $ ftsched benchdiff bench_old.json bench_old.json > /dev/null
  $ ftsched benchdiff --threshold 50 bench_old.json bench_new.json > /dev/null

Adversarial fault injection: the worst within-epsilon plan, the minimal
kill set cross-checked against the resistance certificate, and the
graceful-degradation curve past the tolerance:

  $ ftsched stress --seed 2 --tasks 10 -m 4 --epsilon 1 --budget small --runs 40
  CAFT, 10 tasks on 4 processors
  adversary: m=4 epsilon=1 (17/2000 evals)
  fault-free latency: 884.755
  certificate: resists 1 crashes
  worst <=epsilon plan: latency 1011.092 (slowdown 1.14x, exhaustive) [P0@start]
  min kill set: {P1, P3} (certified minimal) -> 0/10 tasks, 0/1 sinks, frontier 0.000
  degradation curve (40 runs per point):
    crashes  completed  completion(mean/min)  worst-slowdown
          0    40/40       1.000/1.000     1.00x
          1    40/40       1.000/1.000     1.14x
          2    13/40       0.380/0.000     1.14x
          3     0/40       0.060/0.000     -

The same report as JSON, including the dynamic half of Proposition 5.2
(every sampled scenario within epsilon crashes completed):

  $ ftsched stress --seed 2 --tasks 10 -m 4 --epsilon 1 --budget small --runs 10 --json > stress.json
  $ grep -o '"certificate_resists":[a-z]*' stress.json
  "certificate_resists":true
  $ grep -o '"within_epsilon_ok":[a-z]*' stress.json
  "within_epsilon_ok":true

Malformed user inputs exit with one structured line instead of a raw
exception backtrace:

  $ cat > bad.dot <<'DOT'
  > graph {
  >   0 -- 1
  > DOT
  $ ftsched schedule --import bad.dot
  ftsched: error: bad.dot:2: unexpected character '-'
  [2]

  $ cat > cyclic.dot <<'DOT'
  > digraph g {
  >   0 -> 1
  >   1 -> 0
  > }
  > DOT
  $ ftsched schedule --import cyclic.dot
  ftsched: error: cyclic.dot: graph has a dependency cycle through tasks {0,1}
  [2]

  $ echo 'not a schedule' > bad.sched
  $ ftsched inspect --load bad.sched
  ftsched: error: bad.sched:1: missing header 'ftsched-schedule v1'
  [2]

  $ ftsched schedule --import missing.dot
  ftsched: error: missing.dot: No such file or directory
  [2]
