(* Baseline-specific behaviour: FTSA, FTBAR, HEFT. *)

let test_ftsa_replica_messages () =
  (* FTSA: every replica of each predecessor ships to every replica of
     the task, except when co-located.  On a 2-task chain with epsilon=1
     and enough processors: 4 messages minus co-locations. *)
  let dag = Dag.make ~n:2 ~edges:[ (0, 1, 10.) ] () in
  let platform = Helpers.uniform_platform 6 in
  let costs = Helpers.flat_costs ~c:100. dag platform in
  let sched = Ftsa.run ~epsilon:1 costs in
  let locals =
    List.length
      (List.filter
         (fun (r : Schedule.replica) ->
           List.exists
             (function Schedule.Local _ -> true | Schedule.Message _ -> false)
             r.Schedule.r_inputs)
         (Schedule.all_replicas sched))
  in
  (* each co-located replica of t1 replaces 2 messages by a local supply *)
  Helpers.check_int "message count accounting"
    (4 - (2 * locals))
    (Schedule.message_count sched)

let test_ftsa_quadratic_vs_caft_linear () =
  (* on a fork with many children and plenty of processors, FTSA sends
     about e(eps+1)^2 messages, CAFT about e(eps+1) *)
  let dag = Families.fork 10 in
  let platform = Helpers.uniform_platform 12 in
  let costs = Helpers.flat_costs ~c:1000. dag platform in
  (* coarse cost => replicas spread out, little co-location *)
  let epsilon = 2 in
  let ftsa = Ftsa.run ~epsilon costs in
  let caft = Caft.run ~epsilon costs in
  let e = Dag.edge_count dag in
  Helpers.check_bool "FTSA superlinear" true
    (Schedule.message_count ftsa > e * (epsilon + 1));
  Helpers.check_bool "CAFT at most linear" true
    (Schedule.message_count caft <= e * (epsilon + 1))

let test_ftsa_min_finish_commit () =
  (* the first replica of an entry task goes to a fastest processor *)
  let dag = Dag.make ~n:1 ~edges:[] () in
  let platform = Helpers.uniform_platform 3 in
  let costs = Costs.of_matrix dag platform [| [| 10.; 2.; 5. |] |] in
  let sched = Ftsa.run ~epsilon:1 costs in
  let replicas = Schedule.replicas sched 0 in
  Helpers.check_int "fastest proc first" 1 replicas.(0).Schedule.r_proc;
  Helpers.check_int "second fastest next" 2 replicas.(1).Schedule.r_proc

let test_ftbar_validity_and_tolerance () =
  for seed = 1 to 8 do
    let _, costs = Helpers.random_instance ~seed ~m:7 ~tasks:20 () in
    let sched = Ftbar.run ~epsilon:2 costs in
    Helpers.check_bool "valid" true (Validate.is_valid sched);
    Helpers.check_bool "resists" true
      (Fault_check.check ~epsilon:2 sched).Fault_check.resists
  done

let test_ftbar_respects_precedence_order () =
  (* FTBAR picks the most urgent free task, which need not be the
     priority order, but precedence must still hold: every replica starts
     after some complete input set *)
  let _, costs = Helpers.random_instance ~seed:30 () in
  let sched = Ftbar.run ~epsilon:1 costs in
  Helpers.check_bool "valid schedule" true (Validate.is_valid sched)

let test_heft_single_replica () =
  let _, costs = Helpers.random_instance ~seed:31 () in
  let sched = Heft.run costs in
  Helpers.check_int "epsilon 0" 0 (Schedule.epsilon sched);
  Helpers.check_bool "algorithm name" true (Schedule.algorithm sched = "HEFT");
  Helpers.check_bool "valid" true (Validate.is_valid sched);
  (* zero-crash latency equals upper bound when there is one replica *)
  Helpers.check_float "bounds coincide"
    (Schedule.latency_zero_crash sched)
    (Schedule.latency_upper_bound sched)

let test_heft_beats_replication_on_latency () =
  (* fault-free schedules are never slower than the replicated ones of
     the same algorithm family *)
  let _, costs = Helpers.random_instance ~seed:32 () in
  let heft = Heft.run costs in
  let ftsa = Ftsa.run ~epsilon:2 costs in
  Helpers.check_bool "replication costs latency" true
    (Schedule.latency_zero_crash heft
    <= Schedule.latency_zero_crash ftsa +. 1e-6)

let test_all_single_task () =
  (* corner: a single task, no edges *)
  let dag = Dag.make ~n:1 ~edges:[] () in
  let platform = Helpers.uniform_platform 4 in
  let costs = Helpers.flat_costs ~c:3. dag platform in
  List.iter
    (fun (name, sched) ->
      Helpers.check_bool (name ^ " valid") true (Validate.is_valid sched);
      Helpers.check_float (name ^ " latency") 3.
        (Schedule.latency_zero_crash sched))
    [
      ("CAFT", Caft.run ~epsilon:3 costs);
      ("FTSA", Ftsa.run ~epsilon:3 costs);
      ("FTBAR", Ftbar.run ~epsilon:3 costs);
      ("HEFT", Heft.run costs);
    ]

let test_independent_tasks () =
  (* no edges at all: schedulers must spread replicas without messages *)
  let dag = Dag.make ~n:8 ~edges:[] () in
  let platform = Helpers.uniform_platform 5 in
  let costs = Helpers.flat_costs ~c:2. dag platform in
  List.iter
    (fun (name, sched) ->
      Helpers.check_bool (name ^ " valid") true (Validate.is_valid sched);
      Helpers.check_int (name ^ " no messages") 0 (Schedule.message_count sched);
      Helpers.check_bool (name ^ " resists") true
        (Fault_check.check ~epsilon:1 sched).Fault_check.resists)
    [ ("CAFT", Caft.run ~epsilon:1 costs); ("FTSA", Ftsa.run ~epsilon:1 costs);
      ("FTBAR", Ftbar.run ~epsilon:1 costs) ]

let test_determinism_all () =
  let _, costs = Helpers.random_instance ~seed:33 () in
  List.iter
    (fun (name, run) ->
      let a = run () and b = run () in
      Helpers.check_float (name ^ " deterministic")
        (Schedule.latency_zero_crash a)
        (Schedule.latency_zero_crash b))
    [
      ("FTSA", fun () -> Ftsa.run ~seed:4 ~epsilon:2 costs);
      ("FTBAR", fun () -> Ftbar.run ~seed:4 ~epsilon:2 costs);
      ("HEFT", fun () -> Heft.run ~seed:4 costs);
    ]

let suite =
  [
    Alcotest.test_case "FTSA message accounting" `Quick test_ftsa_replica_messages;
    Alcotest.test_case "FTSA quadratic vs CAFT linear" `Quick
      test_ftsa_quadratic_vs_caft_linear;
    Alcotest.test_case "FTSA min-finish commit order" `Quick
      test_ftsa_min_finish_commit;
    Alcotest.test_case "FTBAR validity and tolerance" `Slow
      test_ftbar_validity_and_tolerance;
    Alcotest.test_case "FTBAR precedence" `Quick
      test_ftbar_respects_precedence_order;
    Alcotest.test_case "HEFT single replica" `Quick test_heft_single_replica;
    Alcotest.test_case "HEFT vs replication latency" `Quick
      test_heft_beats_replication_on_latency;
    Alcotest.test_case "single task corner" `Quick test_all_single_task;
    Alcotest.test_case "independent tasks" `Quick test_independent_tasks;
    Alcotest.test_case "baseline determinism" `Quick test_determinism_all;
  ]
